#!/usr/bin/env python3
"""Execute every fenced ``python`` code block of a markdown document.

The tutorial's promise is that its snippets run; this script enforces it.
Blocks execute top to bottom in one shared namespace (exactly how a reader
would follow along), so later snippets can use names earlier ones defined.
Non-``python`` fences (``bash``, plain) are skipped.

Usage::

    PYTHONPATH=src python scripts/run_doc_snippets.py docs/TUTORIAL.md [more.md ...]

Exits non-zero on the first failing snippet, printing the snippet and the
error. Used by scripts/smoke.sh and the CI docs job.
"""

from __future__ import annotations

import os
import re
import sys
import traceback
from typing import List, Tuple

#: Matches any fence line; group 1 is the info string (may carry
#: attributes, e.g. ``python title=setup`` — only the first word is the
#: language).
_FENCE = re.compile(r"^```(.*)$")


def extract_python_blocks(text: str) -> List[Tuple[int, str]]:
    """Return (starting line number, source) for every ``python`` fence."""
    blocks: List[Tuple[int, str]] = []
    language = None
    buffer: List[str] = []
    start = 0
    for number, line in enumerate(text.splitlines(), start=1):
        match = _FENCE.match(line.strip())
        if match and language is None:
            info = match.group(1).strip()
            language = info.split()[0].lower() if info else "text"
            buffer = []
            start = number + 1
        elif match:
            if language == "python":
                blocks.append((start, "\n".join(buffer)))
            language = None
        elif language is not None:
            buffer.append(line)
    return blocks


def run_document(path: str) -> int:
    with open(path, encoding="utf-8") as handle:
        blocks = extract_python_blocks(handle.read())
    if not blocks:
        print(f"{path}: no python snippets found")
        return 0
    namespace: dict = {"__name__": "__doc_snippets__"}
    for index, (line, source) in enumerate(blocks, start=1):
        label = f"{path}:{line} (snippet {index}/{len(blocks)})"
        try:
            code = compile(source, f"{path}:snippet-{index}", "exec")
            exec(code, namespace)  # noqa: S102 - the whole point of this script
        except Exception:
            print(f"FAILED {label}\n{'-' * 60}\n{source}\n{'-' * 60}")
            traceback.print_exc()
            return 1
        print(f"ok {label}")
    return 0


def main(argv: List[str]) -> int:
    if not argv:
        print(__doc__)
        return 2
    for path in argv:
        if not os.path.exists(path):
            print(f"no such file: {path}")
            return 2
        status = run_document(path)
        if status:
            return status
    print("all snippets passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
