#!/usr/bin/env bash
# Measure real host wall-clock throughput of the bulk-execution backends and
# refresh BENCH_wallclock.json at the repository root (the perf trajectory).
#
# Usage: scripts/bench_wallclock.sh [extra bench_wallclock.py args]
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH}

python benchmarks/bench_wallclock.py "$@"
