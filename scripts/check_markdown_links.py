#!/usr/bin/env python3
"""Verify that relative markdown links in the docs resolve to real files.

Scans ``[text](target)`` links in the given markdown files (directories
are walked for ``*.md``): external links (``http(s)://``, ``mailto:``) are
skipped — this repo's CI has no network — and every other target must
exist on disk relative to the file containing it. In-page anchors
(``#section``) are checked only for the file part; pure-anchor links are
accepted when the current file is the target.

Usage::

    python scripts/check_markdown_links.py README.md docs [more...]

Exits non-zero listing every broken link. Used by scripts/smoke.sh and
the CI docs job.
"""

from __future__ import annotations

import os
import re
import sys
from typing import Iterable, List, Tuple

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def iter_markdown_files(paths: Iterable[str]) -> Iterable[str]:
    for path in paths:
        if os.path.isdir(path):
            for root, _dirs, files in os.walk(path):
                for name in sorted(files):
                    if name.endswith(".md"):
                        yield os.path.join(root, name)
        else:
            yield path


def check_file(path: str) -> List[Tuple[int, str, str]]:
    """Return (line, target, reason) for every broken link in ``path``."""
    broken: List[Tuple[int, str, str]] = []
    base = os.path.dirname(os.path.abspath(path))
    with open(path, encoding="utf-8") as handle:
        in_fence = False
        for number, line in enumerate(handle, start=1):
            if line.lstrip().startswith("```"):
                in_fence = not in_fence
            if in_fence:
                continue
            for match in _LINK.finditer(line):
                target = match.group(1)
                if target.startswith(_EXTERNAL) or target.startswith("#"):
                    continue
                file_part = target.split("#", 1)[0]
                if not file_part:
                    continue
                resolved = os.path.normpath(os.path.join(base, file_part))
                if not os.path.exists(resolved):
                    broken.append((number, target, f"missing: {resolved}"))
    return broken


def main(argv: List[str]) -> int:
    if not argv:
        print(__doc__)
        return 2
    files = list(iter_markdown_files(argv))
    if not files:
        print("no markdown files found")
        return 2
    failures = 0
    for path in files:
        broken = check_file(path)
        for line, target, reason in broken:
            print(f"{path}:{line}: broken link ({target}) -> {reason}")
        failures += len(broken)
        if not broken:
            print(f"ok {path}")
    if failures:
        print(f"{failures} broken link(s)")
        return 1
    print("all links resolve")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
