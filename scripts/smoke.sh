#!/usr/bin/env bash
# CI smoke: exercise every command the documentation shows, at tiny scale.
#
# Order: cheap registry/metadata commands first, then the test suites, then
# the experiment reproductions and examples. Fails fast on the first error.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH}

echo "== CLI metadata (README quickstart) =="
python -m repro list
python -m repro info

echo "== Tier-1 test suite =="
python -m pytest -x -q

echo "== Property-based differential harness (pinned seeds) =="
python -m pytest -q tests/proptest

echo "== Smoke-marked subset =="
python -m pytest -q -m smoke

echo "== Benchmark suite (regenerates every paper table) =="
python -m pytest -q benchmarks/bench_*.py

echo "== Shard-sweep reproduction (sharded engine) =="
python -m repro reproduce shard-sweep --scale 0.05 --out results/smoke

echo "== Every experiment, tiny scale =="
python -m repro reproduce all --scale 0.02 --out results/smoke

echo "== Examples =="
python examples/quickstart.py
python examples/sharded_engine.py

echo "== Service health counters (healthy + chaotic) =="
python -m repro service-health --ops 2048
python -m repro service-health --ops 2048 --chaos-seed 7

echo "== Process-executor service (real worker processes, incl. worker kills) =="
python -m repro service-health --ops 2048 --executor process --workers 2
python -m repro service-health --ops 2048 --executor process --workers 2 --chaos-seed 7

echo "== Process-executor teardown is crash-safe (no leaked workers) =="
python - <<'PY'
# Workers are daemonic spawn-context processes: even if close() is never
# called (a crashed parent), they must die with the parent rather than
# leak. Simulate the crash in a child interpreter and verify its workers
# are gone afterwards.
import os
import signal
import subprocess
import sys
import time

child_src = """
import os, sys
import numpy as np
from repro.engine import ShardedSlabHash

engine = ShardedSlabHash(4, 64, seed=1, executor="process", executor_workers=2)
keys = np.arange(1, 513, dtype=np.uint64)
engine.bulk_insert(keys, keys * 2)
assert len(engine) == 512
pids = [pid for pid in engine.process_executor.worker_pids() if pid]
print(" ".join(str(pid) for pid in pids), flush=True)
os.kill(os.getpid(), 9)  # crash without close(): workers must not leak
"""
proc = subprocess.run(
    [sys.executable, "-c", child_src],
    capture_output=True, text=True, env=dict(os.environ),
)
assert proc.returncode == -signal.SIGKILL, proc.stderr
worker_pids = [int(tok) for tok in proc.stdout.split()]
assert worker_pids, "child printed no worker pids"
deadline = time.time() + 10.0
while time.time() < deadline:
    alive = []
    for pid in worker_pids:
        try:
            os.kill(pid, 0)
        except OSError:
            continue
        alive.append(pid)
    if not alive:
        break
    time.sleep(0.1)
assert not alive, f"leaked worker processes after parent crash: {alive}"
print(f"teardown OK: {len(worker_pids)} workers died with their parent")
PY

echo "== Durable snapshot / recover (persistence layer) =="
python -m repro snapshot results/smoke/snapshot-demo.npz --elements 2048
python -m repro recover results/smoke/snapshot-demo.npz
rm -f results/smoke/snapshot-demo.npz

echo "== Incremental resize, end to end (migrate + mid-flight snapshot) =="
python - <<'PY'
import numpy as np
from repro import SlabHash

keys = np.arange(1, 3001, dtype=np.uint64)
table = SlabHash(16, seed=3)
table.bulk_insert(keys, keys * 3)
table.begin_resize(64, step_buckets=4)
# A few interleaved writes plus steps, then a mid-migration round-trip.
while table.migration is not None and table.migration.steps < 3:
    table.migrate_step()
table.bulk_insert(np.array([9001], dtype=np.uint64), np.array([1], dtype=np.uint64))
table.save("results/smoke/mid-migration.npz")
resumed = SlabHash.load("results/smoke/mid-migration.npz")
assert resumed.migration is not None
assert resumed.migration.watermark == table.migration.watermark
while resumed.migration is not None:
    resumed.migrate_step()
assert resumed.num_buckets == 64
assert len(resumed) == len(keys) + 1
assert np.array_equal(resumed.bulk_search(keys), keys * 3)
print(f"incremental resize OK: {resumed.resize_stats.migration_steps} steps, "
      f"{resumed.resize_stats.migration_items} items migrated")
PY
rm -f results/smoke/mid-migration.npz

echo "== Static analysis (repro lint; docs/ANALYSIS.md) =="
python -m repro lint

if command -v mypy >/dev/null 2>&1; then
  echo "== mypy --strict (src/repro) =="
  python -m mypy --strict src/repro
else
  echo "== mypy --strict skipped (mypy not installed; the CI lint job runs it) =="
fi

echo "== Bench schema drift guard (docs vs committed BENCH_*.json) =="
python scripts/check_bench_schema_drift.py

echo "== Tutorial snippets (docs/TUTORIAL.md, executed top to bottom) =="
python scripts/run_doc_snippets.py docs/TUTORIAL.md

echo "== Markdown link check (README.md + docs/) =="
python scripts/check_markdown_links.py README.md docs

echo "== Wall-clock backend benchmark (tiny sizes) =="
bash scripts/bench_wallclock.sh --sizes 4096 --repeats 1 --out results/smoke/BENCH_wallclock.json

echo "== Service-saturation benchmark (tiny sweep) =="
python benchmarks/bench_service_saturation.py --smoke \
  --out results/smoke/BENCH_service.json

echo "== Degraded-mode benchmark (merges into the smoke document) =="
python benchmarks/bench_degraded.py --smoke --out results/smoke/BENCH_service.json

echo "== Service-latency benchmark (tiny stream) =="
python benchmarks/bench_service_latency.py --num-ops 2048 --initial 2048 \
  --num-shards 2 --max-batch 256 --burst 128 --out results/smoke/BENCH_service_latency.json

echo "== smoke OK =="
