"""End-to-end integration tests across the whole stack.

These exercise the public API the way the examples and benchmarks do:
build → query → mutate → compact → query again, with correctness checked
against reference containers and the device accounting checked for sanity.
"""

import numpy as np
import pytest

from repro import Device, SlabAllocConfig, SlabHash
from repro.baselines.cuckoo import CuckooHashTable
from repro.baselines.misra import MisraHashTable
from repro.core import constants as C
from repro.gpusim.costmodel import CostModel
from repro.gpusim.scheduler import WarpScheduler
from repro.perf.metrics import measure_phase
from repro.workloads.distributions import GAMMA_40_UPDATES, build_concurrent_workload
from repro.workloads.generators import (
    existing_queries,
    missing_queries,
    unique_random_keys,
    values_for_keys,
)

CFG = SlabAllocConfig(num_super_blocks=4, num_memory_blocks=16, units_per_block=128)


class TestFullLifecycle:
    def test_build_query_mutate_flush_query(self):
        keys = unique_random_keys(1500, seed=1)
        values = values_for_keys(keys)
        table = SlabHash(SlabHash.buckets_for_utilization(len(keys), 0.6),
                         alloc_config=CFG, seed=2)

        table.bulk_build(keys, values)
        assert np.array_equal(table.bulk_search(keys), values)
        assert np.all(table.bulk_search(missing_queries(500, seed=3)) == C.SEARCH_NOT_FOUND)

        # Delete a third, then flush, then keep going.
        doomed = keys[::3]
        assert table.bulk_delete(doomed).sum() == len(doomed)
        slabs_before = table.total_slabs()
        table.flush()
        assert table.total_slabs() <= slabs_before

        survivors = np.setdiff1d(keys, doomed)
        assert np.array_equal(table.bulk_search(survivors), values_for_keys(survivors))

        # Incremental growth after compaction.
        more = unique_random_keys(800, seed=4) + np.uint32(2**29)
        table.bulk_insert(more, values_for_keys(more))
        assert np.array_equal(table.bulk_search(more), values_for_keys(more))
        assert len(table) == len(survivors) + len(more)

    def test_concurrent_phase_after_bulk_build(self):
        keys = unique_random_keys(1000, seed=5)
        table = SlabHash(64, alloc_config=CFG, seed=6)
        table.bulk_build(keys, values_for_keys(keys))

        workload = build_concurrent_workload(GAMMA_40_UPDATES, 1000, keys, seed=7)
        table.concurrent_batch(
            workload.op_codes, workload.keys, workload.values,
            scheduler=WarpScheduler(seed=8),
        )

        reference = {int(k): int(v) for k, v in zip(keys, values_for_keys(keys))}
        for op, key, value in zip(workload.op_codes, workload.keys, workload.values):
            if op == C.OP_INSERT:
                reference[int(key)] = int(value)
            elif op == C.OP_DELETE:
                reference.pop(int(key), None)
        assert dict(table.items()) == reference

    def test_utilization_targeting_end_to_end(self):
        keys = unique_random_keys(2000, seed=9)
        for target in (0.4, 0.65):
            table = SlabHash(SlabHash.buckets_for_utilization(len(keys), target),
                             alloc_config=CFG, seed=10)
            table.bulk_build(keys, keys)
            assert table.memory_utilization() == pytest.approx(target, abs=0.12)

    def test_same_workload_on_all_three_hash_tables(self):
        keys = unique_random_keys(800, seed=11)
        hits = existing_queries(keys, 400, seed=12)

        slab = SlabHash(64, alloc_config=CFG, seed=13)
        slab.bulk_build(keys, keys)
        cuckoo = CuckooHashTable.for_load_factor(len(keys), 0.6, seed=14)
        cuckoo.bulk_build(keys, keys)
        misra = MisraHashTable(64, capacity=len(keys) + 8, seed=15)
        misra.bulk_build(keys)

        assert np.array_equal(slab.bulk_search(hits), hits)
        assert np.array_equal(cuckoo.bulk_search(hits), hits)
        assert misra.bulk_search(hits).all()


class TestAccountingIntegration:
    def test_modelled_throughput_is_finite_and_positive(self):
        keys = unique_random_keys(1000, seed=16)
        device = Device()
        table = SlabHash(64, device=device, alloc_config=CFG, seed=17)
        build = measure_phase(
            device, lambda: table.bulk_build(keys, keys), num_ops=len(keys)
        )
        search = measure_phase(
            device, lambda: table.bulk_search(keys), num_ops=len(keys)
        )
        assert 0 < build.throughput < 1e11
        assert 0 < search.throughput < 1e11
        assert search.throughput > build.throughput  # searches skip the CAS

    def test_search_traffic_grows_with_chain_length(self):
        keys = unique_random_keys(1200, seed=18)

        def reads_per_query(buckets):
            device = Device()
            table = SlabHash(buckets, device=device, alloc_config=CFG, seed=19)
            table.bulk_build(keys, keys)
            m = measure_phase(device, lambda: table.bulk_search(keys), num_ops=len(keys))
            return m.per_op("coalesced_read_transactions")

        assert reads_per_query(4) > reads_per_query(256)

    def test_cost_model_ranks_structures_as_the_paper_does(self):
        keys = unique_random_keys(1000, seed=20)
        model = CostModel()

        slab_device = Device()
        slab = SlabHash(64, device=slab_device, alloc_config=CFG, seed=21)
        slab.bulk_build(keys, keys)
        slab_m = measure_phase(slab_device, lambda: slab.bulk_search(keys), num_ops=len(keys),
                               cost_model=model, scale_to_ops=2**22)

        misra_device = Device()
        misra = MisraHashTable(64, capacity=len(keys) + 8, device=misra_device, seed=22)
        misra.bulk_build(keys)
        misra_m = measure_phase(misra_device, lambda: misra.bulk_search(keys),
                                num_ops=len(keys), cost_model=model, scale_to_ops=2**22)

        # The warp-cooperative slab hash must beat the per-thread chaining table.
        assert slab_m.throughput > 2 * misra_m.throughput

    def test_device_counters_shared_between_table_and_allocator(self):
        device = Device()
        table = SlabHash(4, device=device, alloc_config=CFG, seed=23)
        keys = unique_random_keys(400, seed=24)
        table.bulk_build(keys, keys)
        assert device.counters.allocations == table.alloc.allocated_units
        assert device.counters.allocations > 0
