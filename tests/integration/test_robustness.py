"""Robustness and failure-injection tests.

The paper's structures are designed to degrade gracefully ("for any choice of
B we can cause performance degradation by continually increasing the number of
elements, but it never breaks").  These tests push the implementation into its
failure and pressure paths: allocator exhaustion, allocator growth under
pressure, deep chains, interrupted bulk operations, and sustained
insert/delete/flush churn.
"""

import numpy as np
import pytest

from repro.core import constants as C
from repro.core.config import SlabAllocConfig
from repro.core.slab_alloc import SlabAlloc
from repro.core.slab_hash import SlabHash
from repro.gpusim.device import Device
from repro.gpusim.errors import AllocationError

from tests.conftest import make_keys


class TestAllocatorPressure:
    def test_exhaustion_mid_bulk_insert_raises_cleanly(self):
        # An allocator with a single non-growable block exhausts quickly.
        device = Device()
        alloc = SlabAlloc(
            device,
            SlabAllocConfig(1, 1, 32, growth_threshold=10_000, max_super_blocks=1),
            seed=1,
        )
        table = SlabHash(1, device=device, alloc=alloc, seed=2)
        keys = make_keys(2000, seed=3)
        with pytest.raises(AllocationError):
            table.bulk_build(keys, keys)
        # Everything inserted before the failure is still intact and searchable.
        stored = dict(table.items())
        assert 0 < len(stored) < 2000
        sample = np.array(list(stored)[:50], dtype=np.uint32)
        assert np.array_equal(table.bulk_search(sample), sample)

    def test_growth_under_pressure_keeps_table_usable(self):
        device = Device()
        alloc = SlabAlloc(
            device,
            SlabAllocConfig(1, 2, 32, growth_threshold=2, max_super_blocks=16),
            seed=4,
        )
        table = SlabHash(2, device=device, alloc=alloc, seed=5)
        keys = make_keys(1500, seed=6)
        table.bulk_build(keys, keys)
        assert alloc.num_super_blocks > 1  # the allocator had to grow
        assert np.array_equal(table.bulk_search(keys), keys)

    def test_flush_returns_capacity_to_a_nearly_full_allocator(self):
        device = Device()
        alloc = SlabAlloc(
            device,
            SlabAllocConfig(1, 1, 96, growth_threshold=10_000, max_super_blocks=1),
            seed=7,
        )
        table = SlabHash(2, device=device, alloc=alloc, seed=8)
        keys = make_keys(1200, seed=9)
        table.bulk_build(keys, keys)
        head_room_before = alloc.capacity_units - alloc.allocated_units
        table.bulk_delete(keys[::2])
        table.flush()
        head_room_after = alloc.capacity_units - alloc.allocated_units
        assert head_room_after > head_room_before
        # The reclaimed capacity is actually usable for new insertions.
        more = make_keys(400, seed=10) + np.uint32(2**29)
        table.bulk_insert(more, more)
        assert np.array_equal(table.bulk_search(more), more)


class TestDeepChains:
    def test_single_bucket_table_never_breaks(self):
        """Everything hashed into one bucket: a very long slab list still works."""
        cfg = SlabAllocConfig(2, 16, 128)
        table = SlabHash(1, alloc_config=cfg, seed=11)
        keys = make_keys(600, seed=12)
        table.bulk_build(keys, keys)
        assert table.lists.slab_count(0) >= 40  # ~600 / 15
        assert np.array_equal(table.bulk_search(keys), keys)
        assert np.all(
            table.bulk_search(keys + np.uint32(2**29)) == C.SEARCH_NOT_FOUND
        )
        assert table.bulk_delete(keys).sum() == len(keys)
        assert len(table) == 0

    def test_memory_utilization_approaches_ceiling_on_deep_chain(self):
        cfg = SlabAllocConfig(2, 16, 128)
        table = SlabHash(1, alloc_config=cfg, seed=13)
        keys = make_keys(900, seed=14)
        table.bulk_build(keys, keys)
        assert table.memory_utilization() > 0.9
        assert table.memory_utilization() <= table.config.max_memory_utilization + 1e-9


class TestChurn:
    def test_sustained_insert_delete_flush_cycles(self):
        cfg = SlabAllocConfig(2, 16, 128)
        table = SlabHash(8, alloc_config=cfg, seed=15)
        reference = {}
        rng = np.random.default_rng(16)
        key_pool = make_keys(400, seed=17)

        for cycle in range(6):
            batch = key_pool[rng.choice(len(key_pool), size=120, replace=False)]
            values = (batch.astype(np.uint64) + cycle).astype(np.uint32)
            table.bulk_insert(batch, values)
            reference.update({int(k): int(v) for k, v in zip(batch, values)})

            doomed = batch[::3]
            table.bulk_delete(doomed)
            for key in doomed:
                reference.pop(int(key), None)

            if cycle % 2 == 1:
                table.flush()

            assert dict(table.items()) == reference

    def test_slab_accounting_is_stable_over_churn(self):
        cfg = SlabAllocConfig(2, 16, 128)
        table = SlabHash(4, alloc_config=cfg, seed=18)
        keys = make_keys(300, seed=19)
        for _ in range(4):
            table.bulk_insert(keys, keys)
            table.bulk_delete(keys)
            table.flush()
        # After deleting everything and flushing, only base slabs remain and
        # the allocator holds no units.
        assert len(table) == 0
        assert table.total_slabs() == table.num_buckets
        assert table.alloc.allocated_units == 0
