"""Write-ahead log framing: append, read back, truncate, torn tails.

The WAL's single job is that *any* byte-level crash point yields a clean
prefix of whole batches on read-back — no partial operations, ever.  These
tests cut files at every interesting boundary (mid-header, mid-frame,
mid-payload, corrupted CRC) and assert that property directly.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.persist import WriteAheadLog, read_records
from repro.persist.wal import HEADER_SIZE


def sample_batch(seed: int, count: int = 40):
    rng = np.random.default_rng(seed)
    op_codes = rng.integers(1, 4, size=count, dtype=np.int64)
    keys = rng.integers(1, 2**30, size=count, dtype=np.uint32)
    values = rng.integers(0, 2**16, size=count, dtype=np.uint32)
    return op_codes, keys, values


class TestAppendReadBack:
    def test_records_round_trip_in_order(self, tmp_path):
        path = str(tmp_path / "ops.wal")
        batches = [sample_batch(seed) for seed in range(5)]
        with WriteAheadLog(path) as wal:
            for index, (op_codes, keys, values) in enumerate(batches):
                wal.append(op_codes, keys, values, batch_index=index)
        records, torn = read_records(path)
        assert not torn
        assert len(records) == 5
        for index, (record, (op_codes, keys, values)) in enumerate(zip(records, batches)):
            assert record.batch_index == index
            assert np.array_equal(record.op_codes, op_codes)
            assert np.array_equal(record.keys, keys)
            assert np.array_equal(record.values, values)

    def test_key_only_batches_have_no_values(self, tmp_path):
        path = str(tmp_path / "ops.wal")
        op_codes, keys, _ = sample_batch(1)
        with WriteAheadLog(path) as wal:
            wal.append(op_codes, keys, None, batch_index=0)
        (record,), torn = read_records(path)
        assert not torn
        assert record.values is None
        assert np.array_equal(record.keys, keys)

    def test_truncate_drops_all_records(self, tmp_path):
        path = str(tmp_path / "ops.wal")
        with WriteAheadLog(path) as wal:
            wal.append(*sample_batch(1), batch_index=0)
            wal.truncate()
            assert wal.size() == HEADER_SIZE
            wal.append(*sample_batch(2), batch_index=7)
        records, torn = read_records(path)
        assert not torn
        assert [record.batch_index for record in records] == [7]

    def test_mismatched_lengths_are_rejected(self, tmp_path):
        with WriteAheadLog(str(tmp_path / "ops.wal")) as wal:
            with pytest.raises(ValueError):
                wal.append([1, 2], [3], None)
            with pytest.raises(ValueError):
                wal.append([1], [3], [4, 5])


class TestGroupCommit:
    """The group-commit path must be invisible on disk: one write + flush,
    byte-identical to sequential appends, same torn-tail guarantees."""

    def test_append_group_is_byte_identical_to_sequential_appends(self, tmp_path):
        batches = [(*sample_batch(seed), seed) for seed in range(4)]
        sequential = str(tmp_path / "seq.wal")
        grouped = str(tmp_path / "grp.wal")
        with WriteAheadLog(sequential) as wal:
            for op_codes, keys, values, index in batches:
                wal.append(op_codes, keys, values, batch_index=index)
        with WriteAheadLog(grouped) as wal:
            wal.append_group(batches)
        with open(sequential, "rb") as handle:
            expected = handle.read()
        with open(grouped, "rb") as handle:
            assert handle.read() == expected

    def test_append_group_returns_offsets_in_batch_order(self, tmp_path):
        path = str(tmp_path / "ops.wal")
        with WriteAheadLog(path) as wal:
            first = wal.append(*sample_batch(0), batch_index=0)
            offsets = wal.append_group(
                [(*sample_batch(seed), seed) for seed in range(1, 4)]
            )
            end = wal.size()
        assert first == HEADER_SIZE
        assert offsets[0] > first
        assert offsets == sorted(offsets)
        assert end > offsets[-1]
        records, torn = read_records(path)
        assert not torn
        assert [record.batch_index for record in records] == [0, 1, 2, 3]

    def test_append_group_with_mixed_value_modes(self, tmp_path):
        """Key-only and key-value batches may share a group (recovery decides
        per record via the has_values flag)."""
        path = str(tmp_path / "ops.wal")
        op_codes, keys, values = sample_batch(3)
        with WriteAheadLog(path) as wal:
            wal.append_group([(op_codes, keys, None, 0), (op_codes, keys, values, 1)])
        (key_only, key_value), torn = read_records(path)
        assert not torn
        assert key_only.values is None
        assert np.array_equal(key_value.values, values)

    def test_empty_group_writes_nothing(self, tmp_path):
        path = str(tmp_path / "ops.wal")
        with WriteAheadLog(path) as wal:
            assert wal.append_group([]) == []
            assert wal.size() == HEADER_SIZE
        assert read_records(path) == ([], False)

    def test_mismatched_lengths_in_a_group_are_rejected(self, tmp_path):
        with WriteAheadLog(str(tmp_path / "ops.wal")) as wal:
            with pytest.raises(ValueError):
                wal.append_group([([1, 2], [3], None, 0)])
            with pytest.raises(ValueError):
                wal.append_group([([1], [3], [4, 5], 0)])

    def test_every_crash_point_in_a_group_yields_a_whole_batch_prefix(self, tmp_path):
        """Chop a group-committed file at every byte: a crash mid-group must
        still recover to a clean prefix of whole batches, possibly splitting
        the group — the write being one syscall does not make it atomic."""
        path = str(tmp_path / "ops.wal")
        with WriteAheadLog(path) as wal:
            offsets = wal.append_group(
                [(*sample_batch(seed, count=12), seed) for seed in range(4)]
            )
            end = wal.size()
        with open(path, "rb") as handle:
            data = handle.read()
        boundaries = offsets + [end]
        clean_cuts = {HEADER_SIZE, *boundaries[1:]}
        for cut in range(0, end):
            chopped = str(tmp_path / "chopped.wal")
            with open(chopped, "wb") as handle:
                handle.write(data[:cut])
            records, torn = read_records(chopped)
            survived = max(
                (i for i, off in enumerate(boundaries) if off <= cut), default=0
            )
            assert len(records) == survived
            assert torn == (cut not in clean_cuts)
            for index, record in enumerate(records):
                assert record.batch_index == index


class TestTornTails:
    def _write(self, path, num_batches=3):
        with WriteAheadLog(path) as wal:
            offsets = [
                wal.append(*sample_batch(seed), batch_index=seed)
                for seed in range(num_batches)
            ]
            end = wal.size()
        return offsets, end

    def test_every_crash_point_yields_a_whole_batch_prefix(self, tmp_path):
        """Chop the file at every byte — even inside the 12-byte header
        (a crash during WAL creation): records are always a clean prefix."""
        path = str(tmp_path / "ops.wal")
        offsets, end = self._write(path)
        with open(path, "rb") as handle:
            data = handle.read()
        boundaries = offsets + [end]
        clean_cuts = {HEADER_SIZE, *boundaries[1:]}
        for cut in range(0, end):
            chopped = str(tmp_path / "chopped.wal")
            with open(chopped, "wb") as handle:
                handle.write(data[:cut])
            records, torn = read_records(chopped)
            survived = max(
                (i for i, off in enumerate(boundaries) if off <= cut), default=0
            )
            assert len(records) == survived
            assert torn == (cut not in clean_cuts)
            for index, record in enumerate(records):
                assert record.batch_index == index

    def test_reopening_a_torn_header_rewrites_it(self, tmp_path):
        """A crash during WAL creation leaves a sub-header file; the append
        side must treat it as a fresh log, not refuse to open it."""
        path = str(tmp_path / "ops.wal")
        self._write(path)
        with open(path, "r+b") as handle:
            handle.truncate(5)  # mid-header crash
        assert read_records(path) == ([], True)
        with WriteAheadLog(path) as wal:
            assert wal.size() == HEADER_SIZE
            wal.append(*sample_batch(3), batch_index=0)
        records, torn = read_records(path)
        assert not torn and len(records) == 1

    def test_corrupted_crc_stops_the_read(self, tmp_path):
        path = str(tmp_path / "ops.wal")
        offsets, end = self._write(path)
        with open(path, "r+b") as handle:
            handle.seek(offsets[1] + 16)  # somewhere inside record 1's payload
            handle.write(b"\xFF\xFF")
        records, torn = read_records(path)
        assert torn
        assert [record.batch_index for record in records] == [0]

    def test_reopening_discards_the_torn_tail(self, tmp_path):
        path = str(tmp_path / "ops.wal")
        offsets, end = self._write(path)
        with open(path, "r+b") as handle:
            handle.truncate(end - 3)  # crash mid-append of the last record
        with WriteAheadLog(path) as wal:
            assert wal.size() == offsets[-1]  # clean prefix only
            wal.append(*sample_batch(9), batch_index=9)
        records, torn = read_records(path)
        assert not torn
        assert [record.batch_index for record in records] == [0, 1, 9]

    def test_non_wal_file_is_rejected(self, tmp_path):
        path = str(tmp_path / "not.wal")
        with open(path, "wb") as handle:
            handle.write(b"definitely not a wal file")
        with pytest.raises(ValueError, match="magic"):
            read_records(path)


class TestWriteFailureAtomicity:
    """A failed append rolls back to the committed offset — one I/O error
    can never tear the *next* append."""

    def test_failed_write_rolls_back_and_next_append_is_clean(self, tmp_path):
        path = str(tmp_path / "ops.wal")
        wal = WriteAheadLog(path)
        wal.append(*sample_batch(1), batch_index=0)
        committed = wal.size()

        original_write = wal._file.write
        def failing_write(blob):
            original_write(blob[: len(blob) // 2])  # half the frame lands...
            raise OSError("disk error mid-write")   # ...then the device dies
        wal._file.write = failing_write
        with pytest.raises(OSError, match="mid-write"):
            wal.append(*sample_batch(2), batch_index=1)
        wal._file.write = original_write

        assert wal.rollbacks == 1
        assert wal.size() == committed  # committed offset unchanged
        records, torn = read_records(path)
        assert not torn  # rollback truncated the partial frame
        assert [record.batch_index for record in records] == [0]

        wal.append(*sample_batch(3), batch_index=2)
        records, torn = read_records(path)
        assert not torn
        assert [record.batch_index for record in records] == [0, 2]
        wal.close()

    def test_size_reflects_committed_bytes_only(self, tmp_path):
        path = str(tmp_path / "ops.wal")
        wal = WriteAheadLog(path)
        before = wal.size()
        def failing_write(blob):
            raise OSError("no space")
        wal._file.write = failing_write
        with pytest.raises(OSError):
            wal.append(*sample_batch(1), batch_index=0)
        assert wal.size() == before
        wal.close()

    def test_injected_torn_write_leaves_a_crc_guarded_tail(self, tmp_path):
        from repro.faults import FaultAction, FaultPlan, InjectedWalError

        path = str(tmp_path / "ops.wal")
        plan = FaultPlan(
            {("wal.write", 1): FaultAction(kind="torn_write", exc="os", bytes_written=9)}
        )
        wal = WriteAheadLog(path, faults=plan)
        wal.append(*sample_batch(1), batch_index=0)
        with pytest.raises(InjectedWalError):
            wal.append(*sample_batch(2), batch_index=1)
        assert wal.rollbacks == 1
        wal.append(*sample_batch(3), batch_index=2)
        records, torn = read_records(path)
        assert not torn
        assert [record.batch_index for record in records] == [0, 2]
        wal.close()

    def test_injected_fsync_failure_rolls_back(self, tmp_path):
        from repro.faults import FaultAction, FaultPlan, InjectedWalError

        path = str(tmp_path / "ops.wal")
        plan = FaultPlan({("wal.fsync", 0): FaultAction(exc="os")})
        wal = WriteAheadLog(path, faults=plan)
        with pytest.raises(InjectedWalError):
            wal.append(*sample_batch(1), batch_index=0)
        assert wal.size() == HEADER_SIZE
        wal.append(*sample_batch(2), batch_index=1)
        assert [record.batch_index for record in wal.records()] == [1]
        wal.close()


class TestAbortMarkers:
    def test_abort_marker_round_trips(self, tmp_path):
        path = str(tmp_path / "ops.wal")
        with WriteAheadLog(path) as wal:
            wal.append(*sample_batch(1), batch_index=0)
            wal.append_abort(0)
            wal.append(*sample_batch(2), batch_index=1)
        records, torn = read_records(path)
        assert not torn
        assert [(r.batch_index, r.aborted, len(r)) for r in records] == [
            (0, False, 40),
            (0, True, 0),
            (1, False, 40),
        ]

    def test_recovery_skips_aborted_batches(self, tmp_path):
        from repro.core import constants as C
        from repro.core.slab_hash import SlabHash
        from repro.persist.recovery import recover
        from repro.persist.snapshot import save

        snap = str(tmp_path / "snap.bin")
        save(SlabHash(8), snap)
        path = str(tmp_path / "ops.wal")
        ops = np.array([C.OP_INSERT, C.OP_INSERT], dtype=np.int64)
        with WriteAheadLog(path) as wal:
            wal.append(ops, np.array([10, 11], np.uint32),
                       np.array([100, 101], np.uint32), batch_index=0)
            wal.append(ops, np.array([20, 21], np.uint32),
                       np.array([200, 201], np.uint32), batch_index=1)
            wal.append_abort(0)
        engine, report = recover(snap, path)
        assert report.records_aborted == 1
        assert report.records_replayed == 1
        assert report.next_batch_index == 2
        # The aborted batch is absent; the clean one replayed.
        assert engine.search(10) is None
        assert engine.search(11) is None
        assert engine.search(20) == 200
        assert engine.search(21) == 201

    def test_extra_aborted_skips_unmarked_batches(self, tmp_path):
        from repro.core import constants as C
        from repro.core.slab_hash import SlabHash
        from repro.persist.recovery import recover
        from repro.persist.snapshot import save

        snap = str(tmp_path / "snap.bin")
        save(SlabHash(8), snap)
        path = str(tmp_path / "ops.wal")
        ops = np.array([C.OP_INSERT], dtype=np.int64)
        with WriteAheadLog(path) as wal:
            wal.append(ops, np.array([10], np.uint32), np.array([100], np.uint32),
                       batch_index=0)
        engine, report = recover(snap, path, extra_aborted=[0])
        assert report.records_aborted == 1
        assert report.records_replayed == 0
        assert engine.search(10) is None
