"""Snapshot round-trip: bit-identical restore on both backends.

"Bit-identical" is the acceptance bar of the persistence layer: the restored
table must match the original in items (content *and* bucket scan order),
chain structure, allocator occupancy and device counters — and, because the
simulator is deterministic given state, every *future* operation must then
produce identical results and identical counter deltas.  These tests assert
all of it, for single tables (both backends, both layouts, both key
semantics) and for the sharded engine's manifest-directory format.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.core.config import SlabAllocConfig
from repro.core.resize import LoadFactorPolicy
from repro.core.slab_hash import SlabHash
from repro.engine import ShardedSlabHash
from repro.persist import SNAPSHOT_VERSION, load, save

from tests.conftest import make_keys

SMALL_ALLOC = SlabAllocConfig(num_super_blocks=2, num_memory_blocks=8, units_per_block=64)


def assert_bit_identical(original, restored):
    """The full equivalence contract between a table/engine and its restore."""
    originals = original.shards if isinstance(original, ShardedSlabHash) else [original]
    restoreds = restored.shards if isinstance(restored, ShardedSlabHash) else [restored]
    assert len(original) == len(restored)
    assert original.items() == restored.items()  # content and scan order
    for table, twin in zip(originals, restoreds):
        assert table.num_buckets == twin.num_buckets
        assert np.array_equal(table.lists.base_slabs, twin.lists.base_slabs)
        assert np.array_equal(table.bucket_slab_counts(), twin.bucket_slab_counts())
        assert table.alloc.allocated_units == twin.alloc.allocated_units
        assert table.alloc.num_super_blocks == twin.alloc.num_super_blocks
        assert table.device.counters.as_dict() == twin.device.counters.as_dict()
        assert table._warp_counter == twin._warp_counter
        assert (table.hash_fn.a, table.hash_fn.b) == (twin.hash_fn.a, twin.hash_fn.b)
        original_addresses, original_words = table.alloc.export_units()
        restored_addresses, restored_words = twin.alloc.export_units()
        assert np.array_equal(original_addresses, restored_addresses)
        assert np.array_equal(original_words, restored_words)


@pytest.mark.parametrize("backend", ["reference", "vectorized"])
class TestTableRoundTrip:
    def test_restore_is_bit_identical(self, backend, tmp_path):
        table = SlabHash(32, alloc_config=SMALL_ALLOC, seed=11, backend=backend)
        keys = make_keys(900, seed=11)
        table.bulk_build(keys, keys)
        table.bulk_delete(keys[:300])
        restored = load(save(table, str(tmp_path / "table.npz")))
        assert_bit_identical(table, restored)

    def test_future_operations_stay_counter_identical(self, backend, tmp_path):
        """After a restore, the twin's behavior — results, state, device
        counters — tracks the original exactly, operation for operation."""
        table = SlabHash(16, alloc_config=SMALL_ALLOC, seed=3, backend=backend)
        keys = make_keys(600, seed=3)
        table.bulk_build(keys, keys)
        restored = load(save(table, str(tmp_path / "table.npz")))

        more = make_keys(400, seed=4)
        for twin in (table, restored):
            twin.bulk_insert(more, more)
            twin.bulk_delete(keys[:200])
            twin.flush()
        assert np.array_equal(table.bulk_search(more), restored.bulk_search(more))
        assert_bit_identical(table, restored)

    def test_key_only_mode_round_trips(self, backend, tmp_path):
        table = SlabHash(
            16, alloc_config=SMALL_ALLOC, seed=5, backend=backend, key_value=False
        )
        keys = make_keys(500, seed=5)
        table.bulk_build(keys)
        restored = load(save(table, str(tmp_path / "table.npz")))
        assert_bit_identical(table, restored)
        assert restored.config.key_value is False

    def test_policy_and_resize_stats_survive(self, backend, tmp_path):
        policy = LoadFactorPolicy(min_buckets=2)
        table = SlabHash(
            2, alloc_config=SMALL_ALLOC, seed=9, backend=backend, policy=policy
        )
        keys = make_keys(700, seed=9)
        table.bulk_insert(keys, keys)      # auto-policy grows
        table.bulk_delete(keys[:650])      # ... and shrinks
        assert table.resize_stats.grows >= 1 and table.resize_stats.shrinks >= 1
        restored = load(save(table, str(tmp_path / "table.npz")))
        assert restored.policy == policy
        assert restored.resize_stats.as_dict() == table.resize_stats.as_dict()
        assert_bit_identical(table, restored)

    def test_resized_table_round_trips(self, backend, tmp_path):
        """The hash draw survives a resize (re-ranged (a, b)), so a snapshot
        taken after resizing must restore the re-ranged function, not a fresh
        draw."""
        table = SlabHash(8, alloc_config=SMALL_ALLOC, seed=13, backend=backend)
        keys = make_keys(400, seed=13)
        table.bulk_build(keys, keys)
        table.resize(64)
        restored = load(save(table, str(tmp_path / "table.npz")))
        assert_bit_identical(table, restored)
        assert np.array_equal(restored.bulk_search(keys), keys.astype(np.uint32))


class TestDuplicateKeySemantics:
    """Round-trip coverage for the two key-uniqueness modes (satellite:
    duplicate contents must keep their exact ``items()`` order, because
    delete / search_all semantics depend on scan order)."""

    @pytest.mark.parametrize("backend", ["reference", "vectorized"])
    def test_duplicates_mode_preserves_items_order_and_counters(self, backend, tmp_path):
        table = SlabHash(
            4, alloc_config=SMALL_ALLOC, seed=21, backend=backend, unique_keys=False
        )
        keys = make_keys(120, seed=21)
        # Every key three times with distinct values: items() order now
        # encodes which copy is "least recent" for delete/search_all.
        dup_keys = np.concatenate([keys, keys, keys])
        dup_values = np.concatenate(
            [np.full(len(keys), fill, dtype=np.uint32) for fill in (1, 2, 3)]
        )
        table.bulk_insert(dup_keys, dup_values)
        table.delete(int(keys[0]))  # tombstone-free removal of one copy

        restored = load(save(table, str(tmp_path / "table.npz")))
        assert restored.items() == table.items()  # exact order, not just multiset
        assert_bit_identical(table, restored)
        probe = int(keys[1])
        assert restored.search_all(probe) == table.search_all(probe)
        # Deleting on both sides removes the *same* copy next.
        assert restored.delete(probe) == table.delete(probe)
        assert restored.items() == table.items()

    @pytest.mark.parametrize("backend", ["reference", "vectorized"])
    def test_replace_mode_tombstones_round_trip(self, backend, tmp_path):
        """REPLACE-mode tables carry DELETED_KEY tombstones; the snapshot must
        reproduce them (they shape future traversal costs and counters)."""
        table = SlabHash(2, alloc_config=SMALL_ALLOC, seed=23, backend=backend)
        keys = make_keys(200, seed=23)
        table.bulk_build(keys, keys)
        table.bulk_delete(keys[:80])             # leaves tombstones
        table.bulk_insert(keys[:40], keys[:40])  # replaces into fresh slots
        restored = load(save(table, str(tmp_path / "table.npz")))
        assert_bit_identical(table, restored)
        # Tombstoned slabs are part of the words: future searches cost the same.
        for twin in (table, restored):
            twin.bulk_search(keys)
        assert table.device.counters.as_dict() == restored.device.counters.as_dict()


class TestEngineRoundTrip:
    def test_engine_restore_is_bit_identical(self, tmp_path):
        engine = ShardedSlabHash(
            3, 8, alloc_config=SMALL_ALLOC, seed=31,
            load_factor_policy=LoadFactorPolicy(min_buckets=2),
        )
        keys = make_keys(900, seed=31)
        engine.bulk_build(keys, keys)
        engine.bulk_delete(keys[:200])
        path = str(tmp_path / "engine-snapshot")
        restored = load(save(engine, path))
        assert isinstance(restored, ShardedSlabHash)
        assert_bit_identical(engine, restored)
        assert np.array_equal(restored._ops_routed, engine._ops_routed)
        # Router draw restored: every key routes to the same shard.
        assert np.array_equal(restored.router.route(keys), engine.router.route(keys))

    def test_engine_future_behavior_tracks_original(self, tmp_path):
        engine = ShardedSlabHash(2, 16, alloc_config=SMALL_ALLOC, seed=37)
        keys = make_keys(500, seed=37)
        engine.bulk_build(keys, keys)
        restored = load(save(engine, str(tmp_path / "engine-snapshot")))
        more = make_keys(300, seed=38)
        for twin in (engine, restored):
            twin.bulk_insert(more, more)
            twin.bulk_delete(keys[:100])
        assert_bit_identical(engine, restored)

    def test_manifest_is_versioned_json(self, tmp_path):
        engine = ShardedSlabHash(2, 4, alloc_config=SMALL_ALLOC, seed=41)
        path = str(tmp_path / "engine-snapshot")
        save(engine, path)
        with open(os.path.join(path, "manifest.json"), encoding="utf-8") as handle:
            manifest = json.load(handle)
        assert manifest["version"] == SNAPSHOT_VERSION
        assert manifest["kind"] == "sharded_slab_hash"
        assert len(manifest["shards"]) == 2
        for name in manifest["shards"]:
            assert os.path.exists(os.path.join(path, name))


class TestFormatGuards:
    def test_save_rejects_other_objects(self, tmp_path):
        with pytest.raises(TypeError):
            save({"not": "a table"}, str(tmp_path / "nope.npz"))

    def test_load_rejects_unknown_version(self, tmp_path):
        table = SlabHash(4, alloc_config=SMALL_ALLOC, seed=1)
        path = str(tmp_path / "table.npz")
        save(table, path)
        with np.load(path, allow_pickle=False) as archive:
            header = json.loads(str(archive["header"][()]))
            arrays = {name: archive[name] for name in archive.files if name != "header"}
        header["version"] = SNAPSHOT_VERSION + 1
        with open(path, "wb") as handle:
            np.savez(handle, header=np.array(json.dumps(header)), **arrays)
        with pytest.raises(ValueError, match="version"):
            load(path)

    def test_table_save_load_hooks(self, tmp_path):
        table = SlabHash(8, alloc_config=SMALL_ALLOC, seed=2)
        keys = make_keys(100, seed=2)
        table.bulk_build(keys, keys)
        restored = SlabHash.load(table.save(str(tmp_path / "hook.npz")))
        assert_bit_identical(table, restored)

    def test_engine_save_load_hooks(self, tmp_path):
        engine = ShardedSlabHash(2, 4, alloc_config=SMALL_ALLOC, seed=3)
        keys = make_keys(100, seed=3)
        engine.bulk_build(keys, keys)
        restored = ShardedSlabHash.load(engine.save(str(tmp_path / "hook-dir")))
        assert_bit_identical(engine, restored)

    def test_load_hook_rejects_wrong_kind(self, tmp_path):
        table = SlabHash(4, alloc_config=SMALL_ALLOC, seed=4)
        path = table.save(str(tmp_path / "table.npz"))
        with pytest.raises((TypeError, ValueError)):
            ShardedSlabHash.load(path)
