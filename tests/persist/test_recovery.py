"""End-to-end crash recovery: snapshot + WAL replay reproduce the lost state.

The contract under test: a service wired with a WAL can die at any moment,
and ``recover(snapshot, wal)`` — or ``SlabHashService.recovered`` — rebuilds
an engine whose items, structure and device counters match the crashed one
exactly, because the WAL records the executed batches verbatim and every
execution path is deterministic given state.  (The byte-level crash-point
sweep lives in ``tests/proptest/test_crash_recovery.py``; these tests cover
the service wiring: write-ahead ordering, checkpointing, restart.)
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.core import constants as C
from repro.core.config import SlabAllocConfig
from repro.core.resize import LoadFactorPolicy
from repro.core.slab_hash import SlabHash
from repro.engine import ShardedSlabHash
from repro.persist import WriteAheadLog, read_records, recover, save
from repro.service import ServiceConfig, SlabHashService

from tests.conftest import make_keys

SMALL_ALLOC = SlabAllocConfig(num_super_blocks=2, num_memory_blocks=8, units_per_block=64)
FAST = ServiceConfig(max_batch_size=128, max_delay=0.0005)


def stream(n: int, seed: int):
    keys = make_keys(n, seed=seed)
    doomed = keys[: n // 3]
    op_codes = np.concatenate(
        [np.full(len(keys), C.OP_INSERT), np.full(len(doomed), C.OP_DELETE)]
    )
    stream_keys = np.concatenate([keys, doomed])
    values = (stream_keys * np.uint32(3)) & np.uint32(0xFFFF)
    return op_codes, stream_keys, values


def engine_state(engine):
    tables = engine.shards if isinstance(engine, ShardedSlabHash) else [engine]
    return (
        sorted(engine.items()),
        [table.num_buckets for table in tables],
        [table.device.counters.as_dict() for table in tables],
        [table.alloc.allocated_units for table in tables],
    )


def run_service(engine, wal, ops, *, config=FAST):
    async def main():
        async with SlabHashService(engine, config=config, wal=wal) as service:
            await service.submit_many(*ops)
    asyncio.run(main())


class TestServiceRecovery:
    @pytest.mark.parametrize("kind", ["table", "engine"])
    def test_snapshot_plus_wal_reproduces_the_crashed_state(self, kind, tmp_path):
        if kind == "table":
            engine = SlabHash(16, alloc_config=SMALL_ALLOC, seed=3)
        else:
            engine = ShardedSlabHash(2, 8, alloc_config=SMALL_ALLOC, seed=3)
        snap = str(tmp_path / "snap")
        save(engine, snap)  # checkpoint at service birth
        wal = WriteAheadLog(str(tmp_path / "ops.wal"))
        run_service(engine, wal, stream(500, seed=3))
        wal.close()  # the "crash": the process is gone, only the files remain

        recovered, report = recover(snap, str(tmp_path / "ops.wal"))
        assert report.records_replayed >= 1
        assert not report.torn_tail
        assert engine_state(recovered) == engine_state(engine)

    def test_mid_stream_checkpoint_truncates_and_recovers(self, tmp_path):
        engine = SlabHash(16, alloc_config=SMALL_ALLOC, seed=7)
        snap = str(tmp_path / "snap.npz")
        wal = WriteAheadLog(str(tmp_path / "ops.wal"))
        op_codes, keys, values = stream(400, seed=7)
        half = len(keys) // 2

        async def main():
            async with SlabHashService(engine, config=FAST, wal=wal) as service:
                await service.submit_many(op_codes[:half], keys[:half], values[:half])
                service.checkpoint(snap)  # between batches: nothing in flight
                await service.submit_many(op_codes[half:], keys[half:], values[half:])
        asyncio.run(main())
        wal.close()

        # Only the post-checkpoint batches remain in the log ...
        records, torn = read_records(str(tmp_path / "ops.wal"))
        assert not torn
        assert sum(len(record) for record in records) == len(keys) - half
        # ... and they are exactly what recovery needs on top of the snapshot.
        recovered, report = recover(snap, str(tmp_path / "ops.wal"))
        assert report.records_replayed == len(records)
        assert engine_state(recovered) == engine_state(engine)

    def test_recovery_without_wal_is_the_snapshot(self, tmp_path):
        engine = SlabHash(8, alloc_config=SMALL_ALLOC, seed=9)
        keys = make_keys(200, seed=9)
        engine.bulk_build(keys, keys)
        snap = str(tmp_path / "snap.npz")
        save(engine, snap)
        recovered, report = recover(snap)
        assert report.records_replayed == 0
        assert report.next_batch_index == 0
        assert engine_state(recovered) == engine_state(engine)

    def test_torn_final_record_is_dropped_not_half_applied(self, tmp_path):
        engine = SlabHash(16, alloc_config=SMALL_ALLOC, seed=11)
        snap = str(tmp_path / "snap")
        save(engine, snap)
        wal_path = str(tmp_path / "ops.wal")
        wal = WriteAheadLog(wal_path)
        run_service(engine, wal, stream(400, seed=11))
        wal.close()

        records, _ = read_records(wal_path)
        assert len(records) >= 2
        with open(wal_path, "r+b") as handle:
            handle.seek(0, 2)
            handle.truncate(handle.tell() - 5)  # crash mid-append of the tail

        recovered, report = recover(snap, wal_path)
        assert report.torn_tail
        assert report.records_replayed == len(records) - 1
        # The recovered state is exactly the snapshot plus the whole prefix.
        oracle, _ = recover(snap)
        for record in records[:-1]:
            from repro.persist.recovery import replay_record
            replay_record(oracle, record)
        assert engine_state(recovered) == engine_state(oracle)

    def test_recovered_service_resumes_on_the_same_wal(self, tmp_path):
        engine = ShardedSlabHash(2, 8, alloc_config=SMALL_ALLOC, seed=13)
        snap = str(tmp_path / "snap")
        save(engine, snap)
        wal_path = str(tmp_path / "ops.wal")
        wal = WriteAheadLog(wal_path)
        op_codes, keys, values = stream(300, seed=13)
        run_service(engine, wal, (op_codes, keys, values))
        wal.close()
        before_crash = engine_state(engine)

        async def resume():
            service = SlabHashService.recovered(
                snap, WriteAheadLog(wal_path), config=FAST
            )
            assert engine_state(service.engine) == before_crash
            assert service._batch_index >= 1  # numbering continues, not restarts
            async with service:
                # The recovered service keeps serving — and keeps logging.
                await service.insert(77, 770)
                assert await service.search(77) == 770
            service.wal.close()
        asyncio.run(resume())

        # The resumed batches landed in the same WAL after the replayed ones.
        records, torn = read_records(wal_path)
        assert not torn
        total_ops = sum(len(record) for record in records)
        assert total_ops >= len(keys) + 2  # original stream + the two new ops

    def test_recovery_tolerates_failed_batches_like_the_live_loop(self, tmp_path):
        """The drain loop fails a batch's futures but keeps serving (and keeps
        the batch's deterministic partial state); recovery must reproduce
        that — not die on the same deterministic error."""
        from repro.core.slab_hash import SlabHash as _SlabHash

        tight = SlabAllocConfig(
            num_super_blocks=1, num_memory_blocks=1, units_per_block=32,
            growth_threshold=10_000, max_super_blocks=1,
        )
        table = _SlabHash(2, alloc_config=tight, seed=5)
        snap = str(tmp_path / "snap.npz")
        save(table, snap)
        wal = WriteAheadLog(str(tmp_path / "ops.wal"))
        # ~1000 inserts into 2 buckets exhaust the 32-unit pool mid-stream:
        # later batches raise, their futures fail, the service keeps going.
        keys = make_keys(1000, seed=5)
        op_codes = np.full(len(keys), C.OP_INSERT)
        values = keys

        async def main():
            async with SlabHashService(table, config=FAST, wal=wal) as service:
                results = await asyncio.gather(
                    *[service.submit(int(op), int(key), int(value))
                      for op, key, value in zip(op_codes, keys, values)],
                    return_exceptions=True,
                )
                return sum(1 for r in results if isinstance(r, Exception))
        failed_ops = asyncio.run(main())
        wal.close()
        assert failed_ops > 0  # the scenario really exercised failing batches

        recovered, report = recover(snap, str(tmp_path / "ops.wal"))
        assert report.records_failed >= 1
        assert engine_state(recovered) == engine_state(table)

    def test_crash_inside_the_checkpoint_window_does_not_double_replay(self, tmp_path):
        """Snapshot written, process dies before the WAL truncate: the WAL
        still holds records the snapshot already covers.  Recovery must skip
        them via the snapshot's WAL floor instead of applying them twice."""
        engine = SlabHash(16, alloc_config=SMALL_ALLOC, seed=19)
        wal = WriteAheadLog(str(tmp_path / "ops.wal"))
        op_codes, keys, values = stream(300, seed=19)

        async def main():
            async with SlabHashService(engine, config=FAST, wal=wal) as service:
                await service.submit_many(op_codes, keys, values)
                # The crash: snapshot lands, the truncate never happens.
                save(engine, str(tmp_path / "snap.npz"),
                     wal_min_batch_index=service._batch_index)
        asyncio.run(main())
        wal.close()

        records, _ = read_records(str(tmp_path / "ops.wal"))
        assert records  # the supposedly-truncated history is still there
        recovered, report = recover(str(tmp_path / "snap.npz"), str(tmp_path / "ops.wal"))
        assert report.records_skipped == len(records)
        assert report.records_replayed == 0
        assert report.next_batch_index == len(records)
        assert engine_state(recovered) == engine_state(engine)

    def test_recovered_service_numbering_survives_an_empty_wal(self, tmp_path):
        """After a clean checkpoint the WAL is empty, but batch numbering
        must continue from the checkpoint, not restart at zero (scheduler
        seeds are derived from it)."""
        engine = SlabHash(16, alloc_config=SMALL_ALLOC, seed=23)
        wal = WriteAheadLog(str(tmp_path / "ops.wal"))
        snap = str(tmp_path / "snap.npz")

        async def main():
            async with SlabHashService(engine, config=FAST, wal=wal) as service:
                await service.submit_many(*stream(200, seed=23))
                service.checkpoint(snap)
                return service._batch_index
        batches_before = asyncio.run(main())
        wal.close()
        assert batches_before >= 1

        service = SlabHashService.recovered(snap, WriteAheadLog(str(tmp_path / "ops.wal")))
        assert service._batch_index == batches_before

    def test_deferred_policy_resizes_replay_identically(self, tmp_path):
        """Between-batch migrations are part of the drain loop; recovery must
        reproduce them (replay calls maybe_resize after every record)."""
        policy = LoadFactorPolicy(min_buckets=2).deferred()
        engine = SlabHash(2, alloc_config=SMALL_ALLOC, seed=17, policy=policy)
        snap = str(tmp_path / "snap.npz")
        save(engine, snap)
        wal = WriteAheadLog(str(tmp_path / "ops.wal"))
        run_service(engine, wal, stream(600, seed=17))
        wal.close()
        assert engine.resize_stats.resizes >= 1  # the drain loop really resized

        recovered, _ = recover(snap, str(tmp_path / "ops.wal"))
        assert engine_state(recovered) == engine_state(engine)
        assert recovered.resize_stats.resizes == engine.resize_stats.resizes


class TestWalFloorBoundary:
    """The floor boundary is exact and skipping is prefix-only (PR 9 fixes).

    The floor is the *next* batch index at checkpoint time: a record
    numbered exactly at the floor is not covered by the snapshot and must
    replay; strictly-below records skip — but only as a prefix.  A
    batch_index that regresses below the floor after an at-or-above-floor
    record means the log cannot belong to this snapshot, and recover()
    must refuse rather than silently skip or replay it.
    """

    @staticmethod
    def _batch(keys):
        keys = np.asarray(keys, dtype=np.uint64)
        return (
            np.full(len(keys), C.OP_INSERT, dtype=np.int64),
            keys,
            (keys * np.uint64(2)).astype(np.uint32),
        )

    def test_record_exactly_at_floor_replays(self, tmp_path):
        """floor == batch_index is NOT covered by the snapshot: it replays."""
        table = SlabHash(16, alloc_config=SMALL_ALLOC, seed=7)
        covered = make_keys(40, seed=7)
        ops, keys, values = self._batch(covered)
        table.concurrent_batch(ops, keys, values)
        # Batches 0 and 1 are in the snapshot; the floor says "2 is next".
        snap = save(table, str(tmp_path / "snap.npz"), wal_min_batch_index=2)

        wal = WriteAheadLog(str(tmp_path / "ops.wal"))
        half = len(covered) // 2
        fresh = make_keys(20, seed=8)[~np.isin(make_keys(20, seed=8), covered)]
        wal.append(*self._batch(covered[:half]), batch_index=0)
        wal.append(*self._batch(covered[half:]), batch_index=1)
        wal.append(*self._batch(fresh), batch_index=2)
        wal.close()

        recovered, report = recover(snap, str(tmp_path / "ops.wal"))
        assert report.records_skipped == 2
        assert report.records_replayed == 1
        assert report.next_batch_index == 3
        expected = {int(k): int(k) * 2 % 2**32 for k in covered}
        expected.update({int(k): int(k) * 2 % 2**32 for k in fresh})
        assert dict(recovered.items()) == {
            k: v & 0xFFFFFFFF for k, v in expected.items()
        }

    def test_regression_below_floor_after_replay_refuses(self, tmp_path):
        from repro.persist import WalFloorRegressionError

        table = SlabHash(16, alloc_config=SMALL_ALLOC, seed=7)
        snap = save(table, str(tmp_path / "snap.npz"), wal_min_batch_index=2)

        wal = WriteAheadLog(str(tmp_path / "ops.wal"))
        wal.append(*self._batch(make_keys(8, seed=1)), batch_index=1)  # prefix: OK
        wal.append(*self._batch(make_keys(8, seed=2)), batch_index=2)  # at floor
        wal.append(*self._batch(make_keys(8, seed=3)), batch_index=0)  # regression
        wal.close()

        with pytest.raises(WalFloorRegressionError, match="regresses below"):
            recover(snap, str(tmp_path / "ops.wal"))

    def test_low_abort_marker_after_floor_does_not_refuse(self, tmp_path):
        """Abort markers carry no operations; a late marker for an old
        (pre-floor) batch is legal and must not trigger the refusal."""
        table = SlabHash(16, alloc_config=SMALL_ALLOC, seed=7)
        snap = save(table, str(tmp_path / "snap.npz"), wal_min_batch_index=2)

        wal = WriteAheadLog(str(tmp_path / "ops.wal"))
        wal.append(*self._batch(make_keys(8, seed=2)), batch_index=2)
        wal.append_abort(0)
        wal.append(*self._batch(make_keys(8, seed=3)), batch_index=3)
        wal.close()

        _, report = recover(snap, str(tmp_path / "ops.wal"))
        assert report.records_replayed == 2
        assert report.records_skipped == 0

    def test_prefix_skip_still_legal_without_any_replayed_record(self, tmp_path):
        """An all-below-floor WAL (checkpoint-window crash) stays valid."""
        table = SlabHash(16, alloc_config=SMALL_ALLOC, seed=7)
        snap = save(table, str(tmp_path / "snap.npz"), wal_min_batch_index=5)

        wal = WriteAheadLog(str(tmp_path / "ops.wal"))
        for index in (0, 1, 4):  # gaps are fine; all strictly below 5
            wal.append(*self._batch(make_keys(4, seed=index + 1)), batch_index=index)
        wal.close()

        _, report = recover(snap, str(tmp_path / "ops.wal"))
        assert report.records_skipped == 3
        assert report.records_replayed == 0
        assert report.next_batch_index == 5
