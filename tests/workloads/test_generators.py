"""Tests for workload generation (keys, values, query sets, batches)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import constants as C
from repro.workloads.generators import (
    existing_queries,
    missing_queries,
    split_batches,
    unique_random_keys,
    values_for_keys,
    zipf_queries,
)


class TestUniqueRandomKeys:
    def test_requested_count_and_uniqueness(self):
        keys = unique_random_keys(5000, seed=1)
        assert len(keys) == 5000
        assert len(np.unique(keys)) == 5000

    def test_deterministic_for_seed(self):
        assert np.array_equal(unique_random_keys(100, seed=7), unique_random_keys(100, seed=7))

    def test_different_seeds_differ(self):
        assert not np.array_equal(unique_random_keys(100, seed=1), unique_random_keys(100, seed=2))

    def test_keys_are_valid_user_keys(self):
        keys = unique_random_keys(1000, seed=3)
        assert keys.min() >= 1
        assert int(keys.max()) < C.MAX_USER_KEY

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            unique_random_keys(0)

    def test_count_too_large_for_space(self):
        with pytest.raises(ValueError):
            unique_random_keys(100, high=50)

    @settings(max_examples=20, deadline=None)
    @given(count=st.integers(min_value=1, max_value=2000), seed=st.integers(0, 100))
    def test_property_count_and_uniqueness(self, count, seed):
        keys = unique_random_keys(count, seed=seed)
        assert len(keys) == count
        assert len(np.unique(keys)) == count


class TestValuesAndQueries:
    def test_values_deterministic_function_of_keys(self):
        keys = unique_random_keys(100, seed=4)
        assert np.array_equal(values_for_keys(keys), values_for_keys(keys))

    def test_values_dtype_uint32(self):
        assert values_for_keys(np.array([1, 2, 3])).dtype == np.uint32

    def test_existing_queries_drawn_from_keys(self):
        keys = unique_random_keys(500, seed=5)
        queries = existing_queries(keys, 2000, seed=6)
        assert len(queries) == 2000
        assert np.isin(queries, keys).all()

    def test_missing_queries_disjoint_from_any_generated_keys(self):
        keys = unique_random_keys(5000, seed=7)
        misses = missing_queries(5000, seed=8)
        assert not np.isin(misses, keys).any()
        assert int(misses.max()) < C.MAX_USER_KEY

    def test_missing_queries_deterministic(self):
        assert np.array_equal(missing_queries(100, seed=1), missing_queries(100, seed=1))


class TestZipfQueries:
    def test_queries_drawn_from_key_set(self):
        keys = unique_random_keys(200, seed=10)
        queries = zipf_queries(keys, 1000, seed=11)
        assert len(queries) == 1000
        assert np.isin(queries, keys).all()

    def test_skew_concentrates_on_few_keys(self):
        keys = unique_random_keys(1000, seed=12)
        skewed = zipf_queries(keys, 5000, skew=1.5, seed=13)
        flat = existing_queries(keys, 5000, seed=13)
        _, skewed_counts = np.unique(skewed, return_counts=True)
        _, flat_counts = np.unique(flat, return_counts=True)
        assert skewed_counts.max() > 3 * flat_counts.max()

    def test_higher_exponent_more_skew(self):
        keys = unique_random_keys(500, seed=14)
        mild = zipf_queries(keys, 4000, skew=1.2, seed=15)
        strong = zipf_queries(keys, 4000, skew=3.0, seed=15)
        assert len(np.unique(strong)) < len(np.unique(mild))

    def test_deterministic_for_seed(self):
        keys = unique_random_keys(100, seed=16)
        assert np.array_equal(zipf_queries(keys, 100, seed=1), zipf_queries(keys, 100, seed=1))

    def test_invalid_arguments(self):
        keys = unique_random_keys(10, seed=17)
        with pytest.raises(ValueError):
            zipf_queries(keys, 0)
        with pytest.raises(ValueError):
            zipf_queries(keys, 10, skew=1.0)
        with pytest.raises(ValueError):
            zipf_queries(np.array([], dtype=np.uint32), 10)


class TestSplitBatches:
    def test_even_split(self):
        keys = np.arange(100)
        batches = split_batches(keys, 25)
        assert len(batches) == 4
        assert all(len(b) == 25 for b in batches)

    def test_uneven_tail(self):
        batches = split_batches(np.arange(10), 4)
        assert [len(b) for b in batches] == [4, 4, 2]

    def test_concatenation_recovers_input(self):
        keys = unique_random_keys(77, seed=9)
        assert np.array_equal(np.concatenate(split_batches(keys, 16)), keys)

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            split_batches(np.arange(10), 0)
