"""Tests for operation distributions and concurrent workload construction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import constants as C
from repro.workloads.distributions import (
    GAMMA_20_UPDATES,
    GAMMA_40_UPDATES,
    GAMMA_UPDATES_ONLY,
    PAPER_DISTRIBUTIONS,
    OperationDistribution,
    build_concurrent_workload,
    split_into_warp_batches,
)
from repro.workloads.generators import unique_random_keys


class TestOperationDistribution:
    def test_paper_distributions_match_section_vi_c(self):
        assert GAMMA_UPDATES_ONLY.update_fraction == pytest.approx(1.0)
        assert GAMMA_40_UPDATES.update_fraction == pytest.approx(0.4)
        assert GAMMA_20_UPDATES.update_fraction == pytest.approx(0.2)
        assert len(PAPER_DISTRIBUTIONS) == 3

    def test_fractions_must_sum_to_one(self):
        with pytest.raises(ValueError):
            OperationDistribution(0.5, 0.5, 0.5, 0.0)

    def test_fractions_must_be_non_negative(self):
        with pytest.raises(ValueError):
            OperationDistribution(1.2, -0.2, 0.0, 0.0)

    def test_describe_mentions_update_percentage(self):
        assert "40%" in GAMMA_40_UPDATES.describe()
        custom = OperationDistribution(0.25, 0.25, 0.25, 0.25)
        assert "50%" in custom.describe()


class TestBuildConcurrentWorkload:
    def test_size_and_op_codes(self):
        existing = unique_random_keys(500, seed=1)
        workload = build_concurrent_workload(GAMMA_40_UPDATES, 1000, existing, seed=2)
        assert len(workload) == 1000
        assert set(np.unique(workload.op_codes)) <= {C.OP_INSERT, C.OP_DELETE, C.OP_SEARCH}

    def test_distribution_fractions_approximately_respected(self):
        existing = unique_random_keys(2000, seed=3)
        workload = build_concurrent_workload(GAMMA_40_UPDATES, 4000, existing, seed=4)
        inserts = np.sum(workload.op_codes == C.OP_INSERT)
        deletes = np.sum(workload.op_codes == C.OP_DELETE)
        searches = np.sum(workload.op_codes == C.OP_SEARCH)
        assert inserts / 4000 == pytest.approx(0.2, abs=0.05)
        assert deletes / 4000 == pytest.approx(0.2, abs=0.05)
        assert searches / 4000 == pytest.approx(0.6, abs=0.05)

    def test_inserted_keys_are_new(self):
        existing = unique_random_keys(300, seed=5)
        workload = build_concurrent_workload(GAMMA_UPDATES_ONLY, 600, existing, seed=6)
        insert_keys = workload.keys[workload.op_codes == C.OP_INSERT]
        assert not np.isin(insert_keys, existing).any()

    def test_deleted_keys_come_from_existing_set(self):
        existing = unique_random_keys(300, seed=7)
        workload = build_concurrent_workload(GAMMA_UPDATES_ONLY, 400, existing, seed=8)
        delete_keys = workload.keys[workload.op_codes == C.OP_DELETE]
        assert np.isin(delete_keys, existing).all()

    def test_deterministic_for_seed(self):
        existing = unique_random_keys(200, seed=9)
        a = build_concurrent_workload(GAMMA_20_UPDATES, 500, existing, seed=10)
        b = build_concurrent_workload(GAMMA_20_UPDATES, 500, existing, seed=10)
        assert np.array_equal(a.op_codes, b.op_codes)
        assert np.array_equal(a.keys, b.keys)

    def test_requires_existing_keys(self):
        with pytest.raises(ValueError):
            build_concurrent_workload(GAMMA_20_UPDATES, 100, np.array([], dtype=np.uint32))

    def test_requires_positive_op_count(self):
        with pytest.raises(ValueError):
            build_concurrent_workload(GAMMA_20_UPDATES, 0, unique_random_keys(10, seed=1))

    def test_values_align_with_keys(self):
        existing = unique_random_keys(100, seed=11)
        workload = build_concurrent_workload(GAMMA_40_UPDATES, 200, existing, seed=12)
        assert workload.values.shape == workload.keys.shape

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_property_operation_types_mix_within_warps(self, seed):
        existing = unique_random_keys(500, seed=13)
        workload = build_concurrent_workload(GAMMA_40_UPDATES, 512, existing, seed=seed)
        # At least one warp (32 consecutive ops) contains more than one op type.
        mixed = any(
            len(set(workload.op_codes[i : i + 32])) > 1 for i in range(0, 512, 32)
        )
        assert mixed


class TestSplitIntoWarpBatches:
    def test_split_sizes(self):
        existing = unique_random_keys(100, seed=14)
        workload = build_concurrent_workload(GAMMA_20_UPDATES, 250, existing, seed=15)
        batches = split_into_warp_batches(workload, 64)
        assert [len(b) for b in batches] == [64, 64, 64, 58]

    def test_batches_cover_the_workload(self):
        existing = unique_random_keys(100, seed=16)
        workload = build_concurrent_workload(GAMMA_20_UPDATES, 200, existing, seed=17)
        batches = split_into_warp_batches(workload, 77)
        assert np.array_equal(np.concatenate([b.keys for b in batches]), workload.keys)

    def test_invalid_batch_size(self):
        existing = unique_random_keys(10, seed=18)
        workload = build_concurrent_workload(GAMMA_20_UPDATES, 20, existing, seed=19)
        with pytest.raises(ValueError):
            split_into_warp_batches(workload, 0)
