"""Shared fixtures for the test suite: small, fast device and allocator configs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SlabAllocConfig
from repro.core.slab_alloc import SlabAlloc
from repro.core.slab_hash import SlabHash
from repro.gpusim.device import Device
from repro.gpusim.warp import Warp


@pytest.fixture
def device() -> Device:
    """A fresh simulated Tesla K40c."""
    return Device()


@pytest.fixture
def warp(device: Device) -> Warp:
    """A warp bound to the fresh device's counters."""
    return Warp(0, device.counters)


@pytest.fixture
def small_alloc_config() -> SlabAllocConfig:
    """A deliberately small allocator (2 x 8 x 64 units) so tests stay fast."""
    return SlabAllocConfig(num_super_blocks=2, num_memory_blocks=8, units_per_block=64)


@pytest.fixture
def allocator(device: Device, small_alloc_config: SlabAllocConfig) -> SlabAlloc:
    return SlabAlloc(device, small_alloc_config, seed=3)


@pytest.fixture
def small_table(small_alloc_config: SlabAllocConfig) -> SlabHash:
    """A small key-value slab hash with unique keys (the default mode)."""
    return SlabHash(num_buckets=8, alloc_config=small_alloc_config, seed=7)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def make_keys(count: int, seed: int = 0) -> np.ndarray:
    """Distinct random user keys for direct use inside tests."""
    generator = np.random.default_rng(seed)
    keys = np.unique(generator.integers(1, 2**30, size=count * 2, dtype=np.uint64))
    generator.shuffle(keys)
    return keys[:count].astype(np.uint32)
