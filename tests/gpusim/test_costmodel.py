"""Tests for the analytical cost model (event counts -> modelled time)."""

import pytest

from repro.gpusim.costmodel import CostModel
from repro.gpusim.counters import Counters
from repro.gpusim.device import TESLA_K40C


@pytest.fixture
def model():
    return CostModel(TESLA_K40C)


class TestElapsed:
    def test_zero_events_zero_time(self, model):
        breakdown = model.elapsed(Counters())
        assert breakdown.total_time == 0.0

    def test_memory_time_scales_with_transactions(self, model):
        one = model.elapsed(Counters(coalesced_read_transactions=1_000))
        two = model.elapsed(Counters(coalesced_read_transactions=2_000))
        assert two.memory_time == pytest.approx(2 * one.memory_time)

    def test_bottleneck_identification_memory(self, model):
        breakdown = model.elapsed(Counters(coalesced_read_transactions=10_000))
        assert breakdown.bottleneck == "memory"

    def test_bottleneck_identification_atomics(self, model):
        breakdown = model.elapsed(Counters(atomic64=10_000))
        assert breakdown.bottleneck == "atomics"

    def test_bottleneck_identification_compute(self, model):
        breakdown = model.elapsed(Counters(warp_instructions=1_000_000))
        assert breakdown.bottleneck == "compute"

    def test_total_at_least_the_bound_plus_overhead(self, model):
        counters = Counters(
            coalesced_read_transactions=1000, atomic64=1000, warp_instructions=10000,
            kernel_launches=2,
        )
        breakdown = model.elapsed(counters)
        bound = max(breakdown.memory_time, breakdown.atomic_time, breakdown.compute_time)
        assert breakdown.total_time >= bound
        assert breakdown.launch_overhead == pytest.approx(2 * TESLA_K40C.kernel_launch_overhead)

    def test_l2_resident_atomics_are_cheaper(self, model):
        counters = Counters(atomic64=100_000)
        dram = model.elapsed(counters, working_set_bytes=200 * 1024 * 1024)
        l2 = model.elapsed(counters, working_set_bytes=256 * 1024)
        assert l2.atomic_time < dram.atomic_time

    def test_cas_failures_add_contention_cost(self, model):
        clean = model.elapsed(Counters(atomic32=1000))
        contended = model.elapsed(Counters(atomic32=1000, cas_failures=1000))
        assert contended.atomic_time > clean.atomic_time

    def test_uncoalesced_traffic_costs_more_per_useful_byte(self, model):
        # 1000 words of useful data: coalesced (32 transactions of 32 words)
        # versus scattered (1000 sector accesses).
        coalesced = model.elapsed(Counters(coalesced_read_transactions=32))
        scattered = model.elapsed(Counters(uncoalesced_read_words=1024))
        assert scattered.memory_time > coalesced.memory_time

    def test_as_dict_roundtrip(self, model):
        breakdown = model.elapsed(Counters(atomic32=10))
        data = breakdown.as_dict()
        assert data["bottleneck"] == "atomics"
        assert data["total_time"] == breakdown.total_time


class TestThroughput:
    def test_throughput_is_ops_over_time(self, model):
        counters = Counters(coalesced_read_transactions=1_000)
        breakdown = model.elapsed(counters)
        assert model.throughput(1_000, counters) == pytest.approx(1_000 / breakdown.total_time)

    def test_requires_positive_ops(self, model):
        with pytest.raises(ValueError):
            model.throughput(0, Counters(atomic32=1))

    def test_requires_some_events(self, model):
        with pytest.raises(ValueError):
            model.throughput(10, Counters())

    def test_mops_conversion(self):
        assert CostModel.mops(512e6) == pytest.approx(512.0)


class TestCalibration:
    """The headline calibration targets documented in the module docstring."""

    def test_slab_search_profile_lands_near_paper_peak(self, model):
        # One coalesced slab read plus ~45 warp instructions per query.
        n = 1_000_000
        counters = Counters(
            coalesced_read_transactions=n,
            warp_ballots=2 * n,
            warp_shuffles=3 * n,
            warp_instructions=40 * n,
            kernel_launches=1,
        )
        rate = model.throughput(n, counters) / 1e6
        assert 700 <= rate <= 1200  # paper: 937 M queries/s

    def test_slab_insert_profile_lands_near_paper_peak(self, model):
        n = 1_000_000
        counters = Counters(
            coalesced_read_transactions=n,
            atomic64=n,
            warp_ballots=2 * n,
            warp_shuffles=3 * n,
            warp_instructions=50 * n,
            kernel_launches=1,
        )
        rate = model.throughput(n, counters) / 1e6
        assert 350 <= rate <= 700  # paper: 512 M updates/s

    def test_slaballoc_profile_lands_near_paper_rate(self, model):
        n = 1_000_000
        counters = Counters(
            atomic32=n,
            warp_ballots=n,
            warp_instructions=16 * n,
            kernel_launches=1,
        )
        rate = model.throughput(n, counters) / 1e6
        assert 400 <= rate <= 1000  # paper: 600 M allocations/s
