"""Tests for sequential draining and randomized interleaving of warp programs."""

import pytest

from repro.gpusim.errors import SchedulerError
from repro.gpusim.scheduler import WarpScheduler, run_sequential


def make_program(log, name, steps):
    def program():
        for i in range(steps):
            log.append((name, i))
            yield
    return program()


class TestRunSequential:
    def test_runs_programs_in_order(self):
        log = []
        steps = run_sequential([make_program(log, "a", 2), make_program(log, "b", 2)])
        assert log == [("a", 0), ("a", 1), ("b", 0), ("b", 1)]
        assert steps == 4

    def test_empty_program_list(self):
        assert run_sequential([]) == 0

    def test_program_with_no_yields(self):
        def program():
            if False:
                yield
        assert run_sequential([program()]) == 0


class TestWarpScheduler:
    def test_all_programs_complete(self):
        log = []
        scheduler = WarpScheduler(seed=1)
        programs = [make_program(log, name, 5) for name in "abcd"]
        scheduler.run(programs)
        for name in "abcd":
            assert [i for n, i in log if n == name] == list(range(5))

    def test_same_seed_gives_same_interleaving(self):
        log1, log2 = [], []
        WarpScheduler(seed=42).run([make_program(log1, n, 4) for n in "ab"])
        WarpScheduler(seed=42).run([make_program(log2, n, 4) for n in "ab"])
        assert log1 == log2

    def test_different_seeds_usually_differ(self):
        logs = []
        for seed in range(6):
            log = []
            WarpScheduler(seed=seed).run([make_program(log, n, 6) for n in "abc"])
            logs.append(tuple(log))
        assert len(set(logs)) > 1

    def test_interleaving_actually_mixes_programs(self):
        log = []
        WarpScheduler(seed=3).run([make_program(log, n, 10) for n in "ab"])
        names = [n for n, _ in log]
        # A strictly sequential schedule would be 10 a's then 10 b's (or vice
        # versa); a random interleaving of 20 steps almost surely is not.
        assert names != ["a"] * 10 + ["b"] * 10
        assert names != ["b"] * 10 + ["a"] * 10

    def test_steps_executed_accumulates(self):
        scheduler = WarpScheduler(seed=0)
        scheduler.run([make_program([], "a", 3)])
        scheduler.run([make_program([], "b", 2)])
        assert scheduler.steps_executed == 5

    def test_max_steps_guards_against_livelock(self):
        def endless():
            while True:
                yield
        scheduler = WarpScheduler(seed=0, max_steps=100)
        with pytest.raises(SchedulerError):
            scheduler.run([endless()])

    def test_run_in_waves_bounds_concurrency(self):
        log = []
        programs = [make_program(log, name, 3) for name in "abcd"]
        WarpScheduler(seed=7).run_in_waves(programs, wave_size=2)
        # Program "c" cannot start before one of "a"/"b" finished entirely.
        first_c = log.index(("c", 0))
        finished_before_c = {
            name for name in "ab" if (name, 2) in log and log.index((name, 2)) < first_c
        }
        assert finished_before_c

    def test_run_in_waves_rejects_bad_wave_size(self):
        with pytest.raises(SchedulerError):
            WarpScheduler(seed=0).run_in_waves([], wave_size=0)
