"""Tests for the 32-lane warp context and its instruction accounting."""

import numpy as np
import pytest

from repro.gpusim.counters import Counters
from repro.gpusim.warp import WARP_SIZE, Warp


@pytest.fixture
def warp():
    return Warp(5, Counters())


class TestWarpPrimitives:
    def test_warp_size_is_32(self):
        assert WARP_SIZE == 32

    def test_lanes_are_0_to_31(self, warp):
        assert list(warp.lanes) == list(range(32))

    def test_ballot_counts_instruction(self, warp):
        mask = warp.ballot(np.arange(32) % 2 == 0)
        assert mask == 0x55555555
        assert warp.counters.warp_ballots == 1

    def test_shfl_broadcasts_and_counts(self, warp):
        values = np.arange(100, 132, dtype=np.uint32)
        assert warp.shfl(values, 3) == 103
        assert warp.counters.warp_shuffles == 1

    def test_shfl_rejects_out_of_range_lane(self, warp):
        with pytest.raises(ValueError):
            warp.shfl(np.zeros(32), 32)

    def test_ffs_and_first_set_lane(self, warp):
        assert warp.ffs(0b1000) == 4
        assert warp.first_set_lane(0b1000) == 3
        assert warp.first_set_lane(0) == -1
        assert warp.counters.warp_instructions == 3

    def test_popc(self, warp):
        assert warp.popc(0xF0F0) == 8

    def test_charge_adds_generic_instructions(self, warp):
        warp.charge(10)
        warp.charge(5)
        assert warp.counters.warp_instructions == 15

    def test_charge_divergent_multiplies_by_active_lanes(self, warp):
        warp.charge_divergent(instructions_per_lane=7, active_lanes=4)
        assert warp.counters.warp_instructions == 28

    def test_warp_id_preserved(self):
        assert Warp(17, Counters()).warp_id == 17


class TestWarpCooperativePattern:
    """The ballot/shfl/ffs combination used by every slab-list operation."""

    def test_work_queue_drains_in_lane_order(self, warp):
        active = np.zeros(32, dtype=bool)
        active[[3, 10, 25]] = True
        processed = []
        queue = warp.ballot(active)
        while queue:
            lane = warp.first_set_lane(queue)
            processed.append(lane)
            active[lane] = False
            queue = warp.ballot(active)
        assert processed == [3, 10, 25]

    def test_search_within_slab_via_ballot(self, warp):
        slab = np.full(32, 0xFFFFFFFF, dtype=np.uint32)
        slab[8] = 1234
        mask = warp.ballot(slab == 1234)
        assert warp.first_set_lane(mask) == 8
