"""Tests for the device event counters."""

from repro.gpusim.counters import Counters


class TestCountersArithmetic:
    def test_fresh_counters_are_zero(self):
        counters = Counters()
        assert all(value == 0 for value in counters.as_dict().values())

    def test_copy_is_independent(self):
        counters = Counters(atomic32=3)
        snapshot = counters.copy()
        counters.atomic32 += 2
        assert snapshot.atomic32 == 3
        assert counters.atomic32 == 5

    def test_diff_reports_only_new_events(self):
        counters = Counters(coalesced_read_transactions=10, atomic64=2)
        before = counters.copy()
        counters.coalesced_read_transactions += 5
        counters.warp_ballots += 7
        delta = counters.diff(before)
        assert delta.coalesced_read_transactions == 5
        assert delta.warp_ballots == 7
        assert delta.atomic64 == 0

    def test_add_sums_fieldwise(self):
        total = Counters(atomic32=1, warp_shuffles=2) + Counters(atomic32=4, shared_reads=3)
        assert total.atomic32 == 5
        assert total.warp_shuffles == 2
        assert total.shared_reads == 3

    def test_iadd_accumulates_in_place(self):
        counters = Counters(uncoalesced_read_words=1)
        counters += Counters(uncoalesced_read_words=2, allocations=4)
        assert counters.uncoalesced_read_words == 3
        assert counters.allocations == 4

    def test_reset_zeroes_everything(self):
        counters = Counters(atomic32=3, warp_instructions=100, kernel_launches=2)
        counters.reset()
        assert counters.as_dict() == Counters().as_dict()


class TestDerivedQuantities:
    def test_coalesced_bytes_counts_128_per_transaction(self):
        counters = Counters(coalesced_read_transactions=3, coalesced_write_transactions=2)
        assert counters.coalesced_bytes == 5 * 128

    def test_uncoalesced_transactions_combine_reads_and_writes(self):
        counters = Counters(uncoalesced_read_words=4, uncoalesced_write_words=6)
        assert counters.uncoalesced_transactions == 10
        assert counters.uncoalesced_bytes == 10 * 32

    def test_total_atomics(self):
        assert Counters(atomic32=2, atomic64=3).total_atomics == 5

    def test_total_warp_instructions_includes_communication(self):
        counters = Counters(warp_ballots=2, warp_shuffles=3, warp_instructions=10)
        assert counters.total_warp_instructions == 15

    def test_as_dict_contains_every_field(self):
        data = Counters().as_dict()
        for field in ("atomic32", "atomic64", "cas_failures", "resident_changes"):
            assert field in data
