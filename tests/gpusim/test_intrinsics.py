"""Unit and property tests for the warp-wide intrinsic helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim.intrinsics import (
    ballot_from_bools,
    ffs,
    first_set_lane,
    lane_mask,
    popc,
    set_lanes,
)


class TestBallot:
    def test_empty_predicates_give_zero(self):
        assert ballot_from_bools([False] * 32) == 0

    def test_all_true_gives_full_mask(self):
        assert ballot_from_bools([True] * 32) == 0xFFFFFFFF

    def test_single_lane(self):
        for lane in (0, 1, 7, 15, 30, 31):
            preds = [False] * 32
            preds[lane] = True
            assert ballot_from_bools(preds) == (1 << lane)

    def test_accepts_numpy_bool_array(self):
        arr = np.zeros(32, dtype=bool)
        arr[[2, 5, 31]] = True
        assert ballot_from_bools(arr) == (1 << 2) | (1 << 5) | (1 << 31)

    def test_accepts_comparison_result(self):
        data = np.arange(32, dtype=np.uint32)
        assert ballot_from_bools(data == 7) == 1 << 7

    def test_shorter_than_32_lanes_allowed(self):
        assert ballot_from_bools([True, False, True]) == 0b101

    def test_more_than_32_lanes_rejected(self):
        with pytest.raises(ValueError):
            ballot_from_bools([True] * 33)

    def test_two_dimensional_input_rejected(self):
        with pytest.raises(ValueError):
            ballot_from_bools(np.ones((4, 8), dtype=bool))

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.booleans(), min_size=0, max_size=32))
    def test_property_bit_i_matches_predicate_i(self, preds):
        mask = ballot_from_bools(preds)
        for lane, pred in enumerate(preds):
            assert bool(mask & (1 << lane)) == pred

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.booleans(), min_size=32, max_size=32))
    def test_property_popcount_matches_true_count(self, preds):
        assert popc(ballot_from_bools(preds)) == sum(preds)


class TestFfs:
    def test_zero_mask(self):
        assert ffs(0) == 0
        assert first_set_lane(0) == -1

    def test_lowest_bit(self):
        assert ffs(1) == 1
        assert first_set_lane(1) == 0

    def test_highest_bit(self):
        assert ffs(0x80000000) == 32
        assert first_set_lane(0x80000000) == 31

    def test_matches_cuda_semantics_on_mixed_mask(self):
        # __ffs returns the 1-based position of the least significant set bit.
        assert ffs(0b101000) == 4
        assert first_set_lane(0b101000) == 3

    @settings(max_examples=80, deadline=None)
    @given(st.integers(min_value=1, max_value=0xFFFFFFFF))
    def test_property_ffs_finds_least_significant_bit(self, mask):
        lane = first_set_lane(mask)
        assert mask & (1 << lane)
        assert mask & ((1 << lane) - 1) == 0


class TestPopcAndLaneMask:
    def test_popc_full(self):
        assert popc(0xFFFFFFFF) == 32

    def test_popc_empty(self):
        assert popc(0) == 0

    def test_lane_mask_roundtrips_through_set_lanes(self):
        lanes = [0, 3, 17, 31]
        assert set_lanes(lane_mask(lanes)) == lanes

    def test_lane_mask_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            lane_mask([32])
        with pytest.raises(ValueError):
            lane_mask([-1])

    @settings(max_examples=60, deadline=None)
    @given(st.sets(st.integers(min_value=0, max_value=31)))
    def test_property_lane_mask_set_lanes_roundtrip(self, lanes):
        assert set_lanes(lane_mask(sorted(lanes))) == sorted(lanes)

    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_property_set_lanes_reconstructs_mask(self, mask):
        reconstructed = 0
        for lane in set_lanes(mask):
            reconstructed |= 1 << lane
        assert reconstructed == mask
