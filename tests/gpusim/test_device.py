"""Tests for the device model and phase measurement."""

import pytest

from repro.gpusim.device import Device, DeviceSpec, GTX_970, TESLA_K40C


class TestDeviceSpec:
    def test_k40c_headline_characteristics(self):
        assert TESLA_K40C.warp_size == 32
        assert TESLA_K40C.num_sms == 15
        assert TESLA_K40C.dram_bandwidth == pytest.approx(288e9)
        assert TESLA_K40C.dram_capacity == 12 * 1024**3

    def test_effective_bandwidth_below_peak(self):
        assert TESLA_K40C.effective_bandwidth < TESLA_K40C.dram_bandwidth
        assert TESLA_K40C.effective_bandwidth > 0.5 * TESLA_K40C.dram_bandwidth

    def test_gtx_970_is_the_gfsl_platform(self):
        assert GTX_970.dram_bandwidth == pytest.approx(224e9)

    def test_scaled_returns_modified_copy(self):
        slower = TESLA_K40C.scaled(dram_bandwidth=100e9)
        assert slower.dram_bandwidth == pytest.approx(100e9)
        assert slower.num_sms == TESLA_K40C.num_sms
        assert TESLA_K40C.dram_bandwidth == pytest.approx(288e9)

    def test_spec_is_frozen(self):
        with pytest.raises(Exception):
            TESLA_K40C.num_sms = 20  # type: ignore[misc]


class TestDevice:
    def test_default_device_uses_k40c(self):
        assert Device().spec.name == "Tesla K40c"

    def test_counters_start_at_zero(self):
        device = Device()
        assert device.counters.total_atomics == 0

    def test_phase_captures_only_events_inside_block(self):
        device = Device()
        device.counters.atomic32 += 5
        with device.phase() as events:
            device.counters.atomic32 += 3
            device.counters.coalesced_read_transactions += 2
        assert events.atomic32 == 3
        assert events.coalesced_read_transactions == 2
        assert device.counters.atomic32 == 8

    def test_phase_captures_events_even_if_body_raises(self):
        device = Device()
        with pytest.raises(RuntimeError):
            with device.phase() as events:
                device.counters.atomic64 += 1
                raise RuntimeError("boom")
        assert events.atomic64 == 1

    def test_snapshot_and_events_since(self):
        device = Device()
        snap = device.snapshot()
        device.counters.warp_ballots += 4
        assert device.events_since(snap).warp_ballots == 4

    def test_launch_kernel_counts(self):
        device = Device()
        device.launch_kernel()
        device.launch_kernel()
        assert device.counters.kernel_launches == 2

    def test_reset(self):
        device = Device()
        device.counters.atomic32 += 1
        device.reset()
        assert device.counters.atomic32 == 0
