"""Tests for the accounting global-memory layer (reads, writes, atomics)."""

import numpy as np
import pytest

from repro.gpusim.counters import Counters
from repro.gpusim.errors import MemoryFault
from repro.gpusim.memory import GlobalMemory


@pytest.fixture
def mem():
    return GlobalMemory(Counters())


@pytest.fixture
def store():
    return np.zeros((4, 32), dtype=np.uint32)


class TestSlabAccess:
    def test_read_slab_returns_copy(self, mem, store):
        store[1, 5] = 42
        words = mem.read_slab(store, 1)
        assert words[5] == 42
        store[1, 5] = 99
        assert words[5] == 42  # the returned view is a snapshot

    def test_read_slab_counts_one_transaction(self, mem, store):
        mem.read_slab(store, 0)
        mem.read_slab(store, 2)
        assert mem.counters.coalesced_read_transactions == 2
        assert mem.counters.uncoalesced_read_words == 0

    def test_read_slab_out_of_bounds(self, mem, store):
        with pytest.raises(MemoryFault):
            mem.read_slab(store, 4)
        with pytest.raises(MemoryFault):
            mem.read_slab(store, -1)

    def test_write_slab_counts_and_stores(self, mem, store):
        values = np.arange(32, dtype=np.uint32)
        mem.write_slab(store, 3, values)
        assert np.array_equal(store[3], values)
        assert mem.counters.coalesced_write_transactions == 1

    def test_write_slab_size_mismatch(self, mem, store):
        with pytest.raises(MemoryFault):
            mem.write_slab(store, 0, np.arange(16, dtype=np.uint32))


class TestWordAccess:
    def test_read_word_counts_uncoalesced(self, mem, store):
        store[2, 7] = 13
        assert mem.read_word(store, (2, 7)) == 13
        assert mem.counters.uncoalesced_read_words == 1

    def test_write_word_counts_and_masks_to_32_bits(self, mem, store):
        mem.write_word(store, (0, 0), 0x1_0000_0002)
        assert store[0, 0] == 2
        assert mem.counters.uncoalesced_write_words == 1


class TestAtomics:
    def test_cas32_success(self, mem, store):
        old = mem.atomic_cas32(store, (0, 0), 0, 5)
        assert old == 0
        assert store[0, 0] == 5
        assert mem.counters.atomic32 == 1
        assert mem.counters.cas_failures == 0

    def test_cas32_failure_leaves_memory_untouched(self, mem, store):
        store[0, 0] = 9
        old = mem.atomic_cas32(store, (0, 0), 0, 5)
        assert old == 9
        assert store[0, 0] == 9
        assert mem.counters.cas_failures == 1

    def test_cas64_success_swaps_pair(self, mem, store):
        store[1, 4] = 0xFFFFFFFF
        store[1, 5] = 0xFFFFFFFF
        old = mem.atomic_cas64(store, 1, 4, (0xFFFFFFFF, 0xFFFFFFFF), (10, 20))
        assert old == (0xFFFFFFFF, 0xFFFFFFFF)
        assert store[1, 4] == 10 and store[1, 5] == 20
        assert mem.counters.atomic64 == 1

    def test_cas64_failure_when_either_word_differs(self, mem, store):
        store[1, 4] = 10
        store[1, 5] = 21
        old = mem.atomic_cas64(store, 1, 4, (10, 20), (1, 2))
        assert old == (10, 21)
        assert store[1, 4] == 10 and store[1, 5] == 21
        assert mem.counters.cas_failures == 1

    def test_cas64_rejects_odd_lane(self, mem, store):
        with pytest.raises(MemoryFault):
            mem.atomic_cas64(store, 0, 3, (0, 0), (1, 1))

    def test_exch32_returns_old(self, mem, store):
        store[0, 1] = 7
        assert mem.atomic_exch32(store, (0, 1), 11) == 7
        assert store[0, 1] == 11

    def test_exch64_swaps_pair_unconditionally(self, mem, store):
        store[2, 0], store[2, 1] = 3, 4
        old = mem.atomic_exch64(store, 2, 0, (8, 9))
        assert old == (3, 4)
        assert (store[2, 0], store[2, 1]) == (8, 9)

    def test_or_and_add(self, mem):
        word = np.zeros(4, dtype=np.uint32)
        assert mem.atomic_or32(word, 1, 0b101) == 0
        assert word[1] == 0b101
        assert mem.atomic_and32(word, 1, 0b100) == 0b101
        assert word[1] == 0b100
        assert mem.atomic_add32(word, 2, 5) == 0
        assert word[2] == 5
        assert mem.counters.atomic32 == 3

    def test_add_wraps_at_32_bits(self, mem):
        word = np.array([0xFFFFFFFF], dtype=np.uint32)
        old = mem.atomic_add32(word, 0, 1)
        assert old == 0xFFFFFFFF
        assert word[0] == 0

    def test_shared_read_counted(self, mem):
        mem.shared_read()
        mem.shared_read()
        assert mem.counters.shared_reads == 2
