"""Degradation and fault-injection behavior of the hardened service layer.

Covers the overload/backpressure path, per-op deadlines, the per-shard
circuit breaker + quarantine-restore cycle, WAL commit-failure atomicity,
the deterministic stop() contract, the retry helper, and the stats
round-trips for all the new counters.  Every fault here is injected
deterministically through a :class:`repro.faults.FaultPlan` — no sleeps on
wall-clock randomness.
"""

from __future__ import annotations

import asyncio
import random
import time

import numpy as np
import pytest

from repro.core import constants as C
from repro.core.config import SlabAllocConfig
from repro.core.slab_hash import SlabHash
from repro.engine.sharded import ShardedSlabHash
from repro.faults import FaultAction, FaultPlan, InjectedBatchFailure
from repro.persist.wal import WriteAheadLog
from repro.service import (
    LANE_CLOSED,
    LANE_HALF_OPEN,
    LANE_OPEN,
    OpDeadlineExceeded,
    ServiceConfig,
    ServiceOverloaded,
    ServiceStopped,
    ShardQuarantined,
    SlabHashService,
    WalCommitFailed,
    retry_with_backoff,
)

SMALL_ALLOC = SlabAllocConfig(num_super_blocks=2, num_memory_blocks=8, units_per_block=64)
FAST = ServiceConfig(max_batch_size=128, max_delay=0.0005)


def make_engine(**kwargs) -> ShardedSlabHash:
    return ShardedSlabHash(3, 16, alloc_config=SMALL_ALLOC, seed=5, **kwargs)


async def settle(service: SlabHashService) -> None:
    """Wait until nothing is pending and no restore task is live."""
    while service.pending or service._restore_tasks:
        await asyncio.sleep(0.001)


class TestStopContract:
    def test_stop_fails_uncut_ops_instead_of_hanging(self):
        """Regression: a drain lane that exits with ops still logged must
        fail their futures with ServiceStopped, not leave them pending."""

        async def main():
            # A long co-batching budget keeps sub-warp tails parked in the
            # logs; killing the drains then models a lane that dies with
            # admitted-but-uncut operations behind it.
            config = ServiceConfig(max_batch_size=128, max_delay=30.0)
            service = SlabHashService(make_engine(), config=config)
            await service.start()
            futures = [
                asyncio.ensure_future(service.insert(key, key)) for key in range(1, 6)
            ]
            await asyncio.sleep(0.01)  # admitted; tails wait on the deadline
            assert service.pending == 5
            for task in service._drain_tasks:
                task.cancel()
            await service.stop()
            for future in futures:
                with pytest.raises(ServiceStopped):
                    await future
            assert service.stats().ops_failed >= 5

        asyncio.run(asyncio.wait_for(main(), timeout=10))

    def test_admission_after_stop_begins_is_rejected(self):
        async def main():
            async with SlabHashService(make_engine(), config=FAST) as service:
                await service.insert(1, 10)
                service._closing = True
                with pytest.raises(ServiceStopped):
                    await service.insert(2, 20)
                service._closing = False  # let stop() run normally

        asyncio.run(asyncio.wait_for(main(), timeout=10))

    def test_stop_with_in_flight_submit_many_resolves_every_future(self):
        async def main():
            service = SlabHashService(make_engine(), config=FAST)
            await service.start()
            keys = np.arange(1, 500, dtype=np.uint64)
            ops = np.full(len(keys), C.OP_INSERT, dtype=np.int64)
            pending = asyncio.ensure_future(
                service.submit_many(ops, keys, keys.astype(np.uint32))
            )
            await asyncio.sleep(0)
            await service.stop()
            # Either the drains flushed it (normal) or stop failed it — but
            # the future must be resolved either way.
            assert pending.done()
            try:
                await pending
            except ServiceStopped:
                pass

        asyncio.run(asyncio.wait_for(main(), timeout=10))


class TestOverload:
    def test_overloaded_admission_fails_fast_and_is_retryable(self):
        async def main():
            config = ServiceConfig(
                max_batch_size=128, max_delay=0.0005, max_pending_per_shard=64
            )
            async with SlabHashService(make_engine(), config=config) as service:
                keys = np.arange(1, 1000, dtype=np.uint64)
                ops = np.full(len(keys), C.OP_INSERT, dtype=np.int64)
                with pytest.raises(ServiceOverloaded) as info:
                    await service.submit_many(ops, keys, keys.astype(np.uint32))
                assert info.value.retryable is True
                # All-or-nothing: nothing was admitted.
                assert service.pending == 0
                stats = service.stats()
                assert stats.ops_rejected > 0
                assert sum(l.rejected_overloaded for l in stats.per_shard) > 0
                # Small admissions still go through.
                await service.insert(5, 50)
                assert await service.search(5) == 50

        asyncio.run(asyncio.wait_for(main(), timeout=10))

    def test_retry_with_backoff_rides_out_the_backpressure(self):
        async def main():
            config = ServiceConfig(
                max_batch_size=128, max_delay=0.0005, max_pending_per_shard=96
            )
            async with SlabHashService(make_engine(), config=config) as service:
                keys = np.arange(1, 400, dtype=np.uint64)
                ops = np.full(len(keys), C.OP_INSERT, dtype=np.int64)
                values = keys.astype(np.uint32)
                waves = [
                    retry_with_backoff(
                        lambda lo=lo: service.submit_many(
                            ops[lo : lo + 80], keys[lo : lo + 80], values[lo : lo + 80]
                        ),
                        rng=random.Random(lo),
                        retries=50,
                    )
                    for lo in range(0, len(keys), 80)
                ]
                await asyncio.gather(*waves)
                # The verification query retries too — it is subject to the
                # same admission budget as the writes.
                found = []
                for lo in range(0, len(keys), 80):
                    chunk = keys[lo : lo + 80]
                    found.append(
                        await retry_with_backoff(
                            lambda chunk=chunk: service.submit_many(
                                np.full(len(chunk), C.OP_SEARCH, dtype=np.int64),
                                chunk,
                            ),
                            rng=random.Random(1000 + lo),
                            retries=50,
                        )
                    )
                assert np.array_equal(np.concatenate(found), values)

        asyncio.run(asyncio.wait_for(main(), timeout=30))


class TestDeadlines:
    def test_expired_ops_are_rejected_at_cut_time(self):
        async def main():
            async with SlabHashService(make_engine(), config=FAST) as service:
                # A deadline already in the past: rejected before execution.
                with pytest.raises(OpDeadlineExceeded) as info:
                    await service.submit(
                        C.OP_INSERT, 7, 70, deadline=time.perf_counter() - 1.0
                    )
                assert info.value.retryable is False
                assert await service.search(7) is None  # never applied
                stats = service.stats()
                assert stats.ops_expired >= 1
                assert sum(l.ops_expired for l in stats.per_shard) >= 1

        asyncio.run(asyncio.wait_for(main(), timeout=10))

    def test_generous_deadline_executes_normally(self):
        async def main():
            async with SlabHashService(make_engine(), config=FAST) as service:
                await service.submit(
                    C.OP_INSERT, 8, 80, deadline=time.perf_counter() + 30.0
                )
                assert await service.search(8) == 80
                assert service.stats().ops_expired == 0

        asyncio.run(asyncio.wait_for(main(), timeout=10))


class TestCircuitBreaker:
    def test_injected_dirty_failure_trips_and_soft_restores(self):
        async def main():
            # Alloc fault mid-execution: dirty + injected -> immediate trip.
            plan = FaultPlan(
                {("shard:0.alloc.warp_allocate", 0): FaultAction(exc="alloc")}
            )
            engine = make_engine()
            service = SlabHashService(engine, config=FAST, faults=plan)
            async with service:
                # Enough keys that shard 0's chains outgrow their base slabs
                # and the first warp_allocate (occurrence 0) is reached.
                keys = np.arange(1, 1500, dtype=np.uint64)
                ops = np.full(len(keys), C.OP_INSERT, dtype=np.int64)
                try:
                    await service.submit_many(ops, keys, keys.astype(np.uint32))
                except Exception:
                    pass  # some slice failed; the trip is what we assert on
                await settle(service)
                stats = service.stats()
                assert stats.breaker_trips >= 1
                assert stats.shard_restores >= 1
                assert stats.batches_aborted >= 1  # injected -> abort-marked
                # No checkpoint: soft restore half-opens synchronously; no
                # lane is ever left open, and the service keeps serving.
                assert all(state != LANE_OPEN for state in service.lane_states)
                await service.insert(500_000, 1)
                assert await service.search(500_000) == 1

        asyncio.run(asyncio.wait_for(main(), timeout=30))

    def test_execute_site_failure_counts_toward_threshold(self):
        async def main():
            # Three consecutive injected execute failures on shard 0.
            plan = FaultPlan(
                {
                    ("shard:0.execute", i): FaultAction(exc="batch")
                    for i in range(3)
                }
            )
            config = ServiceConfig(
                max_batch_size=128, max_delay=0.0005, breaker_threshold=3
            )
            service = SlabHashService(make_engine(), config=config, faults=plan)
            async with service:
                failures = 0
                for key in range(1, 400):
                    try:
                        await service.insert(key, key)
                    except (InjectedBatchFailure, ShardQuarantined):
                        failures += 1
                await settle(service)
                stats = service.stats()
                assert failures >= 3
                assert stats.breaker_trips >= 1
                assert stats.per_shard[0].trips >= 1
                # Recovered without manual intervention.
                assert all(state == LANE_CLOSED for state in service.lane_states)
                await service.insert(9000, 9)
                assert await service.search(9000) == 9

        asyncio.run(asyncio.wait_for(main(), timeout=30))

    def test_quarantine_restore_rebuilds_from_checkpoint(self, tmp_path):
        async def main():
            # Occurrence 10 of shard 1's execute site: the single bulk
            # admission before the checkpoint cuts at most a few batches per
            # shard, so occurrence 10 is guaranteed to land in the
            # post-checkpoint single-op traffic.
            plan = FaultPlan(
                {("shard:1.execute", 10): FaultAction(exc="batch")}
            )
            wal = WriteAheadLog(str(tmp_path / "svc.wal"))
            config = ServiceConfig(
                max_batch_size=128, max_delay=0.0005, breaker_threshold=1
            )
            engine = make_engine()
            service = SlabHashService(engine, config=config, wal=wal, faults=plan)
            model = {}
            async with service:
                # Committed state before the checkpoint (one admission).
                pre = np.arange(1, 60, dtype=np.uint64)
                await service.submit_many(
                    np.full(len(pre), C.OP_INSERT, dtype=np.int64),
                    pre,
                    (pre * 2).astype(np.uint32),
                )
                for key in pre:
                    model[int(key)] = int(key) * 2
                service.checkpoint(str(tmp_path / "svc.snap"))
                # Traffic after the checkpoint; one shard-1 batch will be
                # injected to fail, trip (threshold 1), quarantine, and
                # restore from checkpoint + WAL tail.
                for key in range(60, 240):
                    try:
                        await service.insert(key, key * 2)
                        model[key] = key * 2
                    except (InjectedBatchFailure, ShardQuarantined):
                        pass
                await settle(service)
                stats = service.stats()
                assert stats.breaker_trips >= 1
                assert stats.shard_restores >= 1
                assert stats.batches_aborted >= 1
                assert all(state != LANE_OPEN for state in service.lane_states)
                # Exactly-once across the restore: every acked op present,
                # every rejected op absent.
                for key, value in model.items():
                    assert await service.search(key) == value, key
            wal.close()

        asyncio.run(asyncio.wait_for(main(), timeout=30))

    def test_quarantined_admission_is_rejected_retryably(self):
        async def main():
            service = SlabHashService(make_engine(), config=FAST)
            async with service:
                service._lane_state[0] = LANE_OPEN
                keys = np.arange(1, 100, dtype=np.uint64)
                shard0 = [
                    int(k) for k in keys if service.engine.admit_one(int(k)) == 0
                ]
                with pytest.raises(ShardQuarantined) as info:
                    await service.insert(shard0[0], 1)
                assert info.value.retryable is True
                assert service.stats().per_shard[0].rejected_quarantined >= 1
                service._lane_state[0] = LANE_CLOSED

        asyncio.run(asyncio.wait_for(main(), timeout=10))


class TestWalCommitFailure:
    def test_failed_group_commit_fails_only_that_round(self, tmp_path):
        async def main():
            plan = FaultPlan({("wal.write", 1): FaultAction(exc="os")})
            wal = WriteAheadLog(str(tmp_path / "svc.wal"), faults=plan)
            service = SlabHashService(make_engine(), config=FAST)
            service.wal = wal
            async with service:
                await service.insert(1, 10)  # round 1 commits cleanly
                with pytest.raises(WalCommitFailed) as info:
                    await service.insert(2, 20)  # round 2's append fails
                assert info.value.retryable is True
                # Not logged means not run: key 2 absent, table serviceable.
                assert await service.search(2) is None
                await service.insert(3, 30)
                assert await service.search(3) == 30
                stats = service.stats()
                assert stats.wal_rollbacks == 1
                assert wal.rollbacks == 1
                # The resubmission contract holds.
                await service.insert(2, 20)
                assert await service.search(2) == 20
            wal.close()

        asyncio.run(asyncio.wait_for(main(), timeout=10))

    def test_wal_failure_does_not_trip_the_breaker(self, tmp_path):
        async def main():
            plan = FaultPlan(
                {("wal.write", i): FaultAction(exc="os") for i in range(1, 6)}
            )
            wal = WriteAheadLog(str(tmp_path / "svc.wal"), faults=plan)
            config = ServiceConfig(
                max_batch_size=128, max_delay=0.0005, breaker_threshold=2
            )
            service = SlabHashService(make_engine(), config=config)
            service.wal = wal
            async with service:
                await service.insert(1, 10)
                for key in range(2, 7):
                    with pytest.raises(WalCommitFailed):
                        await service.insert(key, key)
                stats = service.stats()
                assert stats.wal_rollbacks == 5
                assert stats.breaker_trips == 0  # the table was never touched
                await service.insert(99, 990)
                assert await service.search(99) == 990
            wal.close()

        asyncio.run(asyncio.wait_for(main(), timeout=10))


class TestRetryHelper:
    def test_retries_then_succeeds(self):
        async def main():
            attempts = {"n": 0}

            async def flaky():
                attempts["n"] += 1
                if attempts["n"] < 4:
                    raise ServiceOverloaded("busy")
                return "done"

            result = await retry_with_backoff(
                flaky, base_delay=0.0001, rng=random.Random(1)
            )
            assert result == "done"
            assert attempts["n"] == 4

        asyncio.run(asyncio.wait_for(main(), timeout=10))

    def test_exhausted_retries_reraise(self):
        async def main():
            async def always_busy():
                raise ServiceOverloaded("busy")

            with pytest.raises(ServiceOverloaded):
                await retry_with_backoff(
                    always_busy, retries=3, base_delay=0.0001, rng=random.Random(1)
                )

        asyncio.run(asyncio.wait_for(main(), timeout=10))

    def test_non_retryable_errors_propagate_immediately(self):
        async def main():
            attempts = {"n": 0}

            async def stopped():
                attempts["n"] += 1
                raise ServiceStopped("gone")

            with pytest.raises(ServiceStopped):
                await retry_with_backoff(stopped, base_delay=0.0001)
            assert attempts["n"] == 1

        asyncio.run(asyncio.wait_for(main(), timeout=10))

    def test_deadline_bounds_the_retrying(self):
        async def main():
            async def always_busy():
                raise ServiceOverloaded("busy")

            start = time.perf_counter()
            with pytest.raises(ServiceOverloaded):
                await retry_with_backoff(
                    always_busy,
                    retries=10_000,
                    base_delay=0.05,
                    deadline=time.perf_counter() + 0.1,
                    rng=random.Random(2),
                )
            assert time.perf_counter() - start < 5.0

        asyncio.run(asyncio.wait_for(main(), timeout=10))


class TestStatsRoundTrips:
    def test_resize_failures_round_trip_through_as_dict(self):
        async def main():
            async with SlabHashService(make_engine(), config=FAST) as service:
                service._resize_failure_log.append("after batch 3: BoomError: boom")
                stats = service.stats()
                assert stats.resize_failures == ("after batch 3: BoomError: boom",)
                document = stats.as_dict()
                assert document["resize_failures"] == [
                    "after batch 3: BoomError: boom"
                ]

        asyncio.run(asyncio.wait_for(main(), timeout=10))

    def test_fault_counters_round_trip_through_as_dict(self):
        async def main():
            config = ServiceConfig(
                max_batch_size=128,
                max_delay=0.0005,
                max_pending_per_shard=32,
                breaker_threshold=1,
            )
            plan = FaultPlan(
                {("shard:0.execute", 0): FaultAction(exc="batch")}
            )
            service = SlabHashService(make_engine(), config=config, faults=plan)
            async with service:
                keys = np.arange(1, 200, dtype=np.uint64)
                ops = np.full(len(keys), C.OP_INSERT, dtype=np.int64)
                with pytest.raises(ServiceOverloaded):
                    await service.submit_many(ops, keys, keys.astype(np.uint32))
                with pytest.raises(OpDeadlineExceeded):
                    await service.submit(
                        C.OP_INSERT, 3, 30, deadline=time.perf_counter() - 1.0
                    )
                for key in range(10, 80):
                    try:
                        await service.insert(key, key)
                    except (InjectedBatchFailure, ShardQuarantined):
                        pass
                await settle(service)
                document = service.stats().as_dict()
                # The overloaded bulk admission was rejected whole; the
                # counter attributes the rejection to the lane that refused.
                assert document["ops_rejected"] > 0
                assert document["ops_expired"] >= 1
                assert document["breaker_trips"] >= 1
                assert document["shard_restores"] >= 1
                assert isinstance(document["wal_rollbacks"], int)
                assert isinstance(document["batches_aborted"], int)
                assert document["restore_failures"] == []
                lane = document["per_shard"][0]
                for field in (
                    "rejected_overloaded",
                    "rejected_quarantined",
                    "ops_expired",
                    "trips",
                    "restores",
                    "state",
                ):
                    assert field in lane
                assert lane["state"] in (LANE_CLOSED, LANE_OPEN, LANE_HALF_OPEN)

        asyncio.run(asyncio.wait_for(main(), timeout=30))

    def test_restore_failures_are_append_only_and_surfaced(self, tmp_path):
        async def main():
            # Injected restore failures: the restore retries, logs each
            # attempt, then half-opens anyway (degraded but live).
            plan = FaultPlan(
                {
                    ("shard:0.execute", 0): FaultAction(exc="batch"),
                    ("service.restore", 0): FaultAction(exc="fault"),
                    ("service.restore", 1): FaultAction(exc="fault"),
                }
            )
            wal = WriteAheadLog(str(tmp_path / "svc.wal"))
            config = ServiceConfig(
                max_batch_size=128, max_delay=0.0005, breaker_threshold=1
            )
            service = SlabHashService(
                make_engine(), config=config, wal=wal, faults=plan
            )
            async with service:
                await service.insert(1, 10)
                service.checkpoint(str(tmp_path / "svc.snap"))
                for key in range(2, 150):
                    try:
                        await service.insert(key, key)
                    except (InjectedBatchFailure, ShardQuarantined):
                        pass
                await settle(service)
                stats = service.stats()
                assert len(stats.restore_failures) == 2
                assert all("restore attempt" in entry for entry in stats.restore_failures)
                assert stats.shard_restores >= 1
                assert all(state != LANE_OPEN for state in service.lane_states)
            wal.close()

        asyncio.run(asyncio.wait_for(main(), timeout=30))
