"""Service-layer behavior with the multiprocess shard executor.

The process executor must be invisible in the results: the same traffic
through ``ServiceConfig(executor="process")`` and a plain serial service
yields bit-identical items, search results, device counters, and migration
accounting.  Worker death is a first-class fault site (``shard:<i>.worker``)
that surfaces as :class:`~repro.faults.WorkerCrashed`, trips the lane
breaker, and restores through the PR 7 quarantine path — the rebuilt shard
is re-shipped to a respawned worker.  Also pins the satellite stats fixes:
``deadline_forced_fraction`` / ``warp_aligned_fraction`` clamp to finite
values when a lane (or the whole service) cut zero batches.
"""

from __future__ import annotations

import asyncio
import math

import numpy as np
import pytest

from repro.core import constants as C
from repro.core.config import SlabAllocConfig
from repro.core.resize import LoadFactorPolicy
from repro.core.slab_hash import SlabHash
from repro.engine import ShardedSlabHash
from repro.faults import FaultAction, FaultPlan, WorkerCrashed
from repro.persist.wal import WriteAheadLog
from repro.service import (
    LANE_OPEN,
    ServiceConfig,
    ShardQuarantined,
    SlabHashService,
)
from repro.perf.latency import LatencyReport
from repro.service.service import ServiceStats, ShardLaneStats

SMALL_ALLOC = SlabAllocConfig(num_super_blocks=2, num_memory_blocks=8, units_per_block=64)


def make_engine(executor=None, **kwargs) -> ShardedSlabHash:
    return ShardedSlabHash(
        3, 16, alloc_config=SMALL_ALLOC, seed=5, backend="vectorized",
        executor=executor, **kwargs
    )


async def settle(service: SlabHashService) -> None:
    while service.pending or service._restore_tasks:
        await asyncio.sleep(0.001)


def engine_state(engine: ShardedSlabHash):
    return (
        sorted(engine.items()),
        [shard.num_buckets for shard in engine.shards],
        [device.counters.as_dict() for device in engine.devices],
    )


class TestProcessServiceEquivalence:
    def test_process_service_matches_serial(self, tmp_path):
        """Same traffic, serial vs process executor: bit-identical outcome."""

        async def run(executor, wal_path):
            engine = ShardedSlabHash(
                4, 64, seed=5, backend="vectorized",
                load_factor_policy=LoadFactorPolicy(min_buckets=2),
            )
            config = ServiceConfig(
                max_delay=0.0005, scheduler_seed=17, wave_size=64,
                executor=executor, executor_workers=2,
            )
            wal = WriteAheadLog(str(wal_path))
            try:
                async with SlabHashService(engine, config=config, wal=wal) as service:
                    rng = np.random.default_rng(3)
                    keys = rng.choice(2**31, size=2000, replace=False)
                    await asyncio.gather(
                        *[service.insert(int(k), int(k % 1000 + 1)) for k in keys[:1000]]
                    )
                    found = await asyncio.gather(
                        *[service.search(int(k)) for k in keys[:400]]
                    )
                    await asyncio.gather(*[service.delete(int(k)) for k in keys[:150]])
                    stats = service.stats()
                    return {
                        "found": found,
                        "ops": (stats.ops_completed, stats.ops_failed),
                        "migration": (
                            stats.migration_steps,
                            stats.migration_buckets_moved,
                            stats.migration_items_moved,
                        ),
                        "state": engine_state(engine),
                    }
            finally:
                engine.close()
                wal.close()

        async def main():
            serial = await run(None, tmp_path / "serial.wal")
            process = await run("process", tmp_path / "process.wal")
            assert serial == process

        asyncio.run(asyncio.wait_for(main(), timeout=60))

    def test_process_executor_requires_sharded_engine(self):
        table = SlabHash(32, alloc_config=SMALL_ALLOC)
        with pytest.raises(ValueError, match="ShardedSlabHash"):
            SlabHashService(table, config=ServiceConfig(executor="process"))

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            SlabHashService(make_engine(), config=ServiceConfig(executor="thread"))

    def test_engine_with_attached_executor_is_used_as_is(self):
        async def main():
            engine = make_engine(executor="process", executor_workers=2)
            try:
                config = ServiceConfig(max_batch_size=64, max_delay=0.0005)
                async with SlabHashService(engine, config=config) as service:
                    assert service._process_mode
                    await service.insert(7, 70)
                    assert await service.search(7) == 70
            finally:
                engine.close()

        asyncio.run(asyncio.wait_for(main(), timeout=30))


class TestWorkerDeathQuarantine:
    def test_worker_death_trips_and_restores_from_checkpoint(self, tmp_path):
        """A killed worker = dirty lane failure: trip, quarantine, rebuild
        from checkpoint + WAL tail, re-ship to a respawned worker, serve on.

        Occurrence 5 lands on a post-checkpoint ``concurrent`` dispatch
        (per shard-1 batch the site ticks twice — execute then pump), so the
        crash fails a batch's futures and writes a durable abort marker.
        """

        async def main():
            plan = FaultPlan({("shard:1.worker", 5): FaultAction(exc="worker")})
            wal = WriteAheadLog(str(tmp_path / "svc.wal"))
            config = ServiceConfig(
                max_batch_size=128, max_delay=0.0005, breaker_threshold=1,
                executor="process", executor_workers=2,
            )
            engine = make_engine()
            service = SlabHashService(engine, config=config, wal=wal, faults=plan)
            model = {}
            try:
                async with service:
                    pre = np.arange(1, 60, dtype=np.uint64)
                    await service.submit_many(
                        np.full(len(pre), C.OP_INSERT, dtype=np.int64),
                        pre,
                        (pre * 2).astype(np.uint32),
                    )
                    for key in pre:
                        model[int(key)] = int(key) * 2
                    service.checkpoint(str(tmp_path / "svc.snap"))
                    for key in range(60, 240):
                        try:
                            await service.insert(key, key * 2)
                            model[key] = key * 2
                        except (WorkerCrashed, ShardQuarantined):
                            pass
                    await settle(service)
                    stats = service.stats()
                    assert stats.breaker_trips >= 1
                    assert stats.shard_restores >= 1
                    assert stats.batches_aborted >= 1
                    assert all(state != LANE_OPEN for state in service.lane_states)
                    # Exactly-once across the worker crash + restore.
                    for key, value in model.items():
                        assert await service.search(key) == value, key
                    # The executor is healthy again: every shard dispatches.
                    assert engine.process_executor is not None
                    assert not engine.process_executor._lost
            finally:
                engine.close()
                wal.close()

        asyncio.run(asyncio.wait_for(main(), timeout=60))

    def test_worker_death_in_pump_trips_instead_of_masquerading_as_resize_failure(
        self, tmp_path
    ):
        """Regression: a worker killed during the between-batch
        ``maybe_resize`` pump must trip the lane, not be swallowed into the
        resize-failure log — the acked batch's effects died with the worker,
        and serving on would silently respawn from a stale mirror."""

        async def main():
            # Occurrence 4 lands on the pump dispatch that follows the first
            # post-checkpoint shard-1 batch (ticks 0-2 are pre-checkpoint
            # traffic + checkpoint sync; 3 is that batch's execute).
            plan = FaultPlan({("shard:1.worker", 4): FaultAction(exc="worker")})
            wal = WriteAheadLog(str(tmp_path / "svc.wal"))
            config = ServiceConfig(
                max_batch_size=128, max_delay=0.0005, breaker_threshold=1,
                executor="process", executor_workers=2,
            )
            engine = make_engine()
            service = SlabHashService(engine, config=config, wal=wal, faults=plan)
            model = {}
            try:
                async with service:
                    pre = np.arange(1, 60, dtype=np.uint64)
                    await service.submit_many(
                        np.full(len(pre), C.OP_INSERT, dtype=np.int64),
                        pre,
                        (pre * 2).astype(np.uint32),
                    )
                    for key in pre:
                        model[int(key)] = int(key) * 2
                    service.checkpoint(str(tmp_path / "svc.snap"))
                    for key in range(60, 240):
                        try:
                            await service.insert(key, key * 2)
                            model[key] = key * 2
                        except (WorkerCrashed, ShardQuarantined):
                            pass
                    await settle(service)
                    stats = service.stats()
                    assert stats.breaker_trips >= 1
                    assert stats.shard_restores >= 1
                    # The crash hit the pump, not a batch — nothing aborted,
                    # and the acked batch replays from the WAL at restore.
                    assert all(
                        "WorkerCrashed" not in entry
                        for entry in stats.resize_failures
                    )
                    # Exactly-once: every acked op survives the crash.
                    for key, value in model.items():
                        assert await service.search(key) == value, key
            finally:
                engine.close()
                wal.close()

        asyncio.run(asyncio.wait_for(main(), timeout=60))

    def test_worker_death_without_checkpoint_soft_restores(self):
        """No checkpoint: the lane cools down, half-opens, and the shard is
        re-shipped from the parent mirror (state as of the last sync)."""

        async def main():
            plan = FaultPlan({("shard:0.worker", 2): FaultAction(exc="worker")})
            config = ServiceConfig(
                max_batch_size=32, max_delay=0.0005, breaker_threshold=1,
                executor="process", executor_workers=3,
            )
            engine = make_engine()
            service = SlabHashService(engine, config=config, faults=plan)
            try:
                async with service:
                    for key in range(1, 120):
                        try:
                            await service.insert(key, key + 1)
                        except (WorkerCrashed, ShardQuarantined):
                            pass
                    await settle(service)
                    stats = service.stats()
                    assert stats.breaker_trips >= 1
                    # Post-restore the service still serves every shard.
                    assert await service.search(1) in (2, C.SEARCH_NOT_FOUND)
                    await service.insert(500, 501)
                    assert await service.search(500) == 501
            finally:
                engine.close()

        asyncio.run(asyncio.wait_for(main(), timeout=60))


class TestStatsFractionClamps:
    def test_zero_batch_lane_stats_are_finite(self):
        lane = ShardLaneStats(
            shard=0, ops_enqueued=0, batches_cut=0, aligned_batches=0,
            forced_batches=0, forced_aligned_batches=0, modelled_seconds=0.0,
        )
        assert lane.deadline_forced_fraction == 0.0
        assert lane.warp_aligned_fraction == 0.0
        document = lane.as_dict()
        assert math.isfinite(document["deadline_forced_fraction"])
        assert math.isfinite(document["warp_aligned_fraction"])

    def test_all_quarantined_service_stats_are_finite(self):
        """Every lane open from the start: zero batches cut anywhere, and
        every fraction in stats()/as_dict() must still be finite."""

        async def main():
            async with SlabHashService(
                make_engine(), config=ServiceConfig(max_batch_size=64, max_delay=0.0005)
            ) as service:
                for shard in range(service.engine.num_shards):
                    service._lane_state[shard] = LANE_OPEN
                stats = service.stats()
                assert stats.batches_executed == 0
                assert stats.deadline_forced_fraction == 0.0
                assert stats.warp_aligned_fraction == 0.0
                document = stats.as_dict()
                assert math.isfinite(document["deadline_forced_fraction"])
                assert math.isfinite(document["warp_aligned_fraction"])
                for lane in stats.per_shard:
                    assert lane.deadline_forced_fraction == 0.0
                    assert lane.warp_aligned_fraction == 0.0
                for shard in range(service.engine.num_shards):
                    service._lane_state[shard] = "closed"

        asyncio.run(asyncio.wait_for(main(), timeout=30))

    def test_service_stats_fractions_clamp_directly(self):
        stats = ServiceStats(
            ops_enqueued=0, ops_completed=0, ops_failed=0, batches_executed=0,
            warp_aligned_batches=0, deadline_forced_batches=0,
            mean_batch_size=0.0, latency=LatencyReport.from_samples([]),
            wall_seconds=0.0, ops_per_second=0.0, modelled_seconds=0.0,
            modelled_ops_per_second=0.0,
        )
        assert stats.deadline_forced_fraction == 0.0
        assert stats.warp_aligned_fraction == 0.0
        assert math.isfinite(stats.as_dict()["deadline_forced_fraction"])
