"""Integration tests for the async request-service layer.

Plain ``asyncio.run`` drives the coroutines (no pytest-asyncio dependency);
correctness is checked against a host-side oracle dict and against direct
engine calls.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.core import constants as C
from repro.core.config import SlabAllocConfig
from repro.core.slab_hash import SlabHash
from repro.engine.sharded import ShardedSlabHash
from repro.service import ServiceConfig, SlabHashService
from repro.workloads.distributions import GAMMA_40_UPDATES, build_concurrent_workload
from repro.workloads.generators import unique_random_keys, values_for_keys

SMALL_ALLOC = SlabAllocConfig(num_super_blocks=2, num_memory_blocks=8, units_per_block=64)
FAST = ServiceConfig(max_batch_size=128, max_delay=0.0005)


def make_engine(**kwargs) -> ShardedSlabHash:
    return ShardedSlabHash(3, 16, alloc_config=SMALL_ALLOC, seed=5, **kwargs)


class TestSingleOperations:
    @pytest.mark.smoke
    def test_insert_search_delete_round_trip(self):
        async def main():
            async with SlabHashService(make_engine(), config=FAST) as service:
                await service.insert(42, 1000)
                assert await service.search(42) == 1000
                assert await service.delete(42) is True
                assert await service.delete(42) is False
                assert await service.search(42) is None

        asyncio.run(main())

    def test_single_table_engine_supported(self):
        async def main():
            table = SlabHash(8, alloc_config=SMALL_ALLOC, seed=3)
            async with SlabHashService(table, config=FAST) as service:
                await service.insert(7, 70)
                assert await service.search(7) == 70
            assert table.search(7) == 70  # state lives in the underlying table

        asyncio.run(main())

    def test_key_only_mode(self):
        async def main():
            engine = make_engine(key_value=False)
            async with SlabHashService(engine, config=FAST) as service:
                await service.insert(99)
                assert await service.search(99) == 99
                assert await service.delete(99) is True

        asyncio.run(main())

    def test_validation_errors(self):
        async def main():
            async with SlabHashService(make_engine(), config=FAST) as service:
                with pytest.raises(ValueError, match="storable key domain"):
                    await service.insert(C.EMPTY_KEY, 1)
                with pytest.raises(ValueError, match="requires a value"):
                    await service.insert(5)
                with pytest.raises(ValueError, match="unknown operation code"):
                    await service.submit(42, 5)

        asyncio.run(main())

    def test_submit_requires_running_service(self):
        async def main():
            service = SlabHashService(make_engine(), config=FAST)
            with pytest.raises(RuntimeError, match="not running"):
                await service.insert(1, 2)

        asyncio.run(main())


class TestStreams:
    def test_mixed_stream_matches_oracle(self):
        """Service results agree with a host-side model of REPLACE semantics."""

        async def main():
            engine = make_engine()
            keys = unique_random_keys(500, seed=7)
            values = values_for_keys(keys)
            engine.bulk_build(keys, values)
            oracle = dict(zip(keys.tolist(), values.tolist()))

            rng = np.random.default_rng(11)
            op_codes, op_keys, op_values, expected = [], [], [], []
            fresh = iter(unique_random_keys(400, seed=13).tolist())
            for _ in range(600):
                kind = rng.integers(0, 3)
                if kind == 0:
                    key, value = next(fresh), int(rng.integers(0, 2**30))
                    op_codes.append(C.OP_INSERT)
                    op_keys.append(key)
                    op_values.append(value)
                    expected.append(0)
                    oracle[key] = value
                elif kind == 1:
                    key = int(rng.choice(list(oracle) or [1]))
                    op_codes.append(C.OP_DELETE)
                    op_keys.append(key)
                    op_values.append(0)
                    expected.append(1 if key in oracle else 0)
                    oracle.pop(key, None)
                else:
                    key = int(rng.choice(list(oracle) or [1]))
                    op_codes.append(C.OP_SEARCH)
                    op_keys.append(key)
                    op_values.append(0)
                    expected.append(oracle.get(key, C.SEARCH_NOT_FOUND))

            async with SlabHashService(engine, config=FAST) as service:
                # Sequential awaits: each op completes before the next is
                # logged, so the oracle's serial semantics apply exactly.
                results = []
                for op, key, value in zip(op_codes, op_keys, op_values):
                    results.append(await service.submit(op, key, value))
            assert results == [int(e) & 0xFFFFFFFF for e in expected]

        asyncio.run(main())

    def test_submit_many_returns_results_in_stream_order(self):
        async def main():
            engine = make_engine()
            keys = unique_random_keys(800, seed=17)
            engine.bulk_build(keys, values_for_keys(keys))
            workload = build_concurrent_workload(GAMMA_40_UPDATES, 1500, keys, seed=19)
            async with SlabHashService(engine, config=FAST) as service:
                out = await service.submit_many(
                    workload.op_codes, workload.keys, workload.values
                )
            assert out.shape == (1500,)
            assert out.dtype == np.uint32
            # Spot-check searches of keys never mutated by the workload.
            untouched = ~np.isin(keys, workload.keys[workload.op_codes != C.OP_SEARCH])
            lookup = dict(zip(keys.tolist(), values_for_keys(keys).tolist()))
            searches = np.flatnonzero(
                (workload.op_codes == C.OP_SEARCH)
                & np.isin(workload.keys, keys[untouched])
            )[:50]
            for position in searches:
                assert out[position] == lookup[int(workload.keys[position])]

        asyncio.run(main())

    def test_stop_flushes_pending_operations(self):
        async def main():
            engine = make_engine()
            service = await SlabHashService(
                engine, config=ServiceConfig(max_batch_size=128, max_delay=30.0)
            ).start()
            # With a 30s delay budget nothing would flush on its own; stop()
            # must force the ragged tail through and resolve every future.
            futures = [
                asyncio.ensure_future(service.insert(1000 + index, index))
                for index in range(10)
            ]
            await asyncio.sleep(0)
            await service.stop()
            await asyncio.gather(*futures)
            assert service.pending == 0
            assert service.stats().ops_completed == 10
            assert len(engine) == len(engine.shards[0].items()) + sum(
                len(s.items()) for s in engine.shards[1:]
            )

        asyncio.run(main())

    def test_failed_batch_fails_its_futures_and_service_continues(self):
        async def main():
            # A one-bucket, one-block allocator exhausts quickly.
            from repro.core.slab_alloc import SlabAlloc
            from repro.gpusim.device import Device
            from repro.gpusim.errors import AllocationError

            device = Device()
            alloc = SlabAlloc(
                device,
                SlabAllocConfig(1, 1, 32, growth_threshold=10_000, max_super_blocks=1),
                seed=1,
            )
            table = SlabHash(1, device=device, alloc=alloc, seed=2)
            async with SlabHashService(table, config=FAST) as service:
                rng = np.random.default_rng(23)
                doomed = rng.choice(2**24, 2000, replace=False).astype(np.uint32)
                with pytest.raises(AllocationError):
                    await service.submit_many(
                        np.full(2000, C.OP_INSERT), doomed, doomed
                    )
                # The admission's single future raises once every chunk of
                # the doomed slice has drained, so nothing is left pending.
                while service.pending:
                    await asyncio.sleep(0.001)
                assert service.stats().ops_failed > 0
                # The service survives and keeps serving reads.
                assert await service.search(int(doomed[0])) is not None

        asyncio.run(main())


class TestStatsAndBatching:
    def test_stats_accounting(self):
        async def main():
            engine = make_engine()
            keys = unique_random_keys(600, seed=29)
            engine.bulk_build(keys, values_for_keys(keys))
            workload = build_concurrent_workload(GAMMA_40_UPDATES, 1000, keys, seed=31)
            async with SlabHashService(engine, config=FAST) as service:
                await service.submit_many(workload.op_codes, workload.keys, workload.values)
                stats = service.stats()
            assert stats.ops_enqueued == 1000
            assert stats.ops_completed == 1000
            assert stats.ops_failed == 0
            assert stats.batches_executed >= 1000 // 128
            assert stats.latency.count == 1000
            assert stats.latency.p50 <= stats.latency.p90 <= stats.latency.p99
            assert stats.latency.p99 <= stats.latency.max
            assert stats.wall_seconds > 0
            assert stats.ops_per_second > 0
            assert stats.modelled_seconds > 0
            assert stats.modelled_ops_per_second > 0
            assert stats.mean_batch_size > 0
            round_trip = stats.as_dict()
            assert round_trip["latency"]["count"] == 1000

        asyncio.run(main())

    def test_batches_are_warp_aligned_under_load(self):
        async def main():
            # A single-table service has one drain lane, so the 256-op stream
            # is not split by shard routing and every cut is a full multiple
            # of 64 (256 == 4 * 64); the forced tail, if any, is empty.
            table = SlabHash(16, alloc_config=SMALL_ALLOC, seed=5)
            keys = unique_random_keys(400, seed=37)
            table.bulk_build(keys, values_for_keys(keys))
            async with SlabHashService(
                table, config=ServiceConfig(max_batch_size=64, max_delay=0.5)
            ) as service:
                queries = np.tile(keys[:64], 4)
                await service.submit_many(
                    np.full(256, C.OP_SEARCH), queries, np.zeros(256)
                )
                stats = service.stats()
            assert stats.warp_aligned_batches == stats.batches_executed
            assert stats.deadline_forced_batches == 0

        asyncio.run(main())

    def test_scheduler_seeded_service_still_correct(self):
        async def main():
            engine = make_engine()
            keys = unique_random_keys(300, seed=41)
            engine.bulk_build(keys, values_for_keys(keys))
            config = ServiceConfig(max_batch_size=128, max_delay=0.0005, scheduler_seed=7)
            async with SlabHashService(engine, config=config) as service:
                assert await service.search(int(keys[0])) == int(
                    values_for_keys(keys[:1])[0]
                )

        asyncio.run(main())
