"""Latency regression: incremental migration bounds the between-batch pause.

Under churn a deferred stop-the-world policy makes some batch wait out a
*full rebuild* — a pause that grows with the table.  The incremental policy
advances at most ``max_steps * migration_step_buckets`` buckets per pause,
so no operation's latency ever includes a rebuild.  Both runs are measured
in modelled device seconds (deterministic — no wall clock), by timing each
``maybe_resize`` pump exactly the way the engine times its own kernels: a
device-counter snapshot around the call priced through
:class:`~repro.gpusim.costmodel.CostModel`.

The headline comparison runs at scale on a *right-sized* table (steady
bucket density), because modelled kernel-launch overhead floors every pump
at a few microseconds — a tiny table's rebuild hides under that floor and
proves nothing.  The acceptance bound from the PR: the worst per-op pause
under the incremental policy sits an order of magnitude below the
stop-the-world worst case, and the p99 pause holds the same bound (the
tail includes no rebuild either).
"""

from __future__ import annotations

import asyncio

import numpy as np

from repro.core import constants as C
from repro.core.config import SlabAllocConfig
from repro.core.resize import LoadFactorPolicy
from repro.core.slab_hash import SlabHash
from repro.gpusim.costmodel import CostModel
from repro.service import ServiceConfig, SlabHashService
from repro.workloads.generators import unique_random_keys

ALLOC = SlabAllocConfig(num_super_blocks=8, num_memory_blocks=32, units_per_block=128)
FAST = ServiceConfig(max_batch_size=4096, max_delay=0.0005)

STOP_THE_WORLD = LoadFactorPolicy(min_buckets=4).deferred()
INCREMENTAL = LoadFactorPolicy(
    min_buckets=4, incremental=True, migration_step_buckets=1
).deferred()

#: The headline run: N resident keys on a right-sized table, then a fresh-N
#: insert burst (pushes beta through the grow trigger at scale) and a delete
#: tail (drops it through the shrink trigger) — classic churn.
N = 200_000
BUCKETS = 20_480  # resident beta = 200k / (15 * 20480) ~ 0.65: in band


def _time_resize_pumps(table) -> list:
    """Record each between-batch ``maybe_resize`` pump's modelled seconds."""
    pauses: list = []
    cost = CostModel(table.device.spec)
    inner_maybe_resize = table.maybe_resize

    def timed_maybe_resize(**kwargs):
        before = table.device.snapshot()
        results = inner_maybe_resize(**kwargs)
        delta = table.device.counters.diff(before)
        pauses.append(cost.elapsed(delta).total_time)
        return results

    table.maybe_resize = timed_maybe_resize
    return pauses


def churn_at_scale(policy: LoadFactorPolicy, seed: int = 17):
    """Pre-populate (untimed), then drive the churn stream through a service."""
    base = unique_random_keys(2 * N, seed=seed)
    resident, fresh = base[:N], base[N:]
    doomed = np.concatenate([resident, fresh])[: int(1.8 * N)]
    op_codes = np.concatenate(
        [np.full(N, C.OP_INSERT), np.full(len(doomed), C.OP_DELETE)]
    )
    keys = np.concatenate([fresh, doomed])
    values = (keys * np.uint32(5)) & np.uint32(0xFFFF)

    table = SlabHash(
        BUCKETS, alloc_config=ALLOC, seed=seed, policy=policy, backend="vectorized"
    )
    table.bulk_insert(resident, (resident * np.uint32(5)) & np.uint32(0xFFFF))
    pauses = _time_resize_pumps(table)

    async def main():
        async with SlabHashService(table, config=FAST) as service:
            await service.submit_many(op_codes, keys, values)
            return service.stats()

    stats = asyncio.run(main())
    return pauses, stats, table


def churn_from_tiny(policy: LoadFactorPolicy, n: int, seed: int):
    """Grow-from-minimum churn (small, reference backend): insert a burst,
    then delete most of it — forces real grow *and* shrink decisions."""
    keys = unique_random_keys(n, seed=seed)
    doomed = keys[: int(n * 0.9)]
    op_codes = np.concatenate(
        [np.full(len(keys), C.OP_INSERT), np.full(len(doomed), C.OP_DELETE)]
    )
    stream_keys = np.concatenate([keys, doomed])
    values = (stream_keys * np.uint32(5)) & np.uint32(0xFFFF)
    table = SlabHash(policy.min_buckets, alloc_config=ALLOC, seed=seed, policy=policy)

    async def main():
        async with SlabHashService(table, config=ServiceConfig(
            max_batch_size=128, max_delay=0.0005
        )) as service:
            await service.submit_many(op_codes, stream_keys, values)
            return service.stats()

    stats = asyncio.run(main())
    return stats, table


def p99(samples: list) -> float:
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(0.99 * (len(ordered) - 1)))]


def test_incremental_policy_keeps_the_per_op_pause_an_order_of_magnitude_down():
    stw_pauses, stw_stats, _ = churn_at_scale(STOP_THE_WORLD)
    incr_pauses, incr_stats, _ = churn_at_scale(INCREMENTAL)

    # Same workload, one pause per drain iteration in both runs.
    assert len(stw_pauses) == len(incr_pauses) > 10

    # Both runs really did pay for the same grow trigger: a full rebuild in
    # one, bounded migration steps in the other.
    assert stw_stats.resizes_performed >= 1
    assert stw_stats.migration_steps == 0
    assert incr_stats.migration_steps > 0

    # The regression bound itself: the worst pause any operation can land
    # behind is an order of magnitude smaller under incremental migration,
    # and the p99 pause holds the same bound (no op waits out a rebuild,
    # not even in the tail).
    worst_stw = max(stw_pauses)
    worst_incr = max(incr_pauses)
    assert worst_stw > 0
    assert worst_incr * 10 <= worst_stw, (
        f"incremental worst pause {worst_incr:.3e}s not 10x below "
        f"stop-the-world worst pause {worst_stw:.3e}s"
    )
    assert p99(incr_pauses) * 10 <= worst_stw


def test_service_stats_expose_migration_step_counters():
    stats, table = churn_from_tiny(INCREMENTAL, n=1500, seed=23)
    assert stats.migration_steps > 0
    assert stats.migration_buckets_moved > 0
    assert stats.migration_items_moved > 0
    # The counters aggregate the engine's own step accounting, and survive
    # the dict serialization the CLI and benchmarks consume.
    assert stats.migration_steps == table.resize_stats.migration_steps
    assert stats.migration_buckets_moved == table.resize_stats.migration_buckets
    assert stats.migration_items_moved == table.resize_stats.migration_items
    as_dict = stats.as_dict()
    assert as_dict["migration_steps"] == stats.migration_steps
    assert as_dict["migration_buckets_moved"] == stats.migration_buckets_moved
    assert as_dict["migration_items_moved"] == stats.migration_items_moved


def test_churn_end_state_is_identical_under_both_policies():
    """The payment schedule must not change the answer: after the same
    churn stream, both policies land on identical live contents."""
    _, stw_table = churn_from_tiny(STOP_THE_WORLD, n=1200, seed=29)
    _, incr_table = churn_from_tiny(INCREMENTAL, n=1200, seed=29)
    while incr_table.migration is not None:  # drain any in-flight tail
        incr_table.migrate_step()
    assert sorted(incr_table.items()) == sorted(stw_table.items())
