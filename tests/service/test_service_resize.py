"""Between-batch resizing in the async service layer.

A deferred :class:`~repro.core.resize.LoadFactorPolicy` is applied by the
service after each micro-batch's futures resolve, so migrations happen while
no request is in flight; correctness is checked against an oracle dict and
the coverage counters must show real grow/shrink cycles.
"""

from __future__ import annotations

import asyncio

import numpy as np

from repro.core import constants as C
from repro.core.config import SlabAllocConfig
from repro.core.resize import LoadFactorPolicy
from repro.core.slab_hash import SlabHash
from repro.engine.sharded import ShardedSlabHash
from repro.service import ServiceConfig, SlabHashService
from repro.workloads.generators import unique_random_keys

SMALL_ALLOC = SlabAllocConfig(num_super_blocks=2, num_memory_blocks=8, units_per_block=64)
FAST = ServiceConfig(max_batch_size=128, max_delay=0.0005)


def churn_stream(n: int, seed: int):
    """Insert a burst of keys, then delete most of it (forces grow + shrink)."""
    keys = unique_random_keys(n, seed=seed)
    doomed = keys[: int(n * 0.9)]
    op_codes = np.concatenate(
        [np.full(len(keys), C.OP_INSERT), np.full(len(doomed), C.OP_DELETE)]
    )
    stream_keys = np.concatenate([keys, doomed])
    values = (stream_keys * np.uint32(5)) & np.uint32(0xFFFF)
    return op_codes, stream_keys, values, keys


class TestServiceResize:
    def test_deferred_policy_resizes_between_batches(self):
        policy = LoadFactorPolicy(min_buckets=2).deferred()
        table = SlabHash(2, alloc_config=SMALL_ALLOC, seed=3, policy=policy)
        op_codes, keys, values, inserted = churn_stream(700, seed=3)

        async def main():
            async with SlabHashService(table, config=FAST) as service:
                results = await service.submit_many(op_codes, keys, values)
                survivors = inserted[int(len(inserted) * 0.9):]
                found = await service.submit_many(
                    np.full(len(survivors), C.OP_SEARCH), survivors
                )
                return results, found, service.resizes_performed, service.resize_modelled_seconds

        results, found, resizes, modelled = asyncio.run(main())
        # All deletes hit (every doomed key was inserted in an earlier batch or
        # the same batch before it in stream order).
        assert (results[len(inserted):] == 1).all()
        survivors = inserted[int(len(inserted) * 0.9):]
        expected = (survivors.astype(np.uint64) * 5) & 0xFFFF
        assert np.array_equal(found, expected.astype(np.uint32))
        # The service (not the table) triggered the migrations, between batches.
        assert resizes >= 2
        assert modelled > 0
        assert table.resize_stats.grows >= 1
        assert table.resize_stats.shrinks >= 1
        eps = table.config.elements_per_slab
        assert policy.decide(len(table), table.num_buckets, eps) is None

    def test_sharded_engine_resizes_between_batches(self):
        policy = LoadFactorPolicy(min_buckets=2).deferred()
        engine = ShardedSlabHash(
            2, 2, alloc_config=SMALL_ALLOC, seed=7, load_factor_policy=policy
        )
        op_codes, keys, values, inserted = churn_stream(600, seed=7)

        async def main():
            async with SlabHashService(engine, config=FAST) as service:
                await service.submit_many(op_codes, keys, values)
                return service.resizes_performed

        resizes = asyncio.run(main())
        assert resizes >= 2
        assert any(shard.resize_stats.grows >= 1 for shard in engine.shards)
        for shard in engine.shards:
            eps = shard.config.elements_per_slab
            assert policy.decide(len(shard), shard.num_buckets, eps) is None

    def test_failed_between_batch_resize_keeps_service_alive(self):
        """A migration failure is recorded; the drain loop must keep serving."""
        table = SlabHash(4, alloc_config=SMALL_ALLOC, seed=13)

        async def main():
            async with SlabHashService(table, config=FAST) as service:
                await service.insert(1, 10)

                def boom():  # stand-in for allocator exhaustion mid-migration
                    raise RuntimeError("migration failed")

                table.maybe_resize = boom
                await service.insert(2, 20)  # triggers the failing resize
                assert await service.search(1) == 10  # still serving
                assert await service.search(2) == 20
                return service.resize_failures

        failures = asyncio.run(main())
        assert len(failures) >= 1
        assert "RuntimeError: migration failed" in failures[0]
        assert "after batch" in failures[0]

    def test_resize_failure_survives_a_subsequent_success(self):
        """A later successful migration must not erase a recorded failure."""
        table = SlabHash(4, alloc_config=SMALL_ALLOC, seed=13)

        async def main():
            async with SlabHashService(table, config=FAST) as service:
                real_maybe_resize = table.maybe_resize
                calls = {"n": 0}

                def flaky():
                    calls["n"] += 1
                    if calls["n"] == 1:
                        raise RuntimeError("transient exhaustion")
                    return real_maybe_resize()

                table.maybe_resize = flaky
                await service.insert(1, 10)  # batch 0: failing resize
                await service.search(1)      # batch 1+: succeeding resizes
                await service.insert(2, 20)
                assert calls["n"] >= 2  # a success really did follow
                stats = service.stats()
                return service.resize_failures, stats

        failures, stats = asyncio.run(main())
        assert len(failures) == 1  # recorded once, never overwritten
        assert "transient exhaustion" in failures[0]
        assert stats.resize_failures == failures  # surfaced in ServiceStats
        assert stats.as_dict()["resize_failures"] == list(failures)
        assert stats.resizes_performed == stats.as_dict()["resizes_performed"]

    def test_service_without_policy_never_resizes(self):
        table = SlabHash(4, alloc_config=SMALL_ALLOC, seed=11)

        async def main():
            async with SlabHashService(table, config=FAST) as service:
                for key in range(1, 200):
                    await service.insert(key, key)
                return service.resizes_performed

        assert asyncio.run(main()) == 0
        assert table.resize_stats.resizes == 0
