"""High-concurrency soak of the rebuilt service path, diffed against a model.

Dozens of concurrent clients — each owning a disjoint slice of the key
space — pound the per-shard drain loops with a mix of awaited single
operations and bulk ``submit_many`` admissions, keeping thousands of
operations in flight at once.  Each client tracks its own dict model
(disjoint ownership makes the models exact regardless of how the event loop
interleaves clients), and every admission's results are checked against it,
so a lost, duplicated, or misrouted future shows up as a hard diff rather
than a hang or a silently wrong aggregate.

Per-key ordering is asserted two ways: dedicated ordering clients run an
awaited insert→replace→search→delete→search chain per key (each step's
result proves the previous step was applied first), and bulk clients verify
replace-semantics across rounds on keys they revisit.

The scenario seed is pinned for reproducibility; CI's ``service-stress``
job also passes ``SERVICE_STRESS_SEED`` derived from the workflow run id so
every run explores one fresh interleaving (a failure names the seed needed
to replay it locally).
"""

from __future__ import annotations

import asyncio
import os

import numpy as np
import pytest

from repro.core import constants as C
from repro.engine.sharded import ShardedSlabHash
from repro.service import ServiceConfig, SlabHashService

PINNED_SEED = 714

NUM_BULK_CLIENTS = 48
NUM_ORDERING_CLIENTS = 8
ROUNDS_PER_CLIENT = 8
OPS_PER_ROUND = 48  # bulk clients keep NUM_BULK_CLIENTS * OPS_PER_ROUND ~ 2300 ops in flight
KEYS_PER_CLIENT = 512


def _seeds() -> list:
    seeds = [PINNED_SEED]
    raw = os.environ.get("SERVICE_STRESS_SEED")
    if raw:
        try:
            seeds.append(int(raw.strip()) % 2**31)
        except ValueError:
            pass
    return seeds


def _expected(model: dict, op: int, key: int, value: int) -> int:
    """SlabHash result conventions for one op against the dict model."""
    if op == C.OP_INSERT:
        model[key] = value
        return 0
    if op == C.OP_DELETE:
        return 1 if model.pop(key, None) is not None else 0
    return model.get(key, C.SEARCH_NOT_FOUND)


class _BulkClient:
    """Submits bulk rounds over its own key range; round-unique keys keep
    per-op expected results exact (no same-key conflicts within a batch)."""

    def __init__(self, index: int, rng: np.random.Generator) -> None:
        base = 1 + index * KEYS_PER_CLIENT
        self.keys = np.arange(base, base + KEYS_PER_CLIENT, dtype=np.uint64)
        self.rng = rng
        self.model: dict = {}
        self.ops_submitted = 0

    async def run(self, service: SlabHashService) -> None:
        for _round in range(ROUNDS_PER_CLIENT):
            count = int(self.rng.integers(OPS_PER_ROUND // 2, OPS_PER_ROUND + 1))
            keys = self.rng.choice(self.keys, size=count, replace=False)
            op_codes = self.rng.choice(
                np.array([C.OP_INSERT, C.OP_INSERT, C.OP_SEARCH, C.OP_DELETE]),
                size=count,
            )
            values = self.rng.integers(0, 2**30, size=count, dtype=np.uint32)
            expected = np.array(
                [
                    _expected(self.model, int(op), int(key), int(value))
                    for op, key, value in zip(op_codes, keys, values)
                ],
                dtype=np.uint32,
            )
            results = await service.submit_many(op_codes, keys, values)
            assert len(results) == count  # one future, full coverage, once
            np.testing.assert_array_equal(
                results, expected,
                err_msg="bulk admission results diverged from the dict model",
            )
            self.ops_submitted += count


class _OrderingClient:
    """Awaited per-key chains through ``submit``: every step's result is
    only correct if the previous step on that key was applied first, so a
    reordering inside a shard's log or across batches fails loudly."""

    def __init__(self, index: int, rng: np.random.Generator) -> None:
        base = 1 + (NUM_BULK_CLIENTS + index) * KEYS_PER_CLIENT
        self.keys = [base + offset for offset in range(ROUNDS_PER_CLIENT)]
        self.rng = rng
        self.model: dict = {}
        self.ops_submitted = 0

    async def run(self, service: SlabHashService) -> None:
        for key in self.keys:
            first, second = (int(v) for v in self.rng.integers(0, 2**30, size=2))
            await service.insert(key, first)
            assert await service.search(key) == first
            await service.insert(key, second)  # REPLACE semantics
            assert await service.search(key) == second
            assert await service.delete(key) is True
            assert await service.search(key) is None
            assert await service.delete(key) is False
            self.ops_submitted += 7


@pytest.mark.parametrize("seed", _seeds())
def test_soak_mixed_submissions_match_models_and_nothing_is_lost(seed):
    async def main() -> None:
        engine = ShardedSlabHash.for_utilization(
            3, NUM_BULK_CLIENTS * KEYS_PER_CLIENT // 2, 0.6, seed=11
        )
        root = np.random.default_rng(seed)
        bulk = [
            _BulkClient(index, np.random.default_rng(root.integers(2**63)))
            for index in range(NUM_BULK_CLIENTS)
        ]
        ordering = [
            _OrderingClient(index, np.random.default_rng(root.integers(2**63)))
            for index in range(NUM_ORDERING_CLIENTS)
        ]
        clients = bulk + ordering
        config = ServiceConfig(max_batch_size=1024, max_delay=0.002)
        service = SlabHashService(engine, config=config)
        async with service:
            await asyncio.gather(*[client.run(service) for client in clients])
            stats = service.stats()

        total_ops = sum(client.ops_submitted for client in clients)
        assert total_ops > 0
        # No lost or duplicated futures: every admitted op completed exactly
        # once, none failed, and nothing is stranded in a shard's log.
        assert stats.ops_enqueued == total_ops
        assert stats.ops_completed == total_ops
        assert stats.ops_failed == 0
        assert service.pending == 0
        assert stats.latency.count == total_ops

        # The engine's final contents are exactly the union of the disjoint
        # client models (ordering clients delete everything they insert).
        combined: dict = {}
        for client in clients:
            combined.update(client.model)
        assert sorted(combined.items()) == sorted(
            (int(k), int(v)) for k, v in engine.items()
        )

    asyncio.run(main())


def test_soak_under_scheduler_seed_still_matches_the_model():
    """A smaller soak through seeded interleaved execution (the replay-parity
    configuration): per-shard drains must agree with the model even when
    every batch runs under a WarpScheduler."""

    async def main() -> None:
        engine = ShardedSlabHash.for_utilization(2, 4_096, 0.6, seed=13)
        root = np.random.default_rng(PINNED_SEED + 1)
        clients = [
            _BulkClient(index, np.random.default_rng(root.integers(2**63)))
            for index in range(6)
        ]
        config = ServiceConfig(max_batch_size=256, max_delay=0.001, scheduler_seed=5)
        service = SlabHashService(engine, config=config)
        async with service:
            await asyncio.gather(*[client.run(service) for client in clients])
            stats = service.stats()
        assert stats.ops_failed == 0
        assert stats.ops_completed == sum(c.ops_submitted for c in clients)
        combined: dict = {}
        for client in clients:
            combined.update(client.model)
        assert sorted(combined.items()) == sorted(
            (int(k), int(v)) for k, v in engine.items()
        )

    asyncio.run(main())


class TestPerShardAggregation:
    """Regression for the ServiceStats aggregation arithmetic: every
    aggregate must be an exact sum over the per-shard lanes (and
    ``modelled_seconds`` the busiest lane), so a change to lane accounting
    cannot silently skew the benchmark's headline fractions."""

    def test_aggregates_are_sums_over_lanes(self):
        async def main() -> None:
            engine = ShardedSlabHash.for_utilization(3, 4_096, 0.6, seed=17)
            root = np.random.default_rng(PINNED_SEED + 2)
            clients = [
                _BulkClient(index, np.random.default_rng(root.integers(2**63)))
                for index in range(8)
            ]
            service = SlabHashService(
                engine, config=ServiceConfig(max_batch_size=256, max_delay=0.001)
            )
            async with service:
                await asyncio.gather(*[client.run(service) for client in clients])
                stats = service.stats()

            lanes = stats.per_shard
            assert len(lanes) == service.num_lanes == 3
            assert [lane.shard for lane in lanes] == [0, 1, 2]
            assert stats.ops_enqueued == sum(l.ops_enqueued for l in lanes)
            assert stats.batches_executed == sum(l.batches_cut for l in lanes)
            assert stats.deadline_forced_batches == sum(l.forced_batches for l in lanes)
            # Size view: aligned-by-size = natural cuts + forced warp-sized
            # tails, per lane and in the total.
            for lane in lanes:
                assert lane.warp_aligned_batches == (
                    lane.aligned_batches + lane.forced_aligned_batches
                )
                assert 0 <= lane.forced_aligned_batches <= lane.forced_batches
                assert lane.modelled_seconds >= 0.0
            assert stats.warp_aligned_batches == sum(
                l.warp_aligned_batches for l in lanes
            )
            # Parallel device-time view: the busiest lane, not the sum.
            assert stats.modelled_seconds == max(l.modelled_seconds for l in lanes)
            assert stats.modelled_seconds <= sum(l.modelled_seconds for l in lanes)
            # Round-trip: the dict view carries the lane breakdown.
            as_dict = stats.as_dict()
            assert [entry["shard"] for entry in as_dict["per_shard"]] == [0, 1, 2]
            assert as_dict["per_shard"][0]["warp_aligned_batches"] == (
                lanes[0].warp_aligned_batches
            )

        asyncio.run(main())

    def test_single_table_service_has_one_lane(self):
        from repro.core.config import SlabAllocConfig
        from repro.core.slab_hash import SlabHash

        async def main() -> None:
            table = SlabHash(
                16,
                alloc_config=SlabAllocConfig(
                    num_super_blocks=2, num_memory_blocks=8, units_per_block=64
                ),
                seed=5,
            )
            service = SlabHashService(
                table, config=ServiceConfig(max_batch_size=128, max_delay=0.0005)
            )
            async with service:
                await service.insert(1, 10)
                stats = service.stats()
            assert service.num_lanes == 1
            assert len(stats.per_shard) == 1
            assert stats.per_shard[0].shard == 0
            assert stats.ops_enqueued == stats.per_shard[0].ops_enqueued == 1

        asyncio.run(main())
