"""Unit tests for the array-backed operation-log micro-batcher.

The batcher is event-loop agnostic, so a plain object with ``set_result`` /
``set_exception`` / ``done`` stands in for an asyncio future; chunks are
built straight from NumPy arrays the way the service's admission path
builds them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpusim.warp import WARP_SIZE
from repro.service.batcher import CutBatch, MicroBatcher, OpChunk, OpSlice


class FakeFuture:
    """Minimal future double: records the single resolution it receives."""

    def __init__(self) -> None:
        self.result = None
        self.exception = None
        self._done = False

    def set_result(self, value) -> None:
        assert not self._done, "future resolved twice"
        self.result = value
        self._done = True

    def set_exception(self, error) -> None:
        assert not self._done, "future resolved twice"
        self.exception = error
        self._done = True

    def done(self) -> bool:
        return self._done


def make_chunk(keys, *, enqueued_at: float = 0.0, slice_=None) -> OpChunk:
    """One single-chunk admission over ``keys`` (insert ops, value == key)."""
    keys = np.asarray(keys, dtype=np.uint64)
    if slice_ is None:
        slice_ = OpSlice(FakeFuture(), len(keys))
    return OpChunk(
        np.ones(len(keys), dtype=np.int64),
        keys,
        keys.astype(np.uint32),
        slice_,
        np.arange(len(keys), dtype=np.int64),
        enqueued_at,
    )


def fill(batcher: MicroBatcher, count: int, *, start: int = 0) -> None:
    """Admit ``count`` ops as single-op chunks (like awaited ``submit`` calls)."""
    for index in range(start, start + count):
        batcher.add(make_chunk([index], enqueued_at=float(index)))


class TestConstruction:
    def test_max_batch_rounds_down_to_warp_multiple(self):
        assert MicroBatcher(100).max_batch_size == 96
        assert MicroBatcher(1024).max_batch_size == 1024

    def test_rejects_sub_warp_max_batch(self):
        with pytest.raises(ValueError, match="at least one warp"):
            MicroBatcher(WARP_SIZE - 1)

    def test_rejects_non_positive_warp_size(self):
        with pytest.raises(ValueError, match="warp_size"):
            MicroBatcher(64, warp_size=0)


class TestCutting:
    def test_unforced_take_is_warp_aligned(self):
        batcher = MicroBatcher(128)
        batcher.add(make_chunk(range(70)))
        batch = batcher.take()
        assert len(batch) == 64  # largest warp multiple <= 70
        assert len(batcher) == 6

    def test_unforced_take_below_one_warp_yields_nothing(self):
        batcher = MicroBatcher(128)
        batcher.add(make_chunk(range(WARP_SIZE - 1)))
        assert batcher.take() is None
        assert len(batcher) == WARP_SIZE - 1

    def test_forced_take_flushes_the_ragged_tail(self):
        batcher = MicroBatcher(128)
        batcher.add(make_chunk(range(70)))
        batcher.take()
        tail = batcher.take(force=True)
        assert len(tail) == 6
        assert len(batcher) == 0

    def test_take_caps_at_max_batch_size(self):
        batcher = MicroBatcher(64)
        batcher.add(make_chunk(range(200)))
        assert batcher.full
        assert len(batcher.take()) == 64
        assert len(batcher.take(force=True)) == 64

    def test_fifo_order_preserved_across_chunks(self):
        batcher = MicroBatcher(64)
        fill(batcher, 40)
        batch = batcher.take()
        assert batch.keys.tolist() == list(range(32))

    def test_straddling_chunk_is_split_not_reordered(self):
        """A chunk crossing the cut boundary is split by array slicing; its
        tail stays at the head of the log for the next cut."""
        batcher = MicroBatcher(64)
        batcher.add(make_chunk(range(20)))
        batcher.add(make_chunk(range(100, 130)))  # 30 ops: straddles the 32 cut
        batch = batcher.take()
        assert len(batch) == 32
        assert batch.keys.tolist() == list(range(20)) + list(range(100, 112))
        assert len(batcher) == 18
        tail = batcher.take(force=True)
        assert tail.keys.tolist() == list(range(112, 130))

    def test_empty_chunk_completes_immediately(self):
        batcher = MicroBatcher(64)
        slice_ = OpSlice(FakeFuture(), 0)
        batcher.add(make_chunk([], slice_=slice_))
        assert len(batcher) == 0
        assert slice_.future.done()

    def test_oldest_enqueued_at(self):
        batcher = MicroBatcher(64)
        assert batcher.oldest_enqueued_at() is None
        batcher.add(make_chunk([7], enqueued_at=7.0))
        batcher.add(make_chunk([9], enqueued_at=9.0))
        assert batcher.oldest_enqueued_at() == 7.0


class TestCompletion:
    def test_results_scatter_back_in_admission_order(self):
        """A multi-chunk admission resolves with results in admission order
        even when its chunks land in different batches."""
        future = FakeFuture()
        slice_ = OpSlice(future, 6)
        # Simulates shard routing: positions interleave the two chunks.
        chunk_a = OpChunk(
            np.ones(3, dtype=np.int64),
            np.array([10, 20, 30], dtype=np.uint64),
            None,
            slice_,
            np.array([0, 2, 4]),
            0.0,
        )
        chunk_b = OpChunk(
            np.ones(3, dtype=np.int64),
            np.array([11, 21, 31], dtype=np.uint64),
            None,
            slice_,
            np.array([1, 3, 5]),
            0.0,
        )
        CutBatch([chunk_a]).complete(np.array([100, 102, 104], dtype=np.uint32))
        assert not future.done()  # chunk_b still outstanding
        CutBatch([chunk_b]).complete(np.array([101, 103, 105], dtype=np.uint32))
        assert future.done()
        assert future.result.tolist() == [100, 101, 102, 103, 104, 105]

    def test_split_chunks_share_their_slice(self):
        future = FakeFuture()
        slice_ = OpSlice(future, 64)
        batcher = MicroBatcher(32)
        batcher.add(
            OpChunk(
                np.ones(64, dtype=np.int64),
                np.arange(64, dtype=np.uint64),
                None,
                slice_,
                np.arange(64, dtype=np.int64),
                0.0,
            )
        )
        first, second = batcher.take(), batcher.take()
        first.complete(np.arange(32, dtype=np.uint32))
        assert not future.done()
        second.complete(np.arange(32, 64, dtype=np.uint32))
        assert future.result.tolist() == list(range(64))

    def test_one_failed_chunk_fails_the_whole_admission(self):
        future = FakeFuture()
        slice_ = OpSlice(future, 64)
        batcher = MicroBatcher(32)
        batcher.add(make_chunk(range(64), slice_=slice_))
        first, second = batcher.take(), batcher.take()
        boom = RuntimeError("device on fire")
        first.fail(boom)
        assert not future.done()  # still waiting on the second chunk
        second.complete(np.arange(32, dtype=np.uint32))
        assert future.exception is boom

    def test_multi_chunk_batch_concatenates_arrays(self):
        batcher = MicroBatcher(64)
        batcher.add(make_chunk([1, 2]))
        batcher.add(make_chunk([3, 4]))
        batch = batcher.take(force=True)
        assert batch.op_codes.tolist() == [1, 1, 1, 1]
        assert batch.keys.tolist() == [1, 2, 3, 4]
        assert batch.values.tolist() == [1, 2, 3, 4]
        assert [(start, end) for _c, start, end in batch.spans()] == [(0, 2), (2, 4)]


class TestAccounting:
    def test_counters_track_cuts_and_alignment(self):
        batcher = MicroBatcher(64)
        batcher.add(make_chunk(range(70)))
        batcher.take()            # 64 ops, aligned
        batcher.take(force=True)  # 6 ops, ragged
        assert batcher.ops_enqueued == 70
        assert batcher.batches_cut == 2
        assert batcher.aligned_batches == 1
        assert batcher.forced_batches == 1
        assert batcher.forced_aligned_batches == 0

    def test_forced_warp_sized_tail_is_distinguishable_from_aligned(self):
        """Regression: a deadline-forced cut of an exactly-warp-sized tail
        used to count as a naturally aligned batch, so alignment stats were
        inflated on deadline-heavy traffic."""
        batcher = MicroBatcher(128)
        batcher.add(make_chunk(range(WARP_SIZE)))
        batch = batcher.take(force=True)  # deadline fires on a full warp
        assert len(batch) == WARP_SIZE
        assert batcher.aligned_batches == 0   # not a size-triggered cut
        assert batcher.forced_batches == 1
        assert batcher.forced_aligned_batches == 1  # but warp-sized, visibly so

    def test_forced_empty_take_counts_nothing(self):
        batcher = MicroBatcher(64)
        assert batcher.take(force=True) is None
        assert batcher.batches_cut == 0
        assert batcher.forced_batches == 0
        assert batcher.aligned_batches == 0
