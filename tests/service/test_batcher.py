"""Unit tests for the operation-log micro-batcher's coalescing policy."""

from __future__ import annotations

import pytest

from repro.gpusim.warp import WARP_SIZE
from repro.service.batcher import MicroBatcher, PendingOp


def pending(index: int) -> PendingOp:
    return PendingOp(op_code=1, key=index, value=index, future=None, enqueued_at=float(index))


class TestConstruction:
    def test_max_batch_rounds_down_to_warp_multiple(self):
        assert MicroBatcher(100).max_batch_size == 96
        assert MicroBatcher(1024).max_batch_size == 1024

    def test_rejects_sub_warp_max_batch(self):
        with pytest.raises(ValueError, match="at least one warp"):
            MicroBatcher(WARP_SIZE - 1)

    def test_rejects_non_positive_warp_size(self):
        with pytest.raises(ValueError, match="warp_size"):
            MicroBatcher(64, warp_size=0)


class TestCutting:
    def test_unforced_take_is_warp_aligned(self):
        batcher = MicroBatcher(128)
        for index in range(70):
            batcher.add(pending(index))
        batch = batcher.take()
        assert len(batch) == 64  # largest warp multiple <= 70
        assert len(batcher) == 6

    def test_unforced_take_below_one_warp_yields_nothing(self):
        batcher = MicroBatcher(128)
        for index in range(WARP_SIZE - 1):
            batcher.add(pending(index))
        assert batcher.take() == []
        assert len(batcher) == WARP_SIZE - 1

    def test_forced_take_flushes_the_ragged_tail(self):
        batcher = MicroBatcher(128)
        for index in range(70):
            batcher.add(pending(index))
        batcher.take()
        tail = batcher.take(force=True)
        assert len(tail) == 6
        assert len(batcher) == 0

    def test_take_caps_at_max_batch_size(self):
        batcher = MicroBatcher(64)
        for index in range(200):
            batcher.add(pending(index))
        assert batcher.full
        assert len(batcher.take()) == 64
        assert len(batcher.take(force=True)) == 64

    def test_fifo_order_preserved(self):
        batcher = MicroBatcher(64)
        for index in range(40):
            batcher.add(pending(index))
        batch = batcher.take()
        assert [op.key for op in batch] == list(range(32))

    def test_oldest_enqueued_at(self):
        batcher = MicroBatcher(64)
        assert batcher.oldest_enqueued_at() is None
        batcher.add(pending(7))
        batcher.add(pending(9))
        assert batcher.oldest_enqueued_at() == 7.0


class TestAccounting:
    def test_counters_track_cuts_and_alignment(self):
        batcher = MicroBatcher(64)
        for index in range(70):
            batcher.add(pending(index))
        batcher.take()            # 64 ops, aligned
        batcher.take(force=True)  # 6 ops, ragged
        assert batcher.ops_enqueued == 70
        assert batcher.batches_cut == 2
        assert batcher.aligned_batches == 1
        assert batcher.forced_batches == 1
        assert batcher.forced_aligned_batches == 0

    def test_forced_warp_sized_tail_is_distinguishable_from_aligned(self):
        """Regression: a deadline-forced cut of an exactly-warp-sized tail
        used to count as a naturally aligned batch, so alignment stats were
        inflated on deadline-heavy traffic."""
        batcher = MicroBatcher(128)
        for index in range(WARP_SIZE):
            batcher.add(pending(index))
        batch = batcher.take(force=True)  # deadline fires on a full warp
        assert len(batch) == WARP_SIZE
        assert batcher.aligned_batches == 0   # not a size-triggered cut
        assert batcher.forced_batches == 1
        assert batcher.forced_aligned_batches == 1  # but warp-sized, visibly so

    def test_forced_empty_take_counts_nothing(self):
        batcher = MicroBatcher(64)
        assert batcher.take(force=True) == []
        assert batcher.batches_cut == 0
        assert batcher.forced_batches == 0
        assert batcher.aligned_batches == 0
