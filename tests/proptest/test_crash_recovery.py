"""Crash-point property tests: kill the WAL at arbitrary offsets, recover, diff.

Each pinned seed generates a random program of mixed micro-batches
(batch-unique keys, insert-heavy head, delete-heavy tail — the same churn
shape as the differential harness) and runs it the way the service drain
loop would: append the batch to the WAL, execute it, apply the deferred
load-factor policy.  A checkpoint (snapshot + WAL truncate) lands at a
random batch boundary.  Then the WAL file is chopped at crash points —
including every-byte edge cases: just after the header, mid-record, and the
clean end — and ``recover`` is checked differentially against

* a plain-dict model replaying the surviving whole batches, and
* a live *oracle* run executing exactly those batches on a fresh engine,
  which must match the recovered one bit-for-bit: items, bucket counts,
  chain structure, allocator occupancy and device counters.

CI runs the pinned seeds plus one derived from ``PROPTEST_SEED`` (set from
the workflow's run id), mirroring the differential-harness job.
"""

from __future__ import annotations

import asyncio
import hashlib
import os
import random
import shutil

import numpy as np
import pytest

from repro.core import constants as C
from repro.core.config import SlabAllocConfig
from repro.core.resize import LoadFactorPolicy
from repro.core.slab_hash import SlabHash
from repro.engine import ShardedSlabHash
from repro.faults import FaultAction, FaultPlan, InjectedBatchFailure
from repro.persist import WalRecord, WriteAheadLog, recover, save
from repro.persist.recovery import replay_record
from repro.persist.wal import HEADER_SIZE
from repro.service import LANE_OPEN, ServiceConfig, SlabHashService

PINNED_SEEDS = [711, 722, 733]
KEY_SPACE = 50_000
ALLOC = SlabAllocConfig(num_super_blocks=4, num_memory_blocks=32, units_per_block=128)
#: Deferred, exactly as the service layer runs it (resize between batches).
POLICY = LoadFactorPolicy(min_buckets=2).deferred()


def _seeds() -> list:
    seeds = list(PINNED_SEEDS)
    raw = os.environ.get("PROPTEST_SEED")
    if raw:
        try:
            seeds.append(int(raw.strip()) % 2**31)
        except ValueError:
            pass
    return seeds


def fresh_impl(kind: str):
    if kind == "engine":
        return ShardedSlabHash(
            2, POLICY.min_buckets, alloc_config=ALLOC, seed=41, load_factor_policy=POLICY
        )
    return SlabHash(POLICY.min_buckets, alloc_config=ALLOC, seed=41, policy=POLICY)


def generate_batches(seed: int, num_batches: int = 10) -> list:
    """Random mixed micro-batches with batch-unique keys (schedule-independent)."""
    rng = random.Random(seed)
    shadow: set = set()
    batches = []
    for index in range(num_batches):
        count = rng.randrange(30, 130)
        delete_phase = index >= (2 * num_batches) // 3
        existing = sorted(shadow)
        rng.shuffle(existing)
        keys = existing[: count // 2 if delete_phase else count // 4]
        seen = set(keys)
        while len(keys) < count:
            key = rng.randrange(1, KEY_SPACE)
            if key not in seen:
                keys.append(key)
                seen.add(key)
        rng.shuffle(keys)
        op_codes, values = [], []
        weights = (
            [C.OP_DELETE, C.OP_DELETE, C.OP_SEARCH, C.OP_INSERT]
            if delete_phase
            else [C.OP_INSERT, C.OP_INSERT, C.OP_INSERT, C.OP_SEARCH, C.OP_DELETE]
        )
        for key in keys:
            code = rng.choice(weights)
            if code == C.OP_INSERT:
                shadow.add(key)
            elif code == C.OP_DELETE:
                shadow.discard(key)
            op_codes.append(int(code))
            values.append(rng.randrange(0, 2**16))
        batches.append(
            WalRecord(
                batch_index=index,
                op_codes=np.array(op_codes, dtype=np.int64),
                keys=np.array(keys, dtype=np.uint32),
                values=np.array(values, dtype=np.uint32),
            )
        )
    return batches


def apply_to_model(model: dict, record: WalRecord) -> None:
    for code, key, value in zip(record.op_codes, record.keys, record.values):
        if code == C.OP_INSERT:
            model[int(key)] = int(value)
        elif code == C.OP_DELETE:
            model.pop(int(key), None)


def _migration_view(table):
    """Bit-level view of a table's in-flight migration (None when quiescent).

    The new array's bucket heads are digested rather than listed — equality
    of the digest plus the shared-allocator occupancy (checked separately)
    pins both live tables exactly.
    """
    state = table.migration
    if state is None:
        return None
    return {
        "watermark": state.watermark,
        "target_buckets": state.target_buckets,
        "step_buckets": state.step_buckets,
        "trigger": state.trigger,
        "steps": state.steps,
        "items_moved": state.items_moved,
        "released_slabs": state.released_slabs,
        "counters": state.counters.as_dict(),
        "new_base_digest": hashlib.sha256(
            state.new_lists.base_slabs.tobytes()
        ).hexdigest(),
        "old_base_digest": hashlib.sha256(
            table.lists.base_slabs.tobytes()
        ).hexdigest(),
    }


def full_state(impl):
    tables = impl.shards if isinstance(impl, ShardedSlabHash) else [impl]
    return {
        "items": sorted(impl.items()),
        "buckets": [table.num_buckets for table in tables],
        "chains": [table.bucket_slab_counts().tolist() for table in tables],
        "alloc_units": [table.alloc.allocated_units for table in tables],
        "counters": [table.device.counters.as_dict() for table in tables],
        "warp_counters": [table._warp_counter for table in tables],
        "migration": [_migration_view(table) for table in tables],
    }


def run_crash_scenario(seed: int, kind: str, tmp_path) -> None:
    rng = random.Random(seed * 31 + (0 if kind == "table" else 1))
    batches = generate_batches(seed)
    checkpoint_after = rng.randrange(0, len(batches))

    workdir = tmp_path / f"{kind}-{seed}"
    workdir.mkdir()
    snap = str(workdir / "snap")
    wal_path = str(workdir / "ops.wal")

    impl = fresh_impl(kind)
    wal = WriteAheadLog(wal_path)
    record_offsets = []
    for index, record in enumerate(batches):
        if index == checkpoint_after:
            save(impl, snap)
            wal.truncate()
            record_offsets = []
        record_offsets.append(
            wal.append(record.op_codes, record.keys, record.values,
                       batch_index=record.batch_index)
        )
        replay_record(impl, record)  # the drain loop: execute + maybe_resize
    if checkpoint_after == len(batches):  # pragma: no cover - randrange excludes
        save(impl, snap)
        wal.truncate()
    wal_end = wal.size()
    wal.close()
    live_end_state = full_state(impl)

    # Crash points: mid-header (the WAL creation itself was interrupted),
    # just the header, a random mid-file tear, and a clean shutdown — every
    # recovery must be a whole-batch (possibly empty) prefix.
    crash_points = sorted(
        {0, HEADER_SIZE - 5, HEADER_SIZE, rng.randrange(0, wal_end + 1), wal_end}
    )
    for crash_at in crash_points:
        chopped = str(workdir / f"crash-{crash_at}.wal")
        shutil.copyfile(wal_path, chopped)
        with open(chopped, "r+b") as handle:
            handle.truncate(crash_at)

        recovered, report = recover(snap, chopped)
        boundaries = record_offsets + [wal_end]
        survived = max(
            (i for i, off in enumerate(boundaries) if off <= crash_at), default=0
        )
        assert report.records_replayed == survived, (
            f"seed {seed} {kind}: crash at byte {crash_at} replayed "
            f"{report.records_replayed} records, expected {survived}"
        )

        prefix = batches[: checkpoint_after + survived]
        model: dict = {}
        for record in prefix:
            apply_to_model(model, record)
        assert sorted(model.items()) == sorted(
            (int(k), int(v)) for k, v in recovered.items()
        ), f"seed {seed} {kind}: crash at {crash_at} diverged from the dict model"

        oracle = fresh_impl(kind)
        for record in prefix:
            replay_record(oracle, record)
        assert full_state(recovered) == full_state(oracle), (
            f"seed {seed} {kind}: crash at {crash_at} is not bit-identical "
            "to a live run of the surviving prefix"
        )
        if crash_at == wal_end:
            assert full_state(recovered) == live_end_state, (
                f"seed {seed} {kind}: clean-shutdown recovery diverged from "
                "the crashed process's final state"
            )


@pytest.mark.parametrize("kind", ["table", "engine"])
@pytest.mark.parametrize("seed", _seeds())
def test_recovery_from_arbitrary_crash_points_matches_the_model(seed, kind, tmp_path):
    run_crash_scenario(seed, kind, tmp_path)


def run_group_commit_crash_scenario(seed: int, kind: str, tmp_path) -> None:
    """Crash-point sweep over a *group-committed* WAL.

    Batches are appended the way the per-shard service drains do: several
    batches at a time via ``append_group`` (one write + flush per round),
    interleaved across an engine's shards, then executed.  A checkpoint
    lands at a random *round* boundary.  Every byte of the surviving WAL is
    a candidate crash point for the read-back prefix property; recovery
    itself is diffed at every record boundary plus a random mid-record tear,
    against both the dict model and a live oracle replay of the prefix —
    a torn group must replay its leading whole records and drop the rest.
    """
    rng = random.Random(seed * 57 + (0 if kind == "table" else 1))
    batches = generate_batches(seed, num_batches=9)
    # Chunk the stream into commit rounds of 1-3 batches (a drain round).
    rounds, cursor = [], 0
    while cursor < len(batches):
        size = rng.randrange(1, 4)
        rounds.append(batches[cursor : cursor + size])
        cursor += size
    checkpoint_after_round = rng.randrange(0, len(rounds))

    workdir = tmp_path / f"group-{kind}-{seed}"
    workdir.mkdir()
    snap = str(workdir / "snap")
    wal_path = str(workdir / "ops.wal")

    impl = fresh_impl(kind)
    wal = WriteAheadLog(wal_path)
    record_offsets = []
    replayed_after_checkpoint = 0
    for round_index, round_batches in enumerate(rounds):
        if round_index == checkpoint_after_round:
            save(impl, snap)
            wal.truncate()
            record_offsets = []
            replayed_after_checkpoint = 0
        # Write-ahead for the whole round, then execute its batches in order.
        record_offsets.extend(
            wal.append_group(
                [
                    (record.op_codes, record.keys, record.values, record.batch_index)
                    for record in round_batches
                ]
            )
        )
        for record in round_batches:
            replay_record(impl, record)
            replayed_after_checkpoint += 1
    wal_end = wal.size()
    wal.close()
    live_end_state = full_state(impl)
    checkpoint_batches = sum(len(r) for r in rounds[:checkpoint_after_round])

    # Property 1 — every byte offset reads back as a whole-record prefix.
    with open(wal_path, "rb") as handle:
        data = handle.read()
    boundaries = record_offsets + [wal_end]
    for cut in range(0, wal_end):
        records, _torn = read_records_bytes(data[:cut], workdir)
        survived = max(
            (i for i, off in enumerate(boundaries) if off <= cut), default=0
        )
        assert len(records) == survived, (
            f"seed {seed} {kind}: group-committed WAL cut at byte {cut} "
            f"read {len(records)} records, expected {survived}"
        )

    # Property 2 — full recovery diff at each record boundary and one tear.
    crash_points = sorted({*boundaries, rng.randrange(HEADER_SIZE, wal_end + 1)})
    for crash_at in crash_points:
        chopped = str(workdir / f"crash-{crash_at}.wal")
        shutil.copyfile(wal_path, chopped)
        with open(chopped, "r+b") as handle:
            handle.truncate(crash_at)
        recovered, report = recover(snap, chopped)
        survived = max(
            (i for i, off in enumerate(boundaries) if off <= crash_at), default=0
        )
        assert report.records_replayed == survived

        prefix = batches[: checkpoint_batches + survived]
        model: dict = {}
        for record in prefix:
            apply_to_model(model, record)
        assert sorted(model.items()) == sorted(
            (int(k), int(v)) for k, v in recovered.items()
        ), f"seed {seed} {kind}: group crash at {crash_at} diverged from the model"

        oracle = fresh_impl(kind)
        for record in prefix:
            replay_record(oracle, record)
        assert full_state(recovered) == full_state(oracle), (
            f"seed {seed} {kind}: group crash at {crash_at} is not "
            "bit-identical to a live run of the surviving prefix"
        )
        if crash_at == wal_end:
            assert full_state(recovered) == live_end_state


def read_records_bytes(data: bytes, workdir) -> tuple:
    """read_records over an in-memory byte prefix (via a scratch file)."""
    scratch = str(workdir / "scratch.wal")
    with open(scratch, "wb") as handle:
        handle.write(data)
    from repro.persist import read_records

    return read_records(scratch)


@pytest.mark.parametrize("kind", ["table", "engine"])
@pytest.mark.parametrize("seed", _seeds())
def test_group_committed_wal_recovers_like_sequential_appends(seed, kind, tmp_path):
    run_group_commit_crash_scenario(seed, kind, tmp_path)


#: Incremental deferred policy for the mid-migration family: one bucket per
#: step keeps migrations in flight across many records, so checkpoints and
#: crash points land with both tables live.
POLICY_INCR = LoadFactorPolicy(
    min_buckets=2, incremental=True, migration_step_buckets=1
).deferred()


def fresh_incremental_impl(kind: str):
    if kind == "engine":
        return ShardedSlabHash(
            2, POLICY_INCR.min_buckets, alloc_config=ALLOC, seed=41,
            load_factor_policy=POLICY_INCR,
        )
    return SlabHash(
        POLICY_INCR.min_buckets, alloc_config=ALLOC, seed=41, policy=POLICY_INCR
    )


def _any_migrating(impl) -> bool:
    tables = impl.shards if isinstance(impl, ShardedSlabHash) else [impl]
    return any(table.migration is not None for table in tables)


def generate_migration_batches(seed: int) -> list:
    """The mid-migration churn shape: big insert waves, then random mix.

    The waves push the table to dozens of buckets *in stages*, so the later
    policy grows begin migrations whose old arrays take many bounded pumps
    to drain — an in-flight migration is guaranteed to straddle several
    batch boundaries (``replay_record`` advances at most 8 one-bucket steps
    per record under :data:`POLICY_INCR`).
    """
    rng = random.Random(seed * 7 + 5)
    fresh = rng.sample(range(1, KEY_SPACE), 1500)
    waves = [fresh[:500], fresh[500:1000], fresh[1000:1500]]
    records = []
    for index, wave in enumerate(waves):
        records.append(
            WalRecord(
                batch_index=index,
                op_codes=np.full(len(wave), C.OP_INSERT, dtype=np.int64),
                keys=np.array(wave, dtype=np.uint32),
                values=np.array(
                    [rng.randrange(0, 2**16) for _ in wave], dtype=np.uint32
                ),
            )
        )
    for record in generate_batches(seed):
        records.append(
            WalRecord(
                batch_index=record.batch_index + len(waves),
                op_codes=record.op_codes,
                keys=record.keys,
                values=record.values,
            )
        )
    return records


def run_mid_migration_crash_scenario(seed: int, kind: str, tmp_path) -> None:
    """Checkpoint and crash with an incremental migration in flight.

    The incremental deferred policy begins migrations naturally as the
    insert-heavy head breaches the band; a dry run finds the first batch
    boundary where a migration is in flight, and the real run checkpoints
    exactly there — so the snapshot serializes **both live tables** and
    every crash point recovers through a mid-migration snapshot.  Recovery
    is diffed against the dict model and a live oracle, with
    :func:`full_state` pinning the migration itself (watermark, step
    accounting, both arrays' digests) bit-for-bit.
    """
    rng = random.Random(seed * 131 + (0 if kind == "table" else 1))
    batches = generate_migration_batches(seed)

    # Dry run: find a batch boundary where a migration is mid-flight.
    scout = fresh_incremental_impl(kind)
    checkpoint_after = None
    for index, record in enumerate(batches):
        replay_record(scout, record)
        if checkpoint_after is None and _any_migrating(scout):
            checkpoint_after = index + 1
    assert checkpoint_after is not None and checkpoint_after < len(batches), (
        f"seed {seed} {kind}: the generator never left a migration in flight "
        "at a batch boundary; widen the stream or shrink the step size"
    )

    workdir = tmp_path / f"midmig-{kind}-{seed}"
    workdir.mkdir()
    snap = str(workdir / "snap")
    wal_path = str(workdir / "ops.wal")

    impl = fresh_incremental_impl(kind)
    wal = WriteAheadLog(wal_path)
    record_offsets = []
    for index, record in enumerate(batches):
        if index == checkpoint_after:
            assert _any_migrating(impl)
            save(impl, snap)
            wal.truncate()
            record_offsets = []
        record_offsets.append(
            wal.append(record.op_codes, record.keys, record.values,
                       batch_index=record.batch_index)
        )
        replay_record(impl, record)
    wal_end = wal.size()
    wal.close()
    live_end_state = full_state(impl)

    crash_points = sorted(
        {0, HEADER_SIZE, rng.randrange(0, wal_end + 1), wal_end}
    )
    for crash_at in crash_points:
        chopped = str(workdir / f"crash-{crash_at}.wal")
        shutil.copyfile(wal_path, chopped)
        with open(chopped, "r+b") as handle:
            handle.truncate(crash_at)

        recovered, report = recover(snap, chopped)
        boundaries = record_offsets + [wal_end]
        survived = max(
            (i for i, off in enumerate(boundaries) if off <= crash_at), default=0
        )
        assert report.records_replayed == survived
        if survived == 0:
            # Snapshot-only recovery: the restored table must still be
            # mid-migration — the crash landed with both tables live.
            assert _any_migrating(recovered), (
                f"seed {seed} {kind}: mid-migration snapshot recovered "
                "to a quiescent table"
            )

        prefix = batches[: checkpoint_after + survived]
        model: dict = {}
        for record in prefix:
            apply_to_model(model, record)
        assert sorted(model.items()) == sorted(
            (int(k), int(v)) for k, v in recovered.items()
        ), f"seed {seed} {kind}: mid-migration crash at {crash_at} diverged from the model"

        oracle = fresh_incremental_impl(kind)
        for record in prefix:
            replay_record(oracle, record)
        assert full_state(recovered) == full_state(oracle), (
            f"seed {seed} {kind}: mid-migration crash at {crash_at} is not "
            "bit-identical to a live run of the surviving prefix"
        )
        if crash_at == wal_end:
            assert full_state(recovered) == live_end_state


@pytest.mark.parametrize("kind", ["table", "engine"])
@pytest.mark.parametrize("seed", _seeds())
def test_recovery_mid_migration_matches_model_and_live_oracle(seed, kind, tmp_path):
    run_mid_migration_crash_scenario(seed, kind, tmp_path)


def test_mid_migration_snapshot_round_trips_bit_identically(tmp_path):
    """A snapshot taken mid-migration restores both live tables exactly.

    Beyond state equality, the restored table must *behave* identically:
    stepping both migrations to completion and searching produces the same
    results and the same device-counter deltas.
    """
    for backend in ("reference", "vectorized"):
        table = SlabHash(8, key_value=True, backend=backend, seed=3)
        keys = np.arange(1, 600, dtype=np.uint64)
        table.bulk_insert(keys, keys * np.uint64(13))
        table.begin_resize(32, step_buckets=3)
        table.migrate_step()
        table.migrate_step()

        snap = str(tmp_path / f"midmig-{backend}.npz")
        save(table, snap)
        restored, report = recover(snap)
        assert report.records_replayed == 0
        assert full_state(restored) == full_state(table)

        while table.migration is not None:
            table.migrate_step()
        while restored.migration is not None:
            restored.migrate_step()
        queries = np.arange(1, 700, dtype=np.uint64)
        assert np.array_equal(table.bulk_search(queries), restored.bulk_search(queries))
        assert full_state(restored) == full_state(table)


def run_quarantine_crash_scenario(seed: int, tmp_path) -> None:
    """Crash the process while a shard is quarantined mid-restore.

    A live service takes a checkpoint, serves acked traffic, then an
    injected batch failure trips shard 0's breaker (threshold 1).  Injected
    ``service.restore`` failures hold the background restore in its retry
    loop, and the process "crashes" — drain and restore tasks cancelled,
    ``stop()`` never runs — while the lane is still OPEN.  Recovery from the
    on-disk snapshot + WAL alone (no in-memory abort knowledge: the poison
    batch's abort marker is durable) must land on exactly the acked model,
    and a service rebuilt over it must serve reads and writes immediately.
    """
    rng = random.Random(seed * 97 + 3)
    workdir = tmp_path / f"quarantine-{seed}"
    workdir.mkdir()
    snap = str(workdir / "snap")
    wal_path = str(workdir / "ops.wal")

    engine = ShardedSlabHash(2, 64, alloc_config=ALLOC, seed=43)
    config = ServiceConfig(max_batch_size=512, max_delay=0.05, breaker_threshold=1)
    # Shard-0 execute occurrence 4: the first shard-0 batch after two
    # pre-checkpoint and two post-checkpoint admissions (warp-aligned
    # slices, sequentially awaited — exactly one execute per shard each).
    plan = FaultPlan(
        {
            ("shard:0.execute", 4): FaultAction(exc="batch", note="quarantine crash"),
            ("service.restore", 0): FaultAction(exc="fault"),
            ("service.restore", 1): FaultAction(exc="fault"),
            ("service.restore", 2): FaultAction(exc="fault"),
        }
    )
    wal = WriteAheadLog(wal_path)
    service = SlabHashService(engine, config=config, wal=wal, faults=plan)

    used: set = set()
    per_shard_keys: list = [[], []]

    def fresh_shard_keys(shard: int, count: int) -> list:
        keys = []
        while len(keys) < count:
            key = rng.randrange(1, KEY_SPACE)
            if key not in used and engine.admit_one(key) == shard:
                keys.append(key)
                used.add(key)
        per_shard_keys[shard].extend(keys)
        return keys

    model: dict = {}

    async def admit_wave(deletes: bool) -> None:
        """One warp-aligned admission per call: 32 ops for each shard."""
        op_codes, keys, values = [], [], []
        for shard in (0, 1):
            if deletes:
                victims = per_shard_keys[shard][:16]
                fresh = fresh_shard_keys(shard, 16)
                for key in victims:
                    op_codes.append(C.OP_DELETE)
                    keys.append(key)
                    values.append(0)
                for key in fresh:
                    op_codes.append(C.OP_INSERT)
                    keys.append(key)
                    values.append(rng.randrange(1, 2**16))
            else:
                for key in fresh_shard_keys(shard, 32):
                    op_codes.append(C.OP_INSERT)
                    keys.append(key)
                    values.append(rng.randrange(1, 2**16))
        await service.submit_many(
            np.array(op_codes, dtype=np.int64),
            np.array(keys, dtype=np.uint64),
            np.array(values, dtype=np.uint32),
        )
        for code, key, value in zip(op_codes, keys, values):
            if code == C.OP_INSERT:
                model[key] = value
            else:
                model.pop(key, None)

    poison_keys: list = []

    async def main() -> None:
        await service.start()
        await admit_wave(deletes=False)
        await admit_wave(deletes=False)
        service.checkpoint(snap)
        await admit_wave(deletes=False)
        await admit_wave(deletes=True)
        # The poisoned admission: 32 shard-0-only inserts, never acked.
        poison_keys.extend(fresh_shard_keys(0, 32))
        with pytest.raises(InjectedBatchFailure):
            await service.submit_many(
                np.full(32, C.OP_INSERT, dtype=np.int64),
                np.array(poison_keys, dtype=np.uint64),
                np.full(32, 7, dtype=np.uint32),
            )
        # Let the restore task run its first attempt into the injected
        # service.restore failure, parking it in the retry sleep.
        for _ in range(5):
            await asyncio.sleep(0)
        assert service.lane_states[0] == LANE_OPEN
        assert 0 in service._restore_tasks
        assert service.stats().breaker_trips == 1
        # Crash: every task dies mid-flight; stop() never runs.
        tasks = list(service._restore_tasks.values()) + list(service._drain_tasks)
        for task in tasks:
            task.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)

    asyncio.run(asyncio.wait_for(main(), timeout=60))
    wal.close()

    # Recovery uses only what is durable on disk — the poison batch's WAL
    # record is neutralised by its abort marker, not by in-memory state.
    recovered, report = recover(
        snap,
        wal_path,
        scheduler_seed=config.scheduler_seed,
        wave_size=config.wave_size,
    )
    assert report.records_aborted >= 1
    assert sorted(model.items()) == sorted(
        (int(k), int(v)) for k, v in recovered.items()
    ), f"seed {seed}: quarantine-crash recovery diverged from the acked model"
    for key in poison_keys:
        assert recovered.search(key) in (None, C.SEARCH_NOT_FOUND)

    # A service rebuilt from the same artifacts serves immediately: reads
    # agree with the model and a fresh write round-trips.
    service2 = SlabHashService.recovered(
        snap, WriteAheadLog(wal_path), config=config
    )

    async def verify() -> None:
        async with service2:
            probe_keys = sorted(model)[:64] + poison_keys
            results = await service2.submit_many(
                np.full(len(probe_keys), C.OP_SEARCH, dtype=np.int64),
                np.array(probe_keys, dtype=np.uint64),
                np.zeros(len(probe_keys), dtype=np.uint32),
            )
            for key, result in zip(probe_keys, results):
                expected = model.get(key, C.SEARCH_NOT_FOUND)
                assert int(result) == expected, (
                    f"seed {seed}: recovered service read {key} -> "
                    f"{int(result)}, model says {expected}"
                )
            await service2.insert(KEY_SPACE + 1, 99)
            assert await service2.search(KEY_SPACE + 1) == 99

    asyncio.run(asyncio.wait_for(verify(), timeout=60))


@pytest.mark.parametrize("seed", _seeds())
def test_crash_while_shard_quarantined_mid_restore_recovers_acked_state(
    seed, tmp_path
):
    run_quarantine_crash_scenario(seed, tmp_path)


def test_generated_batches_are_deterministic_and_churny():
    assert [
        (record.batch_index, record.op_codes.tolist(), record.keys.tolist())
        for record in generate_batches(5)
    ] == [
        (record.batch_index, record.op_codes.tolist(), record.keys.tolist())
        for record in generate_batches(5)
    ]
    codes = np.concatenate([record.op_codes for record in generate_batches(5)])
    assert (codes == C.OP_INSERT).sum() > 0
    assert (codes == C.OP_DELETE).sum() > 0
    assert (codes == C.OP_SEARCH).sum() > 0
