"""Crash-point property tests: kill the WAL at arbitrary offsets, recover, diff.

Each pinned seed generates a random program of mixed micro-batches
(batch-unique keys, insert-heavy head, delete-heavy tail — the same churn
shape as the differential harness) and runs it the way the service drain
loop would: append the batch to the WAL, execute it, apply the deferred
load-factor policy.  A checkpoint (snapshot + WAL truncate) lands at a
random batch boundary.  Then the WAL file is chopped at crash points —
including every-byte edge cases: just after the header, mid-record, and the
clean end — and ``recover`` is checked differentially against

* a plain-dict model replaying the surviving whole batches, and
* a live *oracle* run executing exactly those batches on a fresh engine,
  which must match the recovered one bit-for-bit: items, bucket counts,
  chain structure, allocator occupancy and device counters.

CI runs the pinned seeds plus one derived from ``PROPTEST_SEED`` (set from
the workflow's run id), mirroring the differential-harness job.
"""

from __future__ import annotations

import os
import random
import shutil

import numpy as np
import pytest

from repro.core import constants as C
from repro.core.config import SlabAllocConfig
from repro.core.resize import LoadFactorPolicy
from repro.core.slab_hash import SlabHash
from repro.engine import ShardedSlabHash
from repro.persist import WalRecord, WriteAheadLog, recover, save
from repro.persist.recovery import replay_record
from repro.persist.wal import HEADER_SIZE

PINNED_SEEDS = [711, 722, 733]
KEY_SPACE = 50_000
ALLOC = SlabAllocConfig(num_super_blocks=4, num_memory_blocks=32, units_per_block=128)
#: Deferred, exactly as the service layer runs it (resize between batches).
POLICY = LoadFactorPolicy(min_buckets=2).deferred()


def _seeds() -> list:
    seeds = list(PINNED_SEEDS)
    raw = os.environ.get("PROPTEST_SEED")
    if raw:
        try:
            seeds.append(int(raw.strip()) % 2**31)
        except ValueError:
            pass
    return seeds


def fresh_impl(kind: str):
    if kind == "engine":
        return ShardedSlabHash(
            2, POLICY.min_buckets, alloc_config=ALLOC, seed=41, load_factor_policy=POLICY
        )
    return SlabHash(POLICY.min_buckets, alloc_config=ALLOC, seed=41, policy=POLICY)


def generate_batches(seed: int, num_batches: int = 10) -> list:
    """Random mixed micro-batches with batch-unique keys (schedule-independent)."""
    rng = random.Random(seed)
    shadow: set = set()
    batches = []
    for index in range(num_batches):
        count = rng.randrange(30, 130)
        delete_phase = index >= (2 * num_batches) // 3
        existing = sorted(shadow)
        rng.shuffle(existing)
        keys = existing[: count // 2 if delete_phase else count // 4]
        seen = set(keys)
        while len(keys) < count:
            key = rng.randrange(1, KEY_SPACE)
            if key not in seen:
                keys.append(key)
                seen.add(key)
        rng.shuffle(keys)
        op_codes, values = [], []
        weights = (
            [C.OP_DELETE, C.OP_DELETE, C.OP_SEARCH, C.OP_INSERT]
            if delete_phase
            else [C.OP_INSERT, C.OP_INSERT, C.OP_INSERT, C.OP_SEARCH, C.OP_DELETE]
        )
        for key in keys:
            code = rng.choice(weights)
            if code == C.OP_INSERT:
                shadow.add(key)
            elif code == C.OP_DELETE:
                shadow.discard(key)
            op_codes.append(int(code))
            values.append(rng.randrange(0, 2**16))
        batches.append(
            WalRecord(
                batch_index=index,
                op_codes=np.array(op_codes, dtype=np.int64),
                keys=np.array(keys, dtype=np.uint32),
                values=np.array(values, dtype=np.uint32),
            )
        )
    return batches


def apply_to_model(model: dict, record: WalRecord) -> None:
    for code, key, value in zip(record.op_codes, record.keys, record.values):
        if code == C.OP_INSERT:
            model[int(key)] = int(value)
        elif code == C.OP_DELETE:
            model.pop(int(key), None)


def full_state(impl):
    tables = impl.shards if isinstance(impl, ShardedSlabHash) else [impl]
    return {
        "items": sorted(impl.items()),
        "buckets": [table.num_buckets for table in tables],
        "chains": [table.bucket_slab_counts().tolist() for table in tables],
        "alloc_units": [table.alloc.allocated_units for table in tables],
        "counters": [table.device.counters.as_dict() for table in tables],
        "warp_counters": [table._warp_counter for table in tables],
    }


def run_crash_scenario(seed: int, kind: str, tmp_path) -> None:
    rng = random.Random(seed * 31 + (0 if kind == "table" else 1))
    batches = generate_batches(seed)
    checkpoint_after = rng.randrange(0, len(batches))

    workdir = tmp_path / f"{kind}-{seed}"
    workdir.mkdir()
    snap = str(workdir / "snap")
    wal_path = str(workdir / "ops.wal")

    impl = fresh_impl(kind)
    wal = WriteAheadLog(wal_path)
    record_offsets = []
    for index, record in enumerate(batches):
        if index == checkpoint_after:
            save(impl, snap)
            wal.truncate()
            record_offsets = []
        record_offsets.append(
            wal.append(record.op_codes, record.keys, record.values,
                       batch_index=record.batch_index)
        )
        replay_record(impl, record)  # the drain loop: execute + maybe_resize
    if checkpoint_after == len(batches):  # pragma: no cover - randrange excludes
        save(impl, snap)
        wal.truncate()
    wal_end = wal.size()
    wal.close()
    live_end_state = full_state(impl)

    # Crash points: mid-header (the WAL creation itself was interrupted),
    # just the header, a random mid-file tear, and a clean shutdown — every
    # recovery must be a whole-batch (possibly empty) prefix.
    crash_points = sorted(
        {0, HEADER_SIZE - 5, HEADER_SIZE, rng.randrange(0, wal_end + 1), wal_end}
    )
    for crash_at in crash_points:
        chopped = str(workdir / f"crash-{crash_at}.wal")
        shutil.copyfile(wal_path, chopped)
        with open(chopped, "r+b") as handle:
            handle.truncate(crash_at)

        recovered, report = recover(snap, chopped)
        boundaries = record_offsets + [wal_end]
        survived = max(
            (i for i, off in enumerate(boundaries) if off <= crash_at), default=0
        )
        assert report.records_replayed == survived, (
            f"seed {seed} {kind}: crash at byte {crash_at} replayed "
            f"{report.records_replayed} records, expected {survived}"
        )

        prefix = batches[: checkpoint_after + survived]
        model: dict = {}
        for record in prefix:
            apply_to_model(model, record)
        assert sorted(model.items()) == sorted(
            (int(k), int(v)) for k, v in recovered.items()
        ), f"seed {seed} {kind}: crash at {crash_at} diverged from the dict model"

        oracle = fresh_impl(kind)
        for record in prefix:
            replay_record(oracle, record)
        assert full_state(recovered) == full_state(oracle), (
            f"seed {seed} {kind}: crash at {crash_at} is not bit-identical "
            "to a live run of the surviving prefix"
        )
        if crash_at == wal_end:
            assert full_state(recovered) == live_end_state, (
                f"seed {seed} {kind}: clean-shutdown recovery diverged from "
                "the crashed process's final state"
            )


@pytest.mark.parametrize("kind", ["table", "engine"])
@pytest.mark.parametrize("seed", _seeds())
def test_recovery_from_arbitrary_crash_points_matches_the_model(seed, kind, tmp_path):
    run_crash_scenario(seed, kind, tmp_path)


def run_group_commit_crash_scenario(seed: int, kind: str, tmp_path) -> None:
    """Crash-point sweep over a *group-committed* WAL.

    Batches are appended the way the per-shard service drains do: several
    batches at a time via ``append_group`` (one write + flush per round),
    interleaved across an engine's shards, then executed.  A checkpoint
    lands at a random *round* boundary.  Every byte of the surviving WAL is
    a candidate crash point for the read-back prefix property; recovery
    itself is diffed at every record boundary plus a random mid-record tear,
    against both the dict model and a live oracle replay of the prefix —
    a torn group must replay its leading whole records and drop the rest.
    """
    rng = random.Random(seed * 57 + (0 if kind == "table" else 1))
    batches = generate_batches(seed, num_batches=9)
    # Chunk the stream into commit rounds of 1-3 batches (a drain round).
    rounds, cursor = [], 0
    while cursor < len(batches):
        size = rng.randrange(1, 4)
        rounds.append(batches[cursor : cursor + size])
        cursor += size
    checkpoint_after_round = rng.randrange(0, len(rounds))

    workdir = tmp_path / f"group-{kind}-{seed}"
    workdir.mkdir()
    snap = str(workdir / "snap")
    wal_path = str(workdir / "ops.wal")

    impl = fresh_impl(kind)
    wal = WriteAheadLog(wal_path)
    record_offsets = []
    replayed_after_checkpoint = 0
    for round_index, round_batches in enumerate(rounds):
        if round_index == checkpoint_after_round:
            save(impl, snap)
            wal.truncate()
            record_offsets = []
            replayed_after_checkpoint = 0
        # Write-ahead for the whole round, then execute its batches in order.
        record_offsets.extend(
            wal.append_group(
                [
                    (record.op_codes, record.keys, record.values, record.batch_index)
                    for record in round_batches
                ]
            )
        )
        for record in round_batches:
            replay_record(impl, record)
            replayed_after_checkpoint += 1
    wal_end = wal.size()
    wal.close()
    live_end_state = full_state(impl)
    checkpoint_batches = sum(len(r) for r in rounds[:checkpoint_after_round])

    # Property 1 — every byte offset reads back as a whole-record prefix.
    with open(wal_path, "rb") as handle:
        data = handle.read()
    boundaries = record_offsets + [wal_end]
    for cut in range(0, wal_end):
        records, _torn = read_records_bytes(data[:cut], workdir)
        survived = max(
            (i for i, off in enumerate(boundaries) if off <= cut), default=0
        )
        assert len(records) == survived, (
            f"seed {seed} {kind}: group-committed WAL cut at byte {cut} "
            f"read {len(records)} records, expected {survived}"
        )

    # Property 2 — full recovery diff at each record boundary and one tear.
    crash_points = sorted({*boundaries, rng.randrange(HEADER_SIZE, wal_end + 1)})
    for crash_at in crash_points:
        chopped = str(workdir / f"crash-{crash_at}.wal")
        shutil.copyfile(wal_path, chopped)
        with open(chopped, "r+b") as handle:
            handle.truncate(crash_at)
        recovered, report = recover(snap, chopped)
        survived = max(
            (i for i, off in enumerate(boundaries) if off <= crash_at), default=0
        )
        assert report.records_replayed == survived

        prefix = batches[: checkpoint_batches + survived]
        model: dict = {}
        for record in prefix:
            apply_to_model(model, record)
        assert sorted(model.items()) == sorted(
            (int(k), int(v)) for k, v in recovered.items()
        ), f"seed {seed} {kind}: group crash at {crash_at} diverged from the model"

        oracle = fresh_impl(kind)
        for record in prefix:
            replay_record(oracle, record)
        assert full_state(recovered) == full_state(oracle), (
            f"seed {seed} {kind}: group crash at {crash_at} is not "
            "bit-identical to a live run of the surviving prefix"
        )
        if crash_at == wal_end:
            assert full_state(recovered) == live_end_state


def read_records_bytes(data: bytes, workdir) -> tuple:
    """read_records over an in-memory byte prefix (via a scratch file)."""
    scratch = str(workdir / "scratch.wal")
    with open(scratch, "wb") as handle:
        handle.write(data)
    from repro.persist import read_records

    return read_records(scratch)


@pytest.mark.parametrize("kind", ["table", "engine"])
@pytest.mark.parametrize("seed", _seeds())
def test_group_committed_wal_recovers_like_sequential_appends(seed, kind, tmp_path):
    run_group_commit_crash_scenario(seed, kind, tmp_path)


def test_generated_batches_are_deterministic_and_churny():
    assert [
        (record.batch_index, record.op_codes.tolist(), record.keys.tolist())
        for record in generate_batches(5)
    ] == [
        (record.batch_index, record.op_codes.tolist(), record.keys.tolist())
        for record in generate_batches(5)
    ]
    codes = np.concatenate([record.op_codes for record in generate_batches(5)])
    assert (codes == C.OP_INSERT).sum() > 0
    assert (codes == C.OP_DELETE).sum() > 0
    assert (codes == C.OP_SEARCH).sum() > 0
