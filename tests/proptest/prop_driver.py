"""Seeded random-operation driver for the differential property harness.

A *program* is a plain list of repr-able tuples — single operations, bulk
batches, concurrent mixed batches, explicit resizes, incremental-migration
begin/step ops, flushes — generated deterministically from a
``random.Random`` seed with three structural guarantees: the first part of
every program inserts enough elements to force at least one policy *grow*,
the tail deletes enough to force at least one *shrink*, and every program
begins at least one incremental migration so searches, deletes, concurrent
batches and flushes run while **both tables are live**, whatever the seed.

:func:`run_program` executes the same program against

* a ``backend="reference"`` :class:`~repro.core.slab_hash.SlabHash`,
* a ``backend="vectorized"`` one,
* a two-shard :class:`~repro.engine.sharded.ShardedSlabHash`,

each carrying the same auto :class:`~repro.core.resize.LoadFactorPolicy`,
and a plain-dict model, checking the invariants below after every step
(structure-heavy ones periodically).  On a violation it returns an error
string; :func:`shrink_program` then delta-debugs the program down to a
minimal reproducer (no hypothesis — a ``random``-seeded loop, as the repo's
CI has no extra dependencies).

Invariants (the differential contract):

1. every step's results agree across all three implementations *and* the
   plain-dict model;
2. ``len(table)`` equals ``len(model)`` for every implementation;
3. the reference and vectorized tables report **identical device counters**
   (the backend's counter-exactness guarantee, extended over resizes);
4. device counters are monotonically non-decreasing on every device;
5. stored items equal the model's items exactly (multiset of pairs), and
   ``search_all`` multisets match the model on sampled keys;
6. chain structure is coherent: per-bucket slab counts cover exactly
   ``num_buckets`` buckets (the old array, during a migration), each at
   least one slab, summing to that array's slab total;
7. after every mutating step the auto-policy is quiescent
   (``policy.decide(...) is None``) and beta does not exceed the band's
   ceiling beyond the hysteresis slack — except while an incremental
   migration is in flight, when the policy is deliberately suppressed and
   the table's shape is transiently out of band — and the run's resize
   stats must show at least one grow, one shrink, and one migration step
   per table (coverage hooks).

Concurrent batches are generated with batch-unique keys, so their outcome is
schedule-independent and the sharded engine (which interleaves differently)
must agree exactly — see the sharded-engine module docstring.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core import constants as C
from repro.core.config import SlabAllocConfig
from repro.core.resize import LoadFactorPolicy
from repro.core.slab_hash import SlabHash
from repro.engine import ShardedSlabHash

NOT_FOUND = -1  #: normalized "no result" sentinel for comparisons
KEY_SPACE = 50_000  #: generated keys live in [1, KEY_SPACE]

ALLOC = SlabAllocConfig(num_super_blocks=4, num_memory_blocks=32, units_per_block=128)
POLICY = LoadFactorPolicy(min_buckets=2)

Step = Tuple
Program = List[Step]


def make_impls(*, include_process: bool = False) -> Dict[str, object]:
    """Fresh, identically seeded implementations for one program run.

    Every table starts at the policy's bucket floor, so the quiescence
    invariant holds from step zero (an empty table above the floor would
    legitimately want to shrink before any operation ran).

    ``include_process`` adds a fourth implementation: the same two-shard
    engine dispatching through :class:`~repro.engine.ProcessShardExecutor`
    with two worker processes.  It must be bit-identical to the serial
    sharded engine on every step — results, counters, and (checked at end
    of program) the serialized per-shard snapshot bytes.
    """
    impls: Dict[str, object] = {
        "reference": SlabHash(
            POLICY.min_buckets, alloc_config=ALLOC, seed=41, backend="reference",
            policy=POLICY,
        ),
        "vectorized": SlabHash(
            POLICY.min_buckets, alloc_config=ALLOC, seed=41, backend="vectorized",
            policy=POLICY,
        ),
        "sharded": ShardedSlabHash(
            2, POLICY.min_buckets, alloc_config=ALLOC, seed=41, backend="vectorized",
            load_factor_policy=POLICY,
        ),
    }
    if include_process:
        impls["process"] = ShardedSlabHash(
            2, POLICY.min_buckets, alloc_config=ALLOC, seed=41, backend="vectorized",
            load_factor_policy=POLICY, executor="process", executor_workers=2,
        )
    return impls


# --------------------------------------------------------------------------- #
# Program generation
# --------------------------------------------------------------------------- #

MUTATING = {"insert", "delete", "delete_all", "bulk_insert", "bulk_delete", "concurrent"}


def _value(rng: random.Random) -> int:
    return rng.randrange(0, 2**16)


def _existing_key(rng: random.Random, shadow: dict) -> int:
    if shadow:
        return rng.choice(sorted(shadow))
    return rng.randrange(1, KEY_SPACE)


def _random_step(rng: random.Random, shadow: dict, *, delete_phase: bool) -> Step:
    """One random filler step; the shadow dict mirrors what the model will hold."""
    ops = (
        ["search", "search", "search_all", "insert", "delete", "delete_all",
         "bulk_search", "concurrent", "resize", "flush",
         "begin_migration", "migrate_step", "migrate_step"]
        if not delete_phase
        else ["search", "search_all", "delete", "delete", "delete_all",
              "bulk_delete", "bulk_search", "concurrent", "resize", "flush",
              "begin_migration", "migrate_step", "migrate_step"]
    )
    op = rng.choice(ops)
    if op == "insert":
        key, value = rng.randrange(1, KEY_SPACE), _value(rng)
        shadow[key] = value
        return ("insert", key, value)
    if op == "delete":
        key = _existing_key(rng, shadow)
        shadow.pop(key, None)
        return ("delete", key)
    if op == "delete_all":
        key = _existing_key(rng, shadow)
        shadow.pop(key, None)
        return ("delete_all", key)
    if op == "search":
        hit = rng.random() < 0.7
        return ("search", _existing_key(rng, shadow) if hit else rng.randrange(1, KEY_SPACE))
    if op == "search_all":
        return ("search_all", _existing_key(rng, shadow))
    if op == "bulk_search":
        count = rng.randrange(4, 40)
        keys = [_existing_key(rng, shadow) if rng.random() < 0.6 else rng.randrange(1, KEY_SPACE)
                for _ in range(count)]
        return ("bulk_search", keys)
    if op == "bulk_delete":
        count = rng.randrange(4, 40)
        keys = [_existing_key(rng, shadow) for _ in range(count)]
        for key in keys:
            shadow.pop(key, None)
        return ("bulk_delete", keys)
    if op == "concurrent":
        return _concurrent_step(rng, shadow)
    if op == "resize":
        # Explicit resize request; the auto policy may well undo it on the
        # next mutating batch, which is itself a path worth exercising.
        return ("resize", rng.choice([2, 3, 4]), rng.choice(["grow", "shrink"]))
    if op == "begin_migration":
        # Begin an incremental migration (no-op on tables already migrating);
        # subsequent ops then run with both tables live until the auto hook
        # and explicit migrate_step ops drain it.
        return ("begin_migration", rng.choice([2, 3]), rng.choice(["grow", "shrink"]))
    if op == "migrate_step":
        # Advance any in-flight migration by one bounded step (no-op otherwise).
        return ("migrate_step",)
    return ("flush",)


def _concurrent_step(rng: random.Random, shadow: dict) -> Step:
    """A mixed batch whose keys are batch-unique (schedule-independent)."""
    count = rng.randrange(6, 48)
    existing = sorted(shadow)
    rng.shuffle(existing)
    candidates = existing[: count // 2]
    while len(candidates) < count:
        key = rng.randrange(1, KEY_SPACE)
        if key not in candidates:
            candidates.append(key)
    rng.shuffle(candidates)
    op_codes, keys, values = [], [], []
    for key in candidates:
        code = rng.choice([C.OP_INSERT, C.OP_DELETE, C.OP_SEARCH])
        value = _value(rng)
        if code == C.OP_INSERT:
            shadow[key] = value
        elif code == C.OP_DELETE:
            shadow.pop(key, None)
        op_codes.append(int(code))
        keys.append(int(key))
        values.append(value)
    return ("concurrent", op_codes, keys, values)


def generate_program(seed: int, *, filler_steps: int = 22) -> Program:
    """A random program with guaranteed grow and shrink coverage.

    Structure: an insert-heavy phase whose interleaved bulk insertions total
    >= 450 fresh keys (the policy band is breached many times over on every
    implementation), random filler throughout, then a delete-heavy phase
    whose bulk deletions drain the shadow population below 40 (forcing
    shrinks down toward the bucket floor).
    """
    rng = random.Random(seed)
    shadow: dict = {}
    program: Program = []

    grow_half = filler_steps // 2
    fresh = rng.sample(range(1, KEY_SPACE), 1500)
    cursor = 0
    for _ in range(grow_half):
        program.append(_random_step(rng, shadow, delete_phase=False))
        # Guaranteed insert ramp, interleaved with the filler.
        batch = rng.randrange(60, 110)
        keys = fresh[cursor : cursor + batch]
        cursor += batch
        if not keys:
            continue
        values = [_value(rng) for _ in keys]
        for key, value in zip(keys, values):
            shadow[key] = value
        program.append(("bulk_insert", list(keys), values))

    # Structural guarantee: whatever the seed drew above, at least one
    # incremental migration is begun here and the following delete-phase
    # filler runs with both tables live (the auto hook and explicit
    # migrate_step ops drain it).
    program.append(("begin_migration", 2, "grow"))
    program.append(("migrate_step",))
    program.append(("migrate_step",))

    for _ in range(filler_steps - grow_half):
        program.append(_random_step(rng, shadow, delete_phase=True))
        # Guaranteed delete ramp: drain the population toward the floor.
        live = sorted(shadow)
        if len(live) > 40:
            batch = rng.sample(live, min(len(live) - 20, rng.randrange(60, 120)))
            for key in batch:
                shadow.pop(key, None)
            program.append(("bulk_delete", list(batch)))
    while len(shadow) > 40:  # belt and braces: finish the drain
        live = sorted(shadow)
        batch = live[: len(live) - 20]
        for key in batch:
            shadow.pop(key, None)
        program.append(("bulk_delete", list(batch)))
    # Finish any migration still in flight and let the policy reconcile, so
    # the end-of-program quiescence and shrink-coverage checks are about the
    # steady state, not about where the last random migration happened to be.
    program.append(("drain_migration",))
    return program


# --------------------------------------------------------------------------- #
# Execution: model and implementations
# --------------------------------------------------------------------------- #


def _norm(value) -> int:
    """Normalize a search result for comparison (-1 = not found)."""
    if value is None:
        return NOT_FOUND
    value = int(value)
    return NOT_FOUND if value == int(C.SEARCH_NOT_FOUND) else value


def apply_to_model(model: dict, step: Step):
    op = step[0]
    if op == "insert":
        model[step[1]] = step[2]
        return None
    if op == "delete":
        return 1 if model.pop(step[1], None) is not None else 0
    if op == "delete_all":
        return 1 if model.pop(step[1], None) is not None else 0
    if op == "search":
        return _norm(model.get(step[1]))
    if op == "search_all":
        return [model[step[1]]] if step[1] in model else []
    if op == "bulk_insert":
        for key, value in zip(step[1], step[2]):
            model[key] = value
        return None
    if op == "bulk_delete":
        return [1 if model.pop(key, None) is not None else 0 for key in step[1]]
    if op == "bulk_search":
        return [_norm(model.get(key)) for key in step[1]]
    if op == "concurrent":
        results = []
        for code, key, value in zip(step[1], step[2], step[3]):
            if code == C.OP_INSERT:
                model[key] = value
                results.append(0)
            elif code == C.OP_DELETE:
                results.append(1 if model.pop(key, None) is not None else 0)
            else:
                results.append(_norm(model.get(key)))
        return results
    if op in ("resize", "flush", "begin_migration", "migrate_step",
              "drain_migration", "fail_if_migrating"):
        return None
    raise ValueError(f"unknown program step {step!r}")


def _scaled_target(buckets: int, factor: int, direction: str) -> int:
    return max(1, buckets * factor if direction == "grow" else buckets // factor)


def _drain_migration(impl) -> None:
    """Run any in-flight migration to completion (stop-the-world resize
    requires a quiescent table, and the drain itself is deterministic).

    Sharded engines go through the engine API rather than poking the
    shard tables directly: with a process executor attached the tables
    are a mirror of worker-resident state, and direct mutation would
    silently diverge from the workers.
    """
    if isinstance(impl, ShardedSlabHash):
        while True:
            migrating = impl.migrating_shards()
            if not migrating:
                return
            for index in migrating:
                impl.migrate_step_shard(index)
    else:
        while impl.migration is not None:
            impl.migrate_step()


def _resize_impl(impl, factor: int, direction: str) -> None:
    _drain_migration(impl)
    if isinstance(impl, ShardedSlabHash):
        for index, shard in enumerate(impl.shards):
            impl.resize_shard(index, _scaled_target(shard.num_buckets, factor, direction))
    else:
        impl.resize(_scaled_target(impl.num_buckets, factor, direction))


def _begin_migration_impl(impl, factor: int, direction: str) -> None:
    """Begin an incremental migration per table; tables already migrating
    are left alone (double-begin is an API error)."""
    if isinstance(impl, ShardedSlabHash):
        for index, shard in enumerate(impl.shards):
            if shard.migration is None:
                impl.resize_shard(
                    index,
                    _scaled_target(shard.num_buckets, factor, direction),
                    incremental=True,
                    step_buckets=2,
                )
    elif impl.migration is None:
        impl.begin_resize(
            _scaled_target(impl.num_buckets, factor, direction), step_buckets=2
        )


def _migrate_step_impl(impl) -> None:
    if isinstance(impl, ShardedSlabHash):
        for index in impl.migrating_shards():
            outcome = impl.migrate_step_shard(index)
            if outcome.result is not None:
                impl.maybe_resize_shard(index)
        return
    if impl.migration is not None:
        outcome = impl.migrate_step()
        if outcome.result is not None:
            # The step completed the migration; reconcile with the auto
            # policy right away (exactly what the post-batch hook does),
            # so quiescence is checkable on the very next step.
            impl.maybe_resize()


def apply_to_impl(impl, step: Step):
    op = step[0]
    if op == "insert":
        impl.insert(step[1], step[2])
        return None
    if op == "delete":
        return int(impl.delete(step[1]))
    if op == "delete_all":
        return int(impl.delete_all(step[1]))
    if op == "search":
        return _norm(impl.search(step[1]))
    if op == "search_all":
        return sorted(impl.search_all(step[1]))
    if op == "bulk_insert":
        impl.bulk_insert(
            np.array(step[1], dtype=np.uint32), np.array(step[2], dtype=np.uint32)
        )
        return None
    if op == "bulk_delete":
        return [int(x) for x in impl.bulk_delete(np.array(step[1], dtype=np.uint32))]
    if op == "bulk_search":
        return [_norm(x) for x in impl.bulk_search(np.array(step[1], dtype=np.uint32))]
    if op == "concurrent":
        results = impl.concurrent_batch(
            np.array(step[1], dtype=np.int64),
            np.array(step[2], dtype=np.uint32),
            np.array(step[3], dtype=np.uint32),
        )
        normalized = []
        for code, raw in zip(step[1], results):
            normalized.append(_norm(raw) if code == C.OP_SEARCH else int(raw))
        return normalized
    if op == "resize":
        _resize_impl(impl, step[1], step[2])
        # Reconcile with the policy right away: an explicit resize may land
        # outside the band, and a later batch need not touch every shard, so
        # quiescence would otherwise be unverifiable step to step.
        impl.maybe_resize()
        return None
    if op == "begin_migration":
        _begin_migration_impl(impl, step[1], step[2])
        return None
    if op == "migrate_step":
        _migrate_step_impl(impl)
        return None
    if op == "drain_migration":
        _drain_migration(impl)
        impl.maybe_resize()
        return None
    if op == "flush":
        impl.flush()
        return None
    if op == "fail_if_migrating":
        # Harness self-test hook (never generated): fails exactly when a
        # migration is in flight, so the shrinker demonstrably preserves
        # the migration ops a failure depends on.
        if any(table.migration is not None for table in _tables(impl)):
            raise RuntimeError("fail_if_migrating: both tables are live")
        return None
    raise ValueError(f"unknown program step {step!r}")


# --------------------------------------------------------------------------- #
# Invariants
# --------------------------------------------------------------------------- #


def _devices(name: str, impl) -> list:
    return impl.devices if isinstance(impl, ShardedSlabHash) else [impl.device]


def _tables(impl) -> list:
    return impl.shards if isinstance(impl, ShardedSlabHash) else [impl]


def _model_result_mismatch(step, expected, got_by_impl) -> Optional[str]:
    for name, got in got_by_impl.items():
        if got != expected:
            return (
                f"result mismatch on {step!r}: model={expected!r}, {name}={got!r}"
            )
    first = next(iter(got_by_impl.values()))
    for name, got in got_by_impl.items():
        if got != first:
            return f"cross-implementation mismatch on {step!r}: {got_by_impl!r}"
    return None


def _check_lengths(impls, model) -> Optional[str]:
    for name, impl in impls.items():
        if len(impl) != len(model):
            return f"len mismatch: model={len(model)}, {name}={len(impl)}"
    return None


def _check_counter_monotonicity(impls, previous) -> Optional[str]:
    for name, impl in impls.items():
        for index, device in enumerate(_devices(name, impl)):
            now = device.counters.as_dict()
            before = previous[name][index]
            for field, value in now.items():
                if value < before[field]:
                    return (
                        f"counter {field} decreased on {name}[{index}]: "
                        f"{before[field]} -> {value}"
                    )
            previous[name][index] = now
    return None


def _check_backend_counters(impls) -> Optional[str]:
    ref = impls["reference"].device.counters.as_dict()
    vec = impls["vectorized"].device.counters.as_dict()
    if ref != vec:
        drift = {
            field: (ref[field], vec[field])
            for field in ref
            if ref[field] != vec[field]
        }
        return f"reference/vectorized counter drift: {drift}"
    if "process" in impls:
        serial = [d.counters.as_dict() for d in impls["sharded"].devices]
        proc = [d.counters.as_dict() for d in impls["process"].devices]
        if serial != proc:
            drift = [
                {f: (s[f], p[f]) for f in s if s[f] != p[f]}
                for s, p in zip(serial, proc)
            ]
            return f"sharded/process per-shard counter drift: {drift}"
    return None


def _check_process_snapshot_identity(impls) -> Optional[str]:
    """The process engine's per-shard snapshot bytes equal the serial
    engine's exactly — and round-trip through load — so the post-recovery
    state of the two is bit-identical."""
    if "process" not in impls:
        return None
    from repro.persist import table_from_bytes, table_to_bytes

    for index, (serial, proc) in enumerate(
        zip(impls["sharded"].shards, impls["process"].shards)
    ):
        serial_bytes = table_to_bytes(serial)
        proc_bytes = table_to_bytes(proc)
        if serial_bytes != proc_bytes:
            return (
                f"shard {index}: process-engine snapshot bytes differ from "
                "the serial engine's (post-recovery state would diverge)"
            )
        restored = table_from_bytes(proc_bytes)
        if sorted(restored.items()) != sorted(proc.items()):
            return f"shard {index}: snapshot round-trip lost items"
    return None


def _check_items(impls, model) -> Optional[str]:
    expected = sorted(model.items())
    for name, impl in impls.items():
        got = sorted(impl.items())
        if got != expected:
            missing = set(model.items()) - set(impl.items())
            extra = set(impl.items()) - set(model.items())
            return (
                f"items mismatch on {name}: missing={sorted(missing)[:5]}, "
                f"extra={sorted(extra)[:5]}"
            )
    return None


def _check_chains(impls) -> Optional[str]:
    for name, impl in impls.items():
        for table in _tables(impl):
            counts = table.bucket_slab_counts()
            if len(counts) != table.num_buckets:
                return (
                    f"{name}: bucket_slab_counts has {len(counts)} entries "
                    f"for {table.num_buckets} buckets"
                )
            if counts.min() < 1:
                return f"{name}: a bucket reports {counts.min()} slabs"
            # bucket_slab_counts covers the current (old) array; during a
            # migration the new array's slabs are extra, so compare against
            # the old array's own total rather than the two-array sum.
            old_total = table.lists.total_slabs()
            if int(counts.sum()) != old_total:
                return (
                    f"{name}: slab counts sum {int(counts.sum())} != "
                    f"old-array total_slabs {old_total}"
                )
            if table.migration is None and old_total != table.total_slabs():
                return (
                    f"{name}: quiescent table reports total_slabs "
                    f"{table.total_slabs()} != array total {old_total}"
                )
    return None


def _check_search_all(impls, model, rng: random.Random) -> Optional[str]:
    live = sorted(model)
    sample = rng.sample(live, min(5, len(live))) if live else []
    sample += [rng.randrange(1, KEY_SPACE) for _ in range(3)]
    for key in sample:
        expected = sorted([model[key]] if key in model else [])
        for name, impl in impls.items():
            got = sorted(impl.search_all(key))
            if got != expected:
                return f"search_all({key}) mismatch on {name}: {got} != {expected}"
    return None


def _check_policy_band(impls) -> Optional[str]:
    for name, impl in impls.items():
        for table in _tables(impl):
            if table.migration is not None:
                # The policy is deliberately suppressed while a migration is
                # in flight; shape invariants resume once it completes (the
                # auto hook reconciles in the same post-batch call).
                continue
            eps = table.config.elements_per_slab
            decision = POLICY.decide(len(table), table.num_buckets, eps)
            if decision is not None:
                return (
                    f"{name}: policy not quiescent after auto-resize "
                    f"(n={len(table)}, buckets={table.num_buckets}, "
                    f"wants {decision})"
                )
            beta = table.beta()
            ceiling = POLICY.beta_high * (1 + POLICY.hysteresis) + 1e-9
            if beta > ceiling:
                return f"{name}: beta {beta:.3f} above the band ceiling {ceiling:.3f}"
    return None


# --------------------------------------------------------------------------- #
# The runner and the shrinking loop
# --------------------------------------------------------------------------- #

HEAVY_EVERY = 4  #: run the structure-heavy invariants every N steps


def run_program(
    program: Program,
    *,
    check_coverage: bool = False,
    include_process: bool = False,
) -> Optional[str]:
    """Execute a program; return an error description, or ``None`` if clean.

    ``include_process`` adds the process-executor engine to the comparison
    set (see :func:`make_impls`); its workers are torn down before
    returning, whatever the outcome.
    """
    impls = make_impls(include_process=include_process)
    try:
        return _run_program(program, impls, check_coverage=check_coverage)
    finally:
        for impl in impls.values():
            close = getattr(impl, "close", None)
            if close is not None:
                close()


def _run_program(program: Program, impls, *, check_coverage: bool) -> Optional[str]:
    model: dict = {}
    previous = {
        name: [device.counters.as_dict() for device in _devices(name, impl)]
        for name, impl in impls.items()
    }
    check_rng = random.Random(0xC0FFEE)

    for index, step in enumerate(program):
        try:
            expected = apply_to_model(model, step)
            got = {name: apply_to_impl(impl, step) for name, impl in impls.items()}
        except Exception as error:  # noqa: BLE001 - a crash is a failing program
            return f"step {index} {step!r} raised {type(error).__name__}: {error}"

        error = (
            _model_result_mismatch(step, expected, got)
            or _check_lengths(impls, model)
            or _check_counter_monotonicity(impls, previous)
            or _check_backend_counters(impls)
        )
        if error is None and step[0] in MUTATING:
            error = _check_policy_band(impls)
        if error is None and (index % HEAVY_EVERY == 0 or index == len(program) - 1):
            error = (
                _check_items(impls, model)
                or _check_chains(impls)
                or _check_search_all(impls, model, check_rng)
            )
        if error:
            return f"step {index} {step!r}: {error}"

    error = (
        _check_items(impls, model)
        or _check_chains(impls)
        or _check_search_all(impls, model, check_rng)
        or _check_policy_band(impls)
        or _check_process_snapshot_identity(impls)
    )
    if error:
        return f"end of program: {error}"

    if check_coverage:
        for name, impl in impls.items():
            for table in _tables(impl):
                if table.resize_stats.grows < 1 or table.resize_stats.shrinks < 1:
                    return (
                        f"coverage: {name} table saw grows="
                        f"{table.resize_stats.grows}, shrinks="
                        f"{table.resize_stats.shrinks}; the generator must force both"
                    )
                if table.resize_stats.migration_steps < 1:
                    return (
                        f"coverage: {name} table saw no incremental migration "
                        f"steps; the generator must force a mid-migration phase"
                    )
    return None


def shrink_program(program: Program, *, max_attempts: int = 120) -> Program:
    """Delta-debug a failing program to a (locally) minimal reproducer.

    Re-runs candidate programs from scratch (coverage checks off — only the
    original failure class needs to persist, and any invariant violation
    counts), removing ever-smaller chunks while the failure survives.
    """
    current = list(program)
    attempts = 0
    chunk = max(1, len(current) // 2)
    while chunk > 0 and attempts < max_attempts:
        index = 0
        while index < len(current) and attempts < max_attempts:
            candidate = current[:index] + current[index + chunk:]
            attempts += 1
            if candidate and run_program(candidate) is not None:
                current = candidate
            else:
                index += chunk
        chunk //= 2
    return current


def format_program(program: Program) -> str:
    """A copy-pasteable Python literal of the program."""
    lines = ["PROGRAM = ["]
    for step in program:
        lines.append(f"    {step!r},")
    lines.append("]")
    return "\n".join(lines)
