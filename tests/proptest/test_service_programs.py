"""Property tests: random service programs through the per-shard drain path.

Each pinned seed generates a random *program* — a sequence of waves, where
a wave is either a run of awaited single operations or several concurrent
``submit_many`` admissions, with checkpoints (snapshot + WAL truncate)
landing at random wave boundaries — and executes it against a live
:class:`~repro.service.SlabHashService` over a WAL.  Keys are unique within
each wave, so every operation's expected result is determined by the state
at the wave boundary no matter how the event loop interleaves the
admissions, the shard routing splits them, or the drains cut batches.

Three diffs per program:

* every admission's *results* against a plain-dict model (wrong values,
  lost or duplicated futures, and cross-admission reordering all fail here);
* the engine's *final contents* against the model (a batch applied twice or
  dropped by the group-commit path fails here);
* a full *recovery* from the last checkpoint plus the group-committed WAL
  tail, which must land on exactly the same contents — the write-ahead
  contract end to end, including batch indices assigned at commit time.

CI runs the pinned seeds plus one derived from ``PROPTEST_SEED``, mirroring
the differential-harness job.
"""

from __future__ import annotations

import asyncio
import os
import random

import numpy as np
import pytest

from repro.core import constants as C
from repro.core.config import SlabAllocConfig
from repro.core.slab_hash import SlabHash
from repro.engine import ShardedSlabHash
from repro.persist import WriteAheadLog, recover
from repro.service import ServiceConfig, SlabHashService

PINNED_SEEDS = [811, 822]
KEY_SPACE = 30_000
ALLOC = SlabAllocConfig(num_super_blocks=4, num_memory_blocks=32, units_per_block=128)


def _seeds() -> list:
    seeds = list(PINNED_SEEDS)
    raw = os.environ.get("PROPTEST_SEED")
    if raw:
        try:
            seeds.append(int(raw.strip()) % 2**31)
        except ValueError:
            pass
    return seeds


def fresh_impl(kind: str):
    if kind == "engine":
        return ShardedSlabHash(2, 64, alloc_config=ALLOC, seed=47)
    return SlabHash(64, alloc_config=ALLOC, seed=47)


def expected_result(model: dict, op: int, key: int, value: int) -> int:
    """Apply one op to the model, returning the SlabHash-convention result."""
    if op == C.OP_INSERT:
        model[key] = value
        return 0
    if op == C.OP_DELETE:
        return 1 if model.pop(key, None) is not None else 0
    return model.get(key, C.SEARCH_NOT_FOUND)


def generate_program(seed: int, num_waves: int = 8) -> list:
    """A reproducible program: list of ('singles'|'bulk'|'checkpoint', data).

    Bulk waves carry several admissions whose keys are unique *across the
    whole wave*; single waves are short runs of awaited operations.  Key
    choices skew toward previously touched keys so deletes and replaces hit.
    """
    rng = random.Random(seed)
    touched: set = set()
    program = []

    def pick_keys(count: int) -> list:
        revisit = [k for k in sorted(touched) if rng.random() < 0.5]
        rng.shuffle(revisit)
        keys = revisit[: count // 2]
        seen = set(keys)
        while len(keys) < count:
            key = rng.randrange(1, KEY_SPACE)
            if key not in seen:
                keys.append(key)
                seen.add(key)
        rng.shuffle(keys)
        touched.update(keys)
        return keys

    for _wave in range(num_waves):
        if rng.random() < 0.35:
            ops = [
                (
                    rng.choice([C.OP_INSERT, C.OP_INSERT, C.OP_SEARCH, C.OP_DELETE]),
                    key,
                    rng.randrange(0, 2**16),
                )
                for key in pick_keys(rng.randrange(3, 9))
            ]
            program.append(("singles", ops))
        else:
            admissions = []
            wave_keys = pick_keys(rng.randrange(40, 140))
            cursor = 0
            while cursor < len(wave_keys):
                size = rng.randrange(15, 60)
                chunk = wave_keys[cursor : cursor + size]
                cursor += size
                admissions.append(
                    (
                        np.array(
                            [
                                rng.choice(
                                    [C.OP_INSERT, C.OP_INSERT, C.OP_SEARCH, C.OP_DELETE]
                                )
                                for _ in chunk
                            ],
                            dtype=np.int64,
                        ),
                        np.array(chunk, dtype=np.uint64),
                        np.array(
                            [rng.randrange(0, 2**16) for _ in chunk], dtype=np.uint32
                        ),
                    )
                )
            program.append(("bulk", admissions))
        if rng.random() < 0.3:
            program.append(("checkpoint", None))
    return program


def run_program(seed: int, kind: str, tmp_path, scheduler_seed=None) -> None:
    program = generate_program(seed)
    workdir = tmp_path / f"{kind}-{seed}-{scheduler_seed}"
    workdir.mkdir()
    snap = str(workdir / "snap")
    wal_path = str(workdir / "ops.wal")

    impl = fresh_impl(kind)
    config = ServiceConfig(
        max_batch_size=128, max_delay=0.0005, scheduler_seed=scheduler_seed
    )
    wal = WriteAheadLog(wal_path)
    service = SlabHashService(impl, config=config, wal=wal)
    model: dict = {}

    async def main() -> None:
        async with service:
            # An initial checkpoint so recovery always has a snapshot, even
            # when the random program places none.
            service.checkpoint(snap)
            for step, payload in program:
                if step == "checkpoint":
                    service.checkpoint(snap)
                elif step == "singles":
                    for op, key, value in payload:
                        expected = expected_result(model, op, key, value)
                        got = await service.submit(op, key, value)
                        assert got == expected & 0xFFFFFFFF, (
                            f"seed {seed} {kind}: single op {op} on key {key} "
                            f"returned {got}, model expected {expected}"
                        )
                else:
                    # Wave-unique keys: expectations depend only on the
                    # pre-wave model, whatever order the drains execute.
                    expectations = [
                        np.array(
                            [
                                expected_result(model, int(op), int(key), int(value))
                                for op, key, value in zip(op_codes, keys, values)
                            ],
                            dtype=np.uint32,
                        )
                        for op_codes, keys, values in payload
                    ]
                    results = await asyncio.gather(
                        *[
                            service.submit_many(op_codes, keys, values)
                            for op_codes, keys, values in payload
                        ]
                    )
                    for index, (got, expected) in enumerate(zip(results, expectations)):
                        np.testing.assert_array_equal(
                            got, expected,
                            err_msg=(
                                f"seed {seed} {kind}: bulk admission {index} "
                                "diverged from the dict model"
                            ),
                        )

    asyncio.run(main())
    stats = service.stats()
    assert service.pending == 0
    assert stats.ops_failed == 0
    assert stats.ops_completed == stats.ops_enqueued

    # Final contents: the live engine agrees with the dict model.
    live_items = sorted((int(k), int(v)) for k, v in impl.items())
    assert live_items == sorted(model.items()), (
        f"seed {seed} {kind}: engine contents diverged from the dict model"
    )

    # Recovery reference: snapshot + group-committed WAL tail must rebuild
    # exactly these contents (checkpoint floors skip covered batches).
    wal.close()
    recovered, report = recover(
        snap, wal_path, scheduler_seed=scheduler_seed
    )
    assert sorted((int(k), int(v)) for k, v in recovered.items()) == live_items, (
        f"seed {seed} {kind}: recovery from the last checkpoint diverged "
        f"(replayed {report.records_replayed} records)"
    )


@pytest.mark.parametrize("kind", ["table", "engine"])
@pytest.mark.parametrize("seed", _seeds())
def test_random_service_programs_match_model_and_recovery(seed, kind, tmp_path):
    run_program(seed, kind, tmp_path)


def test_seeded_scheduler_program_matches_model_and_recovery(tmp_path):
    """The replay-parity configuration: every batch runs under a seeded
    WarpScheduler (seed advanced per commit-time batch index plus shard),
    and recovery re-derives the same schedules from the WAL."""
    run_program(PINNED_SEEDS[0], "engine", tmp_path, scheduler_seed=9)
    run_program(PINNED_SEEDS[0], "table", tmp_path, scheduler_seed=9)


def test_generated_programs_are_deterministic_and_mixed():
    first, second = generate_program(3), generate_program(3)
    assert len(first) == len(second)
    for (step_a, payload_a), (step_b, payload_b) in zip(first, second):
        assert step_a == step_b
    steps = [step for step, _payload in generate_program(3, num_waves=30)]
    assert "bulk" in steps
    assert "singles" in steps
    assert "checkpoint" in steps
