"""Make the harness driver (prop_driver.py) importable from the test module."""

import os
import sys

_HERE = os.path.dirname(os.path.abspath(__file__))
if _HERE not in sys.path:
    sys.path.insert(0, _HERE)
