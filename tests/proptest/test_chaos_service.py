"""Chaos property tests: random programs against a live service under a
random :class:`~repro.faults.FaultPlan`, diffed against a dict model.

Each pinned seed derives both a *program* (sequential waves of concurrent
``submit_many`` admissions plus awaited singles, one op per key per wave)
and a *fault plan* (injected batch failures, allocator exhaustion,
migration-step failures, WAL I/O errors and torn writes, restore
failures) — fully deterministic, no wall-clock or global randomness
anywhere.  Clients ride out retryable rejections with
:func:`~repro.service.retry.retry_with_backoff`.

The engine runs an *incremental* deferred load-factor policy starting from
a deliberately tiny bucket array, so the drain loop interleaves bounded
migration steps between batches all run long — the
``shard:<i>.migration.step`` fault site (and allocator exhaustion landing
*inside* a step) is therefore exercised by the same random plans.  A failed
step must leave the watermark unchanged and both tables consistent, which
the end-of-run model/live/recovery diffs verify; the focused tests at the
bottom of this file pin the step-failure semantics down deterministically.

The invariants (docs/FAULTS.md):

* **acked exactly once** — every operation whose future resolved is applied
  (inserts present with their value, deletes absent) in the live engine;
* **rejected absent** — an operation whose admission was ultimately
  rejected never left partial state behind (its keys are excluded from the
  strict diff only when the rejection left them formally indeterminate —
  a give-up after retries — and such keys must still never *resurrect*
  values never written);
* **durable** — closing the WAL and running crash-recovery from the last
  checkpoint lands on exactly the live engine's contents;
* **self-healing** — every tripped lane returns to half-open and then
  closed without manual intervention.

``ops_failed == 0`` is deliberately NOT asserted — failures are the point.

CI runs the pinned seeds plus one derived from ``PROPTEST_SEED``.
"""

from __future__ import annotations

import asyncio
import os
import random

import numpy as np
import pytest

from repro.core import constants as C
from repro.core.config import SlabAllocConfig
from repro.core.resize import LoadFactorPolicy
from repro.core.slab_hash import SlabHash
from repro.engine import ShardedSlabHash
from repro.faults import (
    FaultAction,
    FaultPlan,
    InjectedAllocExhausted,
    InjectedFault,
    InjectedMigrationFailure,
)
from repro.persist import WriteAheadLog
from repro.persist.recovery import recover
from repro.service import (
    LANE_CLOSED,
    ServiceConfig,
    ServiceError,
    SlabHashService,
    retry_with_backoff,
)

PINNED_SEEDS = [911, 922, 933]
KEY_SPACE = 30_000
NUM_SHARDS = 2
#: Generous sizing: natural allocator exhaustion never fires, so every
#: failure in a run is one the fault plan injected (and therefore seeded).
ALLOC = SlabAllocConfig(num_super_blocks=8, num_memory_blocks=32, units_per_block=128)
#: Incremental + deferred: the drain loop pumps bounded migration steps
#: between batches.  The tiny starting array guarantees the waves push the
#: shards through several grow migrations, so the migration fault sites are
#: genuinely reachable under every plan.
POLICY = LoadFactorPolicy(
    min_buckets=4, incremental=True, migration_step_buckets=2
).deferred()


def _seeds() -> list:
    seeds = list(PINNED_SEEDS)
    raw = os.environ.get("PROPTEST_SEED")
    if raw:
        try:
            seeds.append(int(raw.strip()) % 2**31)
        except ValueError:
            pass
    return seeds


def chaos_sites() -> list:
    """Every injection site the plan may fire, with its template action."""
    sites = []
    for shard in range(NUM_SHARDS):
        sites.append(
            (f"shard:{shard}.execute", FaultAction(exc="batch", note="chaos"))
        )
        sites.append(
            (
                f"shard:{shard}.alloc.warp_allocate",
                FaultAction(exc="alloc", note="chaos"),
            )
        )
        sites.append(
            (
                f"shard:{shard}.migration.step",
                FaultAction(exc="migration", note="chaos"),
            )
        )
    sites.append(("wal.append", FaultAction(exc="os", note="chaos")))
    sites.append(
        ("wal.write", FaultAction(kind="torn_write", exc="os", bytes_written=13))
    )
    sites.append(("wal.fsync", FaultAction(exc="os", note="chaos")))
    sites.append(("service.restore", FaultAction(exc="fault", note="chaos")))
    return sites


def generate_waves(seed: int, num_waves: int = 6) -> list:
    """Waves of admissions; **each key appears in at most one op per wave**,
    which makes every op idempotent under at-least-once retry delivery."""
    rng = random.Random(seed * 13 + 7)
    touched: set = set()
    waves = []

    def pick_keys(count: int) -> list:
        revisit = [k for k in sorted(touched) if rng.random() < 0.5]
        rng.shuffle(revisit)
        keys = revisit[: count // 2]
        seen = set(keys)
        while len(keys) < count:
            key = rng.randrange(1, KEY_SPACE)
            if key not in seen:
                keys.append(key)
                seen.add(key)
        rng.shuffle(keys)
        touched.update(keys)
        return keys

    for _wave in range(num_waves):
        admissions = []
        wave_keys = pick_keys(rng.randrange(60, 160))
        cursor = 0
        while cursor < len(wave_keys):
            size = rng.randrange(15, 50)
            chunk = wave_keys[cursor : cursor + size]
            cursor += size
            admissions.append(
                (
                    np.array(
                        [
                            rng.choice(
                                [C.OP_INSERT, C.OP_INSERT, C.OP_SEARCH, C.OP_DELETE]
                            )
                            for _ in chunk
                        ],
                        dtype=np.int64,
                    ),
                    np.array(chunk, dtype=np.uint64),
                    np.array(
                        [rng.randrange(1, 2**16) for _ in chunk], dtype=np.uint32
                    ),
                )
            )
        waves.append(admissions)
    return waves


def expected_result(model: dict, op: int, key: int, value: int) -> int:
    if op == C.OP_INSERT:
        return 0
    if op == C.OP_DELETE:
        return 1 if key in model else 0
    return model.get(key, C.SEARCH_NOT_FOUND)


def apply_op(model: dict, op: int, key: int, value: int) -> None:
    if op == C.OP_INSERT:
        model[key] = value
    elif op == C.OP_DELETE:
        model.pop(key, None)


def run_chaos_program(seed: int, tmp_path) -> None:
    workdir = tmp_path / f"chaos-{seed}"
    workdir.mkdir()
    snap = str(workdir / "snap")
    wal_path = str(workdir / "ops.wal")

    waves = generate_waves(seed)
    plan = FaultPlan.random(seed, chaos_sites(), rate=0.05, horizon=48)
    engine = ShardedSlabHash(
        NUM_SHARDS, POLICY.min_buckets, alloc_config=ALLOC, seed=47,
        load_factor_policy=POLICY,
    )
    config = ServiceConfig(
        max_batch_size=128,
        max_delay=0.0005,
        max_pending_per_shard=2048,
        breaker_threshold=2,
    )
    wal = WriteAheadLog(wal_path)
    service = SlabHashService(engine, config=config, wal=wal, faults=plan)

    model: dict = {}
    #: Keys of admissions that were ultimately rejected (retries exhausted or
    #: a non-retryable error): their final state is formally indeterminate —
    #: excluded from the strict diff, but still forbidden from resurrecting
    #: values that were never acked.
    indeterminate: set = set()

    async def settle() -> None:
        while service.pending or service._restore_tasks:
            await asyncio.sleep(0.001)

    async def main() -> None:
        async with service:
            # An initial checkpoint so quarantine restores always have a
            # snapshot to rebuild from.
            service.checkpoint(snap)
            for wave_index, admissions in enumerate(waves):
                expectations = [
                    [
                        expected_result(model, int(op), int(key), int(value))
                        for op, key, value in zip(op_codes, keys, values)
                    ]
                    for op_codes, keys, values in admissions
                ]
                # Keys indeterminate when this wave's expectations were
                # computed: the model's view of them is unreliable, so
                # per-op result checks skip them.
                frozen_indeterminate = set(indeterminate)
                attempt_counts = [0] * len(admissions)

                def submit(index: int):
                    op_codes, keys, values = waves[wave_index][index]

                    async def attempt():
                        attempt_counts[index] += 1
                        return await service.submit_many(op_codes, keys, values)

                    return retry_with_backoff(
                        attempt,
                        retries=80,
                        base_delay=0.0005,
                        max_delay=0.01,
                        rng=random.Random(seed * 1000 + wave_index * 37 + index),
                    )

                outcomes = await asyncio.gather(
                    *[submit(index) for index in range(len(admissions))],
                    return_exceptions=True,
                )
                for index, outcome in enumerate(outcomes):
                    op_codes, keys, values = admissions[index]
                    if isinstance(outcome, BaseException):
                        if not isinstance(outcome, ServiceError) and not isinstance(
                            outcome, Exception
                        ):
                            raise outcome  # CancelledError etc: a harness bug
                        indeterminate.update(int(k) for k in keys)
                        continue
                    # Acked: fold into the model.  Only a WRITE re-determines
                    # an indeterminate key — a failed earlier admission may
                    # have left a stray value behind (e.g. its slice on one
                    # shard applied before another shard rejected), and an
                    # acked search reads that stray value without fixing it.
                    for op, key, value in zip(op_codes, keys, values):
                        apply_op(model, int(op), int(key), int(value))
                        if int(op) in (C.OP_INSERT, C.OP_DELETE):
                            indeterminate.discard(int(key))
                    if attempt_counts[index] == 1:
                        # First-attempt acks have reliable per-op results
                        # (retried deletes may legitimately observe their
                        # own earlier application), except on keys whose
                        # model value was already unreliable.
                        got = [int(x) for x in outcome]
                        for position, (op, key) in enumerate(zip(op_codes, keys)):
                            if int(key) in frozen_indeterminate:
                                continue
                            assert got[position] == expectations[index][position], (
                                f"seed {seed}: wave {wave_index} admission "
                                f"{index} op {position} (op={int(op)}, "
                                f"key={int(key)}) diverged from the dict model"
                            )
                await settle()
                # Mid-program checkpoint at a deterministic boundary.
                if wave_index == len(waves) // 2:
                    await retry_with_backoff(
                        _checkpoint_async,
                        retries=40,
                        base_delay=0.001,
                        rng=random.Random(seed + 5),
                    )
            await settle()
            # Self-healing: a probe per lane must close every breaker —
            # half-open lanes admit, and one clean batch closes them.
            for shard in range(NUM_SHARDS):
                key = next(
                    k
                    for k in range(KEY_SPACE, KEY_SPACE + 1000)
                    if engine.admit_one(k) == shard
                )
                for probe in range(50):
                    try:
                        await retry_with_backoff(
                            lambda key=key: service.insert(key, 1),
                            retries=80,
                            base_delay=0.0005,
                            rng=random.Random(seed * 100 + shard * 10 + probe),
                        )
                        break
                    except InjectedFault:
                        # The plan may still have faults scheduled; eat them
                        # (each consumes an occurrence) and probe again.
                        await settle()
                else:
                    raise AssertionError(f"seed {seed}: shard {shard} probe starved")
                model[key] = 1
            assert all(state == LANE_CLOSED for state in service.lane_states), (
                f"seed {seed}: lanes did not self-heal: {service.lane_states}"
            )

    async def _checkpoint_async():
        service.checkpoint(snap)

    asyncio.run(asyncio.wait_for(main(), timeout=120))

    stats = service.stats()
    assert service.pending == 0
    assert stats.ops_completed + stats.ops_failed + stats.ops_expired >= 0

    # The tiny starting array guarantees growth: the drain loop must have
    # pumped incremental migration steps, and every injected step failure
    # must have been absorbed into the resize-failure log (the drain never
    # dies; the failed step leaves the watermark unchanged and resumable).
    assert stats.migration_steps > 0, (
        f"seed {seed}: the chaos run never pumped a migration step"
    )
    migration_faults_fired = [
        site for site, _ in plan.fired_sites() if site.endswith("migration.step")
    ]
    logged = [f for f in stats.resize_failures if "InjectedMigrationFailure" in f]
    assert len(logged) == len(migration_faults_fired), (
        f"seed {seed}: {len(migration_faults_fired)} injected step failures "
        f"but {len(logged)} were logged: {stats.resize_failures}"
    )

    # Acked exactly once / rejected absent, against the live engine.
    live = {int(k): int(v) for k, v in service.engine.items()}
    for key, value in model.items():
        if key in indeterminate:
            continue
        assert live.get(key) == value, (
            f"seed {seed}: acked key {key} -> {value} missing or wrong in the "
            f"live engine (got {live.get(key)})"
        )
    for key, value in live.items():
        if key in indeterminate:
            continue
        assert model.get(key) == value, (
            f"seed {seed}: key {key} -> {value} present in the live engine "
            "but never acked (a rejected op was applied)"
        )

    # Durable across crash-recovery: the WAL tail (minus aborted batches)
    # on the last checkpoint must land on exactly the live contents.
    wal.close()
    recovered_engine, report = recover(
        snap, wal_path, extra_aborted=service._aborted_indices
    )
    recovered_items = sorted((int(k), int(v)) for k, v in recovered_engine.items())
    assert recovered_items == sorted(live.items()), (
        f"seed {seed}: crash-recovery diverged from the live engine "
        f"(replayed {report.records_replayed}, aborted {report.records_aborted})"
    )


@pytest.mark.parametrize("seed", _seeds())
def test_chaos_programs_hold_the_exactly_once_invariants(seed, tmp_path):
    run_chaos_program(seed, tmp_path)


def test_chaos_plans_and_programs_are_deterministic():
    plan_a = FaultPlan.random(PINNED_SEEDS[0], chaos_sites(), rate=0.05, horizon=48)
    plan_b = FaultPlan.random(PINNED_SEEDS[0], chaos_sites(), rate=0.05, horizon=48)
    assert plan_a.schedule == plan_b.schedule
    assert len(plan_a) > 0  # the pinned seeds actually inject something
    waves_a, waves_b = generate_waves(3), generate_waves(3)
    assert len(waves_a) == len(waves_b)
    for wave_a, wave_b in zip(waves_a, waves_b):
        for (ops_a, keys_a, vals_a), (ops_b, keys_b, vals_b) in zip(wave_a, wave_b):
            assert np.array_equal(ops_a, ops_b)
            assert np.array_equal(keys_a, keys_b)
            assert np.array_equal(vals_a, vals_b)


def test_chaos_waves_use_each_key_at_most_once_per_wave():
    for wave in generate_waves(17):
        seen: set = set()
        for _ops, keys, _values in wave:
            for key in keys:
                assert int(key) not in seen  # the idempotence precondition
                seen.add(int(key))


# --------------------------------------------------------------------------- #
# Focused migration fault-site semantics (deterministic, table-level)
# --------------------------------------------------------------------------- #


def _table_state(table) -> tuple:
    """Everything a failed step must not disturb: contents + both arrays."""
    state = table.migration
    return (
        sorted((int(k), int(v)) for k, v in table.items()),
        table.lists.base_slabs.tobytes(),
        None if state is None else state.watermark,
        None if state is None else state.steps,
        None if state is None else state.new_lists.base_slabs.tobytes(),
    )


def _mid_migration_table(backend: str) -> tuple:
    """A table shrinking 32 -> 8 buckets with plenty of band items per step.

    The shrink direction concentrates each migrated band into few new
    buckets, so a step's re-insert is guaranteed to chain past the base
    slab and hit ``alloc.warp_allocate`` — the natural in-step site for
    injected allocator exhaustion.
    """
    table = SlabHash(32, key_value=True, backend=backend, seed=5, alloc_config=ALLOC)
    keys = np.arange(1, 601, dtype=np.uint64)
    table.bulk_insert(keys, keys * np.uint64(7))
    model = {int(k): int(k) * 7 for k in keys}
    table.begin_resize(8, step_buckets=8)
    return table, model


def _drain_and_check(table, model: dict) -> None:
    while table.migration is not None:
        table.migrate_step()
    assert sorted((int(k), int(v)) for k, v in table.items()) == sorted(model.items())
    lookup = table.bulk_search(np.array(sorted(model), dtype=np.uint64))
    assert [int(x) for x in lookup] == [model[k] for k in sorted(model)]


@pytest.mark.parametrize("backend", ["reference", "vectorized"])
def test_injected_step_failure_is_atomic_and_resumable(backend):
    """``migration.step`` fires before any bucket moves: the failed step is
    a pure no-op and the very next pump resumes the same band."""
    table, model = _mid_migration_table(backend)
    table.migrate_step()  # one clean step first: fail from a nonzero watermark
    before = _table_state(table)
    assert before[2] == 8  # the clean step advanced the watermark

    table.alloc.faults = FaultPlan(
        {("migration.step", 0): FaultAction(exc="migration", note="focused")}
    )
    with pytest.raises(InjectedMigrationFailure):
        table.migrate_step()
    assert _table_state(table) == before  # nothing moved, nothing charged to state

    _drain_and_check(table, model)  # occurrence 1+ is clean: resumable in place


@pytest.mark.parametrize("backend", ["reference", "vectorized"])
def test_alloc_exhaustion_mid_step_rolls_the_band_back(backend):
    """Exhaustion *inside* a step's re-insert rolls the partial band out of
    the new array: watermark unchanged, both tables consistent, resumable."""
    table, model = _mid_migration_table(backend)
    before = _table_state(table)

    table.alloc.faults = FaultPlan(
        {("alloc.warp_allocate", 0): FaultAction(exc="alloc", note="focused")}
    )
    with pytest.raises(InjectedAllocExhausted):
        table.migrate_step()

    state = table.migration
    assert state is not None and state.watermark == before[2] == 0
    assert state.steps == 0 and state.items_moved == 0
    # The band rollback deleted every key that reached the new array.
    live_in_new = [
        item
        for bucket in range(state.target_buckets)
        for item in state.new_lists.live_items(bucket)
    ]
    assert live_in_new == []
    # The old array is untouched and every key still resolves through it.
    assert table.lists.base_slabs.tobytes() == before[1]
    assert sorted((int(k), int(v)) for k, v in table.items()) == sorted(model.items())

    table.alloc.faults = None
    _drain_and_check(table, model)
