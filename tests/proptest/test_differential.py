"""Property-based differential tests: random programs, three implementations.

Each pinned seed generates a random interleaved program (single ops, bulk
batches, concurrent mixed batches, explicit resizes, incremental-migration
begin/step ops, flushes) and runs it against the reference backend, the
vectorized backend and the two-shard engine — all with an auto load-factor
policy — plus a plain-dict model, checking the seven invariant families of
:mod:`prop_driver` after every step.  Every generated program forces a
mid-migration phase (searches, deletes, concurrent batches and flushes with
both tables live); the coverage hook rejects runs that saw no migration
step.  On failure the program is delta-debugged and the **minimal
reproducing program** is printed as a copy-pasteable literal.

CI runs the three pinned seeds plus one derived from ``PROPTEST_SEED``
(set from ``GITHUB_RUN_ID`` in the workflow), so every run also explores a
fresh corner of the space while staying reproducible from the log output.
"""

from __future__ import annotations

import os

import pytest

from prop_driver import format_program, generate_program, run_program, shrink_program

PINNED_SEEDS = [101, 202, 303]


def _seeds() -> list:
    seeds = list(PINNED_SEEDS)
    raw = os.environ.get("PROPTEST_SEED")
    if raw:
        try:
            seeds.append(int(raw.strip()) % 2**31)
        except ValueError:
            pass  # a malformed override never breaks the pinned runs
    return seeds


@pytest.mark.parametrize("seed", _seeds())
def test_random_program_is_equivalent_across_implementations(seed):
    """Every pinned-seed program also runs under ``executor="process"``
    with two workers: results, per-shard counters, and end-of-program
    snapshot bytes must be bit-identical to the serial sharded engine
    (the shrinker re-runs serial-only for speed)."""
    program = generate_program(seed)
    error = run_program(program, check_coverage=True, include_process=True)
    if error is not None:
        minimal = shrink_program(program)
        pytest.fail(
            f"differential harness failed for seed {seed}:\n"
            f"  {error}\n\n"
            f"minimal reproducing program ({len(minimal)} of "
            f"{len(program)} steps):\n{format_program(minimal)}\n\n"
            "re-run with: PROPTEST_SEED={seed} PYTHONPATH=src python -m pytest "
            "tests/proptest -q".replace("{seed}", str(seed))
        )


def test_shrinker_minimizes_an_injected_failure():
    """The shrinking loop itself works: an impossible step is isolated."""
    program = generate_program(404)
    # A key outside the storable domain raises in every implementation.
    program.insert(len(program) // 2, ("insert", 0xFFFFFFFF, 1))
    assert run_program(program) is not None
    minimal = shrink_program(program)
    assert ("insert", 0xFFFFFFFF, 1) in minimal
    assert len(minimal) < len(program)


def test_generator_is_deterministic():
    assert generate_program(7) == generate_program(7)
    assert generate_program(7) != generate_program(8)


def test_generator_forces_a_mid_migration_phase():
    """Every seed's program begins a migration and steps it explicitly."""
    for seed in (7, 101, 909):
        program = generate_program(seed)
        ops = [step[0] for step in program]
        assert "begin_migration" in ops
        begin = ops.index("begin_migration")
        assert "migrate_step" in ops[begin:]


def test_shrinker_preserves_migration_ops_in_minimal_repro():
    """A failure that *requires* both tables live keeps its migration ops.

    ``fail_if_migrating`` raises exactly when a migration is in flight, so
    a minimal reproducer must retain a ``begin_migration`` (not yet drained
    by enough auto pumps) before it — the shrinker cannot drop the
    migration ops without losing the failure.
    """
    program = generate_program(505)
    # Strip generated migration ops so the injected pair below is the only
    # way to reach a mid-migration state, then fail while it is in flight.
    program = [s for s in program if s[0] not in ("begin_migration", "migrate_step")]
    program.append(("begin_migration", 2, "grow"))
    program.append(("fail_if_migrating",))
    assert run_program(program) is not None
    minimal = shrink_program(program)
    kinds = [step[0] for step in minimal]
    assert "fail_if_migrating" in kinds
    assert "begin_migration" in kinds
    assert kinds.index("begin_migration") < kinds.index("fail_if_migrating")
    assert len(minimal) < len(program)
