"""Tests for the CUDPP-style cuckoo hashing baseline."""

import numpy as np
import pytest

from repro.baselines.cuckoo import CuckooBuildError, CuckooHashTable, default_max_chain
from repro.core import constants as C
from repro.gpusim.device import Device

from tests.conftest import make_keys


class TestConstruction:
    def test_for_load_factor_sizes_table(self):
        table = CuckooHashTable.for_load_factor(1000, 0.5)
        assert table.capacity >= 2000

    def test_invalid_load_factor(self):
        with pytest.raises(ValueError):
            CuckooHashTable.for_load_factor(100, 0.0)
        with pytest.raises(ValueError):
            CuckooHashTable.for_load_factor(100, 1.5)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            CuckooHashTable(0)

    def test_needs_at_least_two_hash_functions(self):
        with pytest.raises(ValueError):
            CuckooHashTable(100, num_hash_functions=1)

    def test_default_max_chain_grows_with_n(self):
        assert default_max_chain(2**20) > default_max_chain(2**10)


class TestBuildAndSearch:
    def test_build_and_search_all_found(self):
        keys = make_keys(500, seed=1)
        values = (keys % 999).astype(np.uint32)
        table = CuckooHashTable.for_load_factor(len(keys), 0.5, seed=2)
        stats = table.bulk_build(keys, values)
        assert stats.num_elements == 500
        assert np.array_equal(table.bulk_search(keys), values)

    def test_search_missing_keys(self):
        keys = make_keys(300, seed=3)
        table = CuckooHashTable.for_load_factor(len(keys), 0.5, seed=4)
        table.bulk_build(keys, keys)
        missing = (keys.astype(np.uint64) + 2**31).astype(np.uint32)
        assert np.all(table.bulk_search(missing) == C.SEARCH_NOT_FOUND)

    def test_high_load_factor_build_succeeds_with_four_functions(self):
        keys = make_keys(800, seed=5)
        table = CuckooHashTable.for_load_factor(len(keys), 0.85, seed=6)
        stats = table.bulk_build(keys, keys)
        assert stats.load_factor == pytest.approx(0.85, abs=0.05)
        assert np.array_equal(table.bulk_search(keys), keys)

    def test_eviction_chains_grow_with_load_factor(self):
        keys = make_keys(600, seed=7)
        low = CuckooHashTable.for_load_factor(len(keys), 0.3, seed=8)
        high = CuckooHashTable.for_load_factor(len(keys), 0.85, seed=8)
        low_stats = low.bulk_build(keys, keys)
        high_stats = high.bulk_build(keys, keys)
        assert high_stats.total_evictions > low_stats.total_evictions

    def test_build_fails_when_table_too_small(self):
        keys = make_keys(100, seed=9)
        table = CuckooHashTable(100, seed=10)
        with pytest.raises(ValueError):
            table.bulk_build(keys, keys)

    def test_impossible_build_raises_after_restarts(self):
        # Two hash functions at ~99 % load cannot succeed.
        keys = make_keys(99, seed=11)
        table = CuckooHashTable(100, num_hash_functions=2, seed=12, max_restarts=3)
        with pytest.raises(CuckooBuildError):
            table.bulk_build(keys, keys)

    def test_contains_and_items(self):
        keys = make_keys(50, seed=13)
        table = CuckooHashTable.for_load_factor(len(keys), 0.4, seed=14)
        table.bulk_build(keys, keys)
        assert all(table.contains(int(k)) for k in keys)
        assert len(table.items()) == 50

    def test_duplicate_key_overwrites(self):
        table = CuckooHashTable(64, seed=15)
        table.bulk_build(np.array([5, 5], dtype=np.uint32), np.array([1, 2], dtype=np.uint32))
        assert table.bulk_search(np.array([5], dtype=np.uint32))[0] == 2


class TestEventAccounting:
    def test_one_atomic_per_insert_at_low_load(self):
        device = Device()
        keys = make_keys(200, seed=16)
        table = CuckooHashTable.for_load_factor(len(keys), 0.2, device=device, seed=17)
        table.bulk_build(keys, keys)
        # Fast path: one 64-bit atomic per insertion, few evictions.
        assert device.counters.atomic64 <= int(len(keys) * 1.2)

    def test_search_reads_all_candidate_positions(self):
        device = Device()
        keys = make_keys(100, seed=18)
        table = CuckooHashTable.for_load_factor(len(keys), 0.5, device=device, seed=19)
        table.bulk_build(keys, keys)
        before = device.counters.uncoalesced_read_words
        table.bulk_search(keys[:50])
        probes = device.counters.uncoalesced_read_words - before
        assert probes == 50 * table.num_hash_functions

    def test_working_set_matches_table_bytes(self):
        table = CuckooHashTable(1000)
        assert table.working_set_bytes == 8000
