"""Tests for the Misra & Chaudhuri lock-free chaining hash table baseline."""

import numpy as np
import pytest

from repro.baselines.misra import MisraHashTable, NIL
from repro.core import constants as C
from repro.gpusim.device import Device
from repro.gpusim.errors import AllocationError

from tests.conftest import make_keys


class TestBasicOperations:
    def test_insert_and_search(self):
        table = MisraHashTable(8, capacity=100)
        assert table.insert(5)
        assert table.search(5)
        assert not table.search(6)

    def test_set_semantics_no_duplicates(self):
        table = MisraHashTable(8, capacity=100)
        assert table.insert(5) is True
        assert table.insert(5) is False
        assert len(table) == 1

    def test_delete(self):
        table = MisraHashTable(8, capacity=100)
        table.insert(5)
        assert table.delete(5) is True
        assert not table.search(5)
        assert table.delete(5) is False

    def test_deleted_nodes_are_not_recycled(self):
        table = MisraHashTable(8, capacity=100)
        table.insert(1)
        table.delete(1)
        table.insert(2)
        assert table.nodes_used == 2

    def test_contains_dunder(self):
        table = MisraHashTable(4, capacity=10)
        table.insert(3)
        assert 3 in table
        assert 4 not in table

    def test_capacity_exhaustion_raises(self):
        table = MisraHashTable(2, capacity=3)
        for key in (1, 2, 3):
            table.insert(key)
        with pytest.raises(AllocationError):
            table.insert(4)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            MisraHashTable(0, capacity=10)
        with pytest.raises(ValueError):
            MisraHashTable(4, capacity=0)

    def test_max_memory_utilization_is_50_percent(self):
        assert MisraHashTable(4, capacity=10).max_memory_utilization == 0.5


class TestBulkAndConcurrent:
    def test_bulk_build_and_search(self):
        keys = make_keys(200, seed=1)
        table = MisraHashTable(16, capacity=300, seed=2)
        table.bulk_build(keys)
        assert table.bulk_search(keys).all()
        missing = (keys.astype(np.uint64) + 2**31).astype(np.uint32)
        assert not table.bulk_search(missing).any()

    def test_concurrent_batch_mixed_operations(self):
        base = make_keys(100, seed=3)
        table = MisraHashTable(16, capacity=400, seed=4)
        table.bulk_build(base)
        new = make_keys(50, seed=5) + np.uint32(2**29)
        ops = np.concatenate([
            np.full(50, C.OP_INSERT), np.full(50, C.OP_DELETE), np.full(50, C.OP_SEARCH)
        ])
        keys = np.concatenate([new, base[:50], base[50:]]).astype(np.uint32)
        results = table.concurrent_batch(ops, keys)
        assert results[100:].all()  # searches of untouched keys succeed
        assert all(int(k) in table for k in new)
        assert not any(int(k) in table for k in base[:50])

    def test_concurrent_batch_rejects_unknown_ops(self):
        table = MisraHashTable(4, capacity=10)
        with pytest.raises(ValueError):
            table.concurrent_batch(np.array([99]), np.array([1], dtype=np.uint32))

    def test_concurrent_batch_shape_mismatch(self):
        table = MisraHashTable(4, capacity=10)
        with pytest.raises(ValueError):
            table.concurrent_batch(np.array([C.OP_INSERT]), np.array([1, 2], dtype=np.uint32))


class TestAccessPatternAccounting:
    def test_every_hop_is_an_uncoalesced_read(self):
        device = Device()
        table = MisraHashTable(1, capacity=64, device=device, seed=6)  # one long chain
        keys = make_keys(32, seed=7)
        table.bulk_build(keys)
        before = device.counters.uncoalesced_read_words
        table.search(int(keys[0]))
        hops = device.counters.uncoalesced_read_words - before
        assert hops >= 2  # head read plus at least one node read

    def test_no_coalesced_traffic_at_all(self):
        device = Device()
        table = MisraHashTable(8, capacity=200, device=device, seed=8)
        table.bulk_build(make_keys(100, seed=9))
        assert device.counters.coalesced_read_transactions == 0

    def test_insert_uses_atomic_allocation_and_head_cas(self):
        device = Device()
        table = MisraHashTable(8, capacity=10, device=device, seed=10)
        table.insert(42)
        assert device.counters.atomic32 >= 2  # atomicAdd for the node + head CAS

    def test_heads_initialized_to_nil(self):
        table = MisraHashTable(8, capacity=10)
        assert np.all(table.heads == NIL)
