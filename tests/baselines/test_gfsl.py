"""Tests for the analytic GFSL (lock-based GPU skip list) model."""

import pytest

from repro.baselines.gfsl import GFSLModel, SEARCH_PROFILE, UPDATE_PROFILE
from repro.gpusim.device import GTX_970, TESLA_K40C


class TestGFSLModel:
    def test_default_platform_is_gtx_970(self):
        assert GFSLModel().spec is GTX_970

    def test_peak_rates_near_published_numbers(self):
        model = GFSLModel()
        # Moscovici et al. report ~100 M searches/s and ~50 M updates/s.
        assert 60e6 <= model.peak_search_rate() <= 160e6
        assert 30e6 <= model.peak_update_rate() <= 80e6

    def test_updates_slower_than_searches(self):
        model = GFSLModel()
        assert model.peak_update_rate() < model.peak_search_rate()

    def test_far_below_slab_hash_peaks(self):
        model = GFSLModel()
        assert model.peak_search_rate() / 1e6 < 937 / 3
        assert model.peak_update_rate() / 1e6 < 512 / 3

    def test_lock_based_updates_need_two_atomics(self):
        assert GFSLModel().minimum_insert_atomics() == 2
        assert UPDATE_PROFILE.atomics32 == 2
        assert SEARCH_PROFILE.atomics32 == 0

    def test_other_device_changes_rates(self):
        faster = GFSLModel(TESLA_K40C)
        default = GFSLModel()
        assert faster.peak_search_rate() != pytest.approx(default.peak_search_rate())
