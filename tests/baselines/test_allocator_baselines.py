"""Tests for the CUDA-malloc-like and Halloc-like allocator baselines."""

import pytest

from repro.allocators.baselines import CudaMallocAllocator, HallocLikeAllocator
from repro.gpusim.device import Device
from repro.gpusim.errors import AllocationError


@pytest.mark.parametrize("allocator_cls", [CudaMallocAllocator, HallocLikeAllocator])
class TestFunctionalBehaviour:
    def test_unique_indices(self, allocator_cls):
        allocator = allocator_cls(100)
        indices = [allocator.allocate() for _ in range(100)]
        assert len(set(indices)) == 100

    def test_exhaustion(self, allocator_cls):
        allocator = allocator_cls(4)
        for _ in range(4):
            allocator.allocate()
        with pytest.raises(AllocationError):
            allocator.allocate()

    def test_free_and_reuse(self, allocator_cls):
        allocator = allocator_cls(4)
        indices = [allocator.allocate() for _ in range(4)]
        allocator.free(indices[1])
        assert allocator.allocate() == indices[1]

    def test_double_free_detected(self, allocator_cls):
        allocator = allocator_cls(4)
        index = allocator.allocate()
        allocator.free(index)
        with pytest.raises(AllocationError):
            allocator.free(index)

    def test_free_out_of_range(self, allocator_cls):
        allocator = allocator_cls(4)
        with pytest.raises(AllocationError):
            allocator.free(10)

    def test_occupancy_and_counts(self, allocator_cls):
        allocator = allocator_cls(10)
        for _ in range(5):
            allocator.allocate()
        assert allocator.allocated_units == 5
        assert allocator.total_allocations == 5
        assert allocator.occupancy() == pytest.approx(0.5)

    def test_invalid_capacity(self, allocator_cls):
        with pytest.raises(ValueError):
            allocator_cls(0)

    def test_events_are_charged(self, allocator_cls):
        device = Device()
        allocator = allocator_cls(10, device=device)
        allocator.allocate()
        assert device.counters.atomic32 >= allocator_cls.ATOMICS_PER_ALLOC
        assert device.counters.warp_instructions >= allocator_cls.INSTRUCTIONS_PER_ALLOC
        assert device.counters.allocations == 1


class TestCalibration:
    def test_malloc_is_much_slower_than_halloc(self):
        assert CudaMallocAllocator.SERIAL_LATENCY > 10 * HallocLikeAllocator.SERIAL_LATENCY

    def test_serial_time_accumulates_per_allocation(self):
        allocator = HallocLikeAllocator(100)
        for _ in range(10):
            allocator.allocate()
        assert allocator.serial_time() == pytest.approx(10 * HallocLikeAllocator.SERIAL_LATENCY)

    def test_serialization_targets_paper_rates(self):
        # 1 M allocations at the serialization latency alone should land near
        # the paper's measurements (1.2 s for malloc, 66 ms for Halloc).
        assert 0.5 <= 1e6 * CudaMallocAllocator.SERIAL_LATENCY <= 2.0
        assert 0.03 <= 1e6 * HallocLikeAllocator.SERIAL_LATENCY <= 0.09
