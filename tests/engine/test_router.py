"""Tests for the shard router: every policy must partition the stream."""

import numpy as np
import pytest

from repro.core import constants as C
from repro.engine.router import ROUTING_POLICIES, ShardRouter

from tests.conftest import make_keys


class TestConstruction:
    def test_rejects_nonpositive_shard_count(self):
        with pytest.raises(ValueError):
            ShardRouter(0)

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError):
            ShardRouter(4, policy="random")

    def test_key_partitioning_flag(self):
        assert ShardRouter(4, policy="hash").key_partitioning
        assert ShardRouter(4, policy="range").key_partitioning
        assert not ShardRouter(4, policy="round-robin").key_partitioning


@pytest.mark.smoke
class TestPartitionProperty:
    """Routing must send every stream position to exactly one shard."""

    @pytest.mark.parametrize("policy", ROUTING_POLICIES)
    @pytest.mark.parametrize("num_shards", (1, 3, 8))
    def test_partition_is_disjoint_and_complete(self, policy, num_shards):
        keys = make_keys(500, seed=11)
        parts = ShardRouter(num_shards, policy=policy, seed=5).partition(keys)
        assert len(parts) == num_shards
        merged = np.concatenate(parts)
        assert merged.size == keys.size  # complete
        assert np.unique(merged).size == keys.size  # disjoint
        for idx in parts:
            assert np.array_equal(idx, np.sort(idx))  # stream order kept

    @pytest.mark.parametrize("policy", ("hash", "range"))
    def test_key_policies_are_functions_of_the_key(self, policy):
        router = ShardRouter(6, policy=policy, seed=3)
        keys = make_keys(200, seed=2)
        first = router.route(keys)
        again = router.route(np.flip(keys))
        assert np.array_equal(first, np.flip(again))
        for key, shard in zip(keys[:10], first[:10]):
            assert router.shard_of(int(key)) == shard

    def test_range_policy_is_monotone_in_the_key(self):
        router = ShardRouter(4, policy="range")
        keys = np.sort(make_keys(300, seed=7))
        shards = router.route(keys)
        assert np.all(np.diff(shards) >= 0)
        assert int(shards.max()) < 4
        # The largest storable key must still land in the last shard.
        assert router.shard_of(C.MAX_USER_KEY - 1) == 3

    def test_range_policy_keeps_reserved_keys_in_range(self):
        """Out-of-domain keys route to a real shard whose validation rejects them."""
        router = ShardRouter(4, policy="range")
        for key in (C.MAX_USER_KEY, 0xFFFFFFFF):
            assert router.shard_of(key) == 3


class TestRoundRobin:
    def test_deals_in_rotation_across_calls(self):
        router = ShardRouter(3, policy="round-robin")
        a = router.route(make_keys(4, seed=1))
        b = router.route(make_keys(5, seed=2))
        assert list(a) == [0, 1, 2, 0]
        assert list(b) == [1, 2, 0, 1, 2]  # continues where the last call stopped

    def test_perfectly_balances_a_build_stream(self):
        router = ShardRouter(4, policy="round-robin")
        parts = router.partition(make_keys(400, seed=3))
        assert [p.size for p in parts] == [100, 100, 100, 100]


class TestBalance:
    def test_hash_routing_is_roughly_balanced(self):
        parts = ShardRouter(8, policy="hash", seed=0).partition(make_keys(4000, seed=9))
        sizes = np.array([p.size for p in parts])
        assert sizes.min() > 0
        assert sizes.max() / sizes.mean() < 1.5

    def test_single_shard_routes_everything_to_shard_zero(self):
        keys = make_keys(64, seed=4)
        for policy in ROUTING_POLICIES:
            assert not ShardRouter(1, policy=policy).route(keys).any()
