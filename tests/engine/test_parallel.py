"""ProcessShardExecutor: real multiprocess shard execution, serial-identical.

The contract under test: ``ShardedSlabHash(executor="process")`` produces
**bit-identical** results, device counters, and migration/resize behavior
versus the serial engine — the workers execute exactly the code the parent
would have, on state shipped via the persistence layer's bit-identical
snapshot bytes.  Plus the failure half: a worker death surfaces as a typed
:class:`~repro.faults.WorkerCrashed` (injected via the ``shard:<i>.worker``
site or genuine), lost-state shards fail loudly before silently serving a
stale respawned mirror, and teardown never leaks child processes.
"""

from __future__ import annotations

import gc
import os

import numpy as np
import pytest

from repro.core import constants as C
from repro.core.config import SlabAllocConfig
from repro.core.resize import LoadFactorPolicy
from repro.engine import MigrationInFlightError, ShardedSlabHash
from repro.faults import FaultAction, FaultPlan, WorkerCrashed

from tests.conftest import make_keys

ALLOC = SlabAllocConfig(num_super_blocks=4, num_memory_blocks=16, units_per_block=64)


def make_pair(num_shards=2, buckets=48, *, workers=None, policy=None, seed=29):
    """A serial engine and a process-mode engine with identical construction."""
    kwargs = dict(
        seed=seed,
        backend="vectorized",
        alloc_config=ALLOC,
        load_factor_policy=policy,
    )
    serial = ShardedSlabHash(num_shards, buckets, **kwargs)
    proc = ShardedSlabHash(
        num_shards, buckets, executor="process", executor_workers=workers, **kwargs
    )
    return serial, proc


def assert_identical(serial, proc):
    """Items, per-shard structure, and device counters all match bit-for-bit."""
    assert len(serial) == len(proc)
    assert sorted(serial.items()) == sorted(proc.items())
    for a, b in zip(serial.shards, proc.shards):
        assert a.num_buckets == b.num_buckets
        assert a.device.counters.as_dict() == b.device.counters.as_dict()
        assert a.alloc.allocated_units == b.alloc.allocated_units


def alive(pid):
    if pid is None:
        return False
    try:
        os.kill(pid, 0)
        return True
    except ProcessLookupError:
        return False


class TestProcessEquivalence:
    def test_bulk_ops_bit_identical(self):
        serial, proc = make_pair()
        keys = make_keys(600, seed=1)
        values = (keys * np.uint32(7)) & np.uint32(0xFFFF)
        try:
            for eng in (serial, proc):
                eng.bulk_insert(keys, values)
            assert np.array_equal(serial.bulk_search(keys), proc.bulk_search(keys))
            assert np.array_equal(
                serial.bulk_delete(keys[:150]), proc.bulk_delete(keys[:150])
            )
            misses = make_keys(100, seed=2)
            assert np.array_equal(serial.bulk_search(misses), proc.bulk_search(misses))
            assert_identical(serial, proc)
        finally:
            proc.close()

    def test_concurrent_batch_bit_identical_under_scheduler(self):
        serial, proc = make_pair()
        keys = make_keys(512, seed=3)
        values = keys & np.uint32(0xFFF)
        op_codes = np.concatenate(
            [
                np.full(256, C.OP_INSERT),
                np.full(128, C.OP_SEARCH),
                np.full(128, C.OP_DELETE),
            ]
        )
        stream = np.concatenate([keys[:256], keys[:128], keys[64:192]])
        stream_values = np.concatenate([values[:256], values[:128], values[64:192]])
        try:
            r_serial = serial.concurrent_batch(
                op_codes, stream, stream_values, scheduler_seed=77, wave_size=64
            )
            r_proc = proc.concurrent_batch(
                op_codes, stream, stream_values, scheduler_seed=77, wave_size=64
            )
            assert np.array_equal(r_serial, r_proc)
            assert_identical(serial, proc)
        finally:
            proc.close()

    def test_single_ops_and_sizes(self):
        serial, proc = make_pair()
        keys = make_keys(64, seed=5)
        try:
            for eng in (serial, proc):
                for key in keys:
                    eng.insert(int(key), int(key) % 500 + 1)
            for key in keys[:16]:
                assert serial.search(int(key)) == proc.search(int(key))
            assert serial.delete(int(keys[0])) == proc.delete(int(keys[0]))
            assert np.array_equal(serial.shard_sizes(), proc.shard_sizes())
            assert serial.used_bytes() == proc.used_bytes()
            assert serial.memory_utilization() == pytest.approx(
                proc.memory_utilization()
            )
            assert serial.num_buckets == proc.num_buckets
        finally:
            proc.close()

    def test_incremental_migration_identical(self):
        serial, proc = make_pair()
        keys = make_keys(400, seed=7)
        try:
            for eng in (serial, proc):
                eng.bulk_insert(keys, keys)
                eng.resize_shard(1, 96, incremental=True, step_buckets=4)
            assert serial.migrating_shards() == proc.migrating_shards() == [1]
            while serial.migrating_shards():
                s = serial.migrate_step_shard(1)
                p = proc.migrate_step_shard(1)
                assert (s.buckets_moved, s.items_moved, s.watermark, s.done) == (
                    p.buckets_moved,
                    p.items_moved,
                    p.watermark,
                    p.done,
                )
            assert proc.migrating_shards() == []
            assert_identical(serial, proc)
        finally:
            proc.close()

    def test_policy_pump_and_rebalance_barrier_identical(self):
        policy = LoadFactorPolicy(min_buckets=2).deferred()
        serial, proc = make_pair(policy=policy, buckets=8)
        keys = make_keys(500, seed=9)
        try:
            for eng in (serial, proc):
                eng.bulk_insert(keys, keys)
                eng.maybe_resize()
            r_serial = serial.rebalance()
            r_proc = proc.rebalance()
            assert [(r.old_buckets, r.new_buckets) for r in r_serial] == [
                (r.old_buckets, r.new_buckets) for r in r_proc
            ]
            assert_identical(serial, proc)
        finally:
            proc.close()

    def test_save_from_process_mode_round_trips(self, tmp_path):
        serial, proc = make_pair()
        keys = make_keys(300, seed=11)
        try:
            for eng in (serial, proc):
                eng.bulk_insert(keys, keys)
            path_serial = str(tmp_path / "serial-snap")
            path_proc = str(tmp_path / "proc-snap")
            serial.save(path_serial)
            proc.save(path_proc)  # save barriers: collects worker state first
            restored = ShardedSlabHash.load(path_proc)
            assert restored.process_executor is None  # restored engines are serial
            assert sorted(restored.items()) == sorted(serial.items())
            for a, b in zip(ShardedSlabHash.load(path_serial).shards, restored.shards):
                assert a.device.counters.as_dict() == b.device.counters.as_dict()
        finally:
            proc.close()

    def test_worker_cpu_accounting_accumulates(self):
        _, proc = make_pair(workers=2)
        try:
            keys = make_keys(400, seed=13)
            proc.bulk_insert(keys, keys)
            cpu = proc.process_executor.worker_cpu_seconds()
            assert len(cpu) == 2
            assert all(seconds > 0 for seconds in cpu)
            proc.process_executor.reset_worker_cpu()
            assert proc.process_executor.worker_cpu_seconds() == [0.0, 0.0]
        finally:
            proc.close()


class TestWorkerCrash:
    def test_injected_kill_raises_worker_crashed(self):
        _, proc = make_pair()
        try:
            keys = make_keys(200, seed=15)
            proc.bulk_insert(keys, keys)
            proc.items()  # sync: the mirror now holds the full state
            plan = FaultPlan({("shard:1.worker", 0): FaultAction(exc="worker")})
            proc.process_executor.faults = plan
            with pytest.raises(WorkerCrashed):
                proc.bulk_search(keys)
            assert plan.fired_sites() == [("shard:1.worker", 0)]
            # The next dispatch respawns the worker from the (fresh) mirror.
            found = proc.bulk_search(keys)
            assert int((found != C.SEARCH_NOT_FOUND).sum()) == len(keys)
        finally:
            proc.close()

    def test_grouped_worker_death_signals_every_hosted_shard(self):
        # Both shards share one worker: killing it must raise once per shard
        # rather than silently serving the second shard from a stale respawn.
        _, proc = make_pair(workers=1)
        try:
            keys = make_keys(200, seed=17)
            proc.bulk_insert(keys, keys)
            proc.items()  # sync the mirror before the crash
            plan = FaultPlan({("shard:0.worker", 0): FaultAction(exc="worker")})
            proc.process_executor.faults = plan
            with pytest.raises(WorkerCrashed):
                proc.bulk_search(keys)  # shard 0's dispatch dies
            with pytest.raises(WorkerCrashed):
                proc.bulk_search(keys)  # shard 1's lost-state signal
            found = proc.bulk_search(keys)  # both signals consumed; serves again
            assert int((found != C.SEARCH_NOT_FOUND).sum()) == len(keys)
        finally:
            proc.close()

    def test_genuine_worker_death_detected_on_dispatch(self):
        _, proc = make_pair()
        try:
            keys = make_keys(100, seed=19)
            proc.bulk_insert(keys, keys)
            proc.items()
            victim = proc.process_executor.worker_pids()[0]
            os.kill(victim, 9)
            with pytest.raises(WorkerCrashed):
                for _ in range(2):  # first dispatch may buffer; recv detects
                    proc.bulk_search(keys)
            found = proc.bulk_search(keys)
            assert int((found != C.SEARCH_NOT_FOUND).sum()) == len(keys)
        finally:
            proc.close()


class TestLifecycle:
    def test_close_kills_workers_and_degrades_to_serial(self):
        serial, proc = make_pair()
        keys = make_keys(250, seed=21)
        for eng in (serial, proc):
            eng.bulk_insert(keys, keys)
        pids = proc.process_executor.worker_pids()
        assert all(alive(pid) for pid in pids)
        proc.close()
        assert not any(alive(pid) for pid in pids)
        assert proc.process_executor is None
        # The mirror was synced on close: serial serving continues seamlessly.
        assert sorted(proc.items()) == sorted(serial.items())
        proc.bulk_insert(make_keys(50, seed=22), make_keys(50, seed=22))
        proc.close()  # idempotent

    def test_context_manager_closes(self):
        keys = make_keys(100, seed=23)
        with ShardedSlabHash(2, 48, alloc_config=ALLOC, executor="process") as eng:
            eng.bulk_insert(keys, keys)
            pids = eng.process_executor.worker_pids()
        assert not any(alive(pid) for pid in pids)

    def test_finalizer_reaps_workers_without_close(self):
        # Crash-safe teardown: a test that forgets close() (or dies) must not
        # leak children — the executor's finalizer terminates them at gc.
        eng = ShardedSlabHash(2, 48, alloc_config=ALLOC, executor="process")
        pids = eng.process_executor.worker_pids()
        assert all(alive(pid) for pid in pids)
        del eng
        gc.collect()
        assert not any(alive(pid) for pid in pids)

    def test_executor_knob_is_validated(self):
        with pytest.raises(ValueError, match="unknown executor"):
            ShardedSlabHash(2, 48, alloc_config=ALLOC, executor="threads")
        eng = ShardedSlabHash(2, 48, alloc_config=ALLOC, executor="serial")
        assert eng.process_executor is None

    def test_double_attach_is_refused(self):
        eng = ShardedSlabHash(2, 48, alloc_config=ALLOC, executor="process")
        try:
            with pytest.raises(RuntimeError, match="already attached"):
                eng.attach_executor("process")
        finally:
            eng.close()
        # After close, re-attaching is allowed again.
        eng.attach_executor("process")
        assert eng.process_executor is not None
        eng.close()

    def test_shard_list_replacement_guarded_in_process_mode(self):
        eng = ShardedSlabHash(2, 48, alloc_config=ALLOC, executor="process")
        try:
            with pytest.raises(RuntimeError, match="process executor"):
                eng.shards = []
        finally:
            eng.close()


class TestRebalanceMigrationBugfix:
    """Satellite regression: rebalance vs in-flight incremental migrations."""

    def test_rebalance_pumps_migration_to_completion_and_matches_dict_model(self):
        policy = LoadFactorPolicy(min_buckets=2)
        eng = ShardedSlabHash(
            2, 24, seed=31, alloc_config=ALLOC, load_factor_policy=policy
        )
        keys = make_keys(400, seed=31)
        model = {}
        eng.bulk_insert(keys, keys)
        for key in keys:
            model[int(key)] = int(key)
        eng.resize_shard(0, 96, incremental=True, step_buckets=2)
        assert eng.migrating_shards() == [0]
        results = eng.rebalance()
        # The in-flight migration was pumped to completion — never rebuilt
        # from a half-migrated bucket view — and the shard then retargeted.
        assert eng.migrating_shards() == []
        assert any(r.trigger in ("manual", "rebalance") for r in results)
        assert sorted(eng.items()) == sorted(model.items())
        found = eng.bulk_search(keys)
        assert np.array_equal(found.astype(np.uint64), keys.astype(np.uint64))

    def test_rebalance_on_migrating_error_refuses_without_touching_state(self):
        policy = LoadFactorPolicy(min_buckets=2)
        eng = ShardedSlabHash(
            2, 24, seed=33, alloc_config=ALLOC, load_factor_policy=policy
        )
        keys = make_keys(300, seed=33)
        eng.bulk_insert(keys, keys)
        eng.resize_shard(1, 96, incremental=True, step_buckets=2)
        watermark = eng.shards[1].migration.watermark
        with pytest.raises(MigrationInFlightError) as excinfo:
            eng.rebalance(on_migrating="error")
        assert excinfo.value.shards == [1]
        # Refused up front: the migration is still in flight, unadvanced.
        assert eng.migrating_shards() == [1]
        assert eng.shards[1].migration.watermark == watermark

    def test_rebalance_on_migrating_is_validated(self):
        eng = ShardedSlabHash(2, 24, alloc_config=ALLOC)
        with pytest.raises(ValueError, match="on_migrating"):
            eng.rebalance(LoadFactorPolicy(min_buckets=2), on_migrating="skip")
