"""Tests for EngineStats: merged counters and the parallel/serial time views."""

import pytest

from repro.engine.stats import EngineStats, merge_counters
from repro.gpusim.costmodel import CostModel
from repro.gpusim.counters import Counters


def counters(**kwargs) -> Counters:
    return Counters(**kwargs)


class TestMergeCounters:
    def test_merge_is_elementwise_sum(self):
        a = counters(atomic32=3, coalesced_read_transactions=5)
        b = counters(atomic32=4, warp_shuffles=7)
        merged = merge_counters([a, b])
        assert merged.atomic32 == 7
        assert merged.coalesced_read_transactions == 5
        assert merged.warp_shuffles == 7

    def test_merge_of_nothing_is_zero(self):
        assert merge_counters([]).as_dict() == Counters().as_dict()


@pytest.mark.smoke
class TestEngineStats:
    def make_stats(self, scale_to_ops=None):
        events = [
            counters(coalesced_read_transactions=100, atomic64=50, kernel_launches=1),
            counters(coalesced_read_transactions=300, atomic64=150, kernel_launches=1),
        ]
        return EngineStats.from_shard_events(
            events, [25, 75], cost_model=CostModel(), scale_to_ops=scale_to_ops
        )

    def test_aggregate_equals_sum_of_shard_counters(self):
        stats = self.make_stats()
        agg = stats.aggregate
        assert agg.coalesced_read_transactions == 400
        assert agg.atomic64 == 200
        assert agg.kernel_launches == 2
        # The aggregate is exactly the field-wise sum of the shard snapshots.
        expected = merge_counters([p.counters for p in stats.shards])
        assert agg.as_dict() == expected.as_dict()

    def test_parallel_time_is_the_slowest_shard(self):
        stats = self.make_stats()
        assert stats.parallel_seconds == max(p.seconds for p in stats.shards)
        assert stats.serial_seconds == pytest.approx(sum(p.seconds for p in stats.shards))
        assert stats.parallel_speedup == pytest.approx(
            stats.serial_seconds / stats.parallel_seconds
        )

    def test_throughput_uses_parallel_time(self):
        stats = self.make_stats()
        assert stats.throughput == pytest.approx(100 / stats.parallel_seconds)
        assert stats.mops == pytest.approx(stats.throughput / 1e6)

    def test_load_imbalance(self):
        stats = self.make_stats()
        # 75 ops on the busiest of 2 shards, 100 total: 75 * 2 / 100.
        assert stats.load_imbalance == pytest.approx(1.5)

    def test_scaling_preserves_shard_ratio_and_launches(self):
        stats = self.make_stats(scale_to_ops=1000)
        assert stats.num_ops == 1000
        a, b = stats.shards
        assert (a.num_ops, b.num_ops) == (250, 750)
        assert b.counters.coalesced_read_transactions == 3 * a.counters.coalesced_read_transactions
        assert a.counters.kernel_launches == 1  # launches are never scaled

    def test_mismatched_inputs_are_rejected(self):
        with pytest.raises(ValueError):
            EngineStats.from_shard_events([Counters()], [1, 2], cost_model=CostModel())

    def test_zero_op_maintenance_phase_is_allowed(self):
        """A rebalance/flush phase routes no operations but still has events."""
        events = [counters(coalesced_read_transactions=40, kernel_launches=1)]
        stats = EngineStats.from_shard_events(events, [0], cost_model=CostModel())
        assert stats.num_ops == 0
        assert stats.aggregate.coalesced_read_transactions == 40
        assert stats.parallel_seconds > 0
        assert stats.throughput == 0.0
        assert stats.load_imbalance == 1.0
        with pytest.raises(ValueError):
            stats.per_op("coalesced_read_transactions")

    def test_zero_op_zero_event_phase_reports_zero_throughput(self):
        """Even with no device events (quiescent maintenance), never inf."""
        stats = EngineStats.from_shard_events([Counters()], [0], cost_model=CostModel())
        assert stats.parallel_seconds == 0.0
        assert stats.throughput == 0.0
        assert stats.mops == 0.0

    def test_zero_op_phase_cannot_be_scaled(self):
        with pytest.raises(ValueError):
            EngineStats.from_shard_events(
                [Counters()], [0], cost_model=CostModel(), scale_to_ops=1000
            )

    def test_per_op_reads_the_aggregate(self):
        stats = self.make_stats()
        assert stats.per_op("coalesced_read_transactions") == pytest.approx(4.0)
