"""Per-shard resize / rebalance on the sharded engine.

Regression focus: ``ShardedSlabHash.__len__``, ``measure`` and
:class:`~repro.engine.stats.EngineStats` must report consistent totals
immediately after a per-shard resize or a ``rebalance()`` — resizing changes
bucket arrays, never contents or routing, and a maintenance phase that
routes zero operations must still be measurable.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SlabAllocConfig
from repro.core.resize import LoadFactorPolicy
from repro.engine import ShardedSlabHash

from tests.conftest import make_keys

ALLOC = SlabAllocConfig(num_super_blocks=4, num_memory_blocks=32, units_per_block=128)


def build_engine(**kwargs):
    engine = ShardedSlabHash(4, 8, alloc_config=ALLOC, seed=17, **kwargs)
    keys = make_keys(800, seed=17)
    values = (keys * np.uint32(7)) & np.uint32(0xFFFF)
    engine.bulk_build(keys, values)
    return engine, keys, values


class TestPerShardResize:
    def test_totals_consistent_immediately_after_shard_resize(self):
        engine, keys, values = build_engine()
        total_before = len(engine)
        sizes_before = engine.shard_sizes().copy()
        items_before = sorted(engine.items())

        result = engine.resize_shard(1, 64)
        assert result.direction == "grow"
        # __len__, shard_sizes and items must all agree right away.
        assert len(engine) == total_before
        assert np.array_equal(engine.shard_sizes(), sizes_before)
        assert sorted(engine.items()) == items_before
        assert engine.num_buckets == 3 * 8 + 64
        assert np.array_equal(engine.bulk_search(keys), values.astype(np.uint32))

    def test_shard_index_is_validated(self):
        engine, _, _ = build_engine()
        with pytest.raises(ValueError):
            engine.resize_shard(4, 16)
        with pytest.raises(ValueError):
            engine.resize_shard(-1, 16)

    def test_measure_covers_resize_maintenance_phase(self):
        """A zero-routed-ops phase (pure resize) is measurable, not an error."""
        engine, _, _ = build_engine()
        stats = engine.measure(lambda: engine.resize_shard(0, 128), label="resize shard 0")
        assert stats.num_ops == 0
        assert stats.throughput == 0.0
        assert stats.load_imbalance == 1.0
        # The migration's device work is merged from the resized shard.
        assert stats.aggregate.coalesced_read_transactions > 0
        assert stats.parallel_seconds > 0


class TestRebalance:
    def test_rebalance_right_sizes_skewed_shards(self):
        engine, keys, values = build_engine()
        policy = LoadFactorPolicy(min_buckets=2)
        # Skew the shards by hand: one far too small, one far too large.
        engine.resize_shard(0, 1)
        engine.resize_shard(2, 256)
        total_before = len(engine)
        items_before = sorted(engine.items())

        results = engine.rebalance(policy)
        assert results  # at least the two skewed shards moved
        assert all(r.trigger == "rebalance" for r in results)
        for shard in engine.shards:
            target = policy.target_buckets(len(shard), shard.config.elements_per_slab)
            assert abs(target - shard.num_buckets) <= policy.hysteresis * shard.num_buckets

        assert len(engine) == total_before
        assert sorted(engine.items()) == items_before
        assert np.array_equal(engine.bulk_search(keys), values.astype(np.uint32))

    def test_rebalance_is_idempotent(self):
        engine, _, _ = build_engine()
        policy = LoadFactorPolicy(min_buckets=2)
        engine.rebalance(policy)
        assert engine.rebalance(policy) == []

    def test_rebalance_without_any_policy_is_rejected(self):
        engine, _, _ = build_engine()
        with pytest.raises(ValueError):
            engine.rebalance()

    def test_measure_of_rebalance_reports_consistent_totals(self):
        engine, keys, values = build_engine()
        policy = LoadFactorPolicy(min_buckets=2)
        engine.resize_shard(3, 1)
        before = len(engine)
        stats = engine.measure(lambda: engine.rebalance(policy), label="rebalance")
        assert stats.num_ops == 0
        assert stats.aggregate.coalesced_read_transactions > 0
        assert len(engine) == before
        # EngineStats totals and engine totals agree: nothing was routed.
        assert sum(p.num_ops for p in stats.shards) == 0


class TestRebalanceExhaustion:
    """Regression: a mid-migration SlabAlloc exhaustion inside ``rebalance()``
    must restore the failing shard completely — bucket array, chains, items
    AND the partially migrated new slabs returned to the allocator — exactly
    like the single-table path, on both backends, and must not starve the
    other (independent) shards of their rebalance attempt."""

    TIGHT = SlabAllocConfig(
        num_super_blocks=1, num_memory_blocks=1, units_per_block=32,
        growth_threshold=10_000, max_super_blocks=1,
    )
    #: Shrinking every shard to ~1 bucket needs ~n/15 fresh slabs while the
    #: old chains are still held -> the 32-unit pool must run out mid-way.
    SQUEEZE = LoadFactorPolicy(
        beta_low=2.0, beta_high=100.0, target_beta=40.0, min_buckets=1
    )

    def _build(self, backend):
        engine = ShardedSlabHash(2, 32, alloc_config=self.TIGHT, seed=7, backend=backend)
        keys = make_keys(1000, seed=7)
        engine.bulk_build(keys, keys)
        return engine, keys

    @pytest.mark.parametrize("backend", ["reference", "vectorized"])
    def test_failed_shard_is_fully_restored(self, backend):
        from repro.gpusim.errors import AllocationError

        engine, keys = self._build(backend)
        items_before = sorted(engine.items())
        buckets_before = [shard.num_buckets for shard in engine.shards]
        units_before = [shard.alloc.allocated_units for shard in engine.shards]
        chains_before = [shard.bucket_slab_counts().tolist() for shard in engine.shards]

        with pytest.raises(AllocationError):
            engine.rebalance(self.SQUEEZE)

        assert [shard.num_buckets for shard in engine.shards] == buckets_before
        # No partially migrated slab may leak: occupancy exactly as before.
        assert [shard.alloc.allocated_units for shard in engine.shards] == units_before
        assert [
            shard.bucket_slab_counts().tolist() for shard in engine.shards
        ] == chains_before
        assert sorted(engine.items()) == items_before
        assert np.array_equal(engine.bulk_search(keys), keys.astype(np.uint32))

    def test_backends_fail_and_restore_with_identical_counters(self):
        from repro.gpusim.errors import AllocationError

        counters = {}
        for backend in ("reference", "vectorized"):
            engine, _ = self._build(backend)
            with pytest.raises(AllocationError):
                engine.rebalance(self.SQUEEZE)
            counters[backend] = [
                shard.device.counters.as_dict() for shard in engine.shards
            ]
        assert counters["reference"] == counters["vectorized"]

    def test_other_shards_still_get_their_rebalance_attempt(self):
        """One shard's exhaustion must not abort the other shards' maintenance
        (each shard has its own allocator).  Here shard 0 is small enough to
        rebalance within the pool while shard 1 exhausts; both outcomes must
        coexist: shard 0 committed, shard 1 restored, error re-raised."""
        from repro.gpusim.errors import AllocationError

        engine = ShardedSlabHash(2, 32, alloc_config=self.TIGHT, seed=7)
        keys = make_keys(1000, seed=7)
        parts = engine.router.partition(keys)
        heavy = keys[parts[1]]
        engine.bulk_insert(heavy, heavy)           # shard 1: exhausts on shrink
        light = keys[parts[0]][:40]
        engine.bulk_insert(light, light)           # shard 0: 40 items, fits in 3 slabs
        items_before = sorted(engine.items())

        with pytest.raises(AllocationError):
            engine.rebalance(self.SQUEEZE)

        assert engine.shards[0].num_buckets == 1   # committed despite the error
        assert engine.shards[1].num_buckets == 32  # restored
        assert sorted(engine.items()) == items_before
        assert np.array_equal(engine.bulk_search(heavy), heavy.astype(np.uint32))
        assert np.array_equal(engine.bulk_search(light), light.astype(np.uint32))


class TestEnginePolicy:
    def test_engine_policy_reaches_every_shard(self):
        policy = LoadFactorPolicy(min_buckets=2)
        engine = ShardedSlabHash(
            2, 2, alloc_config=ALLOC, seed=23, load_factor_policy=policy
        )
        keys = make_keys(900, seed=23)
        for chunk in np.array_split(keys, 5):
            engine.bulk_insert(chunk, chunk)
        assert all(shard.resize_stats.grows >= 1 for shard in engine.shards)
        for chunk in np.array_split(keys[:840], 5):
            engine.bulk_delete(chunk)
        assert all(shard.resize_stats.shrinks >= 1 for shard in engine.shards)
        for shard in engine.shards:
            eps = shard.config.elements_per_slab
            assert policy.decide(len(shard), shard.num_buckets, eps) is None
        assert np.array_equal(engine.bulk_search(keys[840:]), keys[840:].astype(np.uint32))

    def test_deferred_engine_policy_via_maybe_resize(self):
        policy = LoadFactorPolicy(min_buckets=2).deferred()
        engine = ShardedSlabHash(
            2, 2, alloc_config=ALLOC, seed=29, load_factor_policy=policy
        )
        keys = make_keys(600, seed=29)
        engine.bulk_insert(keys, keys)
        assert engine.num_buckets == 4  # deferred: nothing moved yet
        results = engine.maybe_resize()
        assert results
        for shard in engine.shards:
            eps = shard.config.elements_per_slab
            assert policy.decide(len(shard), shard.num_buckets, eps) is None
