"""Tests for the sharded engine: results must match an unsharded SlabHash."""

import numpy as np
import pytest

from repro.core import constants as C
from repro.core.config import SlabAllocConfig
from repro.core.slab_hash import SlabHash
from repro.engine import ShardedSlabHash
from repro.workloads.generators import missing_queries, unique_random_keys, values_for_keys

from tests.conftest import make_keys

#: Small allocator so each shard stays light.
ALLOC = SlabAllocConfig(num_super_blocks=2, num_memory_blocks=16, units_per_block=64)


def make_engine(num_shards, *, policy="hash", buckets=8, **kwargs):
    return ShardedSlabHash(num_shards, buckets, policy=policy, alloc_config=ALLOC, **kwargs)


def make_pair(num_shards, num_elements, *, policy="hash", seed=0):
    """A sharded engine and an unsharded reference table of equal total size."""
    engine = ShardedSlabHash.for_utilization(
        num_shards, num_elements, 0.6, policy=policy, alloc_config=ALLOC, seed=seed
    )
    single = SlabHash(
        SlabHash.buckets_for_utilization(num_elements, 0.6), alloc_config=ALLOC, seed=seed
    )
    return engine, single


class TestConstruction:
    def test_rejects_nonpositive_shards(self):
        with pytest.raises(ValueError):
            ShardedSlabHash(0, 8)

    def test_each_shard_has_its_own_device_and_allocator(self):
        engine = make_engine(4)
        assert len({id(s.device) for s in engine.shards}) == 4
        assert len({id(s.alloc) for s in engine.shards}) == 4

    def test_total_buckets_sum_over_shards(self):
        assert make_engine(3, buckets=8).num_buckets == 24


@pytest.mark.smoke
class TestBulkEquivalence:
    """Sharded bulk results must be bit-identical to one unsharded table."""

    @pytest.mark.parametrize("policy", ("hash", "range"))
    @pytest.mark.parametrize("num_shards", (1, 2, 5, 8))
    def test_build_search_delete_match_single_table(self, num_shards, policy):
        n = 600
        keys = unique_random_keys(n, seed=21)
        values = values_for_keys(keys)
        engine, single = make_pair(num_shards, n, policy=policy, seed=1)

        engine.bulk_build(keys, values)
        single.bulk_build(keys, values)
        assert len(engine) == len(single) == n

        hits = keys[::3]
        misses = missing_queries(200, seed=5)
        assert np.array_equal(engine.bulk_search(hits), single.bulk_search(hits))
        assert np.array_equal(engine.bulk_search(misses), single.bulk_search(misses))

        doomed = np.concatenate([keys[:200], misses[:50]])
        assert np.array_equal(engine.bulk_delete(doomed), single.bulk_delete(doomed))
        assert np.array_equal(engine.bulk_search(hits), single.bulk_search(hits))
        assert len(engine) == len(single)

    def test_duplicate_keys_mode_matches_single_table(self):
        keys = np.repeat(make_keys(40, seed=3), 3)  # every key three times
        values = np.arange(len(keys), dtype=np.uint32)
        engine = make_engine(4, unique_keys=False, seed=2)
        single = SlabHash(32, unique_keys=False, alloc_config=ALLOC, seed=2)
        engine.bulk_insert(keys, values)
        single.bulk_insert(keys, values)
        assert np.array_equal(engine.bulk_delete(keys), single.bulk_delete(keys))
        assert len(engine) == len(single) == 0

    @pytest.mark.parametrize("policy", ("hash", "range"))
    def test_reserved_keys_are_rejected_like_the_single_table(self, policy):
        """Out-of-domain keys must raise, never be silently dropped."""
        engine = make_engine(2, policy=policy, buckets=16)
        bad = np.array([0xFFFFFFFF], dtype=np.uint64)
        with pytest.raises(ValueError):
            engine.bulk_insert(bad, np.array([7], dtype=np.uint32))
        with pytest.raises(ValueError):
            engine.bulk_search(bad)
        with pytest.raises(ValueError):
            engine.insert(0xFFFFFFFE, 1)
        assert len(engine) == 0

    def test_items_match_single_table_as_sets(self):
        keys = make_keys(150, seed=8)
        values = values_for_keys(keys)
        engine, single = make_pair(3, 150, seed=4)
        engine.bulk_build(keys, values)
        single.bulk_build(keys, values)
        assert set(engine.items()) == set(single.items())


@pytest.mark.smoke
class TestConcurrentEquivalence:
    def test_mixed_batch_matches_single_table(self):
        """Insert/search/delete on disjoint key sets: schedule-independent."""
        rng = np.random.default_rng(7)
        stored = unique_random_keys(300, seed=31)
        values = values_for_keys(stored)
        new_keys = missing_queries(100, seed=33)

        ops, keys = [], []
        for key in stored[:100]:
            ops.append(C.OP_DELETE), keys.append(key)
        for key in stored[100:200]:
            ops.append(C.OP_SEARCH), keys.append(key)
        for key in new_keys:
            ops.append(C.OP_INSERT), keys.append(key)
        order = rng.permutation(len(ops))
        ops = np.array(ops, dtype=np.int64)[order]
        keys = np.array(keys, dtype=np.uint32)[order]
        vals = values_for_keys(keys)

        engine, single = make_pair(4, 300, seed=6)
        engine.bulk_build(stored, values)
        single.bulk_build(stored, values)

        out_sharded = engine.concurrent_batch(ops, keys, vals, scheduler_seed=11)
        out_single = single.concurrent_batch(ops, keys, vals)
        assert np.array_equal(out_sharded, out_single)
        assert len(engine) == len(single)


class TestRoundRobinPolicy:
    def test_build_only_loads_are_allowed_and_balanced(self):
        keys = make_keys(80, seed=5)
        engine = make_engine(4, policy="round-robin")
        engine.bulk_insert(keys, values_for_keys(keys))
        assert len(engine) == 80
        assert engine.shard_sizes().tolist() == [20, 20, 20, 20]

    def test_duplicate_keys_in_unique_mode_are_refused(self):
        """Round-robin would split a repeated key across shards, breaking REPLACE."""
        engine = make_engine(2, policy="round-robin")
        with pytest.raises(ValueError, match="round-robin"):
            engine.bulk_insert(np.array([5, 5]), np.array([1, 2]))
        # Duplicates mode stores every occurrence anyway, so it is allowed.
        relaxed = make_engine(2, policy="round-robin", unique_keys=False)
        relaxed.bulk_insert(np.array([5, 5]), np.array([1, 2]))
        assert len(relaxed) == 2

    def test_lookups_through_round_robin_are_refused(self):
        engine = make_engine(2, policy="round-robin")
        engine.bulk_insert(*[np.array([5]), np.array([1])])
        for call in (
            lambda: engine.bulk_search(np.array([5])),
            lambda: engine.bulk_delete(np.array([5])),
            lambda: engine.concurrent_batch(
                np.array([C.OP_SEARCH]), np.array([5]), np.array([0])
            ),
            lambda: engine.search(5),
            lambda: engine.delete(5),
        ):
            with pytest.raises(ValueError, match="round-robin"):
                call()


class TestSingleOperationApi:
    def test_insert_search_delete_roundtrip(self):
        engine = make_engine(3, seed=9)
        engine.insert(1234, 99)
        assert 1234 in engine
        assert engine.search(1234) == 99
        assert engine.delete(1234)
        assert 1234 not in engine
        assert not engine.delete(1234)

    def test_flush_compacts_all_shards(self):
        keys = make_keys(200, seed=6)
        engine = make_engine(4, buckets=4, seed=3)
        engine.bulk_insert(keys, values_for_keys(keys))
        engine.bulk_delete(keys[:150])
        before = engine.used_bytes()
        engine.flush()
        assert engine.used_bytes() <= before
        assert len(engine) == 50


class TestMeasurement:
    def test_measure_accounts_all_routed_ops(self):
        keys = make_keys(128, seed=2)
        engine = make_engine(4, seed=1)
        stats = engine.measure(
            lambda: engine.bulk_insert(keys, values_for_keys(keys)), label="build"
        )
        assert stats.num_ops == 128
        assert sum(p.num_ops for p in stats.shards) == 128
        assert stats.aggregate.kernel_launches >= 4

    def test_parallel_time_is_max_of_shards(self):
        keys = make_keys(256, seed=4)
        engine = make_engine(4, seed=1)
        stats = engine.measure(lambda: engine.bulk_insert(keys, values_for_keys(keys)))
        assert stats.parallel_seconds == max(p.seconds for p in stats.shards)
        assert stats.parallel_seconds < stats.serial_seconds
        assert 1.0 < stats.parallel_speedup <= 4.0

    def test_scale_to_ops_preserves_relative_shard_loads(self):
        keys = make_keys(128, seed=4)
        engine = make_engine(4, seed=1)
        stats = engine.measure(
            lambda: engine.bulk_insert(keys, values_for_keys(keys)), scale_to_ops=12800
        )
        assert stats.num_ops == 12800
        assert sum(p.num_ops for p in stats.shards) == pytest.approx(12800, abs=4)
