"""Fixture-backed positive and negative cases for every lint rule.

Each fixture in ``fixtures/`` is real parseable Python linted *as if* it
lived at a pretend repo-relative path (``lint_source``'s ``rel``), so the
directory scoping of every rule is exercised too: the same wall-clock
fixture that fails in ``repro/service/`` must pass untouched in
``repro/perf/``.
"""

from pathlib import Path

import pytest

from repro.analysis import default_rules, lint_source

FIXTURES = Path(__file__).parent / "fixtures"


def _lint(fixture: str, rel: str, rule: str):
    source = (FIXTURES / fixture).read_text(encoding="utf-8")
    report = lint_source(source, rel=rel, rules=default_rules([rule]))
    return [v for v in report.violations if v.rule == rule]


#: (fixture file, pretend rel path, rule id, expected violation count)
CASES = [
    # det-wallclock: banned outside repro/perf/, allowed inside it.
    ("det_wallclock_bad.py", "repro/service/fx.py", "det-wallclock", 2),
    ("det_wallclock_bad.py", "repro/core/fx.py", "det-wallclock", 2),
    ("det_wallclock_bad.py", "repro/perf/fx.py", "det-wallclock", 0),
    # det-clock: monotonic clocks banned only in the deterministic layers.
    ("det_clock_bad.py", "repro/core/fx.py", "det-clock", 1),
    ("det_clock_bad.py", "repro/persist/fx.py", "det-clock", 1),
    ("det_clock_bad.py", "repro/service/fx.py", "det-clock", 0),
    # det-random: unseeded RNG flagged, seeded constructors pass.
    ("det_random_bad.py", "repro/core/fx.py", "det-random", 2),
    ("det_random_bad.py", "repro/perf/fx.py", "det-random", 0),
    ("det_random_ok.py", "repro/core/fx.py", "det-random", 0),
    # det-set-order: iterating / materializing a set is order-dependent.
    ("det_set_order_bad.py", "repro/core/fx.py", "det-set-order", 2),
    ("det_set_order_bad.py", "repro/workloads/fx.py", "det-set-order", 0),
    ("det_set_order_ok.py", "repro/core/fx.py", "det-set-order", 0),
    # np-dtype: implicit dtypes in core/engine/persist only.
    ("np_dtype_bad.py", "repro/core/fx.py", "np-dtype", 2),
    ("np_dtype_bad.py", "repro/engine/fx.py", "np-dtype", 2),
    ("np_dtype_bad.py", "repro/persist/fx.py", "np-dtype", 2),
    ("np_dtype_bad.py", "repro/perf/fx.py", "np-dtype", 0),
    ("np_dtype_ok.py", "repro/core/fx.py", "np-dtype", 0),
    # async-shared-state: lost-update flagged, atomic swap passes.
    ("async_state_bad.py", "repro/service/fx.py", "async-shared-state", 1),
    ("async_state_bad.py", "repro/core/fx.py", "async-shared-state", 0),
    ("async_state_ok.py", "repro/service/fx.py", "async-shared-state", 0),
    # fault-site: literals must exist in SITE_CATALOG.
    ("fault_site_bad.py", "repro/core/fx.py", "fault-site", 1),
    ("fault_site_ok.py", "repro/core/fx.py", "fault-site", 0),
    # persist-pickle: repo-wide import ban, persist-local np.load guard.
    ("persist_pickle_bad.py", "repro/persist/fx.py", "persist-pickle", 2),
    ("persist_pickle_ok.py", "repro/persist/fx.py", "persist-pickle", 0),
    # persist-version: numeric-literal version comparisons, persist/ only.
    ("persist_version_bad.py", "repro/persist/fx.py", "persist-version", 1),
    ("persist_version_bad.py", "repro/core/fx.py", "persist-version", 0),
    ("persist_version_ok.py", "repro/persist/fx.py", "persist-version", 0),
    # typing gate mirrors.
    ("ann_strict_bad.py", "repro/core/fx.py", "ann-strict", 2),
    ("ann_bare_generic_bad.py", "repro/core/fx.py", "ann-bare-generic", 2),
    ("ann_ok.py", "repro/core/fx.py", "ann-strict", 0),
    ("ann_ok.py", "repro/core/fx.py", "ann-bare-generic", 0),
]


@pytest.mark.parametrize(
    "fixture,rel,rule,expected",
    CASES,
    ids=[f"{rule}:{fixture}@{rel.split('/')[1]}" for fixture, rel, rule, _ in CASES],
)
def test_fixture(fixture, rel, rule, expected):
    violations = _lint(fixture, rel, rule)
    assert len(violations) == expected, "\n".join(v.format() for v in violations)


def test_pickle_import_is_banned_everywhere():
    # The import ban has no directory scoping — even perf/ may not pickle.
    report = lint_source(
        "import pickle\n", rel="repro/perf/fx.py",
        rules=default_rules(["persist-pickle"]),
    )
    assert len(report.violations) == 1


def test_every_fixture_parses_as_real_python():
    for path in sorted(FIXTURES.glob("*.py")):
        compile(path.read_text(encoding="utf-8"), str(path), "exec")


def test_violation_positions_point_at_the_offending_node():
    violations = _lint("np_dtype_bad.py", "repro/core/fx.py", "np-dtype")
    assert all(v.rel == "repro/core/fx.py" for v in violations)
    assert [v.line for v in violations] == sorted(v.line for v in violations)
    assert all(v.line > 1 for v in violations)
