"""The committed tree must be lint-clean: ``repro lint`` exits 0 on src/repro.

This is the acceptance gate the CI lint job re-runs; keeping it in the tier-1
suite means a change that introduces a violation fails locally before CI.
"""

import io

import pytest

from repro.analysis import default_rules, lint_paths
from repro.cli import main


@pytest.mark.smoke
def test_src_repro_is_lint_clean():
    report = lint_paths()  # defaults to <root>/repro with every rule
    assert report.ok, "\n" + "\n".join(v.format() for v in report.violations)
    # Sanity: the run actually covered the tree (not an empty glob).
    assert report.files_checked > 50
    assert len(report.rules_run) == len(default_rules())


def test_cli_lint_exits_zero_on_live_tree():
    stream = io.StringIO()
    assert main(["lint"], stream=stream) == 0
    assert "clean" in stream.getvalue()
