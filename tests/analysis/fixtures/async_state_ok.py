"""Fixture: the atomic-swap idiom — shared state is exchanged in one
statement before any await (async-shared-state negative)."""
import asyncio
from typing import List


class Lane:
    def __init__(self) -> None:
        self._staged: List[int] = []

    async def drain(self) -> List[int]:
        staged, self._staged = self._staged, []
        await asyncio.sleep(0)
        return staged
