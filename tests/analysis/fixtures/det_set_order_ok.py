"""Fixture: sets consumed through an ordering step (det-set-order negatives)."""
from typing import List, Sequence


def collect(items: Sequence[int]) -> List[int]:
    seen = {1, 2, 3}
    out = []
    for item in sorted(seen):
        out.append(item)
    return out + sorted(set(items))
