"""Fixture: version compared against the declared registry constant
(persist-version negative)."""
from typing import Dict

SNAPSHOT_VERSION = 2


def check(header: Dict[str, object]) -> None:
    if header["version"] != SNAPSHOT_VERSION:
        raise ValueError("unsupported snapshot version")
