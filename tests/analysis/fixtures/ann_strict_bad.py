"""Fixture: untyped signature (ann-strict positives)."""


def scale(value, factor=2):
    return value * factor
