"""Fixture: bare generic containers in annotations (ann-bare-generic positives)."""


def tally(counts: dict) -> list:
    return sorted(counts)
