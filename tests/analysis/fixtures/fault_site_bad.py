"""Fixture: a typo'd fault-site literal (fault-site positive)."""


class Component:
    def __init__(self, faults: object) -> None:
        self.faults = faults

    def step(self) -> None:
        if self.faults is not None:
            self.faults.check("alloc.warp_allocte")
