"""Fixture: unseeded randomness (det-random positives)."""
import random

import numpy as np


def roll() -> float:
    return random.random()


def make_rng() -> object:
    return np.random.default_rng()
