"""Fixture: snapshot version compared against a bare numeric literal
(persist-version positive)."""
from typing import Dict


def check(header: Dict[str, object]) -> None:
    if header["version"] != 2:
        raise ValueError("unsupported snapshot version")
