"""Fixture: pickle-free persistence (persist-pickle negatives)."""
import numpy as np


def load(path: str) -> np.ndarray:
    with np.load(path, allow_pickle=False) as archive:
        return archive["payload"]
