"""Fixture: a catalogued fault-site literal (fault-site negative)."""


class Component:
    def __init__(self, faults: object) -> None:
        self.faults = faults

    def step(self) -> None:
        if self.faults is not None:
            self.faults.check("wal.append")
