"""Fixture: wall-clock reads outside repro/perf/ (det-wallclock positives)."""
import datetime
import time


def stamp() -> float:
    return time.time()


def today() -> "datetime.datetime":
    return datetime.datetime.now()
