"""Fixture: seeded randomness (det-random negatives)."""
import random

import numpy as np


def make_py_rng() -> random.Random:
    return random.Random(42)


def make_np_rng() -> np.random.Generator:
    return np.random.default_rng(7)
