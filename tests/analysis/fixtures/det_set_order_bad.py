"""Fixture: iteration/materialization of unordered sets (det-set-order positives)."""
from typing import List, Sequence


def collect(items: Sequence[int]) -> List[int]:
    seen = {1, 2, 3}
    out = []
    for item in seen:
        out.append(item)
    return out + list(set(items))
