"""Fixture: pickle import and unguarded np.load (persist-pickle positives)."""
import pickle

import numpy as np


def load(path: str) -> object:
    with np.load(path) as archive:
        return pickle.loads(bytes(archive["blob"]))
