"""Fixture: fully annotated, parameterized generics (typing-rule negatives)."""
from typing import Dict, List


def tally(counts: Dict[str, int]) -> List[str]:
    return sorted(counts)
