"""Fixture: monotonic clock in a deterministic layer (det-clock positive)."""
import time


def elapsed() -> float:
    return time.perf_counter()
