"""Fixture: explicit dtypes everywhere (np-dtype negatives)."""
import numpy as np


def make() -> np.ndarray:
    buf = np.zeros(4, dtype=np.uint32)
    return np.asarray(buf.tolist(), dtype=np.uint32)
