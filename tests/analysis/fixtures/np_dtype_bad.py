"""Fixture: implicit-dtype array constructors (np-dtype positives)."""
import numpy as np


def make() -> np.ndarray:
    buf = np.zeros(4)
    return np.asarray(buf.tolist())
