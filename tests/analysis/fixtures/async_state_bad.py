"""Fixture: shard state snapshotted before an await, written back after
(the classic asyncio lost-update; async-shared-state positive)."""
import asyncio
from typing import List


class Lane:
    def __init__(self) -> None:
        self._staged: List[int] = []

    async def drain(self) -> None:
        staged = self._staged
        await asyncio.sleep(0)
        self._staged = [item for item in staged if item]
