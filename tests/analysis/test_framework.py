"""Framework-level behavior: suppressions, name resolution, registry, CLI."""

import io
import json

import pytest

from repro.analysis import RULE_CLASSES, default_rules, lint_source, rules_by_id
from repro.cli import main

_NP_DTYPE_BAD = "import numpy as np\nbuf = np.zeros(4)\n"


def _lint(source, rel="repro/core/fx.py", select=("np-dtype",)):
    return lint_source(source, rel=rel, rules=default_rules(list(select)))


class TestSuppressions:
    def test_same_line_disable(self):
        source = (
            "import numpy as np\n"
            "buf = np.zeros(4)  # repro-lint: disable=np-dtype -- wrap-cast follows\n"
        )
        assert _lint(source).ok

    def test_standalone_comment_disables_next_line(self):
        source = (
            "import numpy as np\n"
            "# repro-lint: disable=np-dtype -- fixture\n"
            "buf = np.zeros(4)\n"
        )
        assert _lint(source).ok

    def test_disable_file(self):
        source = (
            "# repro-lint: disable-file=np-dtype\n" + _NP_DTYPE_BAD
        )
        assert _lint(source).ok

    def test_disabling_a_different_rule_does_not_suppress(self):
        source = (
            "import numpy as np\n"
            "buf = np.zeros(4)  # repro-lint: disable=det-wallclock -- wrong rule\n"
        )
        assert len(_lint(source).violations) == 1

    def test_multiple_rules_in_one_directive(self):
        source = (
            "import numpy as np\n"
            "buf = np.zeros(4)  # repro-lint: disable=det-wallclock,np-dtype -- both\n"
        )
        assert _lint(source).ok


class TestNameResolution:
    def test_import_aliases_resolve(self):
        # `import numpy.random as nprand` must still hit det-random.
        source = (
            "import numpy.random as nprand\n"
            "def f() -> object:\n"
            "    return nprand.default_rng()\n"
        )
        report = lint_source(
            source, rel="repro/core/fx.py", rules=default_rules(["det-random"])
        )
        assert len(report.violations) == 1

    def test_from_import_resolves(self):
        source = (
            "from time import time as now\n"
            "def f() -> float:\n"
            "    return now()\n"
        )
        report = lint_source(
            source, rel="repro/core/fx.py", rules=default_rules(["det-wallclock"])
        )
        assert len(report.violations) == 1

    def test_unrelated_local_name_is_not_confused(self):
        # A user-defined `time()` function is not the stdlib clock.
        source = (
            "def time() -> float:\n"
            "    return 0.0\n"
            "def f() -> float:\n"
            "    return time()\n"
        )
        report = lint_source(
            source, rel="repro/core/fx.py", rules=default_rules(["det-wallclock"])
        )
        assert report.ok


class TestRegistry:
    def test_all_rules_have_unique_ids_titles_rationales(self):
        ids = [cls.id for cls in RULE_CLASSES]
        assert len(ids) == len(set(ids))
        for cls in RULE_CLASSES:
            assert cls.title and cls.rationale, cls.id

    def test_default_rules_rejects_unknown_ids(self):
        with pytest.raises(ValueError, match="no-such-rule"):
            default_rules(["no-such-rule"])

    def test_rules_by_id_round_trips(self):
        assert set(rules_by_id()) == {cls.id for cls in RULE_CLASSES}


class TestReport:
    def test_violation_format_is_file_line_col_rule(self):
        report = _lint(_NP_DTYPE_BAD)
        line = report.violations[0].format()
        assert line.startswith("repro/core/fx.py:2:")
        assert "np-dtype" in line

    def test_report_not_ok_with_violations(self):
        report = _lint(_NP_DTYPE_BAD)
        assert not report.ok and report.files_checked == 1


class TestCli:
    def test_list_rules_shows_every_rule(self):
        stream = io.StringIO()
        assert main(["lint", "--list-rules"], stream=stream) == 0
        out = stream.getvalue()
        for cls in RULE_CLASSES:
            assert cls.id in out

    def test_lint_clean_file_exits_zero(self, tmp_path):
        target = tmp_path / "clean.py"
        target.write_text("x: int = 1\n")
        assert main(["lint", str(target)], stream=io.StringIO()) == 0

    def test_lint_dirty_file_exits_nonzero_and_reports(self, tmp_path):
        target = tmp_path / "repro" / "core" / "dirty.py"
        target.parent.mkdir(parents=True)
        target.write_text(_NP_DTYPE_BAD)
        stream = io.StringIO()
        assert main(["lint", str(target)], stream=stream) == 1
        assert "np-dtype" in stream.getvalue()

    def test_json_format(self, tmp_path):
        target = tmp_path / "repro" / "core" / "dirty.py"
        target.parent.mkdir(parents=True)
        target.write_text(_NP_DTYPE_BAD)
        stream = io.StringIO()
        assert main(["lint", "--format", "json", str(target)], stream=stream) == 1
        payload = json.loads(stream.getvalue())
        assert payload["ok"] is False
        assert payload["violations"][0]["rule"] == "np-dtype"

    def test_select_restricts_rules(self, tmp_path):
        target = tmp_path / "repro" / "core" / "dirty.py"
        target.parent.mkdir(parents=True)
        target.write_text(_NP_DTYPE_BAD)
        assert (
            main(["lint", "--select", "det-wallclock", str(target)],
                 stream=io.StringIO())
            == 0
        )
