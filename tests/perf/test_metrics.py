"""Tests for measurement helpers (phase measurement, counter scaling)."""

import pytest

from repro.gpusim.counters import Counters
from repro.gpusim.device import Device
from repro.perf.metrics import measure_phase, scale_counters


class TestScaleCounters:
    def test_scales_event_fields(self):
        counters = Counters(coalesced_read_transactions=10, atomic64=4)
        scaled = scale_counters(counters, 8)
        assert scaled.coalesced_read_transactions == 80
        assert scaled.atomic64 == 32

    def test_kernel_launches_not_scaled(self):
        counters = Counters(kernel_launches=3, atomic32=1)
        scaled = scale_counters(counters, 100)
        assert scaled.kernel_launches == 3
        assert scaled.atomic32 == 100

    def test_fractional_factor_rounds(self):
        counters = Counters(atomic32=3)
        assert scale_counters(counters, 0.5).atomic32 == 2  # rounds 1.5 -> 2

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            scale_counters(Counters(), 0)


class TestMeasurePhase:
    def test_captures_events_and_computes_throughput(self):
        device = Device()

        def work():
            device.counters.coalesced_read_transactions += 1000
            device.counters.kernel_launches += 1

        measurement = measure_phase(device, work, num_ops=1000, label="unit")
        assert measurement.num_ops == 1000
        assert measurement.counters.coalesced_read_transactions == 1000
        assert measurement.throughput > 0
        assert measurement.mops == pytest.approx(measurement.throughput / 1e6)
        assert measurement.per_op("coalesced_read_transactions") == pytest.approx(1.0)

    def test_scale_to_ops_extrapolates(self):
        device = Device()

        def work():
            device.counters.atomic64 += 100

        small = measure_phase(device, work, num_ops=100)
        device2 = Device()

        def work2():
            device2.counters.atomic64 += 100

        scaled = measure_phase(device2, work2, num_ops=100, scale_to_ops=100_000)
        assert scaled.num_ops == 100_000
        assert scaled.counters.atomic64 == 100_000
        # Per-op cost identical, so throughput should match (launch overhead aside).
        assert scaled.throughput == pytest.approx(small.throughput, rel=0.05)

    def test_working_set_changes_atomic_rate(self):
        def run(working_set):
            device = Device()

            def work():
                device.counters.atomic64 += 10_000
                device.counters.kernel_launches += 1

            return measure_phase(device, work, num_ops=10_000, working_set_bytes=working_set)

        in_l2 = run(100 * 1024)
        in_dram = run(500 * 1024 * 1024)
        assert in_l2.throughput > in_dram.throughput

    def test_extra_serial_seconds_reduce_throughput(self):
        def run(extra):
            device = Device()

            def work():
                device.counters.atomic32 += 1000

            return measure_phase(device, work, num_ops=1000, extra_serial_seconds=extra)

        assert run(1e-3).throughput < run(0.0).throughput

    def test_extra_serial_seconds_scale_with_ops(self):
        device = Device()

        def work():
            device.counters.atomic32 += 10

        m = measure_phase(
            device, work, num_ops=10, scale_to_ops=1000, extra_serial_seconds=1e-6
        )
        assert m.seconds >= 1e-4  # the serial term scaled by 100x

    def test_milliseconds_property(self):
        device = Device()

        def work():
            device.counters.coalesced_read_transactions += 10_000_000

        m = measure_phase(device, work, num_ops=10)
        assert m.milliseconds == pytest.approx(m.seconds * 1e3)
