"""Tests for the load-balance / occupancy diagnostics."""

import numpy as np
import pytest

from repro.core.config import SlabAllocConfig
from repro.core.slab_hash import SlabHash
from repro.perf.stats import analyze_load_balance, expected_slab_histogram

from tests.conftest import make_keys

CFG = SlabAllocConfig(num_super_blocks=2, num_memory_blocks=16, units_per_block=128)


def build_table(num_keys=1500, buckets=32, seed=1):
    table = SlabHash(buckets, alloc_config=CFG, seed=seed)
    keys = make_keys(num_keys, seed=seed)
    table.bulk_build(keys, keys)
    return table


class TestAnalyzeLoadBalance:
    def test_basic_counts(self):
        table = build_table()
        report = analyze_load_balance(table)
        assert report.num_buckets == 32
        assert report.num_elements == 1500
        assert report.elements_per_bucket_mean == pytest.approx(1500 / 32)
        assert report.elements_per_bucket_max >= report.elements_per_bucket_mean

    def test_universal_hash_is_balanced(self):
        report = analyze_load_balance(build_table())
        assert report.is_balanced
        assert report.chi_square_pvalue > 0.01

    def test_slab_histogram_sums_to_bucket_count(self):
        table = build_table()
        report = analyze_load_balance(table)
        assert sum(report.slab_histogram.values()) == table.num_buckets
        assert min(report.slab_histogram) >= 1

    def test_measured_vs_expected_utilization_agree(self):
        report = analyze_load_balance(build_table())
        assert report.measured_utilization == pytest.approx(report.expected_utilization, abs=0.1)

    def test_beta_matches_table(self):
        table = build_table()
        assert analyze_load_balance(table).beta == pytest.approx(table.beta())

    def test_pathologically_skewed_table_is_flagged(self):
        # All keys forced into one bucket via a single-bucket table embedded in
        # a larger direct-address table is not constructible through the public
        # API, so emulate skew by hashing sequential keys into very few buckets
        # of a two-bucket table and checking the chi-square machinery reacts to
        # a manufactured imbalance.
        table = SlabHash(8, alloc_config=CFG, seed=3)
        keys = make_keys(400, seed=4)
        table.bulk_build(keys, keys)
        report = analyze_load_balance(table)
        # Now delete everything that did NOT land in bucket 0, producing a
        # heavily imbalanced live distribution.
        doomed = [k for k, _ in table.items() if table.hash_fn(k) != 0]
        table.bulk_delete(np.array(doomed, dtype=np.uint32))
        skewed = analyze_load_balance(table)
        assert skewed.chi_square > report.chi_square

    def test_empty_table(self):
        table = SlabHash(4, alloc_config=CFG, seed=5)
        report = analyze_load_balance(table)
        assert report.num_elements == 0
        assert report.chi_square == 0.0


class TestExpectedSlabHistogram:
    def test_fractions_sum_to_one(self):
        fractions = expected_slab_histogram(1500, 100)
        assert sum(fractions) == pytest.approx(1.0, abs=1e-6)

    def test_light_load_means_single_slab(self):
        fractions = expected_slab_histogram(100, 100)  # one element per bucket
        assert fractions[0] > 0.99

    def test_heavy_load_shifts_mass_to_more_slabs(self):
        light = expected_slab_histogram(1000, 100)
        heavy = expected_slab_histogram(5000, 100)
        assert heavy[0] < light[0]
        assert sum(heavy[2:]) > sum(light[2:])

    def test_key_only_mode_needs_fewer_slabs(self):
        kv = expected_slab_histogram(3000, 100, key_value=True)
        ko = expected_slab_histogram(3000, 100, key_value=False)
        assert ko[0] > kv[0]

    def test_invalid_bucket_count(self):
        with pytest.raises(ValueError):
            expected_slab_histogram(100, 0)

    def test_matches_measured_histogram_roughly(self):
        table = build_table(num_keys=2000, buckets=64, seed=6)
        report = analyze_load_balance(table)
        expected = expected_slab_histogram(2000, 64)
        measured_one_slab = report.slab_histogram.get(1, 0) / 64
        assert measured_one_slab == pytest.approx(expected[0], abs=0.15)
