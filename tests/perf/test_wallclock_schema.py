"""Schema guard for the wall-clock benchmark output (BENCH_wallclock.json).

Runs a tiny instance of ``benchmarks/bench_wallclock.py`` end to end and
validates the emitted document against ``validate_document`` — the single
source of truth for the schema — so any drift in the JSON layout fails CI
before a malformed BENCH_wallclock.json lands at the repo root.  Also
validates the committed repo-root file when present.
"""

from __future__ import annotations

import json
import os
import sys

import pytest

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
sys.path.insert(0, os.path.join(_REPO_ROOT, "benchmarks"))

import bench_wallclock  # noqa: E402  (needs the path insertion above)


@pytest.mark.smoke
def test_tiny_benchmark_roundtrip_matches_schema(tmp_path):
    out = tmp_path / "BENCH_wallclock.json"
    assert bench_wallclock.main(["--sizes", "1024", "--repeats", "1", "--out", str(out)]) == 0
    with open(out, encoding="utf-8") as handle:
        document = json.load(handle)
    bench_wallclock.validate_document(document)  # raises on drift
    assert document["schema_version"] == 6
    assert document["speedups"]["bulk_build_1024"] > 0
    assert document["speedups"]["concurrent_mixed_1024"] > 0
    assert document["speedups"]["resize_churn_1024"] > 0
    ops = {(entry["op"], entry["backend"]) for entry in document["results"]}
    assert ops == {
        (op, backend)
        for op in ("bulk_build", "bulk_search", "concurrent_mixed", "resize_churn")
        for backend in ("vectorized", "reference")
    }
    churn = document["resize_churn"]
    assert churn["num_keys"] == 1024
    # Schema v3 guarantees the comparison exercised real grow/shrink cycles.
    assert churn["auto"]["grows"] >= 1 and churn["auto"]["shrinks"] >= 1
    assert churn["auto_over_fixed"] > 0
    # Schema v4: durability primitives, measured on a verified round-trip.
    persist = document["persist"]
    assert persist["num_keys"] == 1024
    assert persist["replay_records"] >= 1
    assert persist["snapshot_bytes"] > 0 and persist["wal_bytes"] > 0
    # Schema v5: incremental-vs-stop-the-world modelled-latency comparison.
    incremental = document["incremental_resize"]
    assert incremental["num_keys"] == 1024
    assert incremental["incremental"]["steps"] >= 1
    assert incremental["stw_over_incremental_max"] > 0
    # Schema v6: measured multiprocess parallelism, verified bit-identical.
    parallel = document["parallel"]
    assert parallel["num_keys"] == 1024
    assert parallel["num_shards"] == 8
    assert len(parallel["worker_cpu_seconds"]) == parallel["workers"]
    assert parallel["measured_speedup"] > 0
    assert parallel["critical_path_speedup"] > 0


@pytest.mark.smoke
def test_committed_trajectory_file_matches_schema():
    path = os.path.join(_REPO_ROOT, "BENCH_wallclock.json")
    if not os.path.exists(path):
        pytest.skip("no BENCH_wallclock.json at the repo root yet")
    with open(path, encoding="utf-8") as handle:
        bench_wallclock.validate_document(json.load(handle))


def test_validate_document_rejects_drift():
    document = bench_wallclock.run_benchmark([256], repeats=1)
    bench_wallclock.validate_document(document)
    broken = dict(document)
    broken.pop("speedups")
    with pytest.raises(ValueError, match="speedups"):
        bench_wallclock.validate_document(broken)
    renamed = dict(document)
    renamed["results"] = [dict(entry, op="build") for entry in document["results"]]
    with pytest.raises(ValueError, match="result op"):
        bench_wallclock.validate_document(renamed)
    churnless = dict(document)
    churnless.pop("resize_churn")
    with pytest.raises(ValueError, match="resize_churn"):
        bench_wallclock.validate_document(churnless)
    persistless = dict(document)
    persistless.pop("persist")
    with pytest.raises(ValueError, match="persist"):
        bench_wallclock.validate_document(persistless)
    no_shrink = json.loads(json.dumps(document))
    no_shrink["resize_churn"]["auto"]["shrinks"] = 0
    with pytest.raises(ValueError, match="grow and one shrink"):
        bench_wallclock.validate_document(no_shrink)
    incrementalless = dict(document)
    incrementalless.pop("incremental_resize")
    with pytest.raises(ValueError, match="incremental_resize"):
        bench_wallclock.validate_document(incrementalless)
    # The headline latency claim is schema-enforced at production sizes.
    slow_steps = json.loads(json.dumps(document))
    slow_steps["incremental_resize"]["num_keys"] = 100_000
    slow_steps["incremental_resize"]["stw_over_incremental_max"] = 9.0
    with pytest.raises(ValueError, match="order of magnitude"):
        bench_wallclock.validate_document(slow_steps)
    # Schema v6: the parallel section is required …
    parallelless = dict(document)
    parallelless.pop("parallel")
    with pytest.raises(ValueError, match="parallel"):
        bench_wallclock.validate_document(parallelless)
    # … its critical-path 3x floor binds unconditionally at production size …
    slow_parallel = json.loads(json.dumps(document))
    slow_parallel["parallel"]["num_keys"] = 100_000
    slow_parallel["parallel"]["critical_path_speedup"] = 2.5
    with pytest.raises(ValueError, match="critical_path_speedup"):
        bench_wallclock.validate_document(slow_parallel)
    # … and the end-to-end floor binds when the host has a core per worker.
    slow_wall = json.loads(json.dumps(document))
    slow_wall["parallel"]["num_keys"] = 100_000
    slow_wall["parallel"]["critical_path_speedup"] = 6.0
    slow_wall["parallel"]["measured_speedup"] = 0.9
    slow_wall["parallel"]["cpu_count"] = 16
    with pytest.raises(ValueError, match="measured_speedup"):
        bench_wallclock.validate_document(slow_wall)
    undersized_host = json.loads(json.dumps(slow_wall))
    undersized_host["parallel"]["cpu_count"] = 1
    bench_wallclock.validate_document(undersized_host)  # floor waived
