"""Smoke and trend tests for the per-figure drivers (tiny workloads).

The full paper-scale tables come from ``benchmarks/``; here each driver runs
with a very small simulated workload and we assert the *trends* that the paper
reports, which is exactly what the reproduction is expected to preserve.
"""

import pytest

from repro.perf import figures
from repro.perf.harness import FigureResult

TINY = 2**10


class TestFigure4:
    @pytest.fixture(scope="class")
    def fig4a(self):
        return figures.figure_4a(sim_elements=TINY, utilizations=(0.2, 0.5, 0.65, 0.9))

    @pytest.fixture(scope="class")
    def fig4b(self):
        return figures.figure_4b(sim_elements=TINY, utilizations=(0.2, 0.5, 0.65, 0.9))

    def test_returns_expected_series(self, fig4a):
        assert isinstance(fig4a, FigureResult)
        assert {s.label for s in fig4a.series} == {"CUDPP", "SlabHash"}

    def test_slab_hash_build_peak_near_paper(self, fig4a):
        peak = max(fig4a.series_by_label("SlabHash").y)
        assert 350 <= peak <= 750  # paper: 512 M updates/s

    def test_slab_hash_build_cliff_at_high_utilization(self, fig4a):
        slab = fig4a.series_by_label("SlabHash").as_dict()
        assert slab[0.9] < 0.5 * slab[0.5]

    def test_cudpp_build_declines_with_load_factor(self, fig4a):
        cudpp = fig4a.series_by_label("CUDPP").y
        assert cudpp[-1] < cudpp[0]

    def test_search_peak_near_paper(self, fig4b):
        peak = max(fig4b.series_by_label("SlabHash-all").y)
        assert 700 <= peak <= 1100  # paper: 937 M queries/s

    def test_search_rate_drops_past_65_percent(self, fig4b):
        slab_all = fig4b.series_by_label("SlabHash-all").as_dict()
        assert slab_all[0.9] < 0.5 * slab_all[0.5]

    def test_cuckoo_search_faster_on_geomean(self, fig4b):
        # The paper: cuckoo ~2x faster on searches over the utilization sweep.
        assert fig4b.extra["geomean_cuckoo_over_slab_all"] > 1.0

    def test_figure_4c_utilization_increases_with_beta(self):
        result = figures.figure_4c(sim_elements=TINY, betas=(0.5, 1.0, 3.0))
        measured = result.series_by_label("measured").y
        assert measured == sorted(measured)
        assert measured[-1] <= 0.94 + 1e-6
        analytic = result.series_by_label("analytic").as_dict()
        for x, y in zip(result.series_by_label("measured").x,
                        result.series_by_label("measured").y):
            assert y == pytest.approx(analytic[x], abs=0.12)


class TestFigure5:
    def test_cudpp_benefits_from_small_tables(self):
        result = figures.figure_5a(table_sizes=(2**16, 2**24), sim_elements=TINY)
        cudpp = result.series_by_label("CUDPP").as_dict()
        assert cudpp[16] > cudpp[24]

    def test_slab_hash_rate_is_size_stable(self):
        result = figures.figure_5b(table_sizes=(2**16, 2**24), sim_elements=TINY)
        slab = result.series_by_label("SlabHash-all").y
        assert max(slab) / min(slab) < 1.5


class TestFigure6:
    @pytest.fixture(scope="class")
    def fig6(self):
        return figures.figure_6(total_elements=2**12, batch_sizes=(128, 256))

    def test_slab_hash_beats_rebuild_from_scratch(self, fig6):
        speedups = [v for k, v in fig6.extra.items() if k.startswith("speedup")]
        assert all(s > 2 for s in speedups)

    def test_smaller_batches_widen_the_gap(self, fig6):
        speedups = [v for k, v in fig6.extra.items() if k.startswith("speedup")]
        assert speedups[0] > speedups[1]  # first entry is the smallest batch

    def test_cumulative_times_are_monotone(self, fig6):
        for series in fig6.series:
            assert series.y == sorted(series.y)


class TestFigure7:
    def test_7a_fewer_updates_means_higher_rate(self):
        result = figures.figure_7a(sim_elements=TINY, utilizations=(0.4,))
        rates = {s.label: s.y[0] for s in result.series}
        assert rates["20% updates, 80% searches"] >= rates["100% updates, 0% searches"]

    def test_7a_high_utilization_degrades(self):
        result = figures.figure_7a(
            sim_elements=TINY, utilizations=(0.4, 0.9),
            distributions=(figures.PAPER_DISTRIBUTIONS[0],),
        )
        series = result.series[0]
        assert series.as_dict()[0.9] < series.as_dict()[0.4]

    def test_7b_slab_hash_beats_misra(self):
        result = figures.figure_7b(
            bucket_counts=(32, 128), num_operations=TINY, initial_elements=TINY
        )
        speedups = [v for k, v in result.extra.items() if k.startswith("speedup")]
        assert all(2.0 <= s <= 12.0 for s in speedups)  # paper: 3.1x - 5.1x


class TestAllocatorAndAblations:
    def test_allocator_ordering_matches_paper(self):
        result = figures.allocator_comparison(sim_allocations=2**10)
        assert result.extra["slaballoc_mops"] > result.extra["halloc_mops"] > result.extra["cuda_malloc_mops"]
        assert result.extra["slaballoc_over_halloc"] > 10  # paper: 37x
        assert result.extra["cuda_malloc_mops"] < 2  # paper: 0.8 M/s

    def test_slaballoc_rate_near_paper(self):
        result = figures.allocator_comparison(sim_allocations=2**10)
        assert 300 <= result.extra["slaballoc_mops"] <= 1100  # paper: 600 M/s

    def test_light_allocator_searches_at_least_as_fast(self):
        result = figures.slaballoc_light_ablation(sim_elements=TINY)
        assert result.extra["light_speedup"] >= 1.0

    def test_gfsl_analysis_matches_published_rates(self):
        result = figures.gfsl_comparison()
        assert result.extra["gfsl_peak_search_mops"] == pytest.approx(100, rel=0.4)
        assert result.extra["gfsl_peak_update_mops"] == pytest.approx(50, rel=0.4)

    def test_wcws_beats_per_thread_processing(self):
        result = figures.wcws_vs_per_thread(sim_elements=TINY)
        assert result.extra["wcws_speedup"] > 1.5

    def test_slab_size_ablation_favours_128_bytes(self):
        result = figures.slab_size_ablation()
        cost = result.series_by_label("relative search cost").as_dict()
        assert cost[128.0] == pytest.approx(1.0)
        assert cost[32.0] > 1.0
        assert cost[256.0] > 1.0
        utilization = result.series_by_label("max utilization").as_dict()
        assert utilization[128.0] == pytest.approx(0.9375)


@pytest.mark.smoke
class TestShardSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return figures.shard_sweep(sim_elements=TINY, shard_counts=(1, 2, 4, 8))

    def test_returns_expected_series(self, sweep):
        labels = {s.label for s in sweep.series}
        assert labels == {"build", "search", "mixed 40% updates", "build speedup"}

    def test_throughput_grows_with_shard_count(self, sweep):
        for label in ("build", "search", "mixed 40% updates"):
            rates = sweep.series_by_label(label).y
            assert rates == sorted(rates)

    def test_scaling_efficiency_meets_the_acceptance_bar(self, sweep):
        # The README quotes >= 1.5x at 4 shards; hash routing actually
        # delivers close to 4x on the bulk-build workload.
        assert sweep.extra["build_speedup_4_shards"] >= 1.5
        speedup = sweep.series_by_label("build speedup").as_dict()
        assert speedup[1.0] == pytest.approx(1.0)
        assert speedup[4.0] >= 1.5

    def test_imbalance_is_bounded(self, sweep):
        assert 1.0 <= sweep.extra["load_imbalance_max_shards"] < 2.0
