"""Schema guards for the service benchmark documents.

The repo-root ``BENCH_service.json`` is owned by the schema-v3 saturation
sweep (``benchmarks/bench_service_saturation.py``); the fixed-load run
(``benchmarks/bench_service_latency.py``) writes the schema-v2
``BENCH_service_latency.json``.  Each benchmark's ``validate_document`` is
the single source of truth for its layout; these tests run tiny instances
end to end so drift in either JSON layout fails CI before a malformed
document lands at the repo root.  The committed saturation document is also
held to the service-rebuild acceptance floors, so a regression cannot be
silently re-recorded.
"""

from __future__ import annotations

import json
import os
import sys

import pytest

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
sys.path.insert(0, os.path.join(_REPO_ROOT, "benchmarks"))

import bench_degraded  # noqa: E402  (needs the path insertion above)
import bench_service_latency  # noqa: E402
import bench_service_saturation  # noqa: E402


class TestSaturationSchema:
    @pytest.mark.smoke
    def test_tiny_benchmark_roundtrip_matches_schema(self, tmp_path):
        out = tmp_path / "BENCH_service.json"
        assert bench_service_saturation.main(["--smoke", "--out", str(out)]) == 0
        with open(out, encoding="utf-8") as handle:
            document = json.load(handle)
        bench_service_saturation.validate_document(document)  # raises on drift
        assert document["schema_version"] == 4
        assert document["benchmark"] == "service_saturation"
        assert [entry["concurrency"] for entry in document["sweep"]] == [2, 4]
        assert document["latency"]["count"] == document["config"]["latency_point"]["num_ops"]
        knee_levels = {entry["concurrency"] for entry in document["sweep"]}
        assert document["knee"]["concurrency"] in knee_levels

    @pytest.mark.smoke
    def test_committed_service_file_matches_schema(self):
        path = os.path.join(_REPO_ROOT, "BENCH_service.json")
        if not os.path.exists(path):
            pytest.skip("no BENCH_service.json at the repo root yet")
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
        # The committed document must carry the degraded operating points
        # recorded by benchmarks/bench_degraded.py, not just the sweep.
        bench_service_saturation.validate_document(document, require_degraded=True)

    def test_committed_service_file_meets_acceptance_floors(self):
        """The committed document must show the rebuilt service's wins:
        >=5x the v2 single-drain baseline at the knee, a sub-2ms p99 at the
        configured latency point, and deadline-forced cuts staying a
        minority at every swept load."""
        path = os.path.join(_REPO_ROOT, "BENCH_service.json")
        if not os.path.exists(path):
            pytest.skip("no BENCH_service.json at the repo root yet")
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
        assert document["knee"]["speedup_vs_v2_baseline"] >= 5.0
        assert document["latency"]["p99_s"] <= 0.002
        for entry in document["sweep"]:
            assert entry["batches"]["deadline_forced_fraction"] < 0.5

    def test_committed_degraded_section_meets_rejection_latency_floor(self):
        """Backpressure must refuse faster than the healthy path serves:
        the overloaded point's rejection-latency p99 may not exceed the
        committed document's healthy served p99, and the quarantine point
        must show the breaker actually cycling (trips matched by restores)."""
        path = os.path.join(_REPO_ROOT, "BENCH_service.json")
        if not os.path.exists(path):
            pytest.skip("no BENCH_service.json at the repo root yet")
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
        degraded = document.get("degraded")
        if degraded is None:
            pytest.skip("committed document predates the degraded section")
        rejection_p99 = degraded["overloaded"]["rejection_latency"]["p99_s"]
        assert rejection_p99 <= document["latency"]["p99_s"], (
            "rejecting an admission took longer than serving one at the "
            "healthy latency point — backpressure is not cheap"
        )
        quarantined = degraded["quarantined"]
        assert quarantined["breaker_trips"] >= 1
        assert quarantined["shard_restores"] >= quarantined["breaker_trips"]
        assert quarantined["ops_per_sec"] > 0

    def test_degraded_validation_rejects_drift(self, tmp_path):
        out = tmp_path / "BENCH_service.json"
        bench_service_saturation.main(["--smoke", "--out", str(out)])
        with open(out, encoding="utf-8") as handle:
            document = json.load(handle)

        # A fresh sweep has no degraded section: fine by default, an error
        # when the caller demands one.
        bench_service_saturation.validate_document(document)
        with pytest.raises(ValueError, match="degraded"):
            bench_service_saturation.validate_document(document, require_degraded=True)

        assert bench_degraded.main(["--smoke", "--out", str(out)]) == 0
        with open(out, encoding="utf-8") as handle:
            merged = json.load(handle)
        bench_service_saturation.validate_document(merged, require_degraded=True)

        no_rejections = json.loads(json.dumps(merged))
        no_rejections["degraded"]["overloaded"]["rejected_admissions"] = 0
        with pytest.raises(ValueError, match="actually overload"):
            bench_service_saturation.validate_document(no_rejections)

        no_trips = json.loads(json.dumps(merged))
        no_trips["degraded"]["quarantined"]["breaker_trips"] = 0
        with pytest.raises(ValueError, match="actually trip"):
            bench_service_saturation.validate_document(no_trips)

    def test_validate_document_rejects_drift(self, tmp_path):
        out = tmp_path / "doc.json"
        bench_service_saturation.main(["--smoke", "--out", str(out)])
        with open(out, encoding="utf-8") as handle:
            document = json.load(handle)

        broken = dict(document)
        broken.pop("sweep")
        with pytest.raises(ValueError, match="sweep"):
            bench_service_saturation.validate_document(broken)

        wrong_knee = json.loads(json.dumps(document))
        wrong_knee["knee"]["concurrency"] = 999
        with pytest.raises(ValueError, match="knee concurrency"):
            bench_service_saturation.validate_document(wrong_knee)

        missing_fraction = json.loads(json.dumps(document))
        missing_fraction["sweep"][0]["batches"].pop("deadline_forced_fraction")
        with pytest.raises(ValueError, match="deadline_forced_fraction"):
            bench_service_saturation.validate_document(missing_fraction)

        wrong_count = json.loads(json.dumps(document))
        wrong_count["latency"]["count"] = 1
        with pytest.raises(ValueError, match="latency_point"):
            bench_service_saturation.validate_document(wrong_count)

        unsorted = json.loads(json.dumps(document))
        unsorted["sweep"] = list(reversed(unsorted["sweep"]))
        with pytest.raises(ValueError, match="strictly increasing"):
            bench_service_saturation.validate_document(unsorted)


class TestLatencySchema:
    @pytest.mark.smoke
    def test_tiny_benchmark_roundtrip_matches_schema(self, tmp_path):
        out = tmp_path / "BENCH_service_latency.json"
        assert bench_service_latency.main(
            ["--num-ops", "512", "--initial", "512", "--num-shards", "2",
             "--max-batch", "128", "--burst", "64", "--out", str(out)]
        ) == 0
        with open(out, encoding="utf-8") as handle:
            document = json.load(handle)
        bench_service_latency.validate_document(document)  # raises on drift
        assert document["schema_version"] == 2
        assert document["latency"]["count"] == 512
        assert document["batches"]["executed"] >= 512 // 128
        # Schema v2: the trigger view exists alongside the size view.
        assert 0.0 <= document["batches"]["deadline_forced_fraction"] <= 1.0

    @pytest.mark.smoke
    def test_committed_latency_file_matches_schema(self):
        path = os.path.join(_REPO_ROOT, "BENCH_service_latency.json")
        if not os.path.exists(path):
            pytest.skip("no BENCH_service_latency.json at the repo root yet")
        with open(path, encoding="utf-8") as handle:
            bench_service_latency.validate_document(json.load(handle))

    def test_validate_document_rejects_drift(self):
        document = bench_service_latency.run_benchmark(
            num_ops=256, initial_elements=256, num_shards=2, max_batch_size=64, burst=64
        )
        bench_service_latency.validate_document(document)
        broken = dict(document)
        broken.pop("latency")
        with pytest.raises(ValueError, match="latency"):
            bench_service_latency.validate_document(broken)
        wrong_count = json.loads(json.dumps(document))
        wrong_count["latency"]["count"] = 1
        with pytest.raises(ValueError, match="num_ops"):
            bench_service_latency.validate_document(wrong_count)
        missing_fraction = json.loads(json.dumps(document))
        missing_fraction["batches"].pop("deadline_forced_fraction")
        with pytest.raises(ValueError, match="deadline_forced_fraction"):
            bench_service_latency.validate_document(missing_fraction)
