"""Schema guard for the service-latency benchmark output (BENCH_service.json).

Runs a tiny instance of ``benchmarks/bench_service_latency.py`` end to end
and validates the emitted document against ``validate_document`` — the
single source of truth for the schema — so drift in the JSON layout fails CI
before a malformed BENCH_service.json lands at the repo root.  Also
validates the committed repo-root file when present.
"""

from __future__ import annotations

import json
import os
import sys

import pytest

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
sys.path.insert(0, os.path.join(_REPO_ROOT, "benchmarks"))

import bench_service_latency  # noqa: E402  (needs the path insertion above)


@pytest.mark.smoke
def test_tiny_benchmark_roundtrip_matches_schema(tmp_path):
    out = tmp_path / "BENCH_service.json"
    assert bench_service_latency.main(
        ["--num-ops", "512", "--initial", "512", "--num-shards", "2",
         "--max-batch", "128", "--burst", "64", "--out", str(out)]
    ) == 0
    with open(out, encoding="utf-8") as handle:
        document = json.load(handle)
    bench_service_latency.validate_document(document)  # raises on drift
    assert document["schema_version"] == 2
    assert document["latency"]["count"] == 512
    assert document["batches"]["executed"] >= 512 // 128
    # Schema v2: the trigger view exists alongside the size view.
    assert 0.0 <= document["batches"]["deadline_forced_fraction"] <= 1.0


@pytest.mark.smoke
def test_committed_service_file_matches_schema():
    path = os.path.join(_REPO_ROOT, "BENCH_service.json")
    if not os.path.exists(path):
        pytest.skip("no BENCH_service.json at the repo root yet")
    with open(path, encoding="utf-8") as handle:
        bench_service_latency.validate_document(json.load(handle))


def test_validate_document_rejects_drift():
    document = bench_service_latency.run_benchmark(
        num_ops=256, initial_elements=256, num_shards=2, max_batch_size=64, burst=64
    )
    bench_service_latency.validate_document(document)
    broken = dict(document)
    broken.pop("latency")
    with pytest.raises(ValueError, match="latency"):
        bench_service_latency.validate_document(broken)
    wrong_count = json.loads(json.dumps(document))
    wrong_count["latency"]["count"] = 1
    with pytest.raises(ValueError, match="num_ops"):
        bench_service_latency.validate_document(wrong_count)
    missing_fraction = json.loads(json.dumps(document))
    missing_fraction["batches"].pop("deadline_forced_fraction")
    with pytest.raises(ValueError, match="deadline_forced_fraction"):
        bench_service_latency.validate_document(missing_fraction)
