"""Tests for the Series/FigureResult containers and the report renderers."""

import pytest

from repro.perf.harness import FigureResult, Series
from repro.perf.report import PAPER_REFERENCE, format_figure, format_table


class TestSeries:
    def test_add_and_lookup(self):
        series = Series("s")
        series.add(1, 10.0)
        series.add(2, 20.0)
        assert series.as_dict() == {1.0: 10.0, 2.0: 20.0}

    def test_geometric_mean(self):
        series = Series("s", x=[1, 2], y=[4.0, 16.0])
        assert series.geometric_mean() == pytest.approx(8.0)

    def test_geometric_mean_empty_or_nonpositive(self):
        with pytest.raises(ValueError):
            Series("s").geometric_mean()
        with pytest.raises(ValueError):
            Series("s", x=[1], y=[0.0]).geometric_mean()


class TestFigureResult:
    def make_figure(self):
        figure = FigureResult("Fig X", "title", "x", "rate")
        a = figure.add_series("A")
        b = figure.add_series("B")
        for x in (1, 2, 3):
            a.add(x, x * 10)
            b.add(x, x * 5)
        return figure

    def test_series_by_label(self):
        figure = self.make_figure()
        assert figure.series_by_label("A").y == [10, 20, 30]
        with pytest.raises(KeyError):
            figure.series_by_label("missing")

    def test_to_rows_aligns_series_on_x(self):
        headers, rows = self.make_figure().to_rows()
        assert headers == ["x", "A", "B"]
        assert len(rows) == 3
        assert rows[0][0] == "1"

    def test_to_rows_handles_missing_points(self):
        figure = FigureResult("F", "t", "x", "y")
        a = figure.add_series("A")
        b = figure.add_series("B")
        a.add(1, 1.0)
        b.add(2, 2.0)
        _, rows = figure.to_rows()
        assert rows[0][2] == "-"
        assert rows[1][1] == "-"

    def test_speedup_series(self):
        figure = self.make_figure()
        speedup = figure.speedup("A", "B")
        assert speedup.y == pytest.approx([2.0, 2.0, 2.0])


class TestReportRendering:
    def test_format_table_alignment(self):
        text = format_table(["col", "value"], [["a", "1"], ["bb", "22"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_format_figure_includes_title_series_and_notes(self):
        figure = FigureResult("Fig 9", "demo", "x", "y", notes="a note")
        figure.add_series("S").add(1, 2.0)
        figure.extra["speedup"] = 3.0
        text = format_figure(figure)
        assert "Fig 9" in text
        assert "demo" in text
        assert "S" in text
        assert "a note" in text
        assert "speedup" in text

    def test_paper_reference_contains_headline_numbers(self):
        assert PAPER_REFERENCE["slabhash_peak_updates_mops"] == 512.0
        assert PAPER_REFERENCE["slabhash_peak_searches_mops"] == 937.0
        assert PAPER_REFERENCE["slaballoc_rate_mops"] == 600.0
        assert PAPER_REFERENCE["slabhash_max_utilization"] == pytest.approx(0.94)
