"""Tests for the ``python -m repro`` command-line interface."""

import io
import os

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_reproduce_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["reproduce", "fig99"])

    def test_registry_covers_every_paper_figure(self):
        for required in ("fig4a", "fig4b", "fig4c", "fig5a", "fig5b", "fig6",
                         "fig7a", "fig7b", "allocators", "light", "gfsl",
                         "shard-sweep"):
            assert required in EXPERIMENTS

    def test_module_docstring_lists_every_experiment(self):
        """Guard against usage-block drift: the docstring must name every id."""
        import repro.cli
        for name in EXPERIMENTS:
            assert name in repro.cli.__doc__, f"{name} missing from cli docstring"


class TestCommands:
    @pytest.mark.smoke
    def test_list_prints_every_experiment_with_description(self):
        stream = io.StringIO()
        assert main(["list"], stream=stream) == 0
        output = stream.getvalue()
        for name, (description, _) in EXPERIMENTS.items():
            assert name in output
            assert description in output

    def test_reproduce_shard_sweep_reports_scaling(self):
        stream = io.StringIO()
        assert main(["reproduce", "shard-sweep", "--scale", "0.05"], stream=stream) == 0
        output = stream.getvalue()
        assert "Shard sweep" in output
        assert "build speedup" in output
        assert "build_speedup_4_shards" in output

    @pytest.mark.smoke
    def test_info_prints_device_and_reference_points(self):
        stream = io.StringIO()
        assert main(["info"], stream=stream) == 0
        output = stream.getvalue()
        assert "Tesla K40c" in output
        assert "937" in output and "512" in output

    def test_reproduce_single_experiment_prints_table(self):
        stream = io.StringIO()
        assert main(["reproduce", "gfsl"], stream=stream) == 0
        output = stream.getvalue()
        assert "GFSL" in output
        assert "SlabHash" in output

    def test_reproduce_writes_output_files(self, tmp_path):
        stream = io.StringIO()
        out_dir = str(tmp_path / "results")
        assert main(["reproduce", "slabsize", "--out", out_dir], stream=stream) == 0
        assert os.path.exists(os.path.join(out_dir, "slabsize.txt"))
        with open(os.path.join(out_dir, "slabsize.txt"), encoding="utf-8") as handle:
            assert "utilization" in handle.read()

    def test_reproduce_scaled_down_runs_quickly(self):
        stream = io.StringIO()
        assert main(["reproduce", "fig4c", "--scale", "0.1"], stream=stream) == 0
        assert "Figure 4c" in stream.getvalue()

    def test_scale_floor_prevents_degenerate_sizes(self):
        stream = io.StringIO()
        # Even an absurdly small scale must still produce a valid run.
        assert main(["reproduce", "allocators", "--scale", "0.001"], stream=stream) == 0
        assert "Section V" in stream.getvalue()


class TestPersistCommands:
    @pytest.mark.smoke
    def test_snapshot_verifies_its_own_round_trip(self, tmp_path):
        stream = io.StringIO()
        out = str(tmp_path / "demo.npz")
        assert main(["snapshot", out, "--elements", "1024"], stream=stream) == 0
        output = stream.getvalue()
        assert os.path.exists(out)
        assert "round-trip verified" in output and "yes" in output

    def test_snapshot_builds_a_sharded_engine(self, tmp_path):
        stream = io.StringIO()
        out = str(tmp_path / "demo-engine")
        assert main(["snapshot", out, "--elements", "1024", "--shards", "2"],
                    stream=stream) == 0
        assert os.path.isdir(out)
        assert "sharded engine" in stream.getvalue()

    @pytest.mark.smoke
    def test_service_health_reports_a_healthy_run(self):
        stream = io.StringIO()
        assert main(["service-health", "--ops", "2048"], stream=stream) == 0
        output = stream.getvalue()
        assert "healthy" in output
        assert "breaker trips" in output
        assert "rej-quar" in output  # the per-lane table rendered

    def test_service_health_surfaces_fault_counters_under_chaos(self):
        stream = io.StringIO()
        code = main(
            ["service-health", "--ops", "2048", "--chaos-seed", "7"],
            stream=stream,
        )
        output = stream.getvalue()
        assert "injected faults fired" in output
        # Every lane self-heals, so even a chaotic run must exit healthy.
        assert code == 0, output
        assert "DEGRADED" not in output

    @pytest.mark.smoke
    def test_recover_replays_a_wal_tail(self, tmp_path):
        import numpy as np

        from repro.persist import WriteAheadLog

        out = str(tmp_path / "demo.npz")
        assert main(["snapshot", out, "--elements", "1024"], stream=io.StringIO()) == 0
        wal_path = str(tmp_path / "ops.wal")
        with WriteAheadLog(wal_path) as wal:
            for index in range(2):
                keys = np.arange(1 + 40 * index, 41 + 40 * index, dtype=np.uint32)
                wal.append(np.full(40, 1), keys, keys, batch_index=index)
        stream = io.StringIO()
        assert main(["recover", out, "--wal", wal_path], stream=stream) == 0
        output = stream.getvalue()
        assert "records replayed" in output and "2" in output
        assert "1104" in output  # 1024 built + 80 replayed insertions
