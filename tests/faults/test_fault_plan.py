"""Unit tests for the deterministic fault-injection plane (repro.faults)."""

import pytest

from repro.faults import (
    FaultAction,
    FaultClock,
    FaultPlan,
    InjectedAllocExhausted,
    InjectedBatchFailure,
    InjectedFault,
    InjectedWalError,
)
from repro.gpusim.errors import AllocationError, SlabAllocExhausted


class TestFaultClock:
    def test_ticks_are_per_site_and_monotonic(self):
        clock = FaultClock()
        assert clock.tick("a") == 0
        assert clock.tick("a") == 1
        assert clock.tick("b") == 0
        assert clock.count("a") == 2
        assert clock.count("b") == 1
        assert clock.count("never") == 0
        assert clock.as_dict() == {"a": 2, "b": 1}


class TestFaultAction:
    def test_exception_registry(self):
        assert isinstance(FaultAction(exc="alloc").exception(), InjectedAllocExhausted)
        assert isinstance(FaultAction(exc="batch").exception(), InjectedBatchFailure)
        assert isinstance(FaultAction(exc="os").exception(), InjectedWalError)
        assert isinstance(FaultAction(exc="fault").exception(), InjectedFault)
        # Unknown keys degrade to the marker base instead of KeyError-ing.
        assert isinstance(FaultAction(exc="nope").exception(), InjectedFault)

    def test_injected_exceptions_are_catchable_as_their_natural_kind(self):
        # The service's pre-existing handlers catch these injected errors
        # exactly like the real thing.
        assert isinstance(FaultAction(exc="alloc").exception(), SlabAllocExhausted)
        assert isinstance(FaultAction(exc="alloc").exception(), AllocationError)
        assert isinstance(FaultAction(exc="os").exception(), OSError)

    def test_note_lands_in_the_message(self):
        exc = FaultAction(exc="batch", note="chaos seed 7").exception()
        assert "chaos seed 7" in str(exc)


class TestFaultPlan:
    def test_fire_matches_site_and_occurrence(self):
        action = FaultAction(exc="batch")
        plan = FaultPlan({("x", 1): action})
        assert plan.fire("x") is None  # occurrence 0: not scheduled
        assert plan.fire("x") is action  # occurrence 1: fires
        assert plan.fire("x") is None  # occurrence 2: consumed
        assert plan.fired_sites() == [("x", 1)]

    def test_check_raises_scheduled_raise_actions(self):
        plan = FaultPlan({("x", 0): FaultAction(exc="alloc")})
        with pytest.raises(InjectedAllocExhausted):
            plan.check("x")
        assert plan.check("x") is None

    def test_check_returns_non_raise_actions(self):
        torn = FaultAction(kind="torn_write", bytes_written=3)
        plan = FaultPlan({("w", 0): torn})
        assert plan.check("w") is torn

    def test_sleep_action_proceeds(self):
        plan = FaultPlan({("s", 0): FaultAction(kind="sleep", seconds=0.0)})
        action = plan.check("s")
        assert action is not None and action.kind == "sleep"

    def test_scoped_view_prefixes_and_shares_the_clock(self):
        plan = FaultPlan({("shard:2.alloc", 1): FaultAction(exc="alloc")})
        scoped = plan.scoped("shard:2.")
        assert scoped.check("alloc") is None
        with pytest.raises(InjectedAllocExhausted):
            scoped.check("alloc")
        # The shared clock saw the prefixed site name.
        assert plan.clock.count("shard:2.alloc") == 2
        # Nested scoping concatenates prefixes.
        nested = plan.scoped("shard:").scoped("2.")
        assert nested.prefix == "shard:2."

    def test_random_plans_are_deterministic_in_the_seed(self):
        sites = [("a", FaultAction(exc="batch")), ("b", FaultAction(exc="os"))]
        one = FaultPlan.random(17, sites, rate=0.3, horizon=32)
        two = FaultPlan.random(17, sites, rate=0.3, horizon=32)
        other = FaultPlan.random(18, sites, rate=0.3, horizon=32)
        assert one.schedule == two.schedule
        assert len(one) > 0  # rate 0.3 over 64 draws: virtually certain
        assert one.schedule != other.schedule

    def test_empty_plan_is_a_no_op(self):
        plan = FaultPlan()
        assert len(plan) == 0
        assert plan.check("anything") is None
        assert plan.fired == []
