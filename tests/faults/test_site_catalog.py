"""Three-way fault-site registry agreement: catalog <-> call sites <-> docs.

``repro.faults.plan.SITE_CATALOG`` is the single source of truth for chaos
injection points.  These tests pin the other two copies of that knowledge to
it: the ``check()``/``fire()`` string literals in ``src/repro`` and the site
table in ``docs/FAULTS.md``.  Any of the three drifting (a typo'd literal, a
new hook without a catalog entry, an undocumented site) fails here — the same
contract ``repro lint``'s ``fault-site`` rule enforces incrementally.
"""

import ast
import re
from pathlib import Path

from repro.analysis.rules.faultsites import site_literal
from repro.faults.plan import SITE_CATALOG

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC_ROOT = REPO_ROOT / "src" / "repro"
FAULTS_DOC = REPO_ROOT / "docs" / "FAULTS.md"

#: A site-catalog table row in docs/FAULTS.md: ``| `site.name` | layer | ...``.
_DOC_ROW = re.compile(r"^\|\s*`([^`]+)`\s*\|", re.MULTILINE)


def _call_site_literals():
    """Every static ``*.check("...")`` / ``*.fire("...")`` literal in src/repro."""
    literals = set()
    for path in sorted(SRC_ROOT.rglob("*.py")):
        tree = ast.parse(path.read_text(encoding="utf-8"))
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in ("check", "fire"):
                literal = site_literal(node.args[0])
                if literal is not None:
                    literals.add(literal)
    return literals


def _documented_sites():
    text = FAULTS_DOC.read_text(encoding="utf-8")
    start = text.index("### Site catalog")
    end = text.index("\n\n", text.index("| ---", start))
    return {m.group(1) for m in _DOC_ROW.finditer(text[start:end])} - {"site"}


class TestSiteCatalog:
    def test_catalog_names_are_unique_and_canonical(self):
        names = [site.name for site in SITE_CATALOG]
        assert len(names) == len(set(names))
        for site in SITE_CATALOG:
            # The call-site literal is the name itself, or the name minus the
            # scoped-view shard prefix that ``plan.scoped("shard:<i>.")`` adds.
            assert site.name in (site.call_site, f"shard:<i>.{site.call_site}")

    def test_every_call_site_literal_is_in_the_catalog(self):
        known = {site.name for site in SITE_CATALOG}
        known |= {site.call_site for site in SITE_CATALOG}
        unknown = _call_site_literals() - known
        assert not unknown, f"src/ fires sites missing from SITE_CATALOG: {sorted(unknown)}"

    def test_every_catalog_site_is_fired_somewhere(self):
        fired = _call_site_literals()
        dead = {
            site.name
            for site in SITE_CATALOG
            if site.call_site not in fired and site.name not in fired
        }
        assert not dead, f"SITE_CATALOG entries no component consults: {sorted(dead)}"

    def test_docs_table_matches_the_catalog_exactly(self):
        documented = _documented_sites()
        catalog = {site.name for site in SITE_CATALOG}
        assert documented == catalog, (
            f"docs/FAULTS.md site table drifted: "
            f"undocumented={sorted(catalog - documented)}, "
            f"stale={sorted(documented - catalog)}"
        )

    def test_catalog_descriptions_are_substantive(self):
        for site in SITE_CATALOG:
            assert site.component and len(site.description) > 10, site.name
