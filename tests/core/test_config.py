"""Tests for the slab layout and allocator sizing configuration."""

import pytest

from repro.core import constants as C
from repro.core.config import SlabAllocConfig, SlabConfig


class TestSlabConfig:
    def test_key_value_mode_stores_15_pairs_per_slab(self):
        cfg = SlabConfig(key_value=True)
        assert cfg.elements_per_slab == 15
        assert cfg.element_bytes == 8
        assert cfg.lane_stride == 2

    def test_key_only_mode_stores_30_keys_per_slab(self):
        cfg = SlabConfig(key_value=False)
        assert cfg.elements_per_slab == 30
        assert cfg.element_bytes == 4
        assert cfg.lane_stride == 1

    def test_key_lanes_key_value(self):
        assert list(SlabConfig(key_value=True).key_lanes) == list(range(0, 30, 2))

    def test_key_lanes_key_only(self):
        assert list(SlabConfig(key_value=False).key_lanes) == list(range(30))

    def test_valid_key_masks(self):
        assert SlabConfig(key_value=True).valid_key_mask == C.VALID_KEY_MASK_KEY_VALUE
        assert SlabConfig(key_value=False).valid_key_mask == C.VALID_KEY_MASK_KEY_ONLY

    def test_address_lane_not_in_valid_key_mask(self):
        for cfg in (SlabConfig(key_value=True), SlabConfig(key_value=False)):
            assert not cfg.valid_key_mask & (1 << C.ADDRESS_LANE)
            assert not cfg.valid_key_mask & (1 << C.AUX_LANE)

    def test_max_memory_utilization_is_94_percent(self):
        # The paper: slab lists achieve a maximum memory utilization of ~94%.
        assert SlabConfig(key_value=True).max_memory_utilization == pytest.approx(0.9375)
        assert SlabConfig(key_value=False).max_memory_utilization == pytest.approx(0.9375)


class TestSlabAllocConfig:
    def test_paper_defaults(self):
        cfg = SlabAllocConfig()
        assert cfg.num_super_blocks == 32
        assert cfg.num_memory_blocks == 256
        assert cfg.units_per_block == 1024

    def test_capacity_accounting(self):
        cfg = SlabAllocConfig(num_super_blocks=2, num_memory_blocks=4, units_per_block=64)
        assert cfg.units_per_super_block == 256
        assert cfg.capacity_units == 512
        assert cfg.capacity_bytes == 512 * 128

    def test_paper_scale_capacity_under_one_terabyte(self):
        # 2^7 * N_S * N_M * N_U < 1 TB for the maximal addressable configuration.
        cfg = SlabAllocConfig(num_super_blocks=256, num_memory_blocks=2**14, units_per_block=1024)
        assert cfg.capacity_bytes < 2**40
        assert cfg.capacity_bytes >= 0.5 * 2**40

    def test_rejects_bad_super_block_count(self):
        with pytest.raises(ValueError):
            SlabAllocConfig(num_super_blocks=0)
        with pytest.raises(ValueError):
            SlabAllocConfig(num_super_blocks=257)

    def test_rejects_bad_memory_block_count(self):
        with pytest.raises(ValueError):
            SlabAllocConfig(num_memory_blocks=2**14 + 1)

    def test_rejects_units_not_multiple_of_32(self):
        with pytest.raises(ValueError):
            SlabAllocConfig(units_per_block=100)

    def test_rejects_too_many_units(self):
        with pytest.raises(ValueError):
            SlabAllocConfig(units_per_block=2048)


class TestConstants:
    def test_slab_is_128_bytes(self):
        assert C.SLAB_WORDS == 32
        assert C.SLAB_BYTES == 128

    def test_reserved_lanes(self):
        assert C.ADDRESS_LANE == 31
        assert C.AUX_LANE == 30
        assert C.DATA_LANES == 30

    def test_reserved_keys_are_distinct_and_outside_user_domain(self):
        assert C.EMPTY_KEY != C.DELETED_KEY
        assert C.EMPTY_KEY >= C.MAX_USER_KEY
        assert C.DELETED_KEY >= C.MAX_USER_KEY

    def test_operation_codes_distinct(self):
        assert len({C.OP_INSERT, C.OP_DELETE, C.OP_SEARCH}) == 3
