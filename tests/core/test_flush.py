"""Tests for the FLUSH compaction operation."""

import numpy as np
import pytest

from repro.core import constants as C
from repro.core.config import SlabAllocConfig
from repro.core.flush import flush_bucket
from repro.core.slab_hash import SlabHash

from tests.conftest import make_keys

CFG = SlabAllocConfig(num_super_blocks=2, num_memory_blocks=8, units_per_block=64)


def build_fragmented_table(num_keys=120, delete_every=2, buckets=2, seed=21):
    """A table whose chains contain many tombstones."""
    table = SlabHash(buckets, alloc_config=CFG, seed=seed)
    keys = make_keys(num_keys, seed=seed)
    table.bulk_build(keys, keys)
    deleted = keys[::delete_every]
    table.bulk_delete(deleted)
    kept = np.setdiff1d(keys, deleted)
    return table, kept, deleted


class TestFlushBucket:
    def test_flush_preserves_live_elements(self):
        table, kept, _ = build_fragmented_table()
        table.flush()
        assert np.array_equal(table.bulk_search(kept), kept)
        assert len(table) == len(kept)

    def test_flush_removes_tombstones(self):
        table, _, deleted = build_fragmented_table()
        table.flush()
        for bucket in range(table.num_buckets):
            for _, _, words in table.lists.iter_slab_words(bucket):
                assert C.DELETED_KEY not in words[:30]
        assert np.all(table.bulk_search(deleted) == C.SEARCH_NOT_FOUND)

    def test_flush_releases_slabs(self):
        table, kept, _ = build_fragmented_table()
        before = table.total_slabs()
        results = table.flush()
        after = table.total_slabs()
        released = sum(r.slabs_released for r in results)
        assert released > 0
        assert after == before - released
        assert after >= max(1, -(-len(kept) // 15)) * 1  # at least the needed slabs

    def test_flush_improves_memory_utilization(self):
        table, _, _ = build_fragmented_table()
        before = table.memory_utilization()
        table.flush()
        assert table.memory_utilization() >= before

    def test_flush_returns_accurate_stats(self):
        table, kept, _ = build_fragmented_table(buckets=1)
        result = table.flush(bucket=0)[0]
        assert result.bucket == 0
        assert result.live_elements == len(kept)
        assert result.slabs_before - result.slabs_released == result.slabs_after
        assert result.slabs_after == table.total_slabs()

    def test_flush_on_empty_bucket_keeps_base_slab(self):
        table = SlabHash(4, alloc_config=CFG, seed=1)
        result = table.flush(bucket=2)[0]
        assert result.slabs_before == 1
        assert result.slabs_after == 1
        assert result.slabs_released == 0

    def test_flushed_slabs_can_be_reallocated(self):
        table, kept, _ = build_fragmented_table()
        freed_before = table.alloc.allocated_units
        table.flush()
        assert table.alloc.allocated_units < freed_before
        # Re-inserting should be able to reuse the released slabs.
        new_keys = make_keys(60, seed=99) + np.uint32(2**29)
        table.bulk_insert(new_keys, new_keys)
        assert np.array_equal(table.bulk_search(new_keys), new_keys)

    def test_flush_invalid_bucket(self):
        table = SlabHash(2, alloc_config=CFG)
        with pytest.raises(ValueError):
            flush_bucket(table.lists, table._next_warp(), 5)

    def test_flush_after_delete_all_duplicates(self):
        table = SlabHash(1, alloc_config=CFG, unique_keys=False, seed=3)
        for value in range(40):
            table.insert(7, value)
        table.delete_all(7)
        result = table.flush(bucket=0)[0]
        assert result.live_elements == 0
        assert result.slabs_after == 1
        assert table.total_slabs() == 1

    def test_flush_counts_kernel_launch(self):
        table, _, _ = build_fragmented_table()
        before = table.device.counters.kernel_launches
        table.flush()
        assert table.device.counters.kernel_launches == before + 1
