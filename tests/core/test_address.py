"""Tests for the 32-bit slab address layout (10-bit unit, 14-bit block, 8-bit super block)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import constants as C
from repro.core.address import (
    BLOCK_BITS,
    SUPER_BLOCK_BITS,
    UNIT_BITS,
    decode_address,
    is_valid_address,
    make_address,
)


class TestLayout:
    def test_bit_widths_match_the_paper(self):
        assert UNIT_BITS == 10
        assert BLOCK_BITS == 14
        assert SUPER_BLOCK_BITS == 8
        assert UNIT_BITS + BLOCK_BITS + SUPER_BLOCK_BITS == 32

    def test_unit_occupies_low_bits(self):
        assert make_address(0, 0, 5) == 5

    def test_block_occupies_middle_bits(self):
        assert make_address(0, 3, 0) == 3 << UNIT_BITS

    def test_super_block_occupies_high_bits(self):
        assert make_address(2, 0, 0) == 2 << (UNIT_BITS + BLOCK_BITS)

    def test_roundtrip_simple(self):
        address = make_address(7, 123, 900)
        assert decode_address(address) == (7, 123, 900)

    def test_rejects_out_of_range_components(self):
        with pytest.raises(ValueError):
            make_address(0, 0, 1024)
        with pytest.raises(ValueError):
            make_address(0, 2**14, 0)
        with pytest.raises(ValueError):
            make_address(256, 0, 0)
        with pytest.raises(ValueError):
            make_address(-1, 0, 0)

    def test_reserved_sentinels_rejected_by_encoder(self):
        # 0xFFFFFFFF would be super block 255, block 16383, unit 1023.
        with pytest.raises(ValueError):
            make_address(255, 16383, 1023)

    def test_decode_rejects_sentinels(self):
        with pytest.raises(ValueError):
            decode_address(C.EMPTY_POINTER)
        with pytest.raises(ValueError):
            decode_address(C.BASE_SLAB)

    def test_is_valid_address(self):
        assert is_valid_address(make_address(1, 2, 3))
        assert not is_valid_address(C.EMPTY_POINTER)
        assert not is_valid_address(-1)
        assert not is_valid_address(2**32)


class TestAddressProperties:
    @settings(max_examples=120, deadline=None)
    @given(
        st.integers(min_value=0, max_value=254),
        st.integers(min_value=0, max_value=2**14 - 1),
        st.integers(min_value=0, max_value=1023),
    )
    def test_property_roundtrip(self, super_block, block, unit):
        address = make_address(super_block, block, unit)
        assert decode_address(address) == (super_block, block, unit)
        assert 0 <= address <= 0xFFFFFFFF

    @settings(max_examples=120, deadline=None)
    @given(
        st.tuples(
            st.integers(min_value=0, max_value=254),
            st.integers(min_value=0, max_value=2**14 - 1),
            st.integers(min_value=0, max_value=1023),
        ),
        st.tuples(
            st.integers(min_value=0, max_value=254),
            st.integers(min_value=0, max_value=2**14 - 1),
            st.integers(min_value=0, max_value=1023),
        ),
    )
    def test_property_distinct_units_get_distinct_addresses(self, first, second):
        if first != second:
            assert make_address(*first) != make_address(*second)
