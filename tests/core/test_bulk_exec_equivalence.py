"""Property-style equivalence suite: vectorized backend vs reference schedule.

The vectorized bulk backend (:mod:`repro.core.bulk_exec`) promises *bit
identical* behaviour to the sequential reference schedule: same return arrays,
same final table state (base slabs, chain addresses, chained slab contents,
allocator bookkeeping, warp ids), and the same device counters event for
event.  These tests drive paired tables — one per backend — through the same
operation streams and assert all three, sweeping key distributions, all four
(key_value x unique_keys) modes, both allocator variants, allocator growth and
exhaustion, and the sharded engine.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import constants as C
from repro.core.bulk_exec import BACKENDS, get_default_backend, set_default_backend
from repro.core.config import SlabAllocConfig
from repro.core.slab_alloc import SlabAlloc
from repro.core.slab_hash import SlabHash
from repro.engine.sharded import ShardedSlabHash
from repro.gpusim.device import Device
from repro.gpusim.errors import AllocationError

SMALL_ALLOC = SlabAllocConfig(num_super_blocks=2, num_memory_blocks=4, units_per_block=64)


# --------------------------------------------------------------------------- #
# Comparison helpers
# --------------------------------------------------------------------------- #


def table_pair(**kwargs):
    reference = SlabHash(backend="reference", **kwargs)
    vectorized = SlabHash(backend="vectorized", **kwargs)
    return reference, vectorized


def assert_same_state(reference: SlabHash, vectorized: SlabHash) -> None:
    """Full structural equality: every slab word, chain link and counter."""
    assert np.array_equal(reference.lists.base_slabs, vectorized.lists.base_slabs)
    for bucket in range(reference.num_buckets):
        chain_r = reference.lists.chain_addresses(bucket)
        chain_v = vectorized.lists.chain_addresses(bucket)
        assert chain_r == chain_v, f"chain addresses differ in bucket {bucket}"
        for address in chain_r:
            store_r, row_r = reference.alloc.slab_view(address)
            store_v, row_v = vectorized.alloc.slab_view(address)
            assert np.array_equal(store_r[row_r], store_v[row_v]), (
                f"slab 0x{address:08X} contents differ"
            )
    assert reference.alloc.allocated_units == vectorized.alloc.allocated_units
    assert reference.alloc.num_super_blocks == vectorized.alloc.num_super_blocks
    assert reference._warp_counter == vectorized._warp_counter
    assert reference.device.counters.as_dict() == vectorized.device.counters.as_dict()


def run_both(reference: SlabHash, vectorized: SlabHash, stream) -> None:
    """Apply an operation stream to both tables, asserting results and state."""
    for op, payload in stream:
        if op == "insert":
            keys, values = payload
            if reference.config.key_value:
                reference.bulk_insert(keys, values)
                vectorized.bulk_insert(keys, values)
            else:
                reference.bulk_insert(keys)
                vectorized.bulk_insert(keys)
        elif op == "search":
            out_r = reference.bulk_search(payload)
            out_v = vectorized.bulk_search(payload)
            assert np.array_equal(out_r, out_v), "bulk_search results differ"
        elif op == "delete":
            out_r = reference.bulk_delete(payload)
            out_v = vectorized.bulk_delete(payload)
            assert np.array_equal(out_r, out_v), "bulk_delete results differ"
        else:  # pragma: no cover - test-stream typo guard
            raise ValueError(op)
        assert_same_state(reference, vectorized)


def random_stream(rng: np.random.Generator, *, key_domain: int, steps: int = 8):
    """A mixed insert/search/delete stream drawn from one key distribution."""
    stream = []
    for step in range(steps):
        count = int(rng.integers(1, 260))
        keys = rng.integers(0, key_domain, size=count).astype(np.uint32)
        values = rng.integers(0, 2**31, size=count).astype(np.uint32)
        stream.append((("insert", "search", "delete")[step % 3],
                       (keys, values) if step % 3 == 0 else keys))
    return stream


# --------------------------------------------------------------------------- #
# Mode and distribution sweeps
# --------------------------------------------------------------------------- #


class TestModeSweep:
    @pytest.mark.parametrize("key_value", [True, False])
    @pytest.mark.parametrize("unique_keys", [True, False])
    @pytest.mark.parametrize("light_alloc", [False, True])
    def test_mixed_stream_equivalence(self, key_value, unique_keys, light_alloc):
        reference, vectorized = table_pair(
            num_buckets=5,
            key_value=key_value,
            unique_keys=unique_keys,
            light_alloc=light_alloc,
            alloc_config=SMALL_ALLOC,
            seed=11,
        )
        rng = np.random.default_rng(hash((key_value, unique_keys, light_alloc)) % 2**32)
        run_both(reference, vectorized, random_stream(rng, key_domain=1500))

    @pytest.mark.parametrize("distribution", ["uniform", "heavy-duplicates", "clustered", "sequential"])
    def test_key_distributions(self, distribution):
        rng = np.random.default_rng(hash(distribution) % 2**32)
        if distribution == "uniform":
            draw = lambda n: rng.integers(0, 2**30, n)
        elif distribution == "heavy-duplicates":
            draw = lambda n: rng.integers(0, 40, n)  # ~n/40 copies per key
        elif distribution == "clustered":
            draw = lambda n: rng.integers(0, 8, n) * 1000 + rng.integers(0, 4, n)
        else:
            draw = lambda n: np.arange(n) * 3
        reference, vectorized = table_pair(
            num_buckets=4, unique_keys=False, alloc_config=SMALL_ALLOC, seed=3
        )
        stream = []
        for step in range(6):
            keys = draw(int(rng.integers(1, 200))).astype(np.uint32)
            values = (keys + 1).astype(np.uint32)
            stream.append((("insert", "search", "delete")[step % 3],
                           (keys, values) if step % 3 == 0 else keys))
        run_both(reference, vectorized, stream)

    @pytest.mark.parametrize("count", [0, 1, 31, 32, 33, 64, 100])
    def test_warp_boundary_batch_sizes(self, count):
        keys = (np.arange(count, dtype=np.uint32) * 17 + 1).astype(np.uint32)
        values = np.arange(count, dtype=np.uint32)
        reference, vectorized = table_pair(num_buckets=3, alloc_config=SMALL_ALLOC, seed=5)
        run_both(
            reference,
            vectorized,
            [("insert", (keys, values)), ("search", keys), ("delete", keys)],
        )


class TestSemanticsEdges:
    @pytest.mark.smoke
    def test_replace_overwrites_and_counts_match(self):
        keys = np.arange(1, 200, dtype=np.uint32)
        reference, vectorized = table_pair(num_buckets=4, alloc_config=SMALL_ALLOC, seed=7)
        run_both(
            reference,
            vectorized,
            [
                ("insert", (keys, keys)),
                ("insert", (keys, keys + 9)),  # pure REPLACE traffic
                ("search", keys),
            ],
        )
        assert vectorized.search(1) == 10

    def test_deletes_of_absent_keys_traverse_full_chains(self):
        present = np.arange(1, 400, dtype=np.uint32)
        absent = np.arange(10_000, 10_400, dtype=np.uint32)
        reference, vectorized = table_pair(num_buckets=2, alloc_config=SMALL_ALLOC, seed=9)
        run_both(
            reference,
            vectorized,
            [
                ("insert", (present, present)),
                ("delete", absent),                # all misses, multi-slab chains
                ("delete", np.concatenate([present[:50], absent[:50]])),
                ("search", np.concatenate([present, absent])),
            ],
        )

    def test_duplicate_deletes_in_one_batch(self):
        keys = np.repeat(np.arange(10, dtype=np.uint32), 6)
        reference, vectorized = table_pair(
            num_buckets=2, unique_keys=False, alloc_config=SMALL_ALLOC, seed=13
        )
        run_both(
            reference,
            vectorized,
            [
                ("insert", (keys, keys + 1)),
                ("delete", np.repeat(np.arange(12, dtype=np.uint32), 4)),
                ("search", keys),
            ],
        )

    def test_duplicates_mode_recycles_mid_chain_empties(self):
        keys = np.repeat(np.arange(20, dtype=np.uint32), 10)
        reference, vectorized = table_pair(
            num_buckets=3, unique_keys=False, alloc_config=SMALL_ALLOC, seed=15
        )
        run_both(
            reference,
            vectorized,
            [
                ("insert", (keys, keys)),
                ("delete", keys[::2]),            # punches mid-chain EMPTY holes
                ("insert", (keys[:120], keys[:120] + 5)),  # must reuse them in scan order
                ("search", np.arange(25, dtype=np.uint32)),
            ],
        )

    def test_flush_then_more_bulk_traffic(self):
        rng = np.random.default_rng(17)
        keys = rng.choice(2**20, 500, replace=False).astype(np.uint32)
        reference, vectorized = table_pair(num_buckets=3, alloc_config=SMALL_ALLOC, seed=17)
        reference.bulk_build(keys, keys)
        vectorized.bulk_build(keys, keys)
        reference.bulk_delete(keys[:350])
        vectorized.bulk_delete(keys[:350])
        reference.flush()
        vectorized.flush()
        assert_same_state(reference, vectorized)
        run_both(
            reference,
            vectorized,
            [("insert", (keys[:200], keys[:200] + 2)), ("search", keys)],
        )

    def test_single_operation_api_goes_through_bulk_paths(self):
        reference, vectorized = table_pair(num_buckets=2, alloc_config=SMALL_ALLOC, seed=19)
        for table in (reference, vectorized):
            table.insert(10, 1)
            table.insert(11, 2)
            table.insert(10, 3)
        assert reference.search(10) == vectorized.search(10) == 3
        assert reference.delete(10) is vectorized.delete(10) is True
        assert reference.delete(10) is vectorized.delete(10) is False
        assert_same_state(reference, vectorized)


class TestAllocatorInteraction:
    def test_growth_path_counts_identically(self):
        tiny = SlabAllocConfig(num_super_blocks=1, num_memory_blocks=2,
                               units_per_block=32, growth_threshold=2, max_super_blocks=8)
        rng = np.random.default_rng(21)
        keys = rng.choice(2**24, 1500, replace=False).astype(np.uint32)
        reference, vectorized = table_pair(num_buckets=2, alloc_config=tiny, seed=21)
        run_both(reference, vectorized, [("insert", (keys, keys)), ("search", keys)])
        assert vectorized.alloc.num_super_blocks > 1  # growth actually happened

    def test_exhaustion_mid_batch_matches_reference_partial_state(self):
        def build(backend):
            device = Device()
            alloc = SlabAlloc(
                device,
                SlabAllocConfig(1, 1, 32, growth_threshold=10_000, max_super_blocks=1),
                seed=1,
            )
            table = SlabHash(1, device=device, alloc=alloc, seed=2, backend=backend)
            rng = np.random.default_rng(23)
            keys = rng.choice(2**24, 2000, replace=False).astype(np.uint32)
            with pytest.raises(AllocationError):
                table.bulk_build(keys, keys)
            return table

        reference, vectorized = build("reference"), build("vectorized")
        assert len(reference.items()) > 0
        assert reference.items() == vectorized.items()
        assert_same_state(reference, vectorized)


class TestShardedEngine:
    @pytest.mark.parametrize("policy", ["hash", "range"])
    def test_sharded_engine_backends_are_equivalent(self, policy):
        rng = np.random.default_rng(29)
        keys = rng.choice(2**24, 700, replace=False).astype(np.uint32)
        values = np.arange(700, dtype=np.uint32)

        def build(backend):
            return ShardedSlabHash(
                3, 4, policy=policy, alloc_config=SMALL_ALLOC, seed=31, backend=backend
            )

        reference, vectorized = build("reference"), build("vectorized")
        reference.bulk_build(keys, values)
        vectorized.bulk_build(keys, values)
        assert np.array_equal(reference.bulk_search(keys), vectorized.bulk_search(keys))
        assert np.array_equal(
            reference.bulk_delete(keys[:300]), vectorized.bulk_delete(keys[:300])
        )
        for shard_r, shard_v in zip(reference.shards, vectorized.shards):
            assert_same_state(shard_r, shard_v)

    def test_sharded_measure_is_backend_independent(self):
        rng = np.random.default_rng(33)
        keys = rng.choice(2**24, 600, replace=False).astype(np.uint32)
        values = np.arange(600, dtype=np.uint32)
        stats = {}
        for backend in BACKENDS:
            engine = ShardedSlabHash(2, 8, alloc_config=SMALL_ALLOC, seed=35, backend=backend)
            stats[backend] = engine.measure(
                lambda: engine.bulk_build(keys, values), label="build"
            )
        assert stats["vectorized"].parallel_seconds == stats["reference"].parallel_seconds
        assert stats["vectorized"].aggregate.as_dict() == stats["reference"].aggregate.as_dict()


class TestBackendSelection:
    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            SlabHash(4, backend="warp-speed")
        with pytest.raises(ValueError, match="unknown backend"):
            set_default_backend("warp-speed")

    def test_default_backend_round_trip(self):
        assert get_default_backend() == "vectorized"
        try:
            set_default_backend("reference")
            assert SlabHash(2, alloc_config=SMALL_ALLOC).backend == "reference"
        finally:
            set_default_backend("vectorized")
        assert SlabHash(2, alloc_config=SMALL_ALLOC).backend == "vectorized"

    def test_unscheduled_concurrent_batch_follows_the_backend(self):
        # Without a scheduler, concurrent_batch runs the deterministic phased
        # schedule, which the vectorized backend resolves through its fast
        # path with identical results and counters (the full sweep lives in
        # tests/core/test_concurrent_exec_equivalence.py).
        rng = np.random.default_rng(37)
        keys = rng.choice(2**20, 128, replace=False).astype(np.uint32)
        ops = np.full(128, C.OP_INSERT, dtype=np.int64)
        results = {}
        for backend in BACKENDS:
            table = SlabHash(4, alloc_config=SMALL_ALLOC, seed=39, backend=backend)
            results[backend] = table.concurrent_batch(ops, keys, keys)
            results[backend + "-counters"] = table.device.counters.as_dict()
        assert np.array_equal(results["vectorized"], results["reference"])
        assert results["vectorized-counters"] == results["reference-counters"]
