"""Equivalence and policy tests for online table resizing (repro.core.resize).

The contract under test: after ``resize(B)`` the table behaves exactly like
an equivalently-sized freshly built table holding the same contents — same
items, same search results, same multi-value (duplicate-key) semantics —
with the migration charged to the device counters, and the no-op /
hysteresis rules of :class:`LoadFactorPolicy` holding at the boundaries.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SlabAllocConfig
from repro.core.resize import LoadFactorPolicy, resize_table
from repro.core.slab_alloc import SlabAlloc
from repro.core.slab_hash import SlabHash
from repro.gpusim.device import Device
from repro.gpusim.errors import AllocationError

from tests.conftest import make_keys

ALLOC = SlabAllocConfig(num_super_blocks=4, num_memory_blocks=32, units_per_block=128)


def build_table(num_buckets, *, backend="vectorized", seed=11, n=600, **kwargs):
    keys = make_keys(n, seed=seed)
    values = (keys * np.uint32(3)) & np.uint32(0xFFFF)
    table = SlabHash(num_buckets, alloc_config=ALLOC, seed=seed, backend=backend, **kwargs)
    table.bulk_build(keys, values)
    return table, keys, values


def fresh_equivalent(table, num_buckets, keys, values, *, seed=11):
    fresh = SlabHash(
        num_buckets,
        alloc_config=ALLOC,
        seed=seed,
        backend=table.backend,
        unique_keys=table.config.unique_keys,
        key_value=table.config.key_value,
    )
    fresh.bulk_build(keys, values)
    return fresh


@pytest.mark.parametrize("backend", ["reference", "vectorized"])
class TestResizeEquivalence:
    def test_grow_matches_freshly_built_table(self, backend):
        table, keys, values = build_table(8, backend=backend)
        result = table.resize(128)
        assert result.direction == "grow"
        assert result.migrated == 600
        assert table.num_buckets == 128
        assert len(table) == 600
        fresh = fresh_equivalent(table, 128, keys, values)
        assert sorted(table.items()) == sorted(fresh.items())
        assert np.array_equal(table.bulk_search(keys), fresh.bulk_search(keys))
        # The hash draw is re-ranged, not re-drawn: bucket layouts agree too.
        assert np.array_equal(table.bucket_slab_counts(), fresh.bucket_slab_counts())

    def test_shrink_matches_freshly_built_table(self, backend):
        table, keys, values = build_table(128, backend=backend)
        result = table.resize(8)
        assert result.direction == "shrink"
        assert table.num_buckets == 8
        fresh = fresh_equivalent(table, 8, keys, values)
        assert sorted(table.items()) == sorted(fresh.items())
        assert np.array_equal(table.bulk_search(keys), fresh.bulk_search(keys))
        missing = make_keys(100, seed=99)
        missing = np.setdiff1d(missing, keys)
        assert np.array_equal(table.bulk_search(missing), fresh.bulk_search(missing))

    def test_resize_mid_allocator_growth(self, backend):
        """Resizing a table whose allocator has already grown new super blocks."""
        tiny = SlabAllocConfig(num_super_blocks=1, num_memory_blocks=2,
                               units_per_block=32, growth_threshold=2, max_super_blocks=16)
        keys = make_keys(1200, seed=5)
        values = keys.copy()
        table = SlabHash(2, alloc_config=tiny, seed=5, backend=backend)
        table.bulk_build(keys, values)
        assert table.alloc.num_super_blocks > 1  # growth happened pre-resize
        table.resize(96)
        assert len(table) == 1200
        assert np.array_equal(
            table.bulk_search(keys), values.astype(np.uint32)
        )
        # And back down, with slabs spread across grown stores.
        table.resize(4)
        assert len(table) == 1200
        assert np.array_equal(table.bulk_search(keys), values.astype(np.uint32))

    def test_duplicate_keys_preserved_across_resize(self, backend):
        """Multi-value mode: search_all multisets and delete order survive."""
        table = SlabHash(4, alloc_config=ALLOC, seed=3, backend=backend,
                         unique_keys=False)
        keys = np.repeat(np.array([100, 200, 300], dtype=np.uint32), 4)
        values = np.arange(12, dtype=np.uint32)
        table.bulk_insert(keys, values)
        before = {int(k): sorted(table.search_all(int(k))) for k in (100, 200, 300)}
        table.resize(64)
        assert len(table) == 12
        for key in (100, 200, 300):
            assert sorted(table.search_all(key)) == before[key]
        # delete removes the least-recent occurrence, then delete_all the rest.
        assert table.delete(100) is True
        assert len(table.search_all(100)) == 3
        assert table.delete_all(100) == 3
        assert table.search_all(100) == []
        assert sorted(table.search_all(200)) == before[200]

    def test_failed_resize_leaves_table_intact(self, backend):
        """Allocator exhaustion mid-migration must not corrupt the table."""
        device = Device()
        alloc = SlabAlloc(
            device,
            SlabAllocConfig(1, 2, 32, growth_threshold=10_000, max_super_blocks=1),
            seed=1,
        )
        # 2 buckets x ~300 elements: chained slabs consume most of the pool.
        table = SlabHash(2, device=device, alloc=alloc, seed=7, backend=backend)
        keys = make_keys(500, seed=7)
        table.bulk_build(keys, keys)
        items_before = sorted(table.items())
        buckets_before = table.num_buckets
        # Migrating into 1 bucket needs fresh slabs for every element while the
        # old ones are still held -> the exhausted allocator must fail.
        with pytest.raises(AllocationError):
            table.resize(1)
        assert table.num_buckets == buckets_before
        assert sorted(table.items()) == items_before
        assert np.array_equal(table.bulk_search(keys), keys.astype(np.uint32))


class TestResizeAccounting:
    def test_migration_is_charged_to_the_device(self):
        table, keys, values = build_table(8)
        before = table.device.snapshot()
        result = table.resize(16)  # beta ~2.5: the new buckets still chain
        delta = table.device.counters.diff(before)
        assert result.counters.as_dict() == delta.as_dict()
        assert result.seconds > 0
        assert delta.kernel_launches == 1  # the migration's bulk insertion
        assert delta.coalesced_read_transactions > 0
        assert delta.allocations > 0  # new chained slabs
        assert delta.deallocations >= result.released_slabs > 0
        assert table.resize_stats.grows == 1
        assert table.resize_stats.migrated_items == 600
        assert table.resize_stats.modelled_seconds == pytest.approx(result.seconds)

    def test_backends_resize_with_identical_counters(self):
        tables = {}
        for backend in ("reference", "vectorized"):
            table, keys, values = build_table(8, backend=backend)
            table.resize(100)
            table.resize(16)
            tables[backend] = table
        assert (
            tables["reference"].device.counters.as_dict()
            == tables["vectorized"].device.counters.as_dict()
        )
        assert sorted(tables["reference"].items()) == sorted(tables["vectorized"].items())

    def test_noop_resize_costs_nothing(self):
        table, keys, values = build_table(8)
        before = table.device.snapshot()
        result = table.resize(8)
        assert result.direction == "noop"
        assert not result.changed
        assert result.migrated == 0
        assert table.device.counters.diff(before).as_dict() == {
            field: 0 for field in before.as_dict()
        }
        assert table.resize_stats.noops == 1
        assert table.resize_stats.resizes == 0

    def test_resize_rejects_nonpositive_buckets(self):
        table, _, _ = build_table(8)
        with pytest.raises(ValueError):
            table.resize(0)
        with pytest.raises(ValueError):
            resize_table(table, -3)


class TestLoadFactorPolicy:
    def test_decide_is_quiet_inside_the_band(self):
        policy = LoadFactorPolicy()
        eps = 15
        # beta = 600 / (15 * 80) = 0.5: inside [0.25, 1.0].
        assert policy.decide(600, 80, eps) is None

    def test_decide_grows_past_the_band_and_lands_at_target(self):
        policy = LoadFactorPolicy()
        eps = 15
        buckets = 10
        n = 2000  # beta = 13.3
        decision = policy.decide(n, buckets, eps)
        assert decision is not None and decision > buckets
        assert decision >= policy.target_buckets(n, eps)
        # After the grow the policy is quiescent.
        assert policy.decide(n, decision, eps) is None

    def test_decide_shrinks_geometrically_to_quiescence(self):
        policy = LoadFactorPolicy()
        eps = 15
        n, buckets = 30, 512  # beta = 0.0039
        steps = 0
        while True:
            decision = policy.decide(n, buckets, eps)
            if decision is None:
                break
            assert decision < buckets  # a shrink trigger never grows
            buckets = decision
            steps += 1
            assert steps < 16
        assert policy.beta(n, buckets, eps) >= policy.beta_low or buckets == policy.min_buckets

    def test_hysteresis_suppresses_marginal_changes(self):
        eps = 15
        n = int(0.24 * eps * 100)  # beta = 0.24 at 100 buckets: just below the band
        # The indicated shrink (to 50 buckets) falls inside a wide dead-zone...
        wide = LoadFactorPolicy(hysteresis=0.8)
        assert wide.decide(n, 100, eps) is None
        # ... while the default narrow dead-zone lets the same shrink through.
        assert LoadFactorPolicy().decide(n, 100, eps) == 50

    def test_min_buckets_floor(self):
        policy = LoadFactorPolicy(min_buckets=8)
        assert policy.decide(0, 8, 15) is None
        # An empty table steps geometrically down and stops at the floor.
        buckets = 64
        while (decision := policy.decide(0, buckets, 15)) is not None:
            assert decision == max(8, buckets // 2)
            buckets = decision
        assert buckets == 8

    def test_invalid_policies_are_rejected(self):
        with pytest.raises(ValueError):
            LoadFactorPolicy(beta_low=0.8, beta_high=0.5)
        with pytest.raises(ValueError):
            LoadFactorPolicy(target_beta=2.0)
        with pytest.raises(ValueError):
            LoadFactorPolicy(grow_factor=0.9)
        with pytest.raises(ValueError):
            LoadFactorPolicy(shrink_factor=1.5)
        with pytest.raises(ValueError):
            LoadFactorPolicy(min_buckets=0)
        with pytest.raises(ValueError):
            # Overshoot guard: 1.0 / 8 < 0.25 would thrash grow->shrink.
            LoadFactorPolicy(grow_factor=8.0)

    def test_deferred_policy_only_resizes_on_request(self):
        policy = LoadFactorPolicy(min_buckets=4).deferred()
        table = SlabHash(4, alloc_config=ALLOC, seed=9, policy=policy)
        keys = make_keys(800, seed=9)
        table.bulk_insert(keys, keys)
        assert table.num_buckets == 4  # nothing happened automatically
        results = table.maybe_resize()
        assert results and all(r.trigger == "policy" for r in results)
        assert table.num_buckets > 4
        assert policy.decide(len(table), table.num_buckets, table.config.elements_per_slab) is None

    def test_auto_policy_grows_and_shrinks_through_churn(self):
        policy = LoadFactorPolicy(min_buckets=4)
        table = SlabHash(4, alloc_config=ALLOC, seed=13, policy=policy)
        keys = make_keys(900, seed=13)
        for chunk in np.array_split(keys, 6):
            table.bulk_insert(chunk, chunk)
        assert table.resize_stats.grows >= 1
        grown = table.num_buckets
        assert grown > 4
        for chunk in np.array_split(keys[:850], 6):
            table.bulk_delete(chunk)
        assert table.resize_stats.shrinks >= 1
        assert table.num_buckets < grown
        eps = table.config.elements_per_slab
        assert policy.decide(len(table), table.num_buckets, eps) is None
        # Surviving contents are fully intact after all the migrations.
        assert np.array_equal(
            table.bulk_search(keys[850:]), keys[850:].astype(np.uint32)
        )
