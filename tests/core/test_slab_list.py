"""Tests for the warp-cooperative slab list operations (SEARCH/INSERT/REPLACE/DELETE...)."""

import numpy as np
import pytest

from repro.core import constants as C
from repro.core.config import SlabAllocConfig, SlabConfig
from repro.core.slab_alloc import SlabAlloc
from repro.core.slab_list import SlabListCollection
from repro.gpusim.device import Device
from repro.gpusim.scheduler import run_sequential
from repro.gpusim.warp import WARP_SIZE, Warp


def make_lists(num_lists=1, key_value=True, unique_keys=True):
    device = Device()
    alloc = SlabAlloc(device, SlabAllocConfig(2, 8, 64), seed=1)
    lists = SlabListCollection(
        device, alloc, num_lists, SlabConfig(key_value=key_value, unique_keys=unique_keys)
    )
    return device, alloc, lists


def lane_arrays(pairs, bucket=0):
    """Build 32-lane arrays for up to 32 (key, value) operations."""
    is_active = np.zeros(WARP_SIZE, dtype=bool)
    keys = np.full(WARP_SIZE, C.EMPTY_KEY, dtype=np.uint32)
    values = np.full(WARP_SIZE, C.EMPTY_VALUE, dtype=np.uint32)
    buckets = np.full(WARP_SIZE, bucket, dtype=np.int64)
    for lane, (key, value) in enumerate(pairs):
        is_active[lane] = True
        keys[lane] = key
        values[lane] = value
    return is_active, buckets, keys, values


def do_insert(lists, device, pairs, bucket=0, replace=True):
    warp = Warp(0, device.counters)
    is_active, buckets, keys, values = lane_arrays(pairs, bucket)
    op = lists.warp_replace if replace else lists.warp_insert
    run_sequential([op(warp, is_active, buckets, keys, values)])


def do_search(lists, device, query_keys, bucket=0):
    warp = Warp(1, device.counters)
    is_active, buckets, keys, _ = lane_arrays([(k, 0) for k in query_keys], bucket)
    out = np.full(WARP_SIZE, C.SEARCH_NOT_FOUND, dtype=np.uint32)
    run_sequential([lists.warp_search(warp, is_active, buckets, keys, out)])
    return out[: len(query_keys)]


class TestInsertAndSearch:
    def test_insert_then_search_single_element(self):
        device, _, lists = make_lists()
        do_insert(lists, device, [(42, 100)])
        assert do_search(lists, device, [42])[0] == 100

    def test_search_missing_returns_not_found(self):
        device, _, lists = make_lists()
        do_insert(lists, device, [(42, 100)])
        assert do_search(lists, device, [43])[0] == C.SEARCH_NOT_FOUND

    def test_search_on_empty_list(self):
        device, _, lists = make_lists()
        assert do_search(lists, device, [1, 2, 3]).tolist() == [C.SEARCH_NOT_FOUND] * 3

    def test_full_warp_of_inserts(self):
        device, _, lists = make_lists()
        pairs = [(k, k * 2) for k in range(1, 33)]
        do_insert(lists, device, pairs)
        found = do_search(lists, device, [k for k, _ in pairs])
        assert found.tolist() == [k * 2 for k, _ in pairs]

    def test_inserts_spill_into_allocated_slabs(self):
        device, alloc, lists = make_lists()
        pairs = [(k, k) for k in range(1, 41)]  # 40 pairs > 15 per slab
        do_insert(lists, device, pairs[:32])
        do_insert(lists, device, pairs[32:])
        assert alloc.allocated_units >= 2
        assert lists.slab_count(0) >= 3
        found = do_search(lists, device, [k for k, _ in pairs[:32]])
        assert found.tolist() == [k for k, _ in pairs[:32]]

    def test_base_slab_filled_before_allocation(self):
        device, alloc, lists = make_lists()
        do_insert(lists, device, [(k, k) for k in range(1, 16)])  # exactly 15
        assert alloc.allocated_units == 0
        assert lists.slab_count(0) == 1

    def test_items_stored_only_in_key_lanes(self):
        device, _, lists = make_lists()
        do_insert(lists, device, [(7, 70)])
        words = lists.base_slabs[0]
        key_lanes = {lane for lane in range(0, 30, 2) if words[lane] == 7}
        assert len(key_lanes) == 1
        assert words[C.ADDRESS_LANE] == C.EMPTY_POINTER

    def test_insert_counts_one_slab_read_and_one_cas_per_element_at_low_load(self):
        device, _, lists = make_lists()
        do_insert(lists, device, [(k, k) for k in range(1, 11)])
        assert device.counters.atomic64 == 10
        assert device.counters.coalesced_read_transactions >= 10

    def test_multiple_lists_are_independent(self):
        device, _, lists = make_lists(num_lists=4)
        do_insert(lists, device, [(5, 50)], bucket=0)
        do_insert(lists, device, [(5, 99)], bucket=3)
        assert do_search(lists, device, [5], bucket=0)[0] == 50
        assert do_search(lists, device, [5], bucket=3)[0] == 99
        assert do_search(lists, device, [5], bucket=1)[0] == C.SEARCH_NOT_FOUND


class TestReplaceSemantics:
    def test_replace_overwrites_existing_value(self):
        device, _, lists = make_lists()
        do_insert(lists, device, [(42, 1)])
        do_insert(lists, device, [(42, 2)])
        assert do_search(lists, device, [42])[0] == 2
        assert len(lists.live_items(0)) == 1

    def test_replace_does_not_duplicate_across_warps(self):
        device, _, lists = make_lists()
        for value in (1, 2, 3):
            do_insert(lists, device, [(7, value)])
        assert len(lists.live_items(0)) == 1
        assert do_search(lists, device, [7])[0] == 3

    def test_insert_mode_allows_duplicates(self):
        device, _, lists = make_lists(unique_keys=False)
        do_insert(lists, device, [(7, 1)], replace=False)
        do_insert(lists, device, [(7, 2)], replace=False)
        assert len(lists.live_items(0)) == 2


class TestDelete:
    def test_delete_removes_element(self):
        device, _, lists = make_lists()
        do_insert(lists, device, [(10, 100), (11, 110)])
        warp = Warp(2, device.counters)
        is_active, buckets, keys, _ = lane_arrays([(10, 0)])
        out = np.zeros(WARP_SIZE, dtype=np.int64)
        run_sequential([lists.warp_delete(warp, is_active, buckets, keys, out)])
        assert out[0] == 1
        assert do_search(lists, device, [10])[0] == C.SEARCH_NOT_FOUND
        assert do_search(lists, device, [11])[0] == 110

    def test_delete_missing_key_reports_zero(self):
        device, _, lists = make_lists()
        do_insert(lists, device, [(10, 100)])
        warp = Warp(2, device.counters)
        is_active, buckets, keys, _ = lane_arrays([(99, 0)])
        out = np.zeros(WARP_SIZE, dtype=np.int64)
        run_sequential([lists.warp_delete(warp, is_active, buckets, keys, out)])
        assert out[0] == 0

    def test_unique_mode_uses_tombstone_not_empty(self):
        device, _, lists = make_lists(unique_keys=True)
        do_insert(lists, device, [(10, 100)])
        warp = Warp(2, device.counters)
        is_active, buckets, keys, _ = lane_arrays([(10, 0)])
        run_sequential([lists.warp_delete(warp, is_active, buckets, keys)])
        assert C.DELETED_KEY in lists.base_slabs[0]

    def test_duplicate_mode_recycles_slot_as_empty_pair(self):
        device, _, lists = make_lists(unique_keys=False)
        do_insert(lists, device, [(10, 100)], replace=False)
        warp = Warp(2, device.counters)
        is_active, buckets, keys, _ = lane_arrays([(10, 0)])
        run_sequential([lists.warp_delete(warp, is_active, buckets, keys)])
        assert C.DELETED_KEY not in lists.base_slabs[0]
        # The slot must be reusable: a later INSERT's CAS expects EMPTY_PAIR.
        do_insert(lists, device, [(11, 110)], replace=False)
        assert do_search(lists, device, [11])[0] == 110

    def test_delete_all_removes_every_duplicate(self):
        device, _, lists = make_lists(unique_keys=False)
        for value in range(5):
            do_insert(lists, device, [(7, value)], replace=False)
        warp = Warp(2, device.counters)
        is_active, buckets, keys, _ = lane_arrays([(7, 0)])
        out = np.zeros(WARP_SIZE, dtype=np.int64)
        run_sequential([lists.warp_delete_all(warp, is_active, buckets, keys, out)])
        assert out[0] == 5
        assert lists.live_items(0) == []

    def test_delete_then_reinsert_same_key(self):
        device, _, lists = make_lists()
        do_insert(lists, device, [(10, 1)])
        warp = Warp(2, device.counters)
        is_active, buckets, keys, _ = lane_arrays([(10, 0)])
        run_sequential([lists.warp_delete(warp, is_active, buckets, keys)])
        do_insert(lists, device, [(10, 2)])
        assert do_search(lists, device, [10])[0] == 2
        assert len(lists.live_items(0)) == 1


class TestSearchAll:
    def test_search_all_returns_every_copy(self):
        device, _, lists = make_lists(unique_keys=False)
        for value in (1, 2, 3):
            do_insert(lists, device, [(7, value)], replace=False)
        warp = Warp(3, device.counters)
        is_active, buckets, keys, _ = lane_arrays([(7, 0)])
        out = [[] for _ in range(WARP_SIZE)]
        run_sequential([lists.warp_search_all(warp, is_active, buckets, keys, out)])
        assert sorted(out[0]) == [1, 2, 3]

    def test_search_all_missing_key_returns_empty(self):
        device, _, lists = make_lists(unique_keys=False)
        do_insert(lists, device, [(7, 1)], replace=False)
        warp = Warp(3, device.counters)
        is_active, buckets, keys, _ = lane_arrays([(8, 0)])
        out = [[] for _ in range(WARP_SIZE)]
        run_sequential([lists.warp_search_all(warp, is_active, buckets, keys, out)])
        assert out[0] == []

    def test_search_all_spans_multiple_slabs(self):
        device, _, lists = make_lists(unique_keys=False)
        for chunk in range(3):
            do_insert(
                lists, device, [(7, chunk * 20 + i) for i in range(20)], replace=False
            )
        warp = Warp(3, device.counters)
        is_active, buckets, keys, _ = lane_arrays([(7, 0)])
        out = [[] for _ in range(WARP_SIZE)]
        run_sequential([lists.warp_search_all(warp, is_active, buckets, keys, out)])
        assert len(out[0]) == 60


class TestKeyOnlyMode:
    def test_insert_and_search_key_only(self):
        device, _, lists = make_lists(key_value=False)
        warp = Warp(0, device.counters)
        is_active = np.zeros(WARP_SIZE, dtype=bool)
        keys = np.full(WARP_SIZE, C.EMPTY_KEY, dtype=np.uint32)
        buckets = np.zeros(WARP_SIZE, dtype=np.int64)
        for lane, key in enumerate(range(1, 20)):
            is_active[lane] = True
            keys[lane] = key
        run_sequential([lists.warp_replace(warp, is_active, buckets, keys, None)])
        found = do_search(lists, device, list(range(1, 20)))
        assert found.tolist() == list(range(1, 20))
        assert do_search(lists, device, [999])[0] == C.SEARCH_NOT_FOUND

    def test_key_only_mode_packs_30_keys_per_slab(self):
        device, alloc, lists = make_lists(key_value=False)
        warp = Warp(0, device.counters)
        is_active = np.ones(WARP_SIZE, dtype=bool)
        is_active[30:] = False
        keys = np.arange(1, 33, dtype=np.uint32)
        buckets = np.zeros(WARP_SIZE, dtype=np.int64)
        run_sequential([lists.warp_replace(warp, is_active, buckets, keys, None)])
        assert alloc.allocated_units == 0  # 30 keys fit exactly in the base slab
        assert len(lists.live_items(0)) == 30

    def test_key_value_mode_requires_values(self):
        device, _, lists = make_lists(key_value=True)
        warp = Warp(0, device.counters)
        is_active, buckets, keys, _ = lane_arrays([(1, 1)])
        with pytest.raises(ValueError):
            next(lists.warp_replace(warp, is_active, buckets, keys, None))


class TestIntrospection:
    def test_chain_addresses_and_total_slabs(self):
        device, _, lists = make_lists()
        do_insert(lists, device, [(k, k) for k in range(1, 33)])
        do_insert(lists, device, [(k, k) for k in range(33, 50)])
        chain = lists.chain_addresses(0)
        assert len(chain) == lists.slab_count(0) - 1
        assert lists.total_slabs() == 1 + len(chain)

    def test_live_item_count_and_used_bytes(self):
        device, _, lists = make_lists(num_lists=2)
        do_insert(lists, device, [(k, k) for k in range(1, 11)], bucket=0)
        do_insert(lists, device, [(k, k) for k in range(11, 16)], bucket=1)
        assert lists.live_item_count() == 15
        assert lists.used_bytes() == lists.total_slabs() * 128

    def test_invalid_num_lists(self):
        device = Device()
        alloc = SlabAlloc(device, SlabAllocConfig(1, 2, 64))
        with pytest.raises(ValueError):
            SlabListCollection(device, alloc, 0)
