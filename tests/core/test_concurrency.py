"""Concurrency tests: interleaved warp schedules exercising the lock-free paths.

The warp procedures yield at every global-memory access, so the randomized
scheduler genuinely interleaves CAS attempts, slab-append races and concurrent
delete/search traversals.  These tests sweep scheduler seeds and assert that
the final table state (and every observed result) is consistent with *some*
sequential order of the submitted operations.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import constants as C
from repro.core.config import SlabAllocConfig
from repro.core.slab_hash import SlabHash
from repro.gpusim.scheduler import WarpScheduler, run_sequential
from repro.gpusim.warp import WARP_SIZE, Warp

from tests.conftest import make_keys

CFG = SlabAllocConfig(num_super_blocks=2, num_memory_blocks=8, units_per_block=64)


def new_table(buckets=2, **kwargs):
    kwargs.setdefault("alloc_config", CFG)
    kwargs.setdefault("seed", 11)
    return SlabHash(buckets, **kwargs)


class TestConcurrentInsertions:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_concurrent_inserts_of_distinct_keys_all_land(self, seed):
        table = new_table(buckets=1)  # a single bucket maximizes contention
        keys = make_keys(96, seed=seed)
        ops = np.full(len(keys), C.OP_INSERT)
        table.concurrent_batch(ops, keys, keys, scheduler=WarpScheduler(seed=seed))
        stored = dict(table.items())
        assert sorted(stored) == sorted(int(k) for k in keys)
        assert len(table) == len(keys)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_concurrent_replaces_of_same_key_keep_one_copy(self, seed):
        table = new_table(buckets=1)
        keys = np.full(64, 12345, dtype=np.uint32)
        values = np.arange(64, dtype=np.uint32)
        ops = np.full(64, C.OP_INSERT)
        table.concurrent_batch(ops, keys, values, scheduler=WarpScheduler(seed=seed))
        assert len(table) == 1
        # The surviving value must be one of the submitted values.
        assert table.search(12345) in set(values.tolist())

    def test_append_race_releases_losing_slab(self):
        """Two warps racing to append a slab to the same full bucket: one wins,
        the loser must deallocate its freshly allocated slab."""
        table = new_table(buckets=1)
        base = make_keys(15, seed=7)  # fill the base slab exactly
        table.bulk_build(base, base)

        extra = make_keys(40, seed=8) + np.uint32(2**29)
        programs = []
        for half in (extra[:20], extra[20:]):
            warp = table._next_warp()
            is_active = np.zeros(WARP_SIZE, dtype=bool)
            is_active[: len(half)] = True
            lane_keys = np.full(WARP_SIZE, C.EMPTY_KEY, dtype=np.uint32)
            lane_keys[: len(half)] = half
            lane_buckets = np.zeros(WARP_SIZE, dtype=np.int64)
            programs.append(
                table.lists.warp_replace(warp, is_active, lane_buckets, lane_keys, lane_keys)
            )
        WarpScheduler(seed=5).run(programs)

        stored = {k for k, _ in table.items()}
        assert set(int(k) for k in extra) <= stored
        # Allocator bookkeeping survived any lost races: every allocated slab
        # is reachable from the bucket chain.
        assert table.alloc.allocated_units == len(table.lists.chain_addresses(0))

    def test_cas_failures_occur_under_contention(self):
        table = new_table(buckets=1)
        keys = make_keys(64, seed=3)
        ops = np.full(len(keys), C.OP_INSERT)
        table.concurrent_batch(ops, keys, keys, scheduler=WarpScheduler(seed=1))
        # With every operation hammering one bucket, at least some CAS retries
        # or slab-append races are expected across seeds; assert the machinery
        # is exercised rather than silent.
        counters = table.device.counters
        assert counters.atomic64 >= len(keys)


class TestMixedConcurrentBatches:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_search_results_are_consistent_with_some_serialization(self, seed):
        table = new_table(buckets=2)
        base = make_keys(100, seed=20)
        table.bulk_build(base, base)

        new = make_keys(50, seed=21) + np.uint32(2**29)
        untouched = base[50:]
        ops = np.concatenate(
            [
                np.full(50, C.OP_INSERT),
                np.full(50, C.OP_DELETE),
                np.full(50, C.OP_SEARCH),
            ]
        )
        keys = np.concatenate([new, base[:50], untouched[:50]]).astype(np.uint32)
        values = keys.copy()
        rng = np.random.default_rng(seed)
        perm = rng.permutation(len(ops))
        results = table.concurrent_batch(
            ops[perm], keys[perm], values[perm], scheduler=WarpScheduler(seed=seed)
        )

        # Searches target keys that no concurrent operation touches, so they
        # must all succeed regardless of the interleaving.
        search_mask = ops[perm] == C.OP_SEARCH
        assert np.array_equal(results[search_mask], keys[perm][search_mask])

        # Final state: inserted keys present, deleted keys absent, rest intact.
        stored = {k for k, _ in table.items()}
        assert set(int(k) for k in new) <= stored
        assert not set(int(k) for k in base[:50]) & stored
        assert set(int(k) for k in untouched) <= stored

    def test_wave_limited_execution_matches_unlimited(self):
        base = make_keys(60, seed=30)
        workload_keys = make_keys(60, seed=31) + np.uint32(2**29)
        ops = np.full(60, C.OP_INSERT)

        unlimited = new_table(buckets=2)
        unlimited.bulk_build(base, base)
        unlimited.concurrent_batch(ops, workload_keys, workload_keys,
                                   scheduler=WarpScheduler(seed=2))

        waved = new_table(buckets=2)
        waved.bulk_build(base, base)
        waved.concurrent_batch(ops, workload_keys, workload_keys,
                               scheduler=WarpScheduler(seed=2), wave_size=1)

        assert dict(unlimited.items()) == dict(waved.items())

    def test_sequential_schedule_is_a_valid_special_case(self):
        table = new_table(buckets=2)
        base = make_keys(64, seed=40)
        table.bulk_build(base, base)
        ops = np.full(32, C.OP_SEARCH)
        results = table.concurrent_batch(ops, base[:32], base[:32], scheduler=None)
        assert np.array_equal(results, base[:32])

    def test_concurrent_delete_and_search_of_same_key_is_atomic(self):
        """A search racing a delete of the same key either finds the full pair
        or nothing — never a torn value."""
        for seed in range(5):
            table = new_table(buckets=1)
            table.insert(777, 888)
            ops = np.array([C.OP_DELETE, C.OP_SEARCH])
            keys = np.array([777, 777], dtype=np.uint32)
            values = np.array([0, 0], dtype=np.uint32)
            results = table.concurrent_batch(
                ops, keys, values, scheduler=WarpScheduler(seed=seed)
            )
            assert results[1] in (888, C.SEARCH_NOT_FOUND)
            assert table.search(777) is None


class TestSchedulePropertyBased:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_property_final_state_independent_of_schedule_for_disjoint_keys(self, seed):
        """Operations on disjoint keys commute: any interleaving must produce
        the same final table contents."""
        table = new_table(buckets=1)
        keys = make_keys(48, seed=123)
        ops = np.full(len(keys), C.OP_INSERT)
        table.concurrent_batch(ops, keys, keys, scheduler=WarpScheduler(seed=seed))
        assert sorted(k for k, _ in table.items()) == sorted(int(k) for k in keys)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_property_interleaved_equals_sequential_reference(self, seed):
        """For a mixed batch, the interleaved outcome matches the Python-dict
        reference executed in any order (here: the operations are disjoint, so
        order is irrelevant)."""
        base = make_keys(40, seed=50)
        inserts = make_keys(20, seed=51) + np.uint32(2**29)
        deletes = base[:20]
        ops = np.concatenate([np.full(20, C.OP_INSERT), np.full(20, C.OP_DELETE)])
        keys = np.concatenate([inserts, deletes]).astype(np.uint32)

        table = new_table(buckets=2)
        table.bulk_build(base, base)
        table.concurrent_batch(ops, keys, keys, scheduler=WarpScheduler(seed=seed))

        reference = {int(k): int(k) for k in base}
        for key in deletes:
            reference.pop(int(key), None)
        for key in inserts:
            reference[int(key)] = int(key)
        assert dict(table.items()) == reference
