"""Tests for the standalone SlabList container."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import constants as C
from repro.core.config import SlabAllocConfig
from repro.core.slab_list_single import SlabList
from repro.gpusim.device import Device

CFG = SlabAllocConfig(num_super_blocks=2, num_memory_blocks=8, units_per_block=64)


def new_list(**kwargs):
    kwargs.setdefault("alloc_config", CFG)
    kwargs.setdefault("seed", 5)
    return SlabList(**kwargs)


class TestBasicContainerBehaviour:
    def test_insert_search_delete(self):
        slab_list = new_list()
        slab_list.insert(10, 100)
        assert slab_list.search(10) == 100
        assert 10 in slab_list
        assert slab_list.delete(10) is True
        assert slab_list.search(10) is None
        assert 10 not in slab_list

    def test_len_and_items(self):
        slab_list = new_list()
        slab_list.extend([1, 2, 3], [10, 20, 30])
        assert len(slab_list) == 3
        assert dict(slab_list.items()) == {1: 10, 2: 20, 3: 30}
        assert sorted(slab_list) == [1, 2, 3]

    def test_replace_semantics_in_unique_mode(self):
        slab_list = new_list()
        slab_list.insert(7, 1)
        slab_list.insert(7, 2)
        assert slab_list.search(7) == 2
        assert len(slab_list) == 1

    def test_duplicates_mode_and_search_all(self):
        slab_list = new_list(unique_keys=False)
        for value in (1, 2, 3):
            slab_list.insert(7, value)
        assert sorted(slab_list.search_all(7)) == [1, 2, 3]
        assert slab_list.delete_all(7) == 3
        assert len(slab_list) == 0

    def test_key_only_mode(self):
        slab_list = new_list(key_value=False)
        slab_list.extend(range(1, 50))
        assert slab_list.search(13) == 13
        assert slab_list.search(99) is None
        assert len(slab_list) == 49

    def test_key_value_mode_requires_values(self):
        slab_list = new_list()
        with pytest.raises(ValueError):
            slab_list.extend([1, 2, 3])

    def test_reserved_keys_rejected(self):
        slab_list = new_list()
        with pytest.raises(ValueError):
            slab_list.insert(C.EMPTY_KEY, 1)

    def test_contains_rejects_reserved_values_gracefully(self):
        slab_list = new_list()
        assert C.EMPTY_KEY not in slab_list


class TestGrowthAndCompaction:
    def test_list_grows_beyond_one_slab(self):
        slab_list = new_list()
        keys = list(range(1, 100))
        slab_list.extend(keys, keys)
        assert slab_list.slab_count() >= 7  # 99 pairs / 15 per slab
        assert np.array_equal(slab_list.search_many(keys), np.array(keys, dtype=np.uint32))

    def test_flush_compacts_after_deletions(self):
        slab_list = new_list()
        keys = list(range(1, 100))
        slab_list.extend(keys, keys)
        for key in keys[::2]:
            slab_list.delete(key)
        before = slab_list.slab_count()
        result = slab_list.flush()
        assert result.slabs_released > 0
        assert slab_list.slab_count() < before
        survivors = keys[1::2]
        assert np.array_equal(
            slab_list.search_many(survivors), np.array(survivors, dtype=np.uint32)
        )

    def test_memory_utilization_bounded(self):
        slab_list = new_list()
        keys = list(range(1, 200))
        slab_list.extend(keys, keys)
        assert 0 < slab_list.memory_utilization() <= slab_list.config.max_memory_utilization + 1e-9

    def test_search_many_missing_marked(self):
        slab_list = new_list()
        slab_list.extend([1, 2], [1, 2])
        results = slab_list.search_many([1, 5, 2, 9])
        assert results[0] == 1 and results[2] == 2
        assert results[1] == C.SEARCH_NOT_FOUND and results[3] == C.SEARCH_NOT_FOUND

    def test_shares_device_and_allocator_with_caller(self):
        device = Device()
        slab_list = SlabList(device=device, alloc_config=CFG)
        slab_list.extend(range(1, 40), range(1, 40))
        assert device.counters.allocations == slab_list.alloc.allocated_units
        assert device.counters.allocations >= 2


class TestPropertyBased:
    @settings(max_examples=30, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["insert", "delete", "search"]),
                st.integers(min_value=1, max_value=30),
                st.integers(min_value=0, max_value=1000),
            ),
            min_size=1,
            max_size=60,
        )
    )
    def test_property_matches_dict(self, ops):
        slab_list = new_list()
        reference = {}
        for op, key, value in ops:
            if op == "insert":
                slab_list.insert(key, value)
                reference[key] = value
            elif op == "delete":
                assert slab_list.delete(key) == (key in reference)
                reference.pop(key, None)
            else:
                assert slab_list.search(key) == reference.get(key)
        assert dict(slab_list.items()) == reference
