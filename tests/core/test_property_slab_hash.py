"""Property-based tests: the slab hash behaves like a Python dict / multiset.

These are the core correctness properties of the data structure, checked with
hypothesis-generated operation sequences against a reference model.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import constants as C
from repro.core.config import SlabAllocConfig
from repro.core.slab_hash import SlabHash

CFG = SlabAllocConfig(num_super_blocks=2, num_memory_blocks=8, units_per_block=64)

# Small key/value domains maximize collisions, duplicate handling and chains.
keys_strategy = st.integers(min_value=1, max_value=40)
values_strategy = st.integers(min_value=0, max_value=1_000_000)
ops_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), keys_strategy, values_strategy),
        st.tuples(st.just("delete"), keys_strategy, st.just(0)),
        st.tuples(st.just("search"), keys_strategy, st.just(0)),
    ),
    min_size=1,
    max_size=80,
)


class TestDictEquivalenceUniqueKeys:
    @settings(max_examples=40, deadline=None)
    @given(ops=ops_strategy, buckets=st.sampled_from([1, 2, 5]))
    def test_property_matches_python_dict(self, ops, buckets):
        table = SlabHash(buckets, alloc_config=CFG, seed=13)
        reference = {}
        for op, key, value in ops:
            if op == "insert":
                table.insert(key, value)
                reference[key] = value
            elif op == "delete":
                assert table.delete(key) == (key in reference)
                reference.pop(key, None)
            else:
                assert table.search(key) == reference.get(key)
        assert dict(table.items()) == reference
        assert len(table) == len(reference)

    @settings(max_examples=25, deadline=None)
    @given(ops=ops_strategy)
    def test_property_flush_preserves_dict_semantics(self, ops):
        table = SlabHash(2, alloc_config=CFG, seed=14)
        reference = {}
        for op, key, value in ops:
            if op == "insert":
                table.insert(key, value)
                reference[key] = value
            elif op == "delete":
                table.delete(key)
                reference.pop(key, None)
        table.flush()
        assert dict(table.items()) == reference
        for key, value in reference.items():
            assert table.search(key) == value

    @settings(max_examples=25, deadline=None)
    @given(
        keys=st.lists(st.integers(min_value=1, max_value=10_000), min_size=1, max_size=120, unique=True),
        buckets=st.sampled_from([1, 3, 8]),
    )
    def test_property_bulk_build_stores_every_key(self, keys, buckets):
        table = SlabHash(buckets, alloc_config=CFG, seed=15)
        keys = np.array(keys, dtype=np.uint32)
        values = (keys * 3 + 1).astype(np.uint32)
        table.bulk_build(keys, values)
        assert np.array_equal(table.bulk_search(keys), values)
        assert len(table) == len(keys)

    @settings(max_examples=25, deadline=None)
    @given(
        keys=st.lists(st.integers(min_value=1, max_value=10_000), min_size=2, max_size=100, unique=True),
    )
    def test_property_deleting_half_keeps_other_half(self, keys):
        table = SlabHash(4, alloc_config=CFG, seed=16)
        keys = np.array(keys, dtype=np.uint32)
        table.bulk_build(keys, keys)
        half = len(keys) // 2
        table.bulk_delete(keys[:half])
        assert np.all(table.bulk_search(keys[:half]) == C.SEARCH_NOT_FOUND)
        assert np.array_equal(table.bulk_search(keys[half:]), keys[half:])


class TestMultisetEquivalenceDuplicates:
    @settings(max_examples=30, deadline=None)
    @given(
        ops=st.lists(
            st.one_of(
                st.tuples(st.just("insert"), keys_strategy, values_strategy),
                st.tuples(st.just("delete_all"), keys_strategy, st.just(0)),
            ),
            min_size=1,
            max_size=60,
        )
    )
    def test_property_matches_python_multiset(self, ops):
        table = SlabHash(2, alloc_config=CFG, unique_keys=False, seed=17)
        reference: dict[int, list[int]] = {}
        for op, key, value in ops:
            if op == "insert":
                table.insert(key, value)
                reference.setdefault(key, []).append(value)
            else:
                removed = table.delete_all(key)
                assert removed == len(reference.pop(key, []))
        for key, values in reference.items():
            assert sorted(table.search_all(key)) == sorted(values)
        assert len(table) == sum(len(v) for v in reference.values())

    @settings(max_examples=20, deadline=None)
    @given(
        key=keys_strategy,
        count=st.integers(min_value=1, max_value=40),
    )
    def test_property_searchall_counts_duplicates(self, key, count):
        table = SlabHash(1, alloc_config=CFG, unique_keys=False, seed=18)
        for i in range(count):
            table.insert(key, i)
        assert sorted(table.search_all(key)) == list(range(count))


class TestStructuralInvariants:
    @settings(max_examples=25, deadline=None)
    @given(
        keys=st.lists(st.integers(min_value=1, max_value=100_000), min_size=1, max_size=150, unique=True),
        buckets=st.sampled_from([1, 4, 16]),
    )
    def test_property_memory_accounting_invariants(self, keys, buckets):
        table = SlabHash(buckets, alloc_config=CFG, seed=19)
        keys = np.array(keys, dtype=np.uint32)
        table.bulk_build(keys, keys)
        # Every allocated slab is reachable from exactly one bucket chain.
        chained = sum(len(table.lists.chain_addresses(b)) for b in range(buckets))
        assert chained == table.alloc.allocated_units
        # Utilization never exceeds the theoretical ceiling.
        assert table.memory_utilization() <= table.config.max_memory_utilization + 1e-9
        # Slab accounting is consistent.
        assert table.total_slabs() == buckets + table.alloc.allocated_units

    @settings(max_examples=25, deadline=None)
    @given(keys=st.lists(st.integers(min_value=1, max_value=10_000), min_size=1, max_size=80, unique=True))
    def test_property_every_key_hashes_to_its_own_bucket_chain(self, keys):
        table = SlabHash(8, alloc_config=CFG, seed=20)
        keys = np.array(keys, dtype=np.uint32)
        table.bulk_build(keys, keys)
        for key in keys:
            bucket = table.hash_fn(int(key))
            assert int(key) in {k for k, _ in table.lists.live_items(bucket)}
