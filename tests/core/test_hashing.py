"""Tests for the universal hash family and the allocator's pair-mixing hash."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import constants as C
from repro.core.hashing import PRIME, UniversalHash, hash_pair, is_user_key


class TestUniversalHash:
    def test_range_respected(self):
        hash_fn = UniversalHash(97, seed=0)
        for key in range(1000):
            assert 0 <= hash_fn(key) < 97

    def test_deterministic_for_fixed_seed(self):
        a = UniversalHash(64, seed=5)
        b = UniversalHash(64, seed=5)
        assert [a(k) for k in range(100)] == [b(k) for k in range(100)]

    def test_different_seeds_give_different_functions(self):
        a = UniversalHash(1 << 20, seed=1)
        b = UniversalHash(1 << 20, seed=2)
        assert [a(k) for k in range(50)] != [b(k) for k in range(50)]

    def test_hash_array_matches_scalar(self):
        hash_fn = UniversalHash(1000, seed=3)
        keys = np.arange(1, 2000, 7, dtype=np.uint32)
        vectorized = hash_fn.hash_array(keys)
        assert [hash_fn(int(k)) for k in keys] == list(vectorized)

    def test_distribution_is_roughly_uniform(self):
        hash_fn = UniversalHash(16, seed=11)
        keys = np.random.default_rng(0).integers(1, 2**30, size=16_000, dtype=np.uint64)
        buckets = hash_fn.hash_array(keys)
        counts = np.bincount(buckets, minlength=16)
        # Each bucket expects 1000 keys; allow generous slack.
        assert counts.min() > 700
        assert counts.max() < 1300

    def test_rebucket_keeps_coefficients(self):
        hash_fn = UniversalHash(100, seed=1)
        rebucketed = hash_fn.rebucket(10)
        assert rebucketed.a == hash_fn.a
        assert rebucketed.b == hash_fn.b
        assert rebucketed.num_buckets == 10

    def test_invalid_bucket_count(self):
        with pytest.raises(ValueError):
            UniversalHash(0)

    def test_prime_spans_the_key_universe(self):
        assert PRIME > 2**31
        assert PRIME < 2**32

    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=0, max_value=C.MAX_USER_KEY - 1))
    def test_property_scalar_and_vector_agree(self, key):
        hash_fn = UniversalHash(513, seed=9)
        assert hash_fn(key) == int(hash_fn.hash_array(np.array([key]))[0])


class TestHashPair:
    def test_range(self):
        for x in range(50):
            for y in range(5):
                assert 0 <= hash_pair(x, y, 32) < 32

    def test_deterministic(self):
        assert hash_pair(10, 3, 100, seed=7) == hash_pair(10, 3, 100, seed=7)

    def test_attempt_changes_result_for_most_warps(self):
        changed = sum(
            1 for warp in range(100) if hash_pair(warp, 0, 256) != hash_pair(warp, 1, 256)
        )
        assert changed > 80

    def test_invalid_modulus(self):
        with pytest.raises(ValueError):
            hash_pair(1, 2, 0)

    def test_spreads_over_blocks(self):
        values = {hash_pair(w, 0, 64) for w in range(512)}
        assert len(values) > 40


class TestIsUserKey:
    def test_reserved_values_rejected(self):
        assert not is_user_key(C.EMPTY_KEY)
        assert not is_user_key(C.DELETED_KEY)
        assert not is_user_key(C.MAX_USER_KEY)

    def test_normal_keys_accepted(self):
        assert is_user_key(0)
        assert is_user_key(123456)
        assert is_user_key(C.MAX_USER_KEY - 1)

    def test_negative_rejected(self):
        assert not is_user_key(-1)
