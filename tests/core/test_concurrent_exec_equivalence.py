"""Equivalence suite for the concurrent fast path: vectorized vs reference.

An *unscheduled* ``concurrent_batch`` (``scheduler=None``) drains one warp
program per (chunk, phase) sequentially — a deterministic schedule — so the
vectorized backend resolves it with the phased replay in
:meth:`repro.core.bulk_exec.BulkExecutor.concurrent_batch` and promises *bit
identical* behaviour to the reference generators: same result arrays, same
final table state (every slab word, chain link, allocator bookkeeping, warp
ids) and the same device counters event for event.  These tests drive paired
tables through mixed insert/delete/search batches sweeping the paper's Gamma
distributions, all four (key_value x unique_keys) modes, both allocator
variants, warp-boundary batch sizes, conflicting same-key operations,
allocator growth/exhaustion, the sharded engine, and the documented
fallbacks (explicit schedulers, non-canonical layouts).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import constants as C
from repro.core.config import SlabAllocConfig
from repro.core.slab_alloc import SlabAlloc
from repro.core.slab_hash import SlabHash
from repro.engine.sharded import ShardedSlabHash
from repro.gpusim.device import Device
from repro.gpusim.errors import AllocationError
from repro.gpusim.scheduler import WarpScheduler
from repro.workloads.distributions import PAPER_DISTRIBUTIONS, build_concurrent_workload
from repro.workloads.generators import unique_random_keys, values_for_keys

SMALL_ALLOC = SlabAllocConfig(num_super_blocks=2, num_memory_blocks=4, units_per_block=64)


# --------------------------------------------------------------------------- #
# Comparison helpers
# --------------------------------------------------------------------------- #


def table_pair(**kwargs):
    reference = SlabHash(backend="reference", **kwargs)
    vectorized = SlabHash(backend="vectorized", **kwargs)
    return reference, vectorized


def assert_same_state(reference: SlabHash, vectorized: SlabHash) -> None:
    """Full structural equality: every slab word, chain link and counter."""
    assert np.array_equal(reference.lists.base_slabs, vectorized.lists.base_slabs)
    for bucket in range(reference.num_buckets):
        chain_r = reference.lists.chain_addresses(bucket)
        chain_v = vectorized.lists.chain_addresses(bucket)
        assert chain_r == chain_v, f"chain addresses differ in bucket {bucket}"
        for address in chain_r:
            store_r, row_r = reference.alloc.slab_view(address)
            store_v, row_v = vectorized.alloc.slab_view(address)
            assert np.array_equal(store_r[row_r], store_v[row_v]), (
                f"slab 0x{address:08X} contents differ"
            )
    assert reference.alloc.allocated_units == vectorized.alloc.allocated_units
    assert reference.alloc.num_super_blocks == vectorized.alloc.num_super_blocks
    assert reference._warp_counter == vectorized._warp_counter
    assert reference.device.counters.as_dict() == vectorized.device.counters.as_dict()


def run_concurrent_both(reference, vectorized, op_codes, keys, values=None):
    """Run one mixed batch on both backends, asserting results and state."""
    if not reference.config.key_value:
        values = None
    out_r = reference.concurrent_batch(op_codes, keys, values)
    out_v = vectorized.concurrent_batch(op_codes, keys, values)
    assert np.array_equal(out_r, out_v), "concurrent_batch results differ"
    assert_same_state(reference, vectorized)
    return out_v


def build_both(reference, vectorized, keys):
    values = values_for_keys(keys) if reference.config.key_value else None
    reference.bulk_build(keys, values)
    vectorized.bulk_build(keys, values)


# --------------------------------------------------------------------------- #
# Mode, distribution and shape sweeps
# --------------------------------------------------------------------------- #


class TestModeSweep:
    @pytest.mark.parametrize("key_value", [True, False])
    @pytest.mark.parametrize("unique_keys", [True, False])
    @pytest.mark.parametrize("light_alloc", [False, True])
    def test_modes_with_mixed_batches(self, key_value, unique_keys, light_alloc):
        reference, vectorized = table_pair(
            num_buckets=5,
            key_value=key_value,
            unique_keys=unique_keys,
            light_alloc=light_alloc,
            alloc_config=SMALL_ALLOC,
            seed=11,
        )
        keys = unique_random_keys(400, seed=11)
        build_both(reference, vectorized, keys)
        for step in range(3):  # repeated batches: later ones start from mutated state
            workload = build_concurrent_workload(
                PAPER_DISTRIBUTIONS[1], 700, keys, seed=13 + step
            )
            run_concurrent_both(
                reference, vectorized, workload.op_codes, workload.keys, workload.values
            )

    @pytest.mark.smoke
    @pytest.mark.parametrize(
        "distribution", PAPER_DISTRIBUTIONS, ids=lambda d: d.describe()
    )
    def test_paper_distributions(self, distribution):
        reference, vectorized = table_pair(num_buckets=6, alloc_config=SMALL_ALLOC, seed=17)
        keys = unique_random_keys(500, seed=17)
        build_both(reference, vectorized, keys)
        workload = build_concurrent_workload(distribution, 1500, keys, seed=19)
        run_concurrent_both(
            reference, vectorized, workload.op_codes, workload.keys, workload.values
        )

    @pytest.mark.parametrize("count", [0, 1, 31, 32, 33, 64, 100])
    def test_warp_boundary_batch_sizes(self, count):
        reference, vectorized = table_pair(num_buckets=3, alloc_config=SMALL_ALLOC, seed=23)
        init = np.arange(1, 40, dtype=np.uint32)
        build_both(reference, vectorized, init)
        rng = np.random.default_rng(count)
        op_codes = rng.integers(1, 4, size=count).astype(np.int64)
        keys = rng.integers(1, 80, size=count).astype(np.uint32)
        values = rng.integers(0, 2**31, size=count).astype(np.uint32)
        out = run_concurrent_both(reference, vectorized, op_codes, keys, values)
        assert out.shape == (count,)


class TestSemanticsEdges:
    def test_conflicting_operations_on_same_keys(self):
        """Insert/delete/search the same small key set repeatedly in one batch."""
        for unique_keys in (True, False):
            for key_value in (True, False):
                reference, vectorized = table_pair(
                    num_buckets=3,
                    key_value=key_value,
                    unique_keys=unique_keys,
                    alloc_config=SMALL_ALLOC,
                    seed=29,
                )
                init = np.arange(1, 120, dtype=np.uint32)
                build_both(reference, vectorized, init)
                rng = np.random.default_rng(31)
                op_codes = rng.integers(1, 4, 900).astype(np.int64)
                keys = rng.integers(1, 60, 900).astype(np.uint32)
                values = rng.integers(0, 2**30, 900).astype(np.uint32)
                run_concurrent_both(reference, vectorized, op_codes, keys, values)

    def test_search_rank_relative_to_delete(self):
        """A search sees its key until the deletion's serial rank, then misses."""
        reference, vectorized = table_pair(num_buckets=2, alloc_config=SMALL_ALLOC, seed=3)
        init = np.arange(1, 200, dtype=np.uint32)
        build_both(reference, vectorized, init)
        # warp 0 deletes key 50; warp 1 searches it (runs after -> miss).
        # warp 2 searches key 60; warp 3 deletes it (search runs first -> hit).
        op_codes = np.concatenate(
            [
                np.full(32, C.OP_DELETE),
                np.full(32, C.OP_SEARCH),
                np.full(32, C.OP_SEARCH),
                np.full(32, C.OP_DELETE),
            ]
        ).astype(np.int64)
        keys = np.concatenate(
            [np.full(32, 50), np.full(32, 50), np.full(32, 60), np.full(32, 60)]
        ).astype(np.uint32)
        values = np.zeros(128, dtype=np.uint32)
        out = run_concurrent_both(reference, vectorized, op_codes, keys, values)
        assert out[32] == C.SEARCH_NOT_FOUND
        assert int(out[64]) == int(values_for_keys(np.array([60], dtype=np.uint32))[0])

    def test_insert_then_search_within_one_batch(self):
        """Searches of keys inserted earlier in the batch observe them."""
        reference, vectorized = table_pair(num_buckets=2, alloc_config=SMALL_ALLOC, seed=5)
        new_keys = np.arange(1000, 1032, dtype=np.uint32)
        op_codes = np.concatenate(
            [np.full(32, C.OP_INSERT), np.full(32, C.OP_SEARCH)]
        ).astype(np.int64)
        keys = np.concatenate([new_keys, new_keys]).astype(np.uint32)
        values = np.concatenate([new_keys + 5, np.zeros(32, dtype=np.uint32)]).astype(np.uint32)
        out = run_concurrent_both(reference, vectorized, op_codes, keys, values)
        assert np.array_equal(out[32:], new_keys + 5)

    def test_duplicates_mode_recycles_slots_mid_batch(self):
        """Deletions punch EMPTY holes that later insertions claim in scan order."""
        reference, vectorized = table_pair(
            num_buckets=2, unique_keys=False, alloc_config=SMALL_ALLOC, seed=7
        )
        init = np.repeat(np.arange(1, 21, dtype=np.uint32), 8)
        build_both(reference, vectorized, init)
        op_codes = np.concatenate(
            [np.full(64, C.OP_DELETE), np.full(64, C.OP_INSERT), np.full(32, C.OP_SEARCH)]
        ).astype(np.int64)
        rng = np.random.default_rng(9)
        keys = np.concatenate(
            [
                np.repeat(np.arange(1, 17, dtype=np.uint32), 4),
                rng.integers(100, 160, 64),
                rng.integers(1, 25, 32),
            ]
        ).astype(np.uint32)
        values = (keys + 1).astype(np.uint32)
        run_concurrent_both(reference, vectorized, op_codes, keys, values)

    def test_unknown_op_codes_are_ignored(self):
        """Codes outside {INSERT, DELETE, SEARCH} execute nothing, result 0."""
        reference, vectorized = table_pair(num_buckets=2, alloc_config=SMALL_ALLOC, seed=11)
        init = np.arange(1, 50, dtype=np.uint32)
        build_both(reference, vectorized, init)
        op_codes = np.array([C.OP_SEARCH, 0, 99, C.OP_INSERT, -1, C.OP_DELETE], dtype=np.int64)
        keys = np.array([10, 11, 12, 500, 14, 20], dtype=np.uint32)
        values = (keys + 3).astype(np.uint32)
        out = run_concurrent_both(reference, vectorized, op_codes, keys, values)
        assert out[1] == out[2] == out[4] == 0

    def test_chain_growth_visible_to_later_misses(self):
        """Earlier inserts append slabs; later miss traversals count the longer chain."""
        reference, vectorized = table_pair(num_buckets=1, alloc_config=SMALL_ALLOC, seed=13)
        init = np.arange(1, 20, dtype=np.uint32)
        build_both(reference, vectorized, init)
        op_codes = np.concatenate(
            [np.full(64, C.OP_INSERT), np.full(32, C.OP_SEARCH), np.full(32, C.OP_DELETE)]
        ).astype(np.int64)
        keys = np.concatenate(
            [
                np.arange(1000, 1064, dtype=np.uint32),  # grows the single chain
                np.arange(5000, 5032, dtype=np.uint32),  # all misses
                np.arange(6000, 6032, dtype=np.uint32),  # all misses
            ]
        ).astype(np.uint32)
        values = (keys + 1).astype(np.uint32)
        run_concurrent_both(reference, vectorized, op_codes, keys, values)
        assert vectorized.total_slabs() > 2  # growth actually happened

    def test_mixed_batches_interleaved_with_bulk_traffic(self):
        reference, vectorized = table_pair(num_buckets=4, alloc_config=SMALL_ALLOC, seed=15)
        keys = unique_random_keys(300, seed=15)
        build_both(reference, vectorized, keys)
        workload = build_concurrent_workload(PAPER_DISTRIBUTIONS[0], 500, keys, seed=17)
        run_concurrent_both(
            reference, vectorized, workload.op_codes, workload.keys, workload.values
        )
        extra = unique_random_keys(100, seed=19)
        for table in (reference, vectorized):
            table.bulk_insert(extra, values_for_keys(extra))
        assert np.array_equal(reference.bulk_search(extra), vectorized.bulk_search(extra))
        assert_same_state(reference, vectorized)
        workload = build_concurrent_workload(PAPER_DISTRIBUTIONS[2], 500, extra, seed=21)
        run_concurrent_both(
            reference, vectorized, workload.op_codes, workload.keys, workload.values
        )


class TestAllocatorInteraction:
    def test_growth_path_counts_identically(self):
        tiny = SlabAllocConfig(num_super_blocks=1, num_memory_blocks=2,
                               units_per_block=32, growth_threshold=2, max_super_blocks=8)
        reference, vectorized = table_pair(num_buckets=2, alloc_config=tiny, seed=21)
        keys = unique_random_keys(600, seed=21)
        build_both(reference, vectorized, keys)
        rng = np.random.default_rng(23)
        op_codes = np.full(1200, C.OP_INSERT, dtype=np.int64)
        op_codes[::5] = C.OP_SEARCH
        new = rng.choice(2**24, 1200, replace=False).astype(np.uint32)
        run_concurrent_both(reference, vectorized, op_codes, new, new)
        assert vectorized.alloc.num_super_blocks > 1  # growth actually happened

    def test_exhaustion_mid_batch_matches_reference_partial_state(self):
        def build(backend):
            device = Device()
            alloc = SlabAlloc(
                device,
                SlabAllocConfig(1, 1, 32, growth_threshold=10_000, max_super_blocks=1),
                seed=1,
            )
            table = SlabHash(1, device=device, alloc=alloc, seed=2, backend=backend)
            rng = np.random.default_rng(23)
            keys = rng.choice(2**24, 2000, replace=False).astype(np.uint32)
            op_codes = np.full(2000, C.OP_INSERT, dtype=np.int64)
            op_codes[::7] = C.OP_SEARCH
            op_codes[3::11] = C.OP_DELETE
            with pytest.raises(AllocationError):
                table.concurrent_batch(op_codes, keys, keys)
            return table

        reference, vectorized = build("reference"), build("vectorized")
        assert len(reference.items()) > 0
        assert reference.items() == vectorized.items()
        assert_same_state(reference, vectorized)


class TestShardedEngine:
    @pytest.mark.parametrize("policy", ["hash", "range"])
    def test_sharded_concurrent_batches_are_equivalent(self, policy):
        keys = unique_random_keys(600, seed=29)
        values = values_for_keys(keys)

        def build(backend):
            engine = ShardedSlabHash(
                3, 4, policy=policy, alloc_config=SMALL_ALLOC, seed=31, backend=backend
            )
            engine.bulk_build(keys, values)
            return engine

        reference, vectorized = build("reference"), build("vectorized")
        workload = build_concurrent_workload(PAPER_DISTRIBUTIONS[1], 1200, keys, seed=33)
        out_r = reference.concurrent_batch(workload.op_codes, workload.keys, workload.values)
        out_v = vectorized.concurrent_batch(workload.op_codes, workload.keys, workload.values)
        assert np.array_equal(out_r, out_v)
        for shard_r, shard_v in zip(reference.shards, vectorized.shards):
            assert_same_state(shard_r, shard_v)


class TestFallbacks:
    def test_explicit_scheduler_runs_reference_generators(self):
        """With a WarpScheduler both backends interleave identically (same seed)."""
        outcomes = {}
        keys = unique_random_keys(300, seed=37)
        for backend in ("reference", "vectorized"):
            table = SlabHash(4, alloc_config=SMALL_ALLOC, seed=39, backend=backend)
            table.bulk_build(keys, values_for_keys(keys))
            workload = build_concurrent_workload(PAPER_DISTRIBUTIONS[1], 600, keys, seed=41)
            out = table.concurrent_batch(
                workload.op_codes,
                workload.keys,
                workload.values,
                scheduler=WarpScheduler(seed=43),
            )
            outcomes[backend] = (out, table.device.counters.as_dict())
        assert np.array_equal(outcomes["reference"][0], outcomes["vectorized"][0])
        assert outcomes["reference"][1] == outcomes["vectorized"][1]

    def test_non_canonical_state_falls_back_to_reference(self):
        """External mid-chain EMPTY holes route the call through the generators."""
        pair = table_pair(num_buckets=1, alloc_config=SMALL_ALLOC, seed=45)
        keys = np.arange(1, 40, dtype=np.uint32)
        for table in pair:
            table.bulk_build(keys, keys)
            # Punch a hole: externally EMPTY a mid-chain pair (bypassing the API).
            table.lists.base_slabs[0, 0] = C.EMPTY_KEY
            table.lists.base_slabs[0, 1] = C.EMPTY_VALUE
        reference, vectorized = pair
        rng = np.random.default_rng(47)
        op_codes = rng.integers(1, 4, 200).astype(np.int64)
        probe = rng.integers(1, 60, 200).astype(np.uint32)
        run_concurrent_both(reference, vectorized, op_codes, probe, probe)

    def test_wave_size_without_scheduler_is_ignored_on_both_backends(self):
        reference, vectorized = table_pair(num_buckets=2, alloc_config=SMALL_ALLOC, seed=49)
        keys = np.arange(1, 100, dtype=np.uint32)
        build_both(reference, vectorized, keys)
        op_codes = np.full(64, C.OP_SEARCH, dtype=np.int64)
        queries = np.arange(1, 65, dtype=np.uint32)
        out_r = reference.concurrent_batch(op_codes, queries, queries, wave_size=4)
        out_v = vectorized.concurrent_batch(op_codes, queries, queries, wave_size=4)
        assert np.array_equal(out_r, out_v)
        assert_same_state(reference, vectorized)
