"""Tests for the SlabSet key-only set wrapper."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import constants as C
from repro.core.config import SlabAllocConfig
from repro.core.slab_set import SlabSet
from repro.gpusim.scheduler import WarpScheduler

from tests.conftest import make_keys

CFG = SlabAllocConfig(num_super_blocks=2, num_memory_blocks=8, units_per_block=64)


def new_set(buckets=8):
    return SlabSet(buckets, alloc_config=CFG, seed=9)


class TestSetSemantics:
    def test_add_contains_discard(self):
        s = new_set()
        s.add(5)
        assert 5 in s
        assert 6 not in s
        assert s.discard(5) is True
        assert s.discard(5) is False
        assert 5 not in s

    def test_add_is_idempotent(self):
        s = new_set()
        s.add(7)
        s.add(7)
        assert len(s) == 1

    def test_remove_raises_keyerror_when_absent(self):
        s = new_set()
        with pytest.raises(KeyError):
            s.remove(3)
        s.add(3)
        s.remove(3)
        assert 3 not in s

    def test_len_bool_iter(self):
        s = new_set()
        assert not s
        s.update([4, 2, 9])
        assert len(s) == 3
        assert bool(s)
        assert list(s) == [2, 4, 9]

    def test_update_and_contains_many(self):
        s = new_set(buckets=16)
        keys = make_keys(300, seed=1)
        s.update(keys)
        assert len(s) == 300
        membership = s.contains_many(np.concatenate([keys[:10], np.array([1, 2, 3], np.uint32)]))
        assert membership[:10].all()

    def test_discard_many_counts_removed(self):
        s = new_set(buckets=16)
        keys = make_keys(100, seed=2)
        s.update(keys)
        removed = s.discard_many(np.concatenate([keys[:40], keys[:10]]))
        assert removed == 40
        assert len(s) == 60

    def test_empty_bulk_calls(self):
        s = new_set()
        s.update([])
        assert s.discard_many(np.array([], dtype=np.uint32)) == 0
        assert s.contains_many(np.array([], dtype=np.uint32)).size == 0

    def test_flush_and_utilization(self):
        s = new_set(buckets=4)
        keys = make_keys(200, seed=3)
        s.update(keys)
        s.discard_many(keys[::2])
        before = s.memory_utilization()
        s.flush()
        assert s.memory_utilization() >= before
        assert len(s) == 100

    def test_concurrent_batch(self):
        s = new_set(buckets=4)
        base = make_keys(64, seed=4)
        s.update(base)
        new = make_keys(32, seed=5) + np.uint32(2**29)
        ops = np.concatenate([np.full(32, C.OP_INSERT), np.full(32, C.OP_DELETE)])
        keys = np.concatenate([new, base[:32]]).astype(np.uint32)
        s.concurrent_batch(ops, keys, scheduler=WarpScheduler(seed=6))
        assert all(int(k) in s for k in new)
        assert not any(int(k) in s for k in base[:32])

    def test_underlying_table_is_key_only_unique(self):
        s = new_set()
        assert s.table.config.key_value is False
        assert s.table.config.unique_keys is True
        assert s.device is s.table.device


class TestSetProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(st.sampled_from(["add", "discard"]), st.integers(min_value=1, max_value=40)),
            min_size=1,
            max_size=80,
        )
    )
    def test_property_matches_python_set(self, ops):
        s = new_set(buckets=2)
        reference = set()
        for op, key in ops:
            if op == "add":
                s.add(key)
                reference.add(key)
            else:
                assert s.discard(key) == (key in reference)
                reference.discard(key)
        assert set(s) == reference
        assert len(s) == len(reference)
