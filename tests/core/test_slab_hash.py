"""Tests for the SlabHash public API (single ops, bulk ops, sizing, introspection)."""

import numpy as np
import pytest

from repro.core import constants as C
from repro.core.config import SlabAllocConfig
from repro.core.slab_hash import SlabHash
from repro.gpusim.device import Device

from tests.conftest import make_keys

CFG = SlabAllocConfig(num_super_blocks=2, num_memory_blocks=8, units_per_block=64)


def new_table(buckets=8, **kwargs):
    kwargs.setdefault("alloc_config", CFG)
    kwargs.setdefault("seed", 7)
    return SlabHash(buckets, **kwargs)


class TestSingleOperations:
    def test_insert_search_roundtrip(self):
        table = new_table()
        table.insert(42, 4200)
        assert table.search(42) == 4200

    def test_search_missing_returns_none(self):
        table = new_table()
        table.insert(42, 4200)
        assert table.search(99) is None

    def test_contains(self):
        table = new_table()
        table.insert(1, 10)
        assert 1 in table
        assert 2 not in table

    def test_delete_returns_whether_removed(self):
        table = new_table()
        table.insert(5, 50)
        assert table.delete(5) is True
        assert table.delete(5) is False
        assert table.search(5) is None

    def test_replace_value_for_existing_key(self):
        table = new_table()
        table.insert(5, 50)
        table.insert(5, 51)
        assert table.search(5) == 51
        assert len(table) == 1

    def test_key_value_mode_requires_value(self):
        table = new_table()
        with pytest.raises(ValueError):
            table.insert(5)

    def test_reserved_keys_rejected(self):
        table = new_table()
        with pytest.raises(ValueError):
            table.insert(C.EMPTY_KEY, 1)
        with pytest.raises(ValueError):
            table.insert(C.DELETED_KEY, 1)

    def test_key_only_mode(self):
        table = new_table(key_value=False)
        table.insert(77)
        assert table.search(77) == 77
        assert table.search(78) is None
        assert table.delete(77) is True

    def test_duplicates_mode_search_all_and_delete_all(self):
        table = new_table(unique_keys=False)
        for value in (1, 2, 3):
            table.insert(9, value)
        assert sorted(table.search_all(9)) == [1, 2, 3]
        assert table.delete_all(9) == 3
        assert table.search(9) is None

    def test_len_counts_live_elements(self):
        table = new_table()
        for key in range(1, 21):
            table.insert(key, key)
        assert len(table) == 20
        table.delete(3)
        assert len(table) == 19


class TestBulkOperations:
    def test_bulk_build_and_search_all_found(self):
        table = new_table(buckets=16)
        keys = make_keys(300, seed=1)
        values = (keys % 1000).astype(np.uint32)
        table.bulk_build(keys, values)
        assert len(table) == 300
        results = table.bulk_search(keys)
        assert np.array_equal(results, values)

    def test_bulk_search_none_found(self):
        table = new_table(buckets=16)
        keys = make_keys(200, seed=2)
        table.bulk_build(keys, keys)
        missing = (keys.astype(np.uint64) + 2**31).astype(np.uint32)
        results = table.bulk_search(missing)
        assert np.all(results == C.SEARCH_NOT_FOUND)

    def test_bulk_delete(self):
        table = new_table(buckets=16)
        keys = make_keys(200, seed=3)
        table.bulk_build(keys, keys)
        removed = table.bulk_delete(keys[:100])
        assert removed.sum() == 100
        assert np.all(table.bulk_search(keys[:100]) == C.SEARCH_NOT_FOUND)
        assert np.array_equal(table.bulk_search(keys[100:]), keys[100:])

    def test_bulk_insert_incrementally_extends(self):
        table = new_table(buckets=16)
        first = make_keys(100, seed=4)
        second = make_keys(100, seed=5) + np.uint32(2**29)
        table.bulk_insert(first, first)
        table.bulk_insert(second, second)
        assert len(table) == len(np.union1d(first, second))

    def test_bulk_build_requires_values_in_key_value_mode(self):
        table = new_table()
        with pytest.raises(ValueError):
            table.bulk_build(make_keys(10))

    def test_bulk_build_length_mismatch(self):
        table = new_table()
        with pytest.raises(ValueError):
            table.bulk_build(make_keys(10), np.zeros(5, dtype=np.uint32))

    def test_bulk_build_rejects_reserved_keys(self):
        table = new_table()
        with pytest.raises(ValueError):
            table.bulk_build(np.array([1, C.EMPTY_KEY], dtype=np.uint32), np.zeros(2, np.uint32))

    def test_bulk_ops_count_kernel_launches(self):
        table = new_table()
        keys = make_keys(40, seed=6)
        table.bulk_build(keys, keys)
        table.bulk_search(keys)
        assert table.device.counters.kernel_launches == 2

    def test_partial_warp_tail_handled(self):
        table = new_table()
        keys = make_keys(33, seed=7)  # one full warp plus one lane
        table.bulk_build(keys, keys)
        assert len(table) == 33
        assert np.array_equal(table.bulk_search(keys), keys)

    def test_key_only_bulk_ops(self):
        table = new_table(key_value=False, buckets=16)
        keys = make_keys(200, seed=8)
        table.bulk_build(keys)
        assert np.array_equal(table.bulk_search(keys), keys)
        assert table.bulk_delete(keys[:50]).sum() == 50


class TestBucketSizing:
    def test_buckets_for_beta_matches_definition(self):
        # beta = n / (M * B) with M = 15 in key-value mode.
        assert SlabHash.buckets_for_beta(15_000, 1.0) == 1000
        assert SlabHash.buckets_for_beta(15_000, 2.0) == 500

    def test_buckets_for_beta_key_only(self):
        assert SlabHash.buckets_for_beta(30_000, 1.0, key_value=False) == 1000

    def test_expected_utilization_monotonically_increases(self):
        utils = [SlabHash.expected_utilization(beta) for beta in (0.25, 0.5, 1.0, 2.0, 4.0)]
        assert utils == sorted(utils)

    def test_expected_utilization_approaches_94_percent(self):
        assert SlabHash.expected_utilization(50.0) == pytest.approx(0.9375, abs=0.02)

    def test_buckets_for_utilization_hits_target(self):
        for target in (0.3, 0.5, 0.7):
            buckets = SlabHash.buckets_for_utilization(20_000, target)
            beta = 20_000 / (15 * buckets)
            achieved = SlabHash.expected_utilization(beta)
            assert achieved == pytest.approx(target, abs=0.05)

    def test_buckets_for_utilization_rejects_impossible_targets(self):
        with pytest.raises(ValueError):
            SlabHash.buckets_for_utilization(1000, 0.99)
        with pytest.raises(ValueError):
            SlabHash.buckets_for_utilization(1000, 0.0)

    def test_invalid_beta(self):
        with pytest.raises(ValueError):
            SlabHash.buckets_for_beta(100, 0)


class TestIntrospection:
    def test_memory_utilization_and_beta(self):
        table = new_table(buckets=4)
        keys = make_keys(120, seed=9)
        table.bulk_build(keys, keys)
        utilization = table.memory_utilization()
        assert 0.0 < utilization <= table.config.max_memory_utilization + 1e-9
        assert table.beta() == pytest.approx(120 / (15 * 4))

    def test_more_buckets_lower_utilization(self):
        keys = make_keys(150, seed=10)
        small = new_table(buckets=2)
        large = new_table(buckets=64)
        small.bulk_build(keys, keys)
        large.bulk_build(keys, keys)
        assert small.memory_utilization() > large.memory_utilization()

    def test_bucket_slab_counts_shape(self):
        table = new_table(buckets=8)
        table.bulk_build(make_keys(100, seed=11), make_keys(100, seed=11))
        counts = table.bucket_slab_counts()
        assert counts.shape == (8,)
        assert counts.min() >= 1
        assert counts.sum() == table.total_slabs()

    def test_items_returns_all_pairs(self):
        table = new_table(buckets=8)
        keys = make_keys(50, seed=12)
        table.bulk_build(keys, keys)
        assert sorted(k for k, _ in table.items()) == sorted(keys.tolist())

    def test_used_bytes_is_slab_count_times_128(self):
        table = new_table(buckets=8)
        table.bulk_build(make_keys(64, seed=13), make_keys(64, seed=13))
        assert table.used_bytes() == table.total_slabs() * 128

    def test_repr_mentions_mode(self):
        assert "key-value" in repr(new_table())
        assert "key-only" in repr(new_table(key_value=False))

    def test_invalid_bucket_count(self):
        with pytest.raises(ValueError):
            new_table(buckets=0)


class TestLightAllocatorIntegration:
    def test_light_alloc_table_behaves_identically(self):
        keys = make_keys(200, seed=14)
        regular = new_table(buckets=8, light_alloc=False)
        light = new_table(buckets=8, light_alloc=True)
        regular.bulk_build(keys, keys)
        light.bulk_build(keys, keys)
        assert np.array_equal(regular.bulk_search(keys), light.bulk_search(keys))

    def test_light_alloc_uses_fewer_shared_reads(self):
        keys = make_keys(400, seed=15)
        regular = new_table(buckets=4, light_alloc=False)
        light = new_table(buckets=4, light_alloc=True)
        regular.bulk_build(keys, keys)
        light.bulk_build(keys, keys)
        regular.bulk_search(keys)
        light.bulk_search(keys)
        assert light.device.counters.shared_reads < regular.device.counters.shared_reads
