"""Tests for SlabAlloc: bitmap allocation, resident changes, deallocation, growth."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import constants as C
from repro.core.address import decode_address
from repro.core.config import SlabAllocConfig
from repro.core.slab_alloc import SlabAlloc
from repro.core.slab_alloc_light import SlabAllocLight
from repro.gpusim.device import Device
from repro.gpusim.errors import AllocationError
from repro.gpusim.warp import Warp


def make_alloc(ns=2, nm=8, nu=64, seed=3):
    device = Device()
    alloc = SlabAlloc(device, SlabAllocConfig(ns, nm, nu), seed=seed)
    return device, alloc


class TestAllocation:
    def test_addresses_are_unique(self):
        device, alloc = make_alloc()
        warps = [Warp(i, device.counters) for i in range(4)]
        addresses = [alloc.warp_allocate(warps[i % 4]) for i in range(200)]
        assert len(set(addresses)) == 200

    def test_allocated_bit_is_set(self):
        device, alloc = make_alloc()
        warp = Warp(0, device.counters)
        address = alloc.warp_allocate(warp)
        assert alloc.is_allocated(address)

    def test_allocation_count_tracks(self):
        device, alloc = make_alloc()
        warp = Warp(0, device.counters)
        for _ in range(10):
            alloc.warp_allocate(warp)
        assert alloc.allocated_units == 10
        assert device.counters.allocations == 10

    def test_fresh_slab_reads_as_empty(self):
        device, alloc = make_alloc()
        warp = Warp(0, device.counters)
        address = alloc.warp_allocate(warp)
        store, row = alloc.slab_view(address)
        assert np.all(store[row] == C.EMPTY_KEY)

    def test_single_atomic_in_uncontended_case(self):
        device, alloc = make_alloc()
        warp = Warp(0, device.counters)
        alloc.warp_allocate(warp)  # first call also reads the resident bitmap
        before = device.counters.atomic32
        alloc.warp_allocate(warp)
        assert device.counters.atomic32 == before + 1

    def test_different_warps_get_different_resident_blocks_usually(self):
        device, alloc = make_alloc(ns=4, nm=32)
        blocks = set()
        for warp_id in range(16):
            address = alloc.warp_allocate(Warp(warp_id, device.counters))
            super_block, block, _unit = decode_address(address)
            blocks.add((super_block, block))
        assert len(blocks) > 4

    def test_addresses_decode_within_configured_bounds(self):
        device, alloc = make_alloc(ns=2, nm=8, nu=64)
        warp = Warp(0, device.counters)
        for _ in range(100):
            super_block, block, unit = decode_address(alloc.warp_allocate(warp))
            assert super_block < alloc.num_super_blocks
            assert block < alloc.config.num_memory_blocks
            assert unit < alloc.config.units_per_block

    def test_capacity_properties(self):
        _, alloc = make_alloc(ns=2, nm=8, nu=64)
        assert alloc.capacity_units == 2 * 8 * 64
        assert alloc.capacity_bytes == alloc.capacity_units * 128
        assert alloc.occupancy() == 0.0


class TestDeallocation:
    def test_deallocate_clears_bit_and_count(self):
        device, alloc = make_alloc()
        warp = Warp(0, device.counters)
        address = alloc.warp_allocate(warp)
        alloc.deallocate(warp, address)
        assert not alloc.is_allocated(address)
        assert alloc.allocated_units == 0
        assert device.counters.deallocations == 1

    def test_double_free_detected(self):
        device, alloc = make_alloc()
        warp = Warp(0, device.counters)
        address = alloc.warp_allocate(warp)
        alloc.deallocate(warp, address)
        with pytest.raises(AllocationError):
            alloc.deallocate(warp, address)

    def test_deallocated_unit_is_recycled(self):
        device, alloc = make_alloc(ns=1, nm=1, nu=32)
        warp = Warp(0, device.counters)
        addresses = [alloc.warp_allocate(warp) for _ in range(32)]
        alloc.deallocate(warp, addresses[7])
        recycled = alloc.warp_allocate(warp)
        assert recycled == addresses[7]

    def test_recycled_slab_is_cleared(self):
        device, alloc = make_alloc()
        warp = Warp(0, device.counters)
        address = alloc.warp_allocate(warp)
        store, row = alloc.slab_view(address)
        store[row, 0] = 1234  # simulate use
        alloc.deallocate(warp, address)
        store, row = alloc.slab_view(address)
        assert np.all(store[row] == C.EMPTY_KEY)

    def test_deallocate_unallocated_address_rejected(self):
        device, alloc = make_alloc()
        warp = Warp(0, device.counters)
        alloc.warp_allocate(warp)
        with pytest.raises(AllocationError):
            alloc.deallocate(warp, 5)  # unit 5 of block 0 was never allocated


class TestResidentChangesAndGrowth:
    def test_filling_a_block_triggers_resident_change(self):
        device, alloc = make_alloc(ns=1, nm=2, nu=64)
        warp = Warp(0, device.counters)
        for _ in range(80):  # more than one block's worth from a single warp
            alloc.warp_allocate(warp)
        assert device.counters.resident_changes >= 1

    def test_exhaustion_raises(self):
        device, alloc = make_alloc(ns=1, nm=1, nu=32)
        # Prevent growth so the pool genuinely exhausts.
        alloc.config = SlabAllocConfig(1, 1, 32, growth_threshold=10_000, max_super_blocks=1)
        warp = Warp(0, device.counters)
        for _ in range(32):
            alloc.warp_allocate(warp)
        with pytest.raises(AllocationError):
            alloc.warp_allocate(warp)

    def test_growth_adds_super_blocks_when_pressed(self):
        device = Device()
        alloc = SlabAlloc(
            device,
            SlabAllocConfig(1, 1, 32, growth_threshold=2, max_super_blocks=8),
            seed=1,
        )
        warp = Warp(0, device.counters)
        for _ in range(100):  # far beyond the initial 32-unit capacity
            alloc.warp_allocate(warp)
        assert alloc.num_super_blocks > 1
        assert alloc.allocated_units == 100

    def test_resident_change_reads_bitmap_coalescedly(self):
        device, alloc = make_alloc(ns=1, nm=2, nu=64)
        warp = Warp(0, device.counters)
        before = device.counters.coalesced_read_transactions
        for _ in range(80):
            alloc.warp_allocate(warp)
        reads = device.counters.coalesced_read_transactions - before
        assert reads >= device.counters.resident_changes


class TestContention:
    def test_two_warps_sharing_a_block_never_get_the_same_unit(self):
        # A single memory block forces every warp onto the same bitmap words.
        device = Device()
        alloc = SlabAlloc(device, SlabAllocConfig(1, 1, 64), seed=0)
        warps = [Warp(i, device.counters) for i in range(4)]
        addresses = []
        for i in range(60):
            addresses.append(alloc.warp_allocate(warps[i % 4]))
        assert len(set(addresses)) == 60

    def test_stale_cached_bitmaps_cause_retries_not_duplicates(self):
        device = Device()
        alloc = SlabAlloc(device, SlabAllocConfig(1, 1, 64), seed=0)
        a, b = Warp(0, device.counters), Warp(1, device.counters)
        first = [alloc.warp_allocate(a) for _ in range(10)]
        second = [alloc.warp_allocate(b) for _ in range(10)]
        assert not set(first) & set(second)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=120))
    def test_property_any_interleaving_of_warps_yields_unique_addresses(self, warp_sequence):
        device = Device()
        alloc = SlabAlloc(device, SlabAllocConfig(1, 2, 64), seed=2)
        warps = {i: Warp(i, device.counters) for i in range(4)}
        addresses = [alloc.warp_allocate(warps[w]) for w in warp_sequence]
        assert len(set(addresses)) == len(addresses)
        assert alloc.allocated_units == len(addresses)

    @settings(max_examples=20, deadline=None)
    @given(st.data())
    def test_property_allocate_free_cycles_preserve_invariants(self, data):
        device = Device()
        alloc = SlabAlloc(device, SlabAllocConfig(1, 2, 64), seed=5)
        warp = Warp(0, device.counters)
        live = []
        for _ in range(data.draw(st.integers(min_value=1, max_value=60))):
            if live and data.draw(st.booleans()):
                address = live.pop(data.draw(st.integers(min_value=0, max_value=len(live) - 1)))
                alloc.deallocate(warp, address)
                assert not alloc.is_allocated(address)
            else:
                address = alloc.warp_allocate(warp)
                assert address not in live
                assert alloc.is_allocated(address)
                live.append(address)
        assert alloc.allocated_units == len(live)
        for address in live:
            assert alloc.is_allocated(address)


class TestSlabAllocLight:
    def test_light_variant_skips_shared_memory_decode(self):
        device = Device()
        light = SlabAllocLight(device, SlabAllocConfig(2, 8, 64), seed=1)
        light.charge_address_decode()
        assert device.counters.shared_reads == 0

    def test_regular_variant_pays_shared_memory_decode(self):
        device, alloc = make_alloc()
        alloc.charge_address_decode()
        assert device.counters.shared_reads == 1

    def test_light_variant_rejects_configs_over_4gb(self):
        with pytest.raises(ValueError):
            SlabAllocLight(Device(), SlabAllocConfig(256, 2**14, 1024))

    def test_light_variant_allocates_like_the_regular_one(self):
        device = Device()
        light = SlabAllocLight(device, SlabAllocConfig(2, 8, 64), seed=1)
        warp = Warp(0, device.counters)
        addresses = [light.warp_allocate(warp) for _ in range(50)]
        assert len(set(addresses)) == 50
