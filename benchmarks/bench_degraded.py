"""Degraded-mode service benchmark: overload and quarantine operating points.

Measures the service at three operating points and merges the results into
the ``degraded`` section of the repo-root ``BENCH_service.json`` (schema
v4, owned by ``benchmarks/bench_service_saturation.py``):

* **healthy** — generous admission budget, no faults: baseline accepted
  throughput and served-latency percentiles for the same stream shape;
* **overloaded** — a tiny ``max_pending_per_shard`` budget under far more
  offered load than the drains clear: clients with no retry loop measure
  *rejection latency* (how long a refused ``submit_many`` takes to fail —
  backpressure must say "no" quickly, not after queueing) alongside the
  accepted throughput the bounded queue still sustains;
* **quarantined** — a seeded :class:`repro.faults.FaultPlan` injects batch
  failures that trip per-shard breakers mid-run; clients ride through with
  :func:`repro.service.retry_with_backoff` and the point records the
  throughput the service sustains while lanes trip, restore, and close.

The acceptance floor (``tests/perf/test_service_schema.py``): the
overloaded point's rejection-latency p99 must not exceed the committed
document's healthy served p99 — being told "come back later" is never
slower than being served.

Run after the saturation sweep has produced the base document::

    PYTHONPATH=src python benchmarks/bench_service_saturation.py --smoke --out /tmp/BENCH_service.json
    PYTHONPATH=src python benchmarks/bench_degraded.py --smoke --out /tmp/BENCH_service.json
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import random
import time
from typing import List, Optional

import numpy as np

from repro.engine.sharded import ShardedSlabHash
from repro.faults import FaultAction, FaultPlan, InjectedFault
from repro.service import (
    ServiceConfig,
    ServiceError,
    ServiceOverloaded,
    SlabHashService,
    retry_with_backoff,
)
from repro.workloads.distributions import GAMMA_40_UPDATES, build_concurrent_workload
from repro.workloads.generators import unique_random_keys, values_for_keys

from bench_service_saturation import DEFAULT_OUT, SCHEMA_VERSION, validate_document


def _percentiles(samples: List[float]) -> dict:
    ordered = np.sort(np.asarray(samples, dtype=np.float64))
    return {
        "count": int(ordered.size),
        "mean_s": float(ordered.mean()) if ordered.size else 0.0,
        "p50_s": float(np.percentile(ordered, 50)) if ordered.size else 0.0,
        "p90_s": float(np.percentile(ordered, 90)) if ordered.size else 0.0,
        "p99_s": float(np.percentile(ordered, 99)) if ordered.size else 0.0,
        "max_s": float(ordered.max()) if ordered.size else 0.0,
    }


def _build_engine(num_shards: int, initial_elements: int, seed: int):
    engine = ShardedSlabHash.for_utilization(num_shards, initial_elements, 0.6, seed=seed)
    keys = unique_random_keys(initial_elements, seed=seed)
    engine.bulk_build(keys, values_for_keys(keys))
    return engine, keys


def run_healthy_point(
    *, num_ops: int, num_shards: int, initial_elements: int, burst: int,
    concurrency: int, max_batch_size: int, max_delay: float, seed: int,
) -> dict:
    engine, keys = _build_engine(num_shards, initial_elements, seed)
    workload = build_concurrent_workload(GAMMA_40_UPDATES, num_ops, keys, seed=seed + 7)
    service = SlabHashService(
        engine, config=ServiceConfig(max_batch_size=max_batch_size, max_delay=max_delay)
    )

    async def main() -> None:
        gate = asyncio.Semaphore(concurrency)

        async def one(start: int, end: int) -> None:
            async with gate:
                await service.submit_many(
                    workload.op_codes[start:end],
                    workload.keys[start:end],
                    workload.values[start:end],
                )

        async with service:
            await asyncio.gather(
                *[
                    asyncio.ensure_future(one(start, min(start + burst, len(workload))))
                    for start in range(0, len(workload), burst)
                ]
            )

    asyncio.run(main())
    stats = service.stats()
    return {
        "ops_per_sec": stats.ops_per_second,
        "latency": stats.latency.as_dict(),
    }


def run_overloaded_point(
    *, num_ops: int, num_shards: int, initial_elements: int, burst: int,
    concurrency: int, max_batch_size: int, max_delay: float,
    max_pending_per_shard: int, seed: int,
) -> dict:
    """Offer the stream against a tiny admission budget, no client retries.

    Each refused admission's wall time is a rejection-latency sample — the
    cost of being told "come back later".
    """
    engine, keys = _build_engine(num_shards, initial_elements, seed)
    workload = build_concurrent_workload(GAMMA_40_UPDATES, num_ops, keys, seed=seed + 7)
    service = SlabHashService(
        engine,
        config=ServiceConfig(
            max_batch_size=max_batch_size,
            max_delay=max_delay,
            max_pending_per_shard=max_pending_per_shard,
        ),
    )
    rejection_samples: List[float] = []
    admitted = 0

    async def main() -> None:
        nonlocal admitted
        gate = asyncio.Semaphore(concurrency)

        async def one(start: int, end: int) -> None:
            nonlocal admitted
            async with gate:
                began = time.perf_counter()
                try:
                    await service.submit_many(
                        workload.op_codes[start:end],
                        workload.keys[start:end],
                        workload.values[start:end],
                    )
                    admitted += end - start
                except ServiceOverloaded:
                    rejection_samples.append(time.perf_counter() - began)

        async with service:
            await asyncio.gather(
                *[
                    asyncio.ensure_future(one(start, min(start + burst, len(workload))))
                    for start in range(0, len(workload), burst)
                ]
            )

    asyncio.run(main())
    stats = service.stats()
    return {
        "accepted_ops_per_sec": stats.ops_per_second,
        "admitted_ops": int(admitted),
        "rejected_admissions": len(rejection_samples),
        "ops_rejected": stats.ops_rejected,
        "rejection_latency": _percentiles(rejection_samples),
    }


def run_quarantined_point(
    *, num_ops: int, num_shards: int, initial_elements: int, burst: int,
    concurrency: int, max_batch_size: int, max_delay: float,
    breaker_threshold: int, chaos_seed: int, fault_rate: float, seed: int,
) -> dict:
    """Serve the stream while injected batch failures trip and heal lanes."""
    engine, keys = _build_engine(num_shards, initial_elements, seed)
    workload = build_concurrent_workload(GAMMA_40_UPDATES, num_ops, keys, seed=seed + 7)
    sites = []
    for shard in range(num_shards):
        sites.append((f"shard:{shard}.execute", FaultAction(exc="batch")))
    plan = FaultPlan.random(chaos_seed, sites, rate=fault_rate, horizon=32)
    service = SlabHashService(
        engine,
        config=ServiceConfig(
            max_batch_size=max_batch_size,
            max_delay=max_delay,
            breaker_threshold=breaker_threshold,
        ),
        faults=plan,
    )

    async def main() -> None:
        gate = asyncio.Semaphore(concurrency)

        async def one(start: int, end: int) -> None:
            async with gate:
                def admit(s=start, e=end):
                    return service.submit_many(
                        workload.op_codes[s:e],
                        workload.keys[s:e],
                        workload.values[s:e],
                    )

                try:
                    await retry_with_backoff(
                        admit, retries=40, base_delay=0.0005, max_delay=0.01,
                        rng=random.Random(seed + start),
                    )
                except (InjectedFault, ServiceError):
                    pass  # dropped under chaos; the counters record it

        async with service:
            await asyncio.gather(
                *[
                    asyncio.ensure_future(one(start, min(start + burst, len(workload))))
                    for start in range(0, len(workload), burst)
                ]
            )
            while service._restore_tasks:
                await asyncio.sleep(0.001)

    asyncio.run(main())
    stats = service.stats()
    return {
        "ops_per_sec": stats.ops_per_second,
        "breaker_trips": stats.breaker_trips,
        "shard_restores": stats.shard_restores,
        "injected_faults": len(plan.fired),
        "latency": stats.latency.as_dict(),
    }


def run_degraded_section(
    *, num_ops: int, num_shards: int, initial_elements: int, burst: int,
    concurrency: int, max_batch_size: int, max_delay: float,
    max_pending_per_shard: int, breaker_threshold: int, chaos_seed: int,
    fault_rate: float, seed: int,
) -> dict:
    common = dict(
        num_ops=num_ops, num_shards=num_shards, initial_elements=initial_elements,
        burst=burst, concurrency=concurrency, max_batch_size=max_batch_size,
        max_delay=max_delay, seed=seed,
    )
    return {
        "config": {
            "num_ops": int(num_ops),
            "num_shards": int(num_shards),
            "initial_elements": int(initial_elements),
            "burst": int(burst),
            "concurrency": int(concurrency),
            "max_batch_size": int(max_batch_size),
            "max_delay_s": float(max_delay),
            "max_pending_per_shard": int(max_pending_per_shard),
            "breaker_threshold": int(breaker_threshold),
            "chaos_seed": int(chaos_seed),
            "fault_rate": float(fault_rate),
        },
        "healthy": run_healthy_point(**common),
        "overloaded": run_overloaded_point(
            max_pending_per_shard=max_pending_per_shard, **common
        ),
        "quarantined": run_quarantined_point(
            breaker_threshold=breaker_threshold, chaos_seed=chaos_seed,
            fault_rate=fault_rate, **common,
        ),
    }


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--num-ops", type=int, default=30_000,
                        help="operations offered per operating point (default %(default)s)")
    parser.add_argument("--num-shards", type=int, default=4,
                        help="shards behind the service (default %(default)s)")
    parser.add_argument("--initial", type=int, default=10_000,
                        help="elements pre-built into each engine (default %(default)s)")
    parser.add_argument("--max-batch", type=int, default=2048,
                        help="micro-batcher batch-size cap (default %(default)s)")
    parser.add_argument("--max-delay", type=float, default=0.002,
                        help="co-batching latency budget, seconds (default %(default)s)")
    parser.add_argument("--burst", type=int, default=256,
                        help="operations per client admission (default %(default)s)")
    parser.add_argument("--concurrency", type=int, default=64,
                        help="client admissions in flight (default %(default)s)")
    parser.add_argument("--budget", type=int, default=512,
                        help="max_pending_per_shard at the overloaded point "
                             "(default %(default)s)")
    parser.add_argument("--breaker-threshold", type=int, default=1,
                        help="consecutive failures before a lane trips (default %(default)s)")
    parser.add_argument("--chaos-seed", type=int, default=7,
                        help="seed for the quarantine point's FaultPlan (default %(default)s)")
    parser.add_argument("--fault-rate", type=float, default=0.15,
                        help="per-occurrence injection probability (default %(default)s)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny scale for CI smoke")
    parser.add_argument("--out", type=str, default=DEFAULT_OUT,
                        help="BENCH_service.json to merge into (default: repo root)")
    args = parser.parse_args(argv)

    if not os.path.exists(args.out):
        print(f"error: {args.out} does not exist — run "
              "benchmarks/bench_service_saturation.py first (the degraded "
              "section rides in its document)")
        return 1
    with open(args.out, encoding="utf-8") as handle:
        document = json.load(handle)

    if args.smoke:
        degraded = run_degraded_section(
            num_ops=2_048, num_shards=2, initial_elements=1_024, burst=64,
            concurrency=16, max_batch_size=256, max_delay=args.max_delay,
            max_pending_per_shard=96, breaker_threshold=args.breaker_threshold,
            chaos_seed=args.chaos_seed, fault_rate=args.fault_rate, seed=1,
        )
    else:
        degraded = run_degraded_section(
            num_ops=args.num_ops, num_shards=args.num_shards,
            initial_elements=args.initial, burst=args.burst,
            concurrency=args.concurrency, max_batch_size=args.max_batch,
            max_delay=args.max_delay, max_pending_per_shard=args.budget,
            breaker_threshold=args.breaker_threshold,
            chaos_seed=args.chaos_seed, fault_rate=args.fault_rate, seed=1,
        )

    document["degraded"] = degraded
    document["schema_version"] = SCHEMA_VERSION
    validate_document(document, require_degraded=True)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")

    print(f"merged degraded section into {args.out}")
    healthy, overloaded, quarantined = (
        degraded["healthy"], degraded["overloaded"], degraded["quarantined"]
    )
    print(f"  healthy      {healthy['ops_per_sec'] / 1e3:9.1f} kops/s   "
          f"p99 {healthy['latency']['p99_s'] * 1e3:7.3f} ms")
    print(f"  overloaded   {overloaded['accepted_ops_per_sec'] / 1e3:9.1f} kops/s accepted   "
          f"{overloaded['rejected_admissions']} admissions refused   "
          f"rejection p99 {overloaded['rejection_latency']['p99_s'] * 1e3:7.3f} ms")
    print(f"  quarantined  {quarantined['ops_per_sec'] / 1e3:9.1f} kops/s   "
          f"{quarantined['breaker_trips']} trips, "
          f"{quarantined['shard_restores']} restores, "
          f"{quarantined['injected_faults']} faults fired")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
