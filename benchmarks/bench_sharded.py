"""Sharded multi-table engine: throughput scaling over the shard count.

Goes beyond the paper: partitions the key space across N independent slab
hashes (each on its own simulated device, modeling multi-SM groups or
multiple GPUs) and sweeps N from 1 to 16 on three workloads — bulk build,
bulk search, and a Figure-7-style mixed concurrent batch (40 % updates).

Expected behaviour: throughput scales nearly linearly with the shard count
(hash routing costs a few percent to multinomial load imbalance), and a
build-only round-robin routed load scales at least as well as hash routing
because it balances perfectly.
"""

import numpy as np
from _bench_utils import emit

from repro.core.config import SlabAllocConfig
from repro.engine import ShardedSlabHash
from repro.perf import figures
from repro.workloads.generators import unique_random_keys, values_for_keys

ALLOC = SlabAllocConfig(num_super_blocks=8, num_memory_blocks=64, units_per_block=256)


def test_shard_sweep_scaling(benchmark):
    result = benchmark.pedantic(
        lambda: figures.shard_sweep(sim_elements=2**13), rounds=1, iterations=1
    )
    emit(result, benchmark)
    # Near-linear scaling on every workload: more shards never hurt.
    for label in ("build", "search", "mixed 40% updates"):
        rates = result.series_by_label(label).y
        assert rates == sorted(rates)
    assert result.extra["build_speedup_4_shards"] >= 1.5
    assert result.extra["build_speedup_max_shards"] >= 8.0


def test_round_robin_build_balances_perfectly(benchmark):
    """Round-robin routing on a build-only load: zero imbalance by design."""
    n = 2**13
    keys = unique_random_keys(n, seed=3)
    values = values_for_keys(keys)

    def build():
        engine = ShardedSlabHash.for_utilization(
            8, n, 0.6, policy="round-robin", alloc_config=ALLOC, seed=3
        )
        return engine.measure(
            lambda: engine.bulk_build(keys, values),
            scale_to_ops=2**22,
            label="round-robin build x8",
        )

    stats = benchmark.pedantic(build, rounds=1, iterations=1)
    assert stats.load_imbalance == 1.0
    sizes = [p.num_ops for p in stats.shards]
    assert max(sizes) - min(sizes) <= max(1, 2**22 // n)  # equal up to scaling rounding
    assert stats.parallel_speedup > 4.0


def test_hash_routing_close_to_round_robin_balance(benchmark):
    """Hash routing pays only a small imbalance tax versus perfect dealing."""
    n = 2**13
    keys = unique_random_keys(n, seed=5)
    values = values_for_keys(keys)

    def build(policy):
        engine = ShardedSlabHash.for_utilization(
            8, n, 0.6, policy=policy, alloc_config=ALLOC, seed=5
        )
        return engine.measure(
            lambda: engine.bulk_build(keys, values), scale_to_ops=2**22
        )

    hash_stats = benchmark.pedantic(lambda: build("hash"), rounds=1, iterations=1)
    rr_stats = build("round-robin")
    assert hash_stats.mops >= 0.7 * rr_stats.mops
    assert np.isclose(
        hash_stats.aggregate.coalesced_read_transactions,
        rr_stats.aggregate.coalesced_read_transactions,
        rtol=0.25,
    )
