"""Measured (not modelled) shard parallelism: process executor vs serial.

Every other number in this directory is either modelled device time or the
single-process wall clock of the simulator.  This benchmark measures what
PR 9's :class:`~repro.engine.ProcessShardExecutor` actually buys: the same
100k-key bulk build on an 8-shard engine, once serially and once with every
shard resident in its own worker process.

Two speedups are reported, because they answer different questions:

* ``measured_speedup`` — serial wall seconds over process-executor wall
  seconds.  This is the end-to-end number, and it is only meaningful when
  the host has at least as many cores as workers; on a 1-core CI box the
  workers time-share one core and the wall clock cannot improve.
* ``critical_path_speedup`` — serial wall seconds over the *busiest
  worker's* measured CPU seconds (``time.process_time()`` accumulated
  worker-side per command).  This is the wall clock the same run would
  approach given one core per worker, measured — not modelled — from the
  actual per-worker compute.  It is the scheduling-independent floor the
  schema enforces at production sizes.

The result is only reported after the process-executor engine is verified
bit-identical to the serial one (items and per-shard device counters) — a
fast wrong build is not a result.

Run directly::

    PYTHONPATH=src python benchmarks/bench_parallel.py [--num-keys 100000]
        [--num-shards 8] [--workers 8] [--smoke]

or let ``benchmarks/bench_wallclock.py`` embed the section (schema v6).
"""

from __future__ import annotations

import argparse
import gc
import os
import time
from typing import List, Optional

import numpy as np

from repro.core.slab_hash import SlabHash
from repro.engine import ShardedSlabHash

DEFAULT_NUM_KEYS = 100_000
DEFAULT_NUM_SHARDS = 8
DEFAULT_BETA = 0.6
#: The reference backend carries enough per-op compute for process-level
#: parallelism to matter; the vectorized backend's batches are so cheap that
#: IPC would dominate and the measurement would be about pipes, not shards.
BACKEND = "reference"


def _make_batch(num_keys: int, seed: int = 1):
    rng = np.random.default_rng(seed)
    keys = rng.choice(2**28, size=num_keys, replace=False).astype(np.uint32)
    values = np.arange(num_keys, dtype=np.uint32)
    return keys, values


def _make_engine(num_keys: int, num_shards: int, **kwargs) -> ShardedSlabHash:
    buckets = SlabHash.buckets_for_beta(max(num_keys // num_shards, 1), DEFAULT_BETA)
    return ShardedSlabHash(
        num_shards, buckets, seed=1, backend=BACKEND, **kwargs
    )


def _engine_state(engine: ShardedSlabHash):
    return (
        sorted(engine.items()),
        [device.counters.as_dict() for device in engine.devices],
    )


def measure_parallel(
    num_keys: int,
    *,
    num_shards: int = DEFAULT_NUM_SHARDS,
    workers: Optional[int] = None,
) -> dict:
    """Time one bulk build serially and under the process executor.

    Returns the schema-v6 ``parallel`` section.  The two engines are
    verified bit-identical (items + per-shard counters) before any timing
    is reported.
    """
    workers = num_shards if workers is None else workers
    keys, values = _make_batch(num_keys)

    gc.collect()
    serial = _make_engine(num_keys, num_shards)
    start = time.perf_counter()
    serial.bulk_insert(keys, values)
    serial_seconds = time.perf_counter() - start

    gc.collect()
    process = _make_engine(
        num_keys, num_shards, executor="process", executor_workers=workers
    )
    executor = process.process_executor
    try:
        executor.reset_worker_cpu()
        start = time.perf_counter()
        process.bulk_insert(keys, values)
        process_seconds = time.perf_counter() - start
        worker_cpu: List[float] = executor.worker_cpu_seconds()
        if _engine_state(process) != _engine_state(serial):
            raise AssertionError(
                "process-executor build diverged from the serial build"
            )
    finally:
        process.close()

    critical_path = max(worker_cpu) if worker_cpu else float("inf")
    return {
        "op": "bulk_build",
        "backend": BACKEND,
        "num_keys": int(num_keys),
        "num_shards": int(num_shards),
        "workers": int(workers),
        "cpu_count": int(os.cpu_count() or 1),
        "serial_seconds": serial_seconds,
        "process_seconds": process_seconds,
        "worker_cpu_seconds": [float(cpu) for cpu in worker_cpu],
        "critical_path_seconds": critical_path,
        "measured_speedup": serial_seconds / process_seconds,
        "critical_path_speedup": serial_seconds / critical_path,
    }


def validate_section(section: dict) -> None:
    """Raise ``ValueError`` if a ``parallel`` section does not match the schema.

    At production sizes (``num_keys >= 100000`` with 8 shards) the
    critical-path speedup must clear 3x unconditionally — the per-worker
    compute really is spread across the shards — and the end-to-end
    measured speedup must clear 3x whenever the host actually has a core
    per worker (on smaller hosts the wall clock cannot parallelize and
    only the critical-path floor applies).
    """
    if not isinstance(section, dict):
        raise ValueError("parallel must be an object")
    for field in ("num_keys", "num_shards", "workers", "cpu_count"):
        if not isinstance(section.get(field), int) or section[field] < 1:
            raise ValueError(f"parallel field {field!r} must be a positive integer")
    if section.get("op") != "bulk_build":
        raise ValueError("parallel op must be 'bulk_build'")
    if not isinstance(section.get("backend"), str):
        raise ValueError("parallel field 'backend' must be a string")
    for field in (
        "serial_seconds",
        "process_seconds",
        "critical_path_seconds",
        "measured_speedup",
        "critical_path_speedup",
    ):
        value = section.get(field)
        if not isinstance(value, (int, float)) or value <= 0:
            raise ValueError(f"parallel field {field!r} must be a positive number")
    cpus = section.get("worker_cpu_seconds")
    if not isinstance(cpus, list) or len(cpus) != section["workers"]:
        raise ValueError("parallel worker_cpu_seconds must list every worker")
    if section["num_keys"] >= 100_000 and section["num_shards"] >= 8:
        if section["critical_path_speedup"] < 3.0:
            raise ValueError(
                "parallel critical_path_speedup "
                f"{section['critical_path_speedup']:.2f} is below the 3x floor "
                "at production size"
            )
        if (
            section["cpu_count"] >= section["workers"]
            and section["measured_speedup"] < 3.0
        ):
            raise ValueError(
                f"parallel measured_speedup {section['measured_speedup']:.2f} "
                "is below the 3x floor despite one core per worker"
            )


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--num-keys", type=int, default=DEFAULT_NUM_KEYS,
                        help="bulk-build size (default %(default)s)")
    parser.add_argument("--num-shards", type=int, default=DEFAULT_NUM_SHARDS,
                        help="shard count (default %(default)s)")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes (default: one per shard)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny run (4096 keys) for CI: exercises the full "
                             "measured path without the production-size floors")
    args = parser.parse_args(argv)

    num_keys = 4096 if args.smoke else args.num_keys
    section = measure_parallel(
        num_keys, num_shards=args.num_shards, workers=args.workers
    )
    validate_section(section)
    print(f"parallel bulk_build n={section['num_keys']} "
          f"shards={section['num_shards']} workers={section['workers']} "
          f"(host cores: {section['cpu_count']})")
    print(f"  serial        {section['serial_seconds']:8.4f}s")
    print(f"  process wall  {section['process_seconds']:8.4f}s "
          f"({section['measured_speedup']:.2f}x measured)")
    print(f"  critical path {section['critical_path_seconds']:8.4f}s "
          f"({section['critical_path_speedup']:.2f}x, busiest worker CPU)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
