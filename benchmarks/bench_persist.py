"""Wall-clock throughput of the persistence layer: snapshot, restore, replay.

Measures real host seconds for the three durability primitives of
:mod:`repro.persist` on a table of ``num_keys`` elements:

* **snapshot** — serialize the live table to a compressed ``.npz`` file;
* **restore** — load it back (bit-identical, verified in-run);
* **wal_append** — frame ``num_keys`` operations into a write-ahead log in
  warp-aligned micro-batches (the service's write path);
* **replay** — recover the snapshot and re-execute the whole log (the crash
  recovery path, dominated by batch re-execution).

The resulting section is embedded into ``BENCH_wallclock.json`` (schema v4)
by ``benchmarks/bench_wallclock.py``; :func:`validate_section` is the
section's single source of truth.  Run directly for a one-off table::

    PYTHONPATH=src python benchmarks/bench_persist.py [--num-keys 100000]
"""

from __future__ import annotations

import argparse
import os
import tempfile
import time
from typing import Optional

import numpy as np

from repro.core import constants as C
from repro.core.slab_hash import SlabHash
from repro.persist import WriteAheadLog, recover, save
from repro.persist.snapshot import load
from repro.workloads.generators import unique_random_keys, values_for_keys

DEFAULT_NUM_KEYS = 100_000
DEFAULT_BETA = 0.6
REPLAY_BATCH = 1024  #: operations per WAL record (the service's default cut)


def _build_table(num_keys: int, *, backend: str, seed: int = 1) -> tuple:
    keys = unique_random_keys(num_keys, seed=seed)
    values = values_for_keys(keys)
    table = SlabHash(
        SlabHash.buckets_for_beta(num_keys, DEFAULT_BETA), backend=backend, seed=seed
    )
    table.bulk_build(keys, values)
    return table, keys, values


def measure_persist(num_keys: int, *, backend: str = "vectorized") -> dict:
    """Time the durability primitives once (they are long enough to be stable).

    The restore is verified against the source table (items and counters)
    before its timing is reported — a fast restore of the wrong state is not
    a result.
    """
    table, keys, values = _build_table(num_keys, backend=backend)
    with tempfile.TemporaryDirectory() as workdir:
        snap = os.path.join(workdir, "table.npz")
        start = time.perf_counter()
        save(table, snap)
        snapshot_seconds = time.perf_counter() - start

        start = time.perf_counter()
        restored = load(snap)
        restore_seconds = time.perf_counter() - start
        if restored.items() != table.items():
            raise AssertionError("restored snapshot diverged from the source table")
        if restored.device.counters.as_dict() != table.device.counters.as_dict():
            raise AssertionError("restored snapshot's counters diverged")

        wal_path = os.path.join(workdir, "ops.wal")
        op_codes = np.full(REPLAY_BATCH, C.OP_SEARCH, dtype=np.int64)
        op_codes[: REPLAY_BATCH // 2] = C.OP_INSERT
        start = time.perf_counter()
        with WriteAheadLog(wal_path) as wal:
            for index, begin in enumerate(range(0, num_keys, REPLAY_BATCH)):
                chunk = keys[begin : begin + REPLAY_BATCH]
                wal.append(op_codes[: len(chunk)], chunk, chunk, batch_index=index)
        wal_append_seconds = time.perf_counter() - start
        wal_bytes = os.path.getsize(wal_path)

        start = time.perf_counter()
        _recovered, report = recover(snap, wal_path)
        replay_seconds = time.perf_counter() - start
        if report.ops_replayed != num_keys:
            raise AssertionError(
                f"replayed {report.ops_replayed} ops, expected {num_keys}"
            )
        snapshot_bytes = os.path.getsize(snap)

    return {
        "num_keys": int(num_keys),
        "backend": backend,
        "snapshot_seconds": snapshot_seconds,
        "snapshot_bytes": int(snapshot_bytes),
        "snapshot_keys_per_sec": num_keys / snapshot_seconds,
        "restore_seconds": restore_seconds,
        "restore_keys_per_sec": num_keys / restore_seconds,
        "wal_append_seconds": wal_append_seconds,
        "wal_bytes": int(wal_bytes),
        "wal_append_ops_per_sec": num_keys / wal_append_seconds,
        "replay_records": int(report.records_replayed),
        "replay_seconds": replay_seconds,
        "replay_ops_per_sec": num_keys / replay_seconds,
    }


def validate_section(section: dict) -> None:
    """Raise ``ValueError`` if a ``persist`` section does not match the schema."""
    if not isinstance(section, dict):
        raise ValueError("persist must be an object")
    for field in ("num_keys", "snapshot_bytes", "wal_bytes", "replay_records"):
        if not isinstance(section.get(field), int):
            raise ValueError(f"persist field {field!r} must be an integer")
    if not isinstance(section.get("backend"), str):
        raise ValueError("persist field 'backend' must be a string")
    for field in (
        "snapshot_seconds",
        "snapshot_keys_per_sec",
        "restore_seconds",
        "restore_keys_per_sec",
        "wal_append_seconds",
        "wal_append_ops_per_sec",
        "replay_seconds",
        "replay_ops_per_sec",
    ):
        value = section.get(field)
        if not isinstance(value, (int, float)) or value <= 0:
            raise ValueError(f"persist field {field!r} must be a positive number")
    if section["replay_records"] < 1:
        raise ValueError("the persist replay must cover at least one WAL record")


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--num-keys", type=int, default=DEFAULT_NUM_KEYS,
                        help="table size to snapshot/restore/replay (default %(default)s)")
    parser.add_argument("--backend", default="vectorized",
                        choices=["vectorized", "reference"],
                        help="execution backend for build and replay")
    args = parser.parse_args(argv)
    section = measure_persist(args.num_keys, backend=args.backend)
    validate_section(section)
    for key, value in section.items():
        print(f"  {key:24s} {value}")
    return 0


# --------------------------------------------------------------------------- #
# Benchmark-suite tests (run by `pytest benchmarks/bench_persist.py`)
# --------------------------------------------------------------------------- #


def test_persist_section_matches_schema():
    section = measure_persist(4096)
    validate_section(section)
    assert section["replay_records"] == 4


def test_validate_section_rejects_drift():
    import pytest

    section = measure_persist(2048)
    broken = dict(section)
    broken.pop("replay_ops_per_sec")
    with pytest.raises(ValueError, match="replay_ops_per_sec"):
        validate_section(broken)
    zeroed = dict(section, replay_records=0)
    with pytest.raises(ValueError, match="at least one WAL record"):
        validate_section(zeroed)


if __name__ == "__main__":
    raise SystemExit(main())
