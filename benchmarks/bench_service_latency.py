"""Latency/throughput of the request-service layer — the serving trajectory.

Drives a Figure-7-style mixed operation stream (Gamma_1: 40 % updates, 60 %
searches) through :class:`repro.service.SlabHashService` in front of a
sharded engine, with clients submitting in small concurrent bursts so the
operation-log micro-batcher genuinely coalesces.  Records per-operation
wall-clock latency percentiles (:mod:`repro.perf.latency`), wall-clock and
modelled-device throughput, and batching efficiency into a machine-readable
``BENCH_service_latency.json`` at the repository root.  (The repo-root
``BENCH_service.json`` document is owned by the schema-v3 saturation sweep,
``benchmarks/bench_service_saturation.py``; this fixed-load run is kept for
comparing the single operating point across revisions.)

Run directly (or via ``scripts/smoke.sh`` at a tiny scale)::

    PYTHONPATH=src python benchmarks/bench_service_latency.py
        [--num-ops 20000] [--num-shards 4] [--initial 20000]
        [--max-batch 1024] [--max-delay 0.002] [--burst 256]
        [--out BENCH_service_latency.json]

Schema (``SCHEMA_VERSION``; version 2 split batch accounting into size view
and trigger view — ``warp_aligned_fraction`` counts warp-multiple batch
*sizes* while ``deadline_forced_fraction`` counts deadline/drain-forced
*cuts*, so a forced flush of a warp-sized tail is no longer invisible)::

    {
      "schema_version": 2,
      "benchmark": "service_latency",
      "device_model": "...", "python": "...", "numpy": "...",
      "config": {"num_ops": ..., "num_shards": ..., "initial_elements": ...,
                 "max_batch_size": ..., "max_delay_s": ..., "burst": ...,
                 "distribution": "40% updates, 60% searches"},
      "latency": {"count": ..., "mean_s": ..., "p50_s": ..., "p90_s": ...,
                  "p99_s": ..., "max_s": ...},
      "throughput": {"wall_seconds": ..., "ops_per_sec": ...,
                     "modelled_seconds": ..., "modelled_ops_per_sec": ...},
      "batches": {"executed": ..., "mean_size": ..., "warp_aligned_fraction": ...,
                  "deadline_forced_fraction": ...}
    }

``validate_document`` is the schema's single source of truth; the smoke test
``tests/perf/test_service_schema.py`` regenerates a tiny document and fails
if the schema drifts from it.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import platform
from typing import Optional

import numpy as np

from repro.engine.sharded import ShardedSlabHash
from repro.gpusim.device import TESLA_K40C
from repro.service import ServiceConfig, SlabHashService
from repro.workloads.distributions import GAMMA_40_UPDATES, build_concurrent_workload
from repro.workloads.generators import unique_random_keys, values_for_keys

SCHEMA_VERSION = 2
DEFAULT_OUT = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                           "BENCH_service_latency.json")


async def _drive(service: SlabHashService, workload, burst: int) -> None:
    """Submit the workload in concurrent bursts of ``burst`` operations.

    Each burst's futures are created together (one event-loop turn), so
    operations pile into the log and the batcher can cut warp-aligned
    batches, mimicking many simultaneous clients.
    """
    for start in range(0, len(workload), burst):
        end = min(start + burst, len(workload))
        await service.submit_many(
            workload.op_codes[start:end],
            workload.keys[start:end],
            workload.values[start:end],
        )


def run_benchmark(
    *,
    num_ops: int = 20_000,
    num_shards: int = 4,
    initial_elements: int = 20_000,
    max_batch_size: int = 1024,
    max_delay: float = 0.002,
    burst: int = 256,
    seed: int = 1,
) -> dict:
    """Build the engine, serve the stream, and assemble the JSON document."""
    engine = ShardedSlabHash.for_utilization(
        num_shards, initial_elements, 0.6, seed=seed
    )
    keys = unique_random_keys(initial_elements, seed=seed)
    engine.bulk_build(keys, values_for_keys(keys))
    workload = build_concurrent_workload(GAMMA_40_UPDATES, num_ops, keys, seed=seed + 7)
    config = ServiceConfig(max_batch_size=max_batch_size, max_delay=max_delay)
    service = SlabHashService(engine, config=config)

    async def main() -> None:
        async with service:
            await _drive(service, workload, burst)

    asyncio.run(main())
    stats = service.stats()
    return {
        "schema_version": SCHEMA_VERSION,
        "benchmark": "service_latency",
        "device_model": f"{TESLA_K40C.name} (simulated)",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "config": {
            "num_ops": int(num_ops),
            "num_shards": int(num_shards),
            "initial_elements": int(initial_elements),
            "max_batch_size": int(max_batch_size),
            "max_delay_s": float(max_delay),
            "burst": int(burst),
            "distribution": GAMMA_40_UPDATES.describe(),
        },
        "latency": stats.latency.as_dict(),
        "throughput": {
            "wall_seconds": stats.wall_seconds,
            "ops_per_sec": stats.ops_per_second,
            "modelled_seconds": stats.modelled_seconds,
            "modelled_ops_per_sec": stats.modelled_ops_per_second,
        },
        "batches": {
            "executed": stats.batches_executed,
            "mean_size": stats.mean_batch_size,
            "warp_aligned_fraction": (
                stats.warp_aligned_batches / stats.batches_executed
                if stats.batches_executed
                else 0.0
            ),
            "deadline_forced_fraction": (
                stats.deadline_forced_batches / stats.batches_executed
                if stats.batches_executed
                else 0.0
            ),
        },
    }


def validate_document(document: dict) -> None:
    """Raise ``ValueError`` if ``document`` does not match the schema.

    Single source of truth for the BENCH_service.json layout; the smoke test
    runs a tiny benchmark through this to catch schema drift.
    """
    required_top = {
        "schema_version": int,
        "benchmark": str,
        "device_model": str,
        "python": str,
        "numpy": str,
        "config": dict,
        "latency": dict,
        "throughput": dict,
        "batches": dict,
    }
    for field, kind in required_top.items():
        if field not in document:
            raise ValueError(f"missing top-level field {field!r}")
        if not isinstance(document[field], kind):
            raise ValueError(f"field {field!r} must be {kind.__name__}")
    if document["schema_version"] != SCHEMA_VERSION:
        raise ValueError(
            f"schema_version {document['schema_version']} != {SCHEMA_VERSION}"
        )
    if document["benchmark"] != "service_latency":
        raise ValueError("benchmark field must be 'service_latency'")
    for field in ("num_ops", "num_shards", "initial_elements", "max_batch_size",
                  "max_delay_s", "burst", "distribution"):
        if field not in document["config"]:
            raise ValueError(f"missing config field {field!r}")
    for field in ("count", "mean_s", "p50_s", "p90_s", "p99_s", "max_s"):
        value = document["latency"].get(field)
        if not isinstance(value, (int, float)) or value < 0:
            raise ValueError(f"latency field {field!r} must be a non-negative number")
    if document["latency"]["count"] != document["config"]["num_ops"]:
        raise ValueError("latency count must equal the configured num_ops")
    if not (document["latency"]["p50_s"] <= document["latency"]["p90_s"]
            <= document["latency"]["p99_s"] <= document["latency"]["max_s"]):
        raise ValueError("latency percentiles must be monotone")
    for field in ("wall_seconds", "ops_per_sec", "modelled_seconds", "modelled_ops_per_sec"):
        value = document["throughput"].get(field)
        if not isinstance(value, (int, float)) or value < 0:
            raise ValueError(f"throughput field {field!r} must be a non-negative number")
    batches = document["batches"]
    if not isinstance(batches.get("executed"), int) or batches["executed"] <= 0:
        raise ValueError("batches.executed must be a positive integer")
    if not isinstance(batches.get("mean_size"), (int, float)) or batches["mean_size"] <= 0:
        raise ValueError("batches.mean_size must be positive")
    for field in ("warp_aligned_fraction", "deadline_forced_fraction"):
        fraction = batches.get(field)
        if not isinstance(fraction, (int, float)) or not 0.0 <= fraction <= 1.0:
            raise ValueError(f"batches.{field} must be in [0, 1]")


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--num-ops", type=int, default=20_000,
                        help="operations in the served stream (default %(default)s)")
    parser.add_argument("--num-shards", type=int, default=4,
                        help="shards behind the service (default %(default)s)")
    parser.add_argument("--initial", type=int, default=20_000,
                        help="elements pre-built into the engine (default %(default)s)")
    parser.add_argument("--max-batch", type=int, default=1024,
                        help="micro-batcher batch-size cap (default %(default)s)")
    parser.add_argument("--max-delay", type=float, default=0.002,
                        help="co-batching latency budget, seconds (default %(default)s)")
    parser.add_argument("--burst", type=int, default=256,
                        help="client submission burst size (default %(default)s)")
    parser.add_argument("--out", type=str, default=DEFAULT_OUT,
                        help="output JSON path (default: BENCH_service_latency.json "
                             "at the repo root)")
    args = parser.parse_args(argv)

    document = run_benchmark(
        num_ops=args.num_ops,
        num_shards=args.num_shards,
        initial_elements=args.initial,
        max_batch_size=args.max_batch,
        max_delay=args.max_delay,
        burst=args.burst,
    )
    validate_document(document)
    os.makedirs(os.path.dirname(os.path.abspath(args.out)), exist_ok=True)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")

    print(f"wrote {args.out}")
    latency = document["latency"]
    throughput = document["throughput"]
    batches = document["batches"]
    print(f"  latency  p50 {latency['p50_s'] * 1e3:7.2f} ms   "
          f"p90 {latency['p90_s'] * 1e3:7.2f} ms   p99 {latency['p99_s'] * 1e3:7.2f} ms")
    print(f"  wall     {throughput['ops_per_sec'] / 1e3:9.1f} kops/s over "
          f"{throughput['wall_seconds']:.3f}s")
    print(f"  modelled {throughput['modelled_ops_per_sec'] / 1e6:9.1f} Mops/s "
          f"({throughput['modelled_seconds'] * 1e3:.3f} ms device time)")
    print(f"  batches  {batches['executed']} executed, mean size {batches['mean_size']:.0f}, "
          f"{batches['warp_aligned_fraction']:.0%} warp-aligned, "
          f"{batches['deadline_forced_fraction']:.0%} deadline-forced")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
