"""Figure 7: truly concurrent mixed workloads.

Regenerates:
  * Fig. 7a — operation rate versus initial memory utilization for the three
    operation distributions Gamma_0 (100 % updates), Gamma_1 (40 % updates)
    and Gamma_2 (20 % updates);
  * Fig. 7b — slab hash versus Misra & Chaudhuri's lock-free chaining hash
    table, sweeping the number of buckets (the scaled equivalent of 1 M
    operations per configuration).

Paper reference points: rates order as Gamma_2 > Gamma_1 > Gamma_0, degrade
sharply past ~65 % utilization (down to ~100 M ops/s around 90 %), and the
slab hash outperforms Misra's table by 5.1x / 4.3x / 3.1x (geometric mean) for
100 % / 40 % / 20 % updates.
"""

from _bench_utils import emit

from repro.perf import figures


def test_fig7a_concurrent_rates(benchmark):
    result = benchmark.pedantic(
        lambda: figures.figure_7a(sim_elements=2**12), rounds=1, iterations=1
    )
    emit(result, benchmark)
    rates = {series.label: series.as_dict() for series in result.series}
    light = rates["20% updates, 80% searches"]
    heavy = rates["100% updates, 0% searches"]
    # Fewer updates -> higher throughput, at every utilization.
    assert all(light[x] >= heavy[x] for x in light)
    # The >65 % utilization cliff appears for every distribution.
    for series in result.series:
        points = series.as_dict()
        assert points[0.9] < 0.55 * points[0.5]


def test_fig7b_vs_misra(benchmark):
    result = benchmark.pedantic(
        lambda: figures.figure_7b(
            bucket_counts=(64, 128, 256, 512, 1024),
            num_operations=2**12,
            initial_elements=2**12,
        ),
        rounds=1,
        iterations=1,
    )
    emit(result, benchmark)
    speedups = [v for k, v in result.extra.items() if k.startswith("speedup_")]
    assert len(speedups) == 3
    # Paper: 3.1x - 5.1x geometric-mean speedups; accept the same order of magnitude.
    assert all(2.0 <= s <= 10.0 for s in speedups)
    # Both structures speed up with more buckets (shorter chains).
    for series in result.series:
        assert series.y[-1] > series.y[0]
