"""Figure 5: bulk performance versus total number of stored elements (60 % utilization).

Regenerates:
  * Fig. 5a — build rate versus n (2^16 .. 2^26),
  * Fig. 5b — search rate versus n, all-found and none-found.

Paper reference points: CUDPP builds particularly fast for small tables (its
atomics stay in cache); the slab hash delivers size-stable search rates with
harmonic means around 861 / 793 M queries/s (all / none); over the sweep the
two methods are within ~20 % of each other (geomean 1.19x / 1.19x / 0.94x for
build / search-all / search-none).
"""

from _bench_utils import emit

from repro.perf import figures

TABLE_SIZES = tuple(2**k for k in range(16, 27, 2))
SIM_ELEMENTS = 2**12


def test_fig5a_build_rate_vs_n(benchmark):
    result = benchmark.pedantic(
        lambda: figures.figure_5a(table_sizes=TABLE_SIZES, sim_elements=SIM_ELEMENTS),
        rounds=1,
        iterations=1,
    )
    emit(result, benchmark)
    cudpp = result.series_by_label("CUDPP").as_dict()
    slab = result.series_by_label("SlabHash")
    assert cudpp[16.0] > cudpp[24.0]  # the small-table (L2) advantage
    assert max(slab.y) / min(slab.y) < 1.6  # slab hash is size-stable


def test_fig5b_search_rate_vs_n(benchmark):
    result = benchmark.pedantic(
        lambda: figures.figure_5b(table_sizes=TABLE_SIZES, sim_elements=SIM_ELEMENTS),
        rounds=1,
        iterations=1,
    )
    emit(result, benchmark)
    slab_all = result.series_by_label("SlabHash-all")
    slab_none = result.series_by_label("SlabHash-none")
    # Paper: consistent performance, harmonic means 861 / 793 M queries/s.
    assert 600 <= result.extra["slabhash_all_harmonic_mean"] <= 1100
    assert max(slab_all.y) / min(slab_all.y) < 1.6
    assert max(slab_none.y) / min(slab_none.y) < 1.6
