"""Micro-benchmarks of the simulator itself (wall-clock, pytest-benchmark style).

Unlike the figure benchmarks (whose interesting output is the *modelled*
device throughput), these measure the wall-clock speed of the pure-Python warp
simulator on the core operations.  They are useful for tracking regressions in
the simulator's own performance and for sizing the figure benchmarks.
"""

import numpy as np

from repro.core.config import SlabAllocConfig
from repro.core.slab_alloc import SlabAlloc
from repro.core.slab_hash import SlabHash
from repro.gpusim.device import Device
from repro.gpusim.warp import Warp
from repro.workloads.generators import unique_random_keys, values_for_keys

CFG = SlabAllocConfig(num_super_blocks=4, num_memory_blocks=32, units_per_block=256)
N = 2**11


def _fresh_table(seed=0):
    table = SlabHash(SlabHash.buckets_for_utilization(N, 0.6), alloc_config=CFG, seed=seed)
    keys = unique_random_keys(N, seed=seed)
    values = values_for_keys(keys)
    return table, keys, values


def test_micro_bulk_build(benchmark):
    def build():
        table, keys, values = _fresh_table(seed=1)
        table.bulk_build(keys, values)
        return table

    table = benchmark.pedantic(build, rounds=3, iterations=1)
    assert len(table) == N


def test_micro_bulk_search(benchmark):
    table, keys, values = _fresh_table(seed=2)
    table.bulk_build(keys, values)
    result = benchmark.pedantic(lambda: table.bulk_search(keys), rounds=3, iterations=1)
    assert np.array_equal(result, values)


def test_micro_bulk_delete(benchmark):
    def build_and_delete():
        table, keys, _ = _fresh_table(seed=3)
        table.bulk_build(keys, values_for_keys(keys))
        return table.bulk_delete(keys)

    removed = benchmark.pedantic(build_and_delete, rounds=2, iterations=1)
    assert removed.sum() == N


def test_micro_slaballoc_allocate(benchmark):
    def allocate_many():
        device = Device()
        alloc = SlabAlloc(device, CFG, seed=4)
        warps = [Warp(i, device.counters) for i in range(16)]
        return [alloc.warp_allocate(warps[i % 16]) for i in range(4096)]

    addresses = benchmark.pedantic(allocate_many, rounds=3, iterations=1)
    assert len(set(addresses)) == 4096


def test_micro_flush(benchmark):
    table, keys, values = _fresh_table(seed=5)
    table.bulk_build(keys, values)
    table.bulk_delete(keys[::2])

    results = benchmark.pedantic(table.flush, rounds=1, iterations=1)
    assert sum(r.slabs_released for r in results) >= 0
