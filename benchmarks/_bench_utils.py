"""Helpers shared by the benchmark modules (kept out of conftest to avoid
module-name collisions with the repository-root conftest)."""

from __future__ import annotations

import os
import sys

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")


def emit(result, benchmark=None) -> None:
    """Write a FigureResult to benchmarks/results/ and echo it to stdout."""
    from repro.perf.report import format_figure

    os.makedirs(RESULTS_DIR, exist_ok=True)
    text = format_figure(result)
    slug = result.figure_id.lower().replace(" ", "_").replace("(", "").replace(")", "")
    path = os.path.join(RESULTS_DIR, f"{slug}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    sys.stdout.write("\n" + text + "\n")
    if benchmark is not None:
        for key, value in result.extra.items():
            benchmark.extra_info[key] = value
