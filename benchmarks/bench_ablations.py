"""Design-choice ablations and analytic comparisons from the paper's discussion.

* SlabAlloc vs SlabAlloc-light on a lookup-heavy workload (Section V: "up to
  25 % improvement" from the cheaper address decode).
* The Section VI-C analytic comparison against GFSL (lock-based GPU skip list,
  peak ~100 M searches/s and ~50 M updates/s on a GTX 970).
* The warp-cooperative work sharing strategy versus traditional per-thread
  processing of the very same slab-list traversals (Section IV-A).
* The slab-size design choice (Section III-A / IV-B): 128-byte slabs balance
  the utilization ceiling against transactions per traversal.
"""

from _bench_utils import emit

from repro.perf import figures


def test_slaballoc_light_search_gain(benchmark):
    result = benchmark.pedantic(
        lambda: figures.slaballoc_light_ablation(sim_elements=2**13), rounds=1, iterations=1
    )
    emit(result, benchmark)
    # The light variant is never slower and gains a few percent at high
    # utilization (the paper reports up to 25 % in lookup-heavy scenarios).
    assert 1.0 <= result.extra["light_speedup"] <= 1.3


def test_gfsl_analytic_comparison(benchmark):
    result = benchmark.pedantic(lambda: figures.gfsl_comparison(), rounds=1, iterations=1)
    emit(result, benchmark)
    assert 60 <= result.extra["gfsl_peak_search_mops"] <= 160   # paper quotes ~100
    assert 30 <= result.extra["gfsl_peak_update_mops"] <= 80    # paper quotes ~50
    gfsl = result.series_by_label("GFSL").as_dict()
    slab = result.series_by_label("SlabHash (paper peak)").as_dict()
    assert slab[0.0] / gfsl[0.0] > 3
    assert slab[1.0] / gfsl[1.0] > 3


def test_wcws_vs_per_thread(benchmark):
    result = benchmark.pedantic(
        lambda: figures.wcws_vs_per_thread(sim_elements=2**13), rounds=1, iterations=1
    )
    emit(result, benchmark)
    assert result.extra["wcws_speedup"] > 2.0


def test_slab_size_ablation(benchmark):
    result = benchmark.pedantic(lambda: figures.slab_size_ablation(), rounds=1, iterations=1)
    emit(result, benchmark)
    cost = result.series_by_label("relative search cost").as_dict()
    utilization = result.series_by_label("max utilization").as_dict()
    # 128-byte slabs minimize traversal cost among the evaluated sizes while
    # keeping the ~94 % utilization ceiling.
    assert cost[128.0] == min(cost.values())
    assert utilization[128.0] > 0.9
