"""Benchmark-suite pytest configuration: make ``src/`` and this directory importable."""

from __future__ import annotations

import os
import sys

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
for path in (_SRC, _HERE):
    if path not in sys.path:
        sys.path.insert(0, path)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Print every regenerated table/figure after the benchmark run.

    The figure drivers write their tables to ``benchmarks/results/``; echoing
    them here (outside pytest's output capture) means a plain
    ``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` records the
    reproduced paper tables alongside the timing summary.
    """
    results_dir = os.path.join(_HERE, "results")
    if not os.path.isdir(results_dir):
        return
    terminalreporter.write_sep("=", "reproduced paper tables and figures")
    for name in sorted(os.listdir(results_dir)):
        if not name.endswith(".txt"):
            continue
        with open(os.path.join(results_dir, name), "r", encoding="utf-8") as handle:
            terminalreporter.write_line("")
            for line in handle.read().splitlines():
                terminalreporter.write_line(line)
