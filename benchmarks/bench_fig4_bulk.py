"""Figure 4: bulk build/search performance versus memory utilization (paper n = 2^22).

Regenerates:
  * Fig. 4a — build rate (M elements/s) for the slab hash and CUDPP cuckoo hashing,
  * Fig. 4b — search rate (M queries/s), all-found and none-found variants,
  * Fig. 4c — achieved memory utilization versus average slab count beta.

Paper reference points: slab hash peaks at 512 M updates/s and 937 M queries/s;
both build and search drop sharply above ~65 % utilization (beta crossing 1);
cuckoo hashing is ~1.3x faster at building and ~2x faster at searching on a
geometric mean over the utilization sweep.
"""

from _bench_utils import emit

from repro.perf import figures

SIM_ELEMENTS = 2**13


def test_fig4a_build_rate(benchmark):
    result = benchmark.pedantic(
        lambda: figures.figure_4a(sim_elements=SIM_ELEMENTS), rounds=1, iterations=1
    )
    emit(result, benchmark)
    slab = result.series_by_label("SlabHash")
    cudpp = result.series_by_label("CUDPP")
    # Paper trends: a peak in the paper's ballpark, a cliff past ~65 % utilization,
    # and cuckoo hashing ahead (or at least competitive) on the geometric mean.
    assert 350 <= max(slab.y) <= 750
    assert slab.as_dict()[0.9] < 0.5 * max(slab.y)
    assert result.extra["geomean_cuckoo_over_slab"] > 0.8


def test_fig4b_search_rate(benchmark):
    result = benchmark.pedantic(
        lambda: figures.figure_4b(sim_elements=SIM_ELEMENTS), rounds=1, iterations=1
    )
    emit(result, benchmark)
    slab_all = result.series_by_label("SlabHash-all")
    assert 700 <= max(slab_all.y) <= 1100  # paper: 937 M queries/s
    assert slab_all.as_dict()[0.9] < 0.5 * max(slab_all.y)
    assert 1.2 <= result.extra["geomean_cuckoo_over_slab_all"] <= 3.0  # paper: 2.08x
    assert 1.2 <= result.extra["geomean_cuckoo_over_slab_none"] <= 3.0  # paper: 2.04x


def test_fig4c_utilization_vs_beta(benchmark):
    result = benchmark.pedantic(
        lambda: figures.figure_4c(sim_elements=SIM_ELEMENTS), rounds=1, iterations=1
    )
    emit(result, benchmark)
    measured = result.series_by_label("measured")
    assert measured.y == sorted(measured.y)  # utilization grows with beta
    assert max(measured.y) <= 0.94 + 1e-6  # the 94 % ceiling
    assert result.extra["max_utilization"] == benchmark.extra_info["max_utilization"]
