"""Figure 6: incremental batched insertion versus rebuilding from scratch.

Regenerates the cumulative-time curves of Fig. 6: the slab hash inserts each
new batch into the existing table, while CUDPP's cuckoo hashing is rebuilt
from scratch after every batch (final memory utilization fixed at 65 %).

Paper reference points: final speedups of 17.3x, 10.4x and 6.4x for batches of
32k, 64k and 128k elements (2 M elements total) — the smaller the batch, the
wider the gap.
"""

from _bench_utils import emit

from repro.perf import figures


def test_fig6_incremental_vs_rebuild(benchmark):
    result = benchmark.pedantic(
        lambda: figures.figure_6(total_elements=2**14, batch_sizes=(256, 512, 1024)),
        rounds=1,
        iterations=1,
    )
    emit(result, benchmark)
    speedups = {k: v for k, v in result.extra.items() if k.startswith("speedup_batch_")}
    assert len(speedups) == 3
    ordered = [speedups[k] for k in sorted(speedups, key=lambda k: int(k.split("_")[-1][:-1]))]
    # Smaller batches -> larger speedup, and every speedup is substantial.
    assert ordered[0] > ordered[1] > ordered[2]
    assert all(s > 4 for s in ordered)
    # Cumulative slab-hash time grows roughly linearly while the rebuild
    # strategy grows super-linearly: the last point dominates the first.
    for series in result.series:
        assert series.y == sorted(series.y)
