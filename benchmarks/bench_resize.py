"""Amortized wall-clock cost of online resizing under churn.

Measures **real host wall-clock seconds** (like ``bench_wallclock.py``, not
modelled GPU time) for the churn scenario of :mod:`repro.workloads.churn`:
the population swings between ``peak / BASE_DIVISOR`` and ``peak`` for
``CYCLES`` insert/delete cycles.  Two tables run the identical operation
stream:

* **auto** — starts sized for the base population with a
  :class:`~repro.core.resize.LoadFactorPolicy` attached, so it grows and
  shrinks with the population; every migration's cost is *included* in its
  wall-clock time (that is the amortization being measured);
* **fixed** — the same undersized table without a policy; chains stretch at
  every peak and (unique-keys mode) tombstones accumulate cycle over cycle,
  so every later batch pays for history.

The results feed ``BENCH_wallclock.json`` schema v3: per-backend
``resize_churn`` entries in ``results`` / ``speedups`` (recorded by
``bench_wallclock.py``, which imports this module) and the top-level
``resize_churn`` comparison section whose ``auto_over_fixed`` ratio is the
headline number — amortized resize churn beats the fixed undersized table.

Run standalone to refresh just the comparison section of an existing
``BENCH_wallclock.json``::

    PYTHONPATH=src python benchmarks/bench_resize.py [--num-keys 100000]
        [--cycles 6] [--out BENCH_wallclock.json] [--print-only]

Under pytest (the benchmark suite) this module also asserts the modelled
version of the same claim via ``repro.perf.figures.resize_sweep``.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import time
from typing import Optional

from repro.core.resize import LoadFactorPolicy
from repro.core.slab_hash import SlabHash
from repro.workloads.churn import build_churn_workload, run_churn

#: Churn shape shared by every measurement (and by the schema smoke test):
#: population swings between peak/BASE_DIVISOR and peak, CYCLES times.  The
#: deep trough and repeated cycles are what make tombstone accumulation (not
#: just chain length) the fixed table's dominant cost.
CYCLES = 6
BASE_DIVISOR = 16

DEFAULT_OUT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "BENCH_wallclock.json"
)


def churn_policy(initial_buckets: int) -> LoadFactorPolicy:
    """The adaptive policy the churn measurements use.

    ``grow_factor=4`` keeps the number of migrations per insert ramp small
    (coarse geometric steps amortize better on the host simulator), and the
    bucket floor stays at half the initial sizing so the trough's shrink
    cannot collapse the table.
    """
    return LoadFactorPolicy(grow_factor=4.0, min_buckets=max(1, initial_buckets // 2))


def run_churn_once(
    num_keys: int,
    *,
    backend: str,
    adaptive: bool,
    cycles: int = CYCLES,
    seed: int = 1,
) -> dict:
    """One full churn run on a fresh table; returns wall-clock and resize stats."""
    base = max(64, num_keys // BASE_DIVISOR)
    workload = build_churn_workload(num_keys, base_elements=base, cycles=cycles, seed=seed)
    buckets = SlabHash.buckets_for_beta(base, 0.6)
    policy = churn_policy(buckets) if adaptive else None
    gc.collect()
    table = SlabHash(buckets, backend=backend, seed=seed, policy=policy)
    start = time.perf_counter()
    total_ops = run_churn(table, workload)
    seconds = time.perf_counter() - start
    return {
        "seconds": seconds,
        "total_ops": total_ops,
        "ops_per_sec": total_ops / seconds if seconds > 0 else float("inf"),
        "grows": table.resize_stats.grows,
        "shrinks": table.resize_stats.shrinks,
        "migrated_items": table.resize_stats.migrated_items,
        "final_buckets": table.num_buckets,
        "final_beta": table.beta(),
    }


def measure_churn(num_keys: int, *, backend: str, cycles: int = CYCLES) -> dict:
    """Adaptive churn timing for one backend (the per-backend results entry).

    A churn run is long (hundreds of thousands of operations), so a single
    run is stable enough — no best-of-N like the short bulk measurements.
    """
    return run_churn_once(num_keys, backend=backend, adaptive=True, cycles=cycles)


def churn_comparison(num_keys: int, *, cycles: int = CYCLES, auto: Optional[dict] = None) -> dict:
    """Auto-resize versus fixed-undersized churn on the vectorized backend.

    ``auto`` accepts an already-measured adaptive run (the shape
    :func:`run_churn_once` returns) so a caller that just timed it — like
    ``bench_wallclock.run_benchmark`` — does not repeat a long churn run.
    """
    if auto is None:
        auto = run_churn_once(num_keys, backend="vectorized", adaptive=True, cycles=cycles)
    fixed = run_churn_once(num_keys, backend="vectorized", adaptive=False, cycles=cycles)
    return {
        "num_keys": int(num_keys),
        "cycles": int(cycles),
        "base_divisor": BASE_DIVISOR,
        "total_ops": auto["total_ops"],
        "auto": auto,
        "fixed": fixed,
        "auto_over_fixed": fixed["seconds"] / auto["seconds"],
    }


def validate_section(section: dict) -> None:
    """Raise ``ValueError`` if a ``resize_churn`` section does not match the schema."""
    if not isinstance(section, dict):
        raise ValueError("resize_churn must be an object")
    for field in ("num_keys", "cycles", "base_divisor", "total_ops"):
        if not isinstance(section.get(field), int):
            raise ValueError(f"resize_churn field {field!r} must be an integer")
    for variant in ("auto", "fixed"):
        entry = section.get(variant)
        if not isinstance(entry, dict):
            raise ValueError(f"resize_churn must contain a {variant!r} object")
        for field in ("seconds", "total_ops", "ops_per_sec", "grows", "shrinks",
                      "migrated_items", "final_buckets", "final_beta"):
            if not isinstance(entry.get(field), (int, float)):
                raise ValueError(f"resize_churn {variant} field {field!r} must be numeric")
    if section["auto"]["grows"] < 1 or section["auto"]["shrinks"] < 1:
        raise ValueError("the auto churn run must perform at least one grow and one shrink")
    if section["fixed"]["grows"] != 0 or section["fixed"]["shrinks"] != 0:
        raise ValueError("the fixed churn run must not resize")
    ratio = section.get("auto_over_fixed")
    if not isinstance(ratio, (int, float)) or ratio <= 0:
        raise ValueError("resize_churn auto_over_fixed must be a positive number")


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--num-keys", type=int, default=100_000,
                        help="peak churn population (default %(default)s)")
    parser.add_argument("--cycles", type=int, default=CYCLES,
                        help="insert/delete cycles (default %(default)s)")
    parser.add_argument("--out", type=str, default=DEFAULT_OUT,
                        help="BENCH_wallclock.json to update in place (default: repo root)")
    parser.add_argument("--print-only", action="store_true",
                        help="measure and print, but do not touch the JSON document")
    args = parser.parse_args(argv)

    comparison = churn_comparison(args.num_keys, cycles=args.cycles)
    validate_section(comparison)
    for variant in ("auto", "fixed"):
        entry = comparison[variant]
        print(f"  {variant:5s} n={args.num_keys:>7d} {entry['seconds']:8.3f}s "
              f"{entry['ops_per_sec'] / 1e3:9.1f} kops/s  grows={entry['grows']} "
              f"shrinks={entry['shrinks']} final_beta={entry['final_beta']:.3f}")
    print(f"  auto_over_fixed: {comparison['auto_over_fixed']:.2f}x")

    if args.print_only:
        return 0
    if not os.path.exists(args.out):
        print(f"{args.out} does not exist; run benchmarks/bench_wallclock.py first "
              "(it records the full schema-v3 document, including this section)")
        return 1
    with open(args.out, encoding="utf-8") as handle:
        document = json.load(handle)
    document["resize_churn"] = comparison
    import bench_wallclock  # deferred: bench_wallclock imports this module

    bench_wallclock.validate_document(document)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    print(f"updated resize_churn section of {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())


# --------------------------------------------------------------------------- #
# Benchmark-suite tests (pytest; see scripts/smoke.sh)
# --------------------------------------------------------------------------- #


def test_resize_sweep_adaptive_beats_undersized(benchmark):
    """Modelled churn throughput: the adaptive table must beat fixed-undersized."""
    from _bench_utils import emit
    from repro.perf import figures

    result = benchmark.pedantic(
        lambda: figures.resize_sweep(sim_elements=2**12, cycles=3), rounds=1, iterations=1
    )
    emit(result, benchmark)
    assert result.extra["adaptive_over_undersized"] > 1.2
    assert result.extra["adaptive_grows"] >= 1
    assert result.extra["adaptive_shrinks"] >= 1
    assert result.extra["adaptive_beta_in_band"] == 1.0


def test_churn_comparison_structure_and_coverage():
    """A tiny wall-clock comparison satisfies the schema and exercises resizing."""
    comparison = churn_comparison(2048, cycles=3)
    validate_section(comparison)
    assert comparison["auto"]["grows"] >= 1
    assert comparison["auto"]["shrinks"] >= 1
    # The fixed table served the same stream without ever resizing.
    assert comparison["fixed"]["total_ops"] == comparison["auto"]["total_ops"]
