"""Amortized wall-clock cost of online resizing under churn.

Measures **real host wall-clock seconds** (like ``bench_wallclock.py``, not
modelled GPU time) for the churn scenario of :mod:`repro.workloads.churn`:
the population swings between ``peak / BASE_DIVISOR`` and ``peak`` for
``CYCLES`` insert/delete cycles.  Two tables run the identical operation
stream:

* **auto** — starts sized for the base population with a
  :class:`~repro.core.resize.LoadFactorPolicy` attached, so it grows and
  shrinks with the population; every migration's cost is *included* in its
  wall-clock time (that is the amortization being measured);
* **fixed** — the same undersized table without a policy; chains stretch at
  every peak and (unique-keys mode) tombstones accumulate cycle over cycle,
  so every later batch pays for history.

The results feed ``BENCH_wallclock.json``: per-backend ``resize_churn``
entries in ``results`` / ``speedups`` (recorded by ``bench_wallclock.py``,
which imports this module), the top-level ``resize_churn`` comparison
section whose ``auto_over_fixed`` ratio is the headline number — amortized
resize churn beats the fixed undersized table — and, since schema v5, the
top-level ``incremental_resize`` section: a **modelled-latency** comparison
of one incremental migration against the equivalent stop-the-world rebuild
(:func:`incremental_comparison`).  Its ``stw_over_incremental_max`` ratio is
the tentpole claim of the non-blocking resize: the worst pause any
operation can land behind shrinks from a whole rebuild to one bounded
migration step — an order of magnitude at production sizes, which
``validate_incremental_section`` enforces at ``num_keys >= 100000``.

Run standalone to refresh just the comparison sections of an existing
``BENCH_wallclock.json``::

    PYTHONPATH=src python benchmarks/bench_resize.py [--num-keys 100000]
        [--cycles 6] [--out BENCH_wallclock.json] [--print-only]

Under pytest (the benchmark suite) this module also asserts the modelled
version of the same claim via ``repro.perf.figures.resize_sweep``.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import time
from typing import Optional

import numpy as np

from repro.core.resize import LoadFactorPolicy
from repro.core.slab_hash import SlabHash
from repro.workloads.churn import build_churn_workload, run_churn

#: Churn shape shared by every measurement (and by the schema smoke test):
#: population swings between peak/BASE_DIVISOR and peak, CYCLES times.  The
#: deep trough and repeated cycles are what make tombstone accumulation (not
#: just chain length) the fixed table's dominant cost.
CYCLES = 6
BASE_DIVISOR = 16

DEFAULT_OUT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "BENCH_wallclock.json"
)


def churn_policy(initial_buckets: int) -> LoadFactorPolicy:
    """The adaptive policy the churn measurements use.

    ``grow_factor=4`` keeps the number of migrations per insert ramp small
    (coarse geometric steps amortize better on the host simulator), and the
    bucket floor stays at half the initial sizing so the trough's shrink
    cannot collapse the table.
    """
    return LoadFactorPolicy(grow_factor=4.0, min_buckets=max(1, initial_buckets // 2))


def run_churn_once(
    num_keys: int,
    *,
    backend: str,
    adaptive: bool,
    cycles: int = CYCLES,
    seed: int = 1,
) -> dict:
    """One full churn run on a fresh table; returns wall-clock and resize stats."""
    base = max(64, num_keys // BASE_DIVISOR)
    workload = build_churn_workload(num_keys, base_elements=base, cycles=cycles, seed=seed)
    buckets = SlabHash.buckets_for_beta(base, 0.6)
    policy = churn_policy(buckets) if adaptive else None
    gc.collect()
    table = SlabHash(buckets, backend=backend, seed=seed, policy=policy)
    start = time.perf_counter()
    total_ops = run_churn(table, workload)
    seconds = time.perf_counter() - start
    return {
        "seconds": seconds,
        "total_ops": total_ops,
        "ops_per_sec": total_ops / seconds if seconds > 0 else float("inf"),
        "grows": table.resize_stats.grows,
        "shrinks": table.resize_stats.shrinks,
        "migrated_items": table.resize_stats.migrated_items,
        "final_buckets": table.num_buckets,
        "final_beta": table.beta(),
    }


def measure_churn(num_keys: int, *, backend: str, cycles: int = CYCLES) -> dict:
    """Adaptive churn timing for one backend (the per-backend results entry).

    A churn run is long (hundreds of thousands of operations), so a single
    run is stable enough — no best-of-N like the short bulk measurements.
    """
    return run_churn_once(num_keys, backend=backend, adaptive=True, cycles=cycles)


def churn_comparison(num_keys: int, *, cycles: int = CYCLES, auto: Optional[dict] = None) -> dict:
    """Auto-resize versus fixed-undersized churn on the vectorized backend.

    ``auto`` accepts an already-measured adaptive run (the shape
    :func:`run_churn_once` returns) so a caller that just timed it — like
    ``bench_wallclock.run_benchmark`` — does not repeat a long churn run.
    """
    if auto is None:
        auto = run_churn_once(num_keys, backend="vectorized", adaptive=True, cycles=cycles)
    fixed = run_churn_once(num_keys, backend="vectorized", adaptive=False, cycles=cycles)
    return {
        "num_keys": int(num_keys),
        "cycles": int(cycles),
        "base_divisor": BASE_DIVISOR,
        "total_ops": auto["total_ops"],
        "auto": auto,
        "fixed": fixed,
        "auto_over_fixed": fixed["seconds"] / auto["seconds"],
    }


def _p99(samples: list) -> float:
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(0.99 * (len(ordered) - 1)))]


def incremental_comparison(
    num_keys: int, *, step_buckets: int = 64, batch_ops: int = 512, seed: int = 11
) -> dict:
    """Incremental migration versus a stop-the-world rebuild, in modelled time.

    Two identical right-sized tables holding ``num_keys`` items double their
    bucket count while an insert stream keeps arriving.  The stop-the-world
    twin pays one :meth:`~repro.core.slab_hash.SlabHash.resize` — the whole
    rebuild lands in a single pause some unlucky batch waits out.  The
    incremental twin begins a migration and pumps **one bounded step per
    interleaved batch**; its worst pause is one band of ``step_buckets``
    buckets.  Modelled device seconds (the same accounting the engine uses
    for every kernel) make the comparison exactly reproducible — no host
    wall-clock noise.

    The twins are verified to land on identical contents before the timings
    are reported.
    """
    buckets = SlabHash.buckets_for_beta(num_keys, 0.6)
    target = buckets * 2
    rng = np.random.default_rng(seed)
    base = rng.choice(2**28, size=2 * num_keys, replace=False).astype(np.uint32)
    resident, fresh = base[:num_keys], base[num_keys:]

    stw = SlabHash(buckets, backend="vectorized", seed=seed)
    stw.bulk_insert(resident, resident)
    rebuild = stw.resize(target)

    incr = SlabHash(buckets, backend="vectorized", seed=seed)
    incr.bulk_insert(resident, resident)
    incr.begin_resize(target, step_buckets=step_buckets)
    pauses: list = []
    cursor = 0
    while incr.migration is not None:
        batch = fresh[cursor : cursor + batch_ops]
        cursor += batch_ops
        if len(batch):
            incr.bulk_insert(batch, batch)  # routed old/new by the watermark
        pauses.append(incr.migrate_step().seconds)

    # The stop-the-world twin serves the same interleaved stream (after its
    # rebuild); both must land on identical live contents.
    used = fresh[:cursor]
    if len(used):
        stw.bulk_insert(used, used)
    if sorted(incr.items()) != sorted(stw.items()):
        raise AssertionError("incremental and stop-the-world twins diverged")

    worst_step = max(pauses)
    return {
        "num_keys": int(num_keys),
        "old_buckets": int(buckets),
        "new_buckets": int(target),
        "step_buckets": int(step_buckets),
        "interleaved_batch_ops": int(batch_ops),
        "stop_the_world": {
            "rebuild_seconds": rebuild.seconds,
            "migrated_items": rebuild.migrated,
        },
        "incremental": {
            "steps": len(pauses),
            "items_moved": incr.resize_stats.migration_items,
            "max_step_seconds": worst_step,
            "p99_step_seconds": _p99(pauses),
            "total_seconds": sum(pauses),
        },
        "stw_over_incremental_max": rebuild.seconds / worst_step,
    }


def validate_incremental_section(section: dict) -> None:
    """Raise ``ValueError`` if an ``incremental_resize`` section drifts.

    At production sizes (``num_keys >= 100000``) the tentpole claim itself
    is enforced: the worst incremental pause must sit an order of magnitude
    below the stop-the-world rebuild.
    """
    if not isinstance(section, dict):
        raise ValueError("incremental_resize must be an object")
    for field in ("num_keys", "old_buckets", "new_buckets", "step_buckets",
                  "interleaved_batch_ops"):
        if not isinstance(section.get(field), int):
            raise ValueError(f"incremental_resize field {field!r} must be an integer")
    stw = section.get("stop_the_world")
    if not isinstance(stw, dict):
        raise ValueError("incremental_resize must contain a 'stop_the_world' object")
    for field in ("rebuild_seconds", "migrated_items"):
        if not isinstance(stw.get(field), (int, float)):
            raise ValueError(f"incremental_resize stop_the_world field {field!r} must be numeric")
    incremental = section.get("incremental")
    if not isinstance(incremental, dict):
        raise ValueError("incremental_resize must contain an 'incremental' object")
    for field in ("steps", "items_moved", "max_step_seconds", "p99_step_seconds",
                  "total_seconds"):
        if not isinstance(incremental.get(field), (int, float)):
            raise ValueError(f"incremental_resize incremental field {field!r} must be numeric")
    if incremental["steps"] < 1:
        raise ValueError("the incremental twin must pump at least one step")
    ratio = section.get("stw_over_incremental_max")
    if not isinstance(ratio, (int, float)) or ratio <= 0:
        raise ValueError("incremental_resize stw_over_incremental_max must be positive")
    if section["num_keys"] >= 100_000 and ratio < 10:
        raise ValueError(
            "at production sizes the worst incremental pause must be an order "
            f"of magnitude below the rebuild; got {ratio:.2f}x"
        )


def validate_section(section: dict) -> None:
    """Raise ``ValueError`` if a ``resize_churn`` section does not match the schema."""
    if not isinstance(section, dict):
        raise ValueError("resize_churn must be an object")
    for field in ("num_keys", "cycles", "base_divisor", "total_ops"):
        if not isinstance(section.get(field), int):
            raise ValueError(f"resize_churn field {field!r} must be an integer")
    for variant in ("auto", "fixed"):
        entry = section.get(variant)
        if not isinstance(entry, dict):
            raise ValueError(f"resize_churn must contain a {variant!r} object")
        for field in ("seconds", "total_ops", "ops_per_sec", "grows", "shrinks",
                      "migrated_items", "final_buckets", "final_beta"):
            if not isinstance(entry.get(field), (int, float)):
                raise ValueError(f"resize_churn {variant} field {field!r} must be numeric")
    if section["auto"]["grows"] < 1 or section["auto"]["shrinks"] < 1:
        raise ValueError("the auto churn run must perform at least one grow and one shrink")
    if section["fixed"]["grows"] != 0 or section["fixed"]["shrinks"] != 0:
        raise ValueError("the fixed churn run must not resize")
    ratio = section.get("auto_over_fixed")
    if not isinstance(ratio, (int, float)) or ratio <= 0:
        raise ValueError("resize_churn auto_over_fixed must be a positive number")


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--num-keys", type=int, default=100_000,
                        help="peak churn population (default %(default)s)")
    parser.add_argument("--cycles", type=int, default=CYCLES,
                        help="insert/delete cycles (default %(default)s)")
    parser.add_argument("--out", type=str, default=DEFAULT_OUT,
                        help="BENCH_wallclock.json to update in place (default: repo root)")
    parser.add_argument("--print-only", action="store_true",
                        help="measure and print, but do not touch the JSON document")
    args = parser.parse_args(argv)

    comparison = churn_comparison(args.num_keys, cycles=args.cycles)
    validate_section(comparison)
    for variant in ("auto", "fixed"):
        entry = comparison[variant]
        print(f"  {variant:5s} n={args.num_keys:>7d} {entry['seconds']:8.3f}s "
              f"{entry['ops_per_sec'] / 1e3:9.1f} kops/s  grows={entry['grows']} "
              f"shrinks={entry['shrinks']} final_beta={entry['final_beta']:.3f}")
    print(f"  auto_over_fixed: {comparison['auto_over_fixed']:.2f}x")

    incremental = incremental_comparison(args.num_keys)
    validate_incremental_section(incremental)
    print(f"  stop-the-world rebuild: "
          f"{incremental['stop_the_world']['rebuild_seconds']:.3e}s modelled; "
          f"worst incremental step: "
          f"{incremental['incremental']['max_step_seconds']:.3e}s "
          f"({incremental['incremental']['steps']} steps)")
    print(f"  stw_over_incremental_max: {incremental['stw_over_incremental_max']:.1f}x")

    if args.print_only:
        return 0
    if not os.path.exists(args.out):
        print(f"{args.out} does not exist; run benchmarks/bench_wallclock.py first "
              "(it records the full schema document, including these sections)")
        return 1
    with open(args.out, encoding="utf-8") as handle:
        document = json.load(handle)
    document["resize_churn"] = comparison
    document["incremental_resize"] = incremental
    import bench_wallclock  # deferred: bench_wallclock imports this module

    bench_wallclock.validate_document(document)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    print(f"updated resize_churn + incremental_resize sections of {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())


# --------------------------------------------------------------------------- #
# Benchmark-suite tests (pytest; see scripts/smoke.sh)
# --------------------------------------------------------------------------- #


def test_resize_sweep_adaptive_beats_undersized(benchmark):
    """Modelled churn throughput: the adaptive table must beat fixed-undersized."""
    from _bench_utils import emit
    from repro.perf import figures

    result = benchmark.pedantic(
        lambda: figures.resize_sweep(sim_elements=2**12, cycles=3), rounds=1, iterations=1
    )
    emit(result, benchmark)
    assert result.extra["adaptive_over_undersized"] > 1.2
    assert result.extra["adaptive_grows"] >= 1
    assert result.extra["adaptive_shrinks"] >= 1
    assert result.extra["adaptive_beta_in_band"] == 1.0


def test_churn_comparison_structure_and_coverage():
    """A tiny wall-clock comparison satisfies the schema and exercises resizing."""
    comparison = churn_comparison(2048, cycles=3)
    validate_section(comparison)
    assert comparison["auto"]["grows"] >= 1
    assert comparison["auto"]["shrinks"] >= 1
    # The fixed table served the same stream without ever resizing.
    assert comparison["fixed"]["total_ops"] == comparison["auto"]["total_ops"]


def test_incremental_comparison_structure_and_determinism():
    """A small incremental-vs-rebuild comparison satisfies the schema, and
    its modelled timings are exactly reproducible."""
    section = incremental_comparison(4096, step_buckets=16, batch_ops=128)
    validate_incremental_section(section)
    assert section["incremental"]["steps"] >= 2
    assert section["incremental"]["items_moved"] >= 4096  # resident + routed fresh
    twin = incremental_comparison(4096, step_buckets=16, batch_ops=128)
    assert twin == section  # modelled seconds: no wall-clock noise anywhere
