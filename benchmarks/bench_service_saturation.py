"""Saturation sweep of the request-service layer — finding the throughput knee.

Offers a Figure-7-style mixed stream (Gamma_1: 40 % updates, 60 % searches)
to :class:`repro.service.SlabHashService` at increasing client concurrency,
one fresh sharded engine per level so levels do not contaminate each other.
Each level drives ``num_ops`` operations as ``burst``-sized ``submit_many``
admissions with at most ``concurrency`` admissions in flight; the sweep
records wall-clock throughput, latency percentiles, and batching efficiency
per level, then reports the *knee* — the smallest concurrency whose
throughput reaches 95 % of the peak — and its speedup over the schema-v2
single-drain baseline.

A separate low-load *latency point* (a small single-lane table, light
concurrency, with a warm-up pass so the allocator and bulk backend are
paged in) supplies the document's headline latency percentiles: saturation
throughput and tail latency are different operating points and are
reported as such.

Run directly (or via ``scripts/smoke.sh`` with ``--smoke``)::

    PYTHONPATH=src python benchmarks/bench_service_saturation.py
        [--num-ops 60000] [--num-shards 4] [--initial 20000]
        [--max-batch 2048] [--max-delay 0.002] [--burst 256]
        [--levels 4,8,16,32,64,96,128,160] [--smoke] [--out BENCH_service.json]

Schema (``SCHEMA_VERSION`` 4; version 3 replaced the single fixed-load run
of ``bench_service_latency.py`` — which now writes
``BENCH_service_latency.json`` — with the concurrency sweep, the knee
summary, and the dedicated latency load point; version 4 adds an optional
``degraded`` section written by ``benchmarks/bench_degraded.py`` recording
the overload/quarantine operating points — this script leaves it intact if
present and omits it on a fresh document)::

    {
      "schema_version": 4,
      "benchmark": "service_saturation",
      "device_model": "...", "python": "...", "numpy": "...",
      "config": {"num_ops_per_level": ..., "num_shards": ...,
                 "initial_elements": ..., "max_batch_size": ...,
                 "max_delay_s": ..., "burst": ...,
                 "concurrency_levels": [...],
                 "distribution": "40% updates, 60% searches",
                 "latency_point": {"num_ops": ..., "initial_elements": ...,
                                   "concurrency": ..., "burst": ...,
                                   "warmup_ops": ...}},
      "sweep": [{"concurrency": ..., "ops_per_sec": ..., "wall_seconds": ...,
                 "latency": {...}, "batches": {...}}, ...],
      "knee": {"concurrency": ..., "ops_per_sec": ...,
               "fraction_of_peak": ..., "v2_baseline_ops_per_sec": ...,
               "speedup_vs_v2_baseline": ...},
      "latency": {"count": ..., "mean_s": ..., "p50_s": ..., "p90_s": ...,
                  "p99_s": ..., "max_s": ...},
      "throughput": {"wall_seconds": ..., "ops_per_sec": ...,
                     "modelled_seconds": ..., "modelled_ops_per_sec": ...},
      "batches": {"executed": ..., "mean_size": ..., "warp_aligned_fraction": ...,
                  "deadline_forced_fraction": ...},
      "degraded": {                                  # optional, bench_degraded.py
        "config": {...},
        "healthy": {"ops_per_sec": ..., "latency": {...}},
        "overloaded": {"accepted_ops_per_sec": ..., "admitted_ops": ...,
                       "rejected_admissions": ..., "ops_rejected": ...,
                       "rejection_latency": {...}},
        "quarantined": {"ops_per_sec": ..., "breaker_trips": ...,
                        "shard_restores": ..., "injected_faults": ...,
                        "latency": {...}}
      }
    }

``validate_document`` is the schema's single source of truth; the smoke test
``tests/perf/test_service_schema.py`` regenerates a tiny document and fails
if the schema drifts from it.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import platform
from typing import List, Optional

import numpy as np

from repro.core.slab_hash import SlabHash
from repro.engine.sharded import ShardedSlabHash
from repro.gpusim.device import TESLA_K40C
from repro.service import ServiceConfig, ServiceStats, SlabHashService
from repro.workloads.distributions import GAMMA_40_UPDATES, build_concurrent_workload
from repro.workloads.generators import unique_random_keys, values_for_keys

SCHEMA_VERSION = 4
DEFAULT_OUT = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                           "BENCH_service.json")

# Measured ops/s of the schema-v2 document (single shared drain loop,
# per-operation futures, one WAL flush per batch) at its default load; the
# knee's speedup is reported against this so the sweep is comparable across
# revisions of the service layer.
V2_BASELINE_OPS_PER_SEC = 22_203.0

KNEE_FRACTION = 0.95


async def _drive(
    service: SlabHashService, workload, *, burst: int, concurrency: int
) -> None:
    """Offer the workload as ``burst``-sized admissions, ``concurrency`` deep.

    Every admission is a ``submit_many`` slice of the stream; a semaphore
    caps how many are in flight, modelling ``concurrency`` simultaneous
    clients each waiting for their previous burst before sending the next.
    """
    gate = asyncio.Semaphore(concurrency)

    async def one(start: int, end: int) -> None:
        async with gate:
            await service.submit_many(
                workload.op_codes[start:end],
                workload.keys[start:end],
                workload.values[start:end],
            )

    await asyncio.gather(
        *[
            asyncio.ensure_future(one(start, min(start + burst, len(workload))))
            for start in range(0, len(workload), burst)
        ]
    )


def _batches_section(stats: ServiceStats) -> dict:
    executed = stats.batches_executed
    return {
        "executed": executed,
        "mean_size": stats.mean_batch_size,
        "warp_aligned_fraction": (
            stats.warp_aligned_batches / executed if executed else 0.0
        ),
        "deadline_forced_fraction": (
            stats.deadline_forced_batches / executed if executed else 0.0
        ),
    }


def _run_level(
    *,
    concurrency: int,
    num_ops: int,
    num_shards: int,
    initial_elements: int,
    max_batch_size: int,
    max_delay: float,
    burst: int,
    seed: int,
) -> dict:
    """One sweep level: fresh engine, serve the stream, snapshot the stats."""
    engine = ShardedSlabHash.for_utilization(
        num_shards, initial_elements, 0.6, seed=seed
    )
    keys = unique_random_keys(initial_elements, seed=seed)
    engine.bulk_build(keys, values_for_keys(keys))
    workload = build_concurrent_workload(GAMMA_40_UPDATES, num_ops, keys, seed=seed + 7)
    config = ServiceConfig(max_batch_size=max_batch_size, max_delay=max_delay)
    service = SlabHashService(engine, config=config)

    async def main() -> None:
        async with service:
            await _drive(service, workload, burst=burst, concurrency=concurrency)

    asyncio.run(main())
    stats = service.stats()
    return {
        "concurrency": int(concurrency),
        "ops_per_sec": stats.ops_per_second,
        "wall_seconds": stats.wall_seconds,
        "latency": stats.latency.as_dict(),
        "batches": _batches_section(stats),
    }


def _run_latency_point(
    *,
    num_ops: int,
    initial_elements: int,
    concurrency: int,
    burst: int,
    warmup_ops: int,
    max_batch_size: int,
    max_delay: float,
    seed: int,
) -> ServiceStats:
    """The low-load latency operating point: small single-lane table.

    A throwaway warm-up service first pushes ``warmup_ops`` through the same
    table so slab storage and the bulk backend are paged in; the measured
    service then sees only steady-state traffic, the way a long-running
    server would.
    """
    table = SlabHash(max(256, initial_elements // 12), seed=seed)
    keys = unique_random_keys(initial_elements, seed=seed + 1)
    table.bulk_build(keys, values_for_keys(keys))
    warmup = build_concurrent_workload(GAMMA_40_UPDATES, warmup_ops, keys, seed=seed + 2)
    measured = build_concurrent_workload(GAMMA_40_UPDATES, num_ops, keys, seed=seed + 3)
    config = ServiceConfig(max_batch_size=max_batch_size, max_delay=max_delay)

    async def main() -> SlabHashService:
        async with SlabHashService(table, config=config) as warm_service:
            await _drive(warm_service, warmup, burst=burst, concurrency=concurrency)
        service = SlabHashService(table, config=config)
        async with service:
            await _drive(service, measured, burst=burst, concurrency=concurrency)
        return service

    return asyncio.run(main()).stats()


def find_knee(sweep: List[dict]) -> dict:
    """Smallest concurrency reaching ``KNEE_FRACTION`` of peak throughput."""
    peak = max(entry["ops_per_sec"] for entry in sweep)
    knee = next(
        entry for entry in sweep if entry["ops_per_sec"] >= KNEE_FRACTION * peak
    )
    return {
        "concurrency": knee["concurrency"],
        "ops_per_sec": knee["ops_per_sec"],
        "fraction_of_peak": knee["ops_per_sec"] / peak if peak else 0.0,
        "v2_baseline_ops_per_sec": V2_BASELINE_OPS_PER_SEC,
        "speedup_vs_v2_baseline": knee["ops_per_sec"] / V2_BASELINE_OPS_PER_SEC,
    }


def run_benchmark(
    *,
    num_ops: int = 60_000,
    num_shards: int = 4,
    initial_elements: int = 20_000,
    max_batch_size: int = 2048,
    max_delay: float = 0.002,
    burst: int = 256,
    concurrency_levels: Optional[List[int]] = None,
    latency_num_ops: int = 6_000,
    latency_initial: int = 1_000,
    latency_concurrency: int = 1,
    latency_burst: int = 128,
    latency_warmup_ops: int = 2_000,
    seed: int = 1,
) -> dict:
    """Run the sweep plus the latency point and assemble the JSON document."""
    levels = sorted(set(concurrency_levels or [4, 8, 16, 32, 64, 96, 128, 160]))
    sweep = [
        _run_level(
            concurrency=level,
            num_ops=num_ops,
            num_shards=num_shards,
            initial_elements=initial_elements,
            max_batch_size=max_batch_size,
            max_delay=max_delay,
            burst=burst,
            seed=seed,
        )
        for level in levels
    ]
    latency_stats = _run_latency_point(
        num_ops=latency_num_ops,
        initial_elements=latency_initial,
        concurrency=latency_concurrency,
        burst=latency_burst,
        warmup_ops=latency_warmup_ops,
        max_batch_size=max_batch_size,
        max_delay=max_delay,
        seed=seed + 100,
    )
    return {
        "schema_version": SCHEMA_VERSION,
        "benchmark": "service_saturation",
        "device_model": f"{TESLA_K40C.name} (simulated)",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "config": {
            "num_ops_per_level": int(num_ops),
            "num_shards": int(num_shards),
            "initial_elements": int(initial_elements),
            "max_batch_size": int(max_batch_size),
            "max_delay_s": float(max_delay),
            "burst": int(burst),
            "concurrency_levels": [int(level) for level in levels],
            "distribution": GAMMA_40_UPDATES.describe(),
            "latency_point": {
                "num_ops": int(latency_num_ops),
                "initial_elements": int(latency_initial),
                "concurrency": int(latency_concurrency),
                "burst": int(latency_burst),
                "warmup_ops": int(latency_warmup_ops),
            },
        },
        "sweep": sweep,
        "knee": find_knee(sweep),
        "latency": latency_stats.latency.as_dict(),
        "throughput": {
            "wall_seconds": latency_stats.wall_seconds,
            "ops_per_sec": latency_stats.ops_per_second,
            "modelled_seconds": latency_stats.modelled_seconds,
            "modelled_ops_per_sec": latency_stats.modelled_ops_per_second,
        },
        "batches": _batches_section(latency_stats),
    }


def validate_document(document: dict, *, require_degraded: bool = False) -> None:
    """Raise ``ValueError`` if ``document`` does not match the v4 schema.

    Single source of truth for the repo-root BENCH_service.json layout; the
    smoke test runs a tiny benchmark through this to catch schema drift.
    The ``degraded`` section (written by ``benchmarks/bench_degraded.py``)
    is optional on a fresh sweep but validated whenever present;
    ``require_degraded=True`` additionally demands it — the committed
    repo-root document must carry both operating-point views.
    """
    required_top = {
        "schema_version": int,
        "benchmark": str,
        "device_model": str,
        "python": str,
        "numpy": str,
        "config": dict,
        "sweep": list,
        "knee": dict,
        "latency": dict,
        "throughput": dict,
        "batches": dict,
    }
    for field, kind in required_top.items():
        if field not in document:
            raise ValueError(f"missing top-level field {field!r}")
        if not isinstance(document[field], kind):
            raise ValueError(f"field {field!r} must be {kind.__name__}")
    if document["schema_version"] != SCHEMA_VERSION:
        raise ValueError(
            f"schema_version {document['schema_version']} != {SCHEMA_VERSION}"
        )
    if document["benchmark"] != "service_saturation":
        raise ValueError("benchmark field must be 'service_saturation'")

    config = document["config"]
    for field in ("num_ops_per_level", "num_shards", "initial_elements",
                  "max_batch_size", "max_delay_s", "burst",
                  "concurrency_levels", "distribution", "latency_point"):
        if field not in config:
            raise ValueError(f"missing config field {field!r}")
    if not isinstance(config["concurrency_levels"], list) or not config["concurrency_levels"]:
        raise ValueError("config.concurrency_levels must be a non-empty list")
    for field in ("num_ops", "initial_elements", "concurrency", "burst", "warmup_ops"):
        if field not in config["latency_point"]:
            raise ValueError(f"missing config.latency_point field {field!r}")

    def check_latency(latency: dict, where: str) -> None:
        for field in ("count", "mean_s", "p50_s", "p90_s", "p99_s", "max_s"):
            value = latency.get(field)
            if not isinstance(value, (int, float)) or value < 0:
                raise ValueError(f"{where} field {field!r} must be a non-negative number")
        if not (latency["p50_s"] <= latency["p90_s"]
                <= latency["p99_s"] <= latency["max_s"]):
            raise ValueError(f"{where} percentiles must be monotone")

    def check_batches(batches: dict, where: str) -> None:
        if not isinstance(batches.get("executed"), int) or batches["executed"] <= 0:
            raise ValueError(f"{where}.executed must be a positive integer")
        if not isinstance(batches.get("mean_size"), (int, float)) or batches["mean_size"] <= 0:
            raise ValueError(f"{where}.mean_size must be positive")
        for field in ("warp_aligned_fraction", "deadline_forced_fraction"):
            fraction = batches.get(field)
            if not isinstance(fraction, (int, float)) or not 0.0 <= fraction <= 1.0:
                raise ValueError(f"{where}.{field} must be in [0, 1]")

    sweep = document["sweep"]
    if not sweep:
        raise ValueError("sweep must contain at least one level")
    if len(sweep) != len(config["concurrency_levels"]):
        raise ValueError("sweep must have one entry per configured concurrency level")
    previous = 0
    for entry in sweep:
        if not isinstance(entry, dict):
            raise ValueError("sweep entries must be objects")
        for field in ("concurrency", "ops_per_sec", "wall_seconds", "latency", "batches"):
            if field not in entry:
                raise ValueError(f"missing sweep field {field!r}")
        if not isinstance(entry["concurrency"], int) or entry["concurrency"] <= previous:
            raise ValueError("sweep concurrency levels must be strictly increasing")
        previous = entry["concurrency"]
        if not isinstance(entry["ops_per_sec"], (int, float)) or entry["ops_per_sec"] <= 0:
            raise ValueError("sweep ops_per_sec must be positive")
        if entry["latency"]["count"] != config["num_ops_per_level"]:
            raise ValueError("sweep latency count must equal num_ops_per_level")
        check_latency(entry["latency"], "sweep latency")
        check_batches(entry["batches"], "sweep batches")

    knee = document["knee"]
    for field in ("concurrency", "ops_per_sec", "fraction_of_peak",
                  "v2_baseline_ops_per_sec", "speedup_vs_v2_baseline"):
        value = knee.get(field)
        if not isinstance(value, (int, float)) or value <= 0:
            raise ValueError(f"knee field {field!r} must be a positive number")
    if knee["concurrency"] not in {entry["concurrency"] for entry in sweep}:
        raise ValueError("knee concurrency must be one of the swept levels")
    if not KNEE_FRACTION <= knee["fraction_of_peak"] <= 1.0:
        raise ValueError(
            f"knee fraction_of_peak must be in [{KNEE_FRACTION}, 1]"
        )

    check_latency(document["latency"], "latency")
    if document["latency"]["count"] != config["latency_point"]["num_ops"]:
        raise ValueError("latency count must equal the latency_point num_ops")
    for field in ("wall_seconds", "ops_per_sec", "modelled_seconds", "modelled_ops_per_sec"):
        value = document["throughput"].get(field)
        if not isinstance(value, (int, float)) or value < 0:
            raise ValueError(f"throughput field {field!r} must be a non-negative number")
    check_batches(document["batches"], "batches")

    degraded = document.get("degraded")
    if degraded is None:
        if require_degraded:
            raise ValueError(
                "missing degraded section (run benchmarks/bench_degraded.py)"
            )
        return
    if not isinstance(degraded, dict):
        raise ValueError("degraded must be an object")
    for field in ("config", "healthy", "overloaded", "quarantined"):
        if not isinstance(degraded.get(field), dict):
            raise ValueError(f"missing degraded section field {field!r}")
    for field in ("num_ops", "num_shards", "max_pending_per_shard",
                  "breaker_threshold", "burst", "chaos_seed"):
        if field not in degraded["config"]:
            raise ValueError(f"missing degraded.config field {field!r}")
    healthy = degraded["healthy"]
    if not isinstance(healthy.get("ops_per_sec"), (int, float)) or healthy["ops_per_sec"] <= 0:
        raise ValueError("degraded.healthy.ops_per_sec must be positive")
    check_latency(healthy["latency"], "degraded.healthy latency")
    overloaded = degraded["overloaded"]
    for field in ("accepted_ops_per_sec", "admitted_ops",
                  "rejected_admissions", "ops_rejected"):
        value = overloaded.get(field)
        if not isinstance(value, (int, float)) or value < 0:
            raise ValueError(
                f"degraded.overloaded field {field!r} must be a non-negative number"
            )
    if overloaded["rejected_admissions"] <= 0:
        raise ValueError(
            "degraded.overloaded.rejected_admissions must be positive "
            "(the overload point must actually overload)"
        )
    check_latency(overloaded["rejection_latency"], "degraded.overloaded rejection_latency")
    quarantined = degraded["quarantined"]
    for field in ("ops_per_sec", "breaker_trips", "shard_restores", "injected_faults"):
        value = quarantined.get(field)
        if not isinstance(value, (int, float)) or value < 0:
            raise ValueError(
                f"degraded.quarantined field {field!r} must be a non-negative number"
            )
    if quarantined["breaker_trips"] <= 0:
        raise ValueError(
            "degraded.quarantined.breaker_trips must be positive "
            "(the chaos point must actually trip a breaker)"
        )
    check_latency(quarantined["latency"], "degraded.quarantined latency")


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--num-ops", type=int, default=60_000,
                        help="operations served per sweep level (default %(default)s)")
    parser.add_argument("--num-shards", type=int, default=4,
                        help="shards behind the service (default %(default)s)")
    parser.add_argument("--initial", type=int, default=20_000,
                        help="elements pre-built into each engine (default %(default)s)")
    parser.add_argument("--max-batch", type=int, default=2048,
                        help="micro-batcher batch-size cap (default %(default)s)")
    parser.add_argument("--max-delay", type=float, default=0.002,
                        help="co-batching latency budget, seconds (default %(default)s)")
    parser.add_argument("--burst", type=int, default=256,
                        help="operations per client admission (default %(default)s)")
    parser.add_argument("--levels", type=str, default="4,8,16,32,64,96,128,160",
                        help="comma-separated concurrency levels (default %(default)s)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny scale for CI smoke: two levels, small tables")
    parser.add_argument("--out", type=str, default=DEFAULT_OUT,
                        help="output JSON path (default: BENCH_service.json at the repo root)")
    args = parser.parse_args(argv)

    if args.smoke:
        document = run_benchmark(
            num_ops=1_024,
            num_shards=2,
            initial_elements=1_024,
            max_batch_size=256,
            max_delay=args.max_delay,
            burst=64,
            concurrency_levels=[2, 4],
            latency_num_ops=512,
            latency_initial=256,
            latency_concurrency=1,
            latency_burst=64,
            latency_warmup_ops=256,
        )
    else:
        document = run_benchmark(
            num_ops=args.num_ops,
            num_shards=args.num_shards,
            initial_elements=args.initial,
            max_batch_size=args.max_batch,
            max_delay=args.max_delay,
            burst=args.burst,
            concurrency_levels=[int(part) for part in args.levels.split(",")],
        )
    if os.path.exists(args.out):
        # Re-running the sweep must not discard the degraded operating
        # points recorded by benchmarks/bench_degraded.py.
        try:
            with open(args.out, encoding="utf-8") as handle:
                previous = json.load(handle)
        except (OSError, ValueError):
            previous = {}
        if isinstance(previous, dict) and "degraded" in previous:
            document["degraded"] = previous["degraded"]
    validate_document(document)
    os.makedirs(os.path.dirname(os.path.abspath(args.out)), exist_ok=True)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")

    print(f"wrote {args.out}")
    for entry in document["sweep"]:
        print(f"  conc {entry['concurrency']:4d}  "
              f"{entry['ops_per_sec'] / 1e3:9.1f} kops/s   "
              f"p50 {entry['latency']['p50_s'] * 1e3:7.2f} ms   "
              f"p99 {entry['latency']['p99_s'] * 1e3:7.2f} ms   "
              f"{entry['batches']['deadline_forced_fraction']:.0%} deadline-forced")
    knee = document["knee"]
    print(f"  knee at concurrency {knee['concurrency']}: "
          f"{knee['ops_per_sec'] / 1e3:.1f} kops/s "
          f"({knee['speedup_vs_v2_baseline']:.1f}x the v2 baseline)")
    latency = document["latency"]
    print(f"  latency point  p50 {latency['p50_s'] * 1e3:5.2f} ms   "
          f"p90 {latency['p90_s'] * 1e3:5.2f} ms   p99 {latency['p99_s'] * 1e3:5.2f} ms")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
