"""Section V: dynamic memory allocation under the WCWS pattern.

Regenerates the allocator comparison of Section V: one million 128-byte slab
allocations issued one at a time per warp (the access pattern the slab hash
generates), for SlabAlloc, a Halloc-like allocator and a CUDA-malloc-like
allocator.

Paper reference points: CUDA malloc ~0.8 M slabs/s, Halloc ~16.1 M slabs/s,
SlabAlloc ~600 M slabs/s (~37x faster than Halloc).
"""

from _bench_utils import emit

from repro.perf import figures
from repro.perf.report import PAPER_REFERENCE


def test_allocator_comparison(benchmark):
    result = benchmark.pedantic(
        lambda: figures.allocator_comparison(sim_allocations=2**13), rounds=1, iterations=1
    )
    emit(result, benchmark)
    slab = result.extra["slaballoc_mops"]
    halloc = result.extra["halloc_mops"]
    malloc = result.extra["cuda_malloc_mops"]
    # Ordering and rough magnitudes from the paper.
    assert slab > halloc > malloc
    assert 300 <= slab <= 1100            # paper: 600 M slabs/s
    assert 8 <= halloc <= 30              # paper: 16.1 M slabs/s
    assert 0.3 <= malloc <= 2.0           # paper: 0.8 M slabs/s
    assert result.extra["slaballoc_over_halloc"] > 15  # paper: ~37x
    benchmark.extra_info["paper_slaballoc_mops"] = PAPER_REFERENCE["slaballoc_rate_mops"]
