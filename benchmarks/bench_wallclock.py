"""Wall-clock throughput of the bulk backends — the repo's perf trajectory.

Unlike every other benchmark in this directory (which reports *modelled* GPU
time from the device counters), this one measures **real host wall-clock
seconds**: how fast the simulation itself executes bulk builds, bulk
searches, and Figure-7-style concurrent mixed batches (40 % updates, 60 %
searches, run on an already-built table) on each backend.  It writes a
machine-readable ``BENCH_wallclock.json`` so the speed of the simulator can
be tracked across PRs.

Run directly (or via ``scripts/bench_wallclock.sh``)::

    PYTHONPATH=src python benchmarks/bench_wallclock.py [--sizes 20000,100000]
        [--beta 0.6] [--repeats 3] [--out BENCH_wallclock.json]

Schema (``SCHEMA_VERSION``; version 2 added ``concurrent_mixed``, version 3
added the ``resize_churn`` op and top-level section, version 4 the
``persist`` section, version 5 the ``incremental_resize`` latency
comparison, version 6 the ``parallel`` measured-multiprocess section)::

    {
      "schema_version": 6,
      "benchmark": "bulk_wallclock",
      "device_model": "...", "python": "...", "numpy": "...",
      "config": {"beta": ..., "repeats": ..., "sizes": [...]},
      "results": [
        {"op": "bulk_build" | "bulk_search" | "concurrent_mixed" | "resize_churn",
         "backend": "vectorized" | "reference",
         "num_keys": N, "seconds": s, "ops_per_sec": r}, ...
      ],
      "speedups": {"bulk_build_100000": x, "resize_churn_100000": y, ...},
      "resize_churn": {"num_keys": N, "cycles": c, "base_divisor": d,
                       "total_ops": t, "auto": {...}, "fixed": {...},
                       "auto_over_fixed": r},
      "incremental_resize": {"num_keys": N, "old_buckets": ..., "new_buckets": ...,
                             "step_buckets": ..., "interleaved_batch_ops": ...,
                             "stop_the_world": {"rebuild_seconds": ..., ...},
                             "incremental": {"steps": ..., "max_step_seconds": ..., ...},
                             "stw_over_incremental_max": r},
      "persist": {"num_keys": N, "snapshot_seconds": ..., "restore_seconds": ...,
                  "wal_append_seconds": ..., "replay_seconds": ...,
                  "snapshot_bytes": ..., "wal_bytes": ..., ...},
      "parallel": {"op": "bulk_build", "num_keys": N, "num_shards": 8,
                   "workers": 8, "cpu_count": ..., "serial_seconds": ...,
                   "process_seconds": ..., "worker_cpu_seconds": [...],
                   "critical_path_seconds": ..., "measured_speedup": ...,
                   "critical_path_speedup": ...}
    }

``incremental_resize`` (owned by ``benchmarks/bench_resize.py``) compares
one incremental migration's worst bounded-step pause against the equivalent
stop-the-world rebuild in **modelled** device seconds, at the largest size;
``stw_over_incremental_max`` is enforced to be an order of magnitude at
``num_keys >= 100000`` — the headline latency claim of the non-blocking
resize.

The ``persist`` section (snapshot/restore/WAL-append/replay throughput of
:mod:`repro.persist` at the largest size) is owned by
``benchmarks/bench_persist.py``; its restore is verified bit-identical
before the timing is reported.

The ``parallel`` section (owned by ``benchmarks/bench_parallel.py``) is the
**measured** multiprocess-parallelism series: the largest size's bulk build
on an 8-shard engine, serial versus ``executor="process"``, verified
bit-identical before timing.  ``critical_path_speedup`` (serial wall over
the busiest worker's measured CPU seconds) is floor-enforced at 3x for
production sizes; ``measured_speedup`` (end-to-end wall clock) is
floor-enforced only when the host has a core per worker — see that module's
docstring for why both numbers exist.

``resize_churn`` entries time the churn scenario of
:mod:`repro.workloads.churn` on an auto-resizing table (``num_keys`` is the
peak population; ``ops_per_sec`` counts the churn stream's operations, which
exceed ``num_keys``); the top-level section compares auto-resize against the
fixed-undersized baseline at the largest size — see
``benchmarks/bench_resize.py``, which owns those measurements.  Churn runs
are long, so they are timed once per backend (not best-of-``repeats``).

``validate_document`` is the schema's single source of truth; the smoke test
``tests/perf/test_wallclock_schema.py`` regenerates a tiny document and fails
if the schema drifts from it.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import platform
import time
from typing import Dict, List, Optional

import numpy as np

import bench_parallel
import bench_persist
import bench_resize
from repro.core.bulk_exec import BACKENDS
from repro.core.slab_hash import SlabHash
from repro.gpusim.device import TESLA_K40C
from repro.workloads.distributions import GAMMA_40_UPDATES, build_concurrent_workload

SCHEMA_VERSION = 6
DEFAULT_SIZES = (20_000, 100_000)
DEFAULT_BETA = 0.6
DEFAULT_OUT = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                           "BENCH_wallclock.json")

#: Short operations timed best-of-``repeats`` on a fresh table per repetition.
BULK_OPS = ("bulk_build", "bulk_search", "concurrent_mixed")
#: Every op kind a results entry may carry (churn runs are timed once).
OPS = BULK_OPS + ("resize_churn",)


def _make_batch(num_keys: int, seed: int = 1):
    rng = np.random.default_rng(seed)
    keys = rng.choice(2**28, size=num_keys, replace=False).astype(np.uint32)
    values = np.arange(num_keys, dtype=np.uint32)
    return keys, values


def _time_backend(backend: str, num_keys: int, beta: float, repeats: int) -> Dict[str, float]:
    """Best-of-``repeats`` wall-clock seconds per operation kind.

    ``concurrent_mixed`` is the paper's Figure-7 scenario: the table already
    holds ``num_keys`` elements, then one mixed batch of ``num_keys``
    operations drawn from the Gamma_1 distribution (40 % updates, 60 %
    searches) runs truly concurrently (unscheduled phased schedule, so both
    backends execute the identical deterministic schedule).
    """
    keys, values = _make_batch(num_keys)
    buckets = SlabHash.buckets_for_beta(num_keys, beta)
    workload = build_concurrent_workload(GAMMA_40_UPDATES, num_keys, keys, seed=7)
    best = {op: float("inf") for op in BULK_OPS}
    for _ in range(repeats):
        # A fresh table per repetition; drop the previous one first so block
        # stores do not pile up and skew timings with allocator memory churn.
        gc.collect()
        table = SlabHash(buckets, backend=backend, seed=1)
        start = time.perf_counter()
        table.bulk_build(keys, values)
        built = time.perf_counter()
        table.bulk_search(keys)
        searched = time.perf_counter()
        table.concurrent_batch(workload.op_codes, workload.keys, workload.values)
        mixed = time.perf_counter()
        best["bulk_build"] = min(best["bulk_build"], built - start)
        best["bulk_search"] = min(best["bulk_search"], searched - built)
        best["concurrent_mixed"] = min(best["concurrent_mixed"], mixed - searched)
        del table
    return best


def run_benchmark(
    sizes=DEFAULT_SIZES, *, beta: float = DEFAULT_BETA, repeats: int = 3
) -> dict:
    """Measure both backends at every size and assemble the JSON document."""
    # Warm-up amortizes one-time costs (lazy NumPy submodule imports).
    warm = SlabHash(64, backend="vectorized")
    warm_keys, warm_values = _make_batch(256, seed=0)
    warm.bulk_build(warm_keys, warm_values)
    warm.bulk_search(warm_keys)

    results: List[dict] = []
    speedups: Dict[str, float] = {}
    churn_by_size: Dict[int, dict] = {}
    for num_keys in sizes:
        timings = {
            backend: _time_backend(backend, num_keys, beta, repeats)
            for backend in BACKENDS
        }
        for backend in BACKENDS:
            for op in BULK_OPS:
                seconds = timings[backend][op]
                results.append(
                    {
                        "op": op,
                        "backend": backend,
                        "num_keys": int(num_keys),
                        "seconds": seconds,
                        "ops_per_sec": num_keys / seconds if seconds > 0 else float("inf"),
                    }
                )
        for op in BULK_OPS:
            speedups[f"{op}_{num_keys}"] = (
                timings["reference"][op] / timings["vectorized"][op]
            )
        # Churn with auto-resize: one long run per backend (see bench_resize).
        churn = {
            backend: bench_resize.measure_churn(num_keys, backend=backend)
            for backend in BACKENDS
        }
        churn_by_size[int(num_keys)] = churn
        for backend in BACKENDS:
            results.append(
                {
                    "op": "resize_churn",
                    "backend": backend,
                    "num_keys": int(num_keys),
                    "seconds": churn[backend]["seconds"],
                    "ops_per_sec": churn[backend]["ops_per_sec"],
                }
            )
        speedups[f"resize_churn_{num_keys}"] = (
            churn["reference"]["seconds"] / churn["vectorized"]["seconds"]
        )
    return {
        "schema_version": SCHEMA_VERSION,
        "benchmark": "bulk_wallclock",
        "device_model": f"{TESLA_K40C.name} (simulated)",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "config": {"beta": beta, "repeats": repeats, "sizes": [int(s) for s in sizes]},
        "results": results,
        "speedups": speedups,
        # Auto-resize versus the fixed-undersized baseline, at the largest
        # size — reusing that size's already-measured adaptive churn run.
        "resize_churn": bench_resize.churn_comparison(
            int(max(sizes)), auto=churn_by_size[int(max(sizes))]["vectorized"]
        ),
        # Worst bounded-step pause versus the stop-the-world rebuild, in
        # modelled device seconds, at the largest size (schema v5).
        "incremental_resize": bench_resize.incremental_comparison(int(max(sizes))),
        # Durability primitives (snapshot/restore/WAL/replay), largest size.
        "persist": bench_persist.measure_persist(int(max(sizes))),
        # Measured multiprocess parallelism: serial vs process-executor bulk
        # build on 8 shards, verified bit-identical first (schema v6).
        "parallel": bench_parallel.measure_parallel(int(max(sizes))),
    }


def validate_document(document: dict) -> None:
    """Raise ``ValueError`` if ``document`` does not match the schema.

    Single source of truth for the BENCH_wallclock.json layout; the smoke test
    runs a tiny benchmark through this to catch schema drift.
    """
    required_top = {
        "schema_version": int,
        "benchmark": str,
        "device_model": str,
        "python": str,
        "numpy": str,
        "config": dict,
        "results": list,
        "speedups": dict,
        "resize_churn": dict,
        "incremental_resize": dict,
        "persist": dict,
        "parallel": dict,
    }
    for field, kind in required_top.items():
        if field not in document:
            raise ValueError(f"missing top-level field {field!r}")
        if not isinstance(document[field], kind):
            raise ValueError(f"field {field!r} must be {kind.__name__}")
    if document["schema_version"] != SCHEMA_VERSION:
        raise ValueError(
            f"schema_version {document['schema_version']} != {SCHEMA_VERSION}"
        )
    if document["benchmark"] != "bulk_wallclock":
        raise ValueError("benchmark field must be 'bulk_wallclock'")
    for field in ("beta", "repeats", "sizes"):
        if field not in document["config"]:
            raise ValueError(f"missing config field {field!r}")
    if not document["results"]:
        raise ValueError("results must not be empty")
    for entry in document["results"]:
        if entry.get("op") not in OPS:
            raise ValueError(f"result op must be one of {OPS}, got {entry.get('op')!r}")
        if entry.get("backend") not in BACKENDS:
            raise ValueError(f"result backend must be one of {BACKENDS}")
        for field in ("num_keys", "seconds", "ops_per_sec"):
            if not isinstance(entry.get(field), (int, float)):
                raise ValueError(f"result field {field!r} must be numeric")
    expected_speedups = {
        f"{op}_{size}" for op in OPS for size in document["config"]["sizes"]
    }
    if set(document["speedups"]) != expected_speedups:
        raise ValueError(
            f"speedups keys {sorted(document['speedups'])} != {sorted(expected_speedups)}"
        )
    for key, value in document["speedups"].items():
        if not isinstance(value, (int, float)) or value <= 0:
            raise ValueError(f"speedup {key!r} must be a positive number")
    bench_resize.validate_section(document["resize_churn"])
    bench_resize.validate_incremental_section(document["incremental_resize"])
    bench_persist.validate_section(document["persist"])
    bench_parallel.validate_section(document["parallel"])


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", type=str, default=",".join(str(s) for s in DEFAULT_SIZES),
                        help="comma-separated batch sizes (default %(default)s)")
    parser.add_argument("--beta", type=float, default=DEFAULT_BETA,
                        help="average slab count the tables are sized for (default %(default)s)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="repetitions per measurement, best-of (default %(default)s)")
    parser.add_argument("--out", type=str, default=DEFAULT_OUT,
                        help="output JSON path (default: BENCH_wallclock.json at the repo root)")
    args = parser.parse_args(argv)

    sizes = [int(part) for part in args.sizes.split(",") if part]
    document = run_benchmark(sizes, beta=args.beta, repeats=args.repeats)
    validate_document(document)
    os.makedirs(os.path.dirname(os.path.abspath(args.out)), exist_ok=True)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")

    print(f"wrote {args.out}")
    for entry in document["results"]:
        print(f"  {entry['op']:12s} {entry['backend']:11s} n={entry['num_keys']:>7d} "
              f"{entry['seconds']:8.4f}s  {entry['ops_per_sec'] / 1e3:9.1f} kops/s")
    for key, value in document["speedups"].items():
        print(f"  speedup {key}: {value:.1f}x")
    incremental = document["incremental_resize"]
    print(f"  incremental_resize n={incremental['num_keys']}: rebuild "
          f"{incremental['stop_the_world']['rebuild_seconds']:.3e}s vs worst step "
          f"{incremental['incremental']['max_step_seconds']:.3e}s "
          f"({incremental['stw_over_incremental_max']:.1f}x)")
    persist = document["persist"]
    print(f"  persist n={persist['num_keys']}: snapshot {persist['snapshot_seconds']:.3f}s "
          f"({persist['snapshot_bytes'] / 1024:.0f} KiB), "
          f"restore {persist['restore_seconds']:.3f}s, "
          f"replay {persist['replay_ops_per_sec'] / 1e3:.1f} kops/s")
    parallel = document["parallel"]
    print(f"  parallel n={parallel['num_keys']} shards={parallel['num_shards']} "
          f"workers={parallel['workers']} (cores: {parallel['cpu_count']}): "
          f"measured {parallel['measured_speedup']:.2f}x, "
          f"critical path {parallel['critical_path_speedup']:.2f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
