"""An async request-service layer over the (sharded) slab hash.

:class:`SlabHashService` is the front door a traffic-serving deployment
would put in front of the engine: callers ``await`` single operations
(``insert`` / ``search`` / ``delete``) while an operation-log micro-batcher
(:class:`repro.service.batcher.MicroBatcher`) coalesces everything that
arrives within a latency budget into warp-aligned mixed batches, runs each
batch through :meth:`~repro.engine.sharded.ShardedSlabHash.concurrent_batch`
(the router scatters it across the shards), and resolves the callers'
futures with the per-operation results.

Batches run on whatever bulk-execution backend the engine was built with;
with the default ``"vectorized"`` backend and no scheduler seed, every
batch takes the concurrent fast path of :mod:`repro.core.bulk_exec`.

Measurement is built in: per-operation wall-clock latency percentiles
(:mod:`repro.perf.latency`) and both wall-clock and modelled-device
throughput are available from :meth:`SlabHashService.stats` at any time —
the numbers ``benchmarks/bench_service_latency.py`` records.

Online resizing is coordinated *between* micro-batches: after a batch's
futures have been resolved, the service calls the engine's
``maybe_resize()`` so a :class:`~repro.core.resize.LoadFactorPolicy` in
deferred mode (``policy.deferred()``) migrates the table while no request
is in flight — a resize never sits inside any individual operation's
latency, which keeps the tail percentiles honest under churny traffic.
(An ``auto`` policy also works, but its migrations then run inside the
batch that tripped the band and are attributed to that batch's requests.)

The batch execution itself is synchronous CPU work (the simulator), so the
event loop pauses while a batch runs; coalescing still works because the
log fills *between* executions, exactly like a GPU serving pipeline that
admits requests while the previous kernel is in flight.

Durability (docs/PERSISTENCE.md): constructed with a
:class:`~repro.persist.wal.WriteAheadLog`, the service appends every
micro-batch to the log *before* executing it, :meth:`SlabHashService.checkpoint`
snapshots the engine and truncates the log, and
:meth:`SlabHashService.recovered` rebuilds a service after a crash by
restoring the snapshot and replaying the log tail deterministically.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core import constants as C
from repro.core.hashing import is_user_key
from repro.core.slab_hash import SlabHash
from repro.engine.sharded import ShardedSlabHash
from repro.gpusim.scheduler import WarpScheduler
from repro.perf.latency import LatencyRecorder, LatencyReport
from repro.perf.metrics import measure_phase
from repro.persist.wal import WriteAheadLog
from repro.service.batcher import MicroBatcher, PendingOp

__all__ = ["ServiceConfig", "ServiceStats", "SlabHashService"]


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs of the request-service layer.

    Parameters
    ----------
    max_batch_size:
        Most operations one concurrent batch may carry (rounded down to a
        warp multiple by the batcher).
    max_delay:
        Longest time (seconds) an operation may wait in the log for
        co-batching before a ragged (non-warp-aligned) flush is forced.
    scheduler_seed:
        When given, every batch runs under a seeded
        :class:`~repro.gpusim.scheduler.WarpScheduler` (seed advanced per
        batch) — true interleaved execution through the reference
        generators.  ``None`` (default) uses the deterministic phased
        schedule, which the vectorized backend executes on its fast path.
    wave_size:
        Bound on concurrently live warps under a scheduler (ignored
        without ``scheduler_seed``).
    measure_device_time:
        Also collect the modelled device time of every executed batch
        (adds one counter snapshot per batch).
    """

    max_batch_size: int = 1024
    max_delay: float = 0.002
    scheduler_seed: Optional[int] = None
    wave_size: Optional[int] = None
    measure_device_time: bool = True


@dataclass(frozen=True)
class ServiceStats:
    """A point-in-time snapshot of the service's accounting.

    ``warp_aligned_batches`` counts batches whose *size* was a warp multiple
    (back-compatible with earlier releases); ``deadline_forced_batches``
    counts batches whose *cut* was forced by a deadline or drain, so a forced
    flush of an exactly-warp-sized tail is no longer indistinguishable from
    a naturally aligned cut.  ``resize_failures`` is the append-only log of
    failed between-batch migrations — later successes never erase it.
    """

    ops_enqueued: int
    ops_completed: int
    ops_failed: int
    batches_executed: int
    warp_aligned_batches: int
    deadline_forced_batches: int
    mean_batch_size: float
    latency: LatencyReport
    wall_seconds: float
    ops_per_second: float
    modelled_seconds: float
    modelled_ops_per_second: float
    resizes_performed: int = 0
    resize_failures: Tuple[str, ...] = field(default_factory=tuple)
    resize_modelled_seconds: float = 0.0

    def as_dict(self) -> dict:
        """Plain-dict view (used by the service-latency benchmark JSON)."""
        return {
            "ops_enqueued": self.ops_enqueued,
            "ops_completed": self.ops_completed,
            "ops_failed": self.ops_failed,
            "batches_executed": self.batches_executed,
            "warp_aligned_batches": self.warp_aligned_batches,
            "deadline_forced_batches": self.deadline_forced_batches,
            "mean_batch_size": self.mean_batch_size,
            "latency": self.latency.as_dict(),
            "wall_seconds": self.wall_seconds,
            "ops_per_second": self.ops_per_second,
            "modelled_seconds": self.modelled_seconds,
            "modelled_ops_per_second": self.modelled_ops_per_second,
            "resizes_performed": self.resizes_performed,
            "resize_failures": list(self.resize_failures),
            "resize_modelled_seconds": self.resize_modelled_seconds,
        }


class SlabHashService:
    """Async micro-batching front door over a sharded (or single) slab hash.

    Parameters
    ----------
    engine:
        A :class:`~repro.engine.sharded.ShardedSlabHash` (operations are
        routed to shards through its :class:`~repro.engine.router.ShardRouter`)
        or a single :class:`~repro.core.slab_hash.SlabHash`.
    config:
        Coalescing and execution knobs; defaults favour throughput with a
        2 ms co-batching budget.
    wal:
        Optional :class:`~repro.persist.wal.WriteAheadLog`.  When given,
        every micro-batch is appended to the log *before* it executes, so a
        crash can be recovered by replaying the tail onto the last snapshot
        (:meth:`checkpoint` / :meth:`recovered`); see docs/PERSISTENCE.md.

    Use as an async context manager, or call :meth:`start` / :meth:`stop`::

        engine = ShardedSlabHash(4, 256)
        async with SlabHashService(engine) as service:
            await service.insert(42, 1000)
            assert await service.search(42) == 1000
    """

    def __init__(
        self,
        engine: Union[ShardedSlabHash, SlabHash],
        *,
        config: Optional[ServiceConfig] = None,
        wal: Optional[WriteAheadLog] = None,
    ) -> None:
        self.engine = engine
        self.config = config or ServiceConfig()
        self.wal = wal
        self._sharded = isinstance(engine, ShardedSlabHash)
        table_config = engine.shards[0].config if self._sharded else engine.config
        self._key_value = table_config.key_value
        self._batcher = MicroBatcher(self.config.max_batch_size)
        self._latency = LatencyRecorder()
        self._wake: Optional[asyncio.Event] = None
        self._drain_task: Optional[asyncio.Task] = None
        self._closing = False
        self._batch_index = 0
        self._ops_completed = 0
        self._ops_failed = 0
        self._modelled_seconds = 0.0
        self._resizes_performed = 0
        self._resize_failure_log: List[str] = []
        self._resize_modelled_seconds = 0.0
        self._first_enqueue: Optional[float] = None
        self._last_completion: Optional[float] = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    async def start(self) -> "SlabHashService":
        """Spawn the drain loop; idempotent."""
        if self._drain_task is None or self._drain_task.done():
            self._closing = False
            self._wake = asyncio.Event()
            self._drain_task = asyncio.get_running_loop().create_task(self._drain())
        return self

    async def stop(self) -> None:
        """Flush every logged operation, then stop the drain loop."""
        if self._drain_task is None:
            return
        self._closing = True
        self._wake.set()
        await self._drain_task
        self._drain_task = None

    async def __aenter__(self) -> "SlabHashService":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.stop()

    # ------------------------------------------------------------------ #
    # Submission API
    # ------------------------------------------------------------------ #

    def _enqueue(self, op_code: int, key: int, value: int) -> "asyncio.Future[int]":
        if self._drain_task is None or self._drain_task.done():
            raise RuntimeError("service is not running; use 'async with' or await start()")
        if not is_user_key(key):
            raise ValueError(f"key 0x{int(key):08X} is outside the storable key domain")
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        now = time.perf_counter()
        if self._first_enqueue is None:
            self._first_enqueue = now
        self._batcher.add(PendingOp(op_code, key, value, future, now))
        self._wake.set()
        return future

    async def submit(self, op_code: int, key: int, value: Optional[int] = None) -> int:
        """Log one operation and await its raw result (SlabHash conventions).

        Searches resolve to the found value or ``SEARCH_NOT_FOUND``,
        deletions to 1/0 (removed or not), insertions to 0.
        """
        if op_code not in (C.OP_INSERT, C.OP_DELETE, C.OP_SEARCH):
            raise ValueError(f"unknown operation code {op_code!r}")
        if op_code == C.OP_INSERT and self._key_value and value is None:
            raise ValueError("key-value mode requires a value for insertions")
        return await self._enqueue(op_code, key, 0 if value is None else value)

    async def insert(self, key: int, value: Optional[int] = None) -> None:
        """Insert one key (and value in key-value mode)."""
        await self.submit(C.OP_INSERT, key, value)

    async def search(self, key: int) -> Optional[int]:
        """Return the stored value (the key itself in key-only mode), or None."""
        result = await self.submit(C.OP_SEARCH, key)
        return None if result == C.SEARCH_NOT_FOUND else result

    async def delete(self, key: int) -> bool:
        """Delete ``key``; True when an element was removed."""
        return bool(await self.submit(C.OP_DELETE, key))

    async def submit_many(
        self,
        op_codes: Sequence[int],
        keys: Sequence[int],
        values: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """Log a stream of operations and await all their results (in order)."""
        op_codes = np.asarray(op_codes, dtype=np.int64)
        keys = np.asarray(keys, dtype=np.int64)
        if values is None:
            values = np.zeros(len(keys), dtype=np.int64)
        values = np.asarray(values, dtype=np.int64)
        if not (len(op_codes) == len(keys) == len(values)):
            raise ValueError("op_codes, keys and values must have the same length")
        futures = [
            self._enqueue(int(op), int(key), int(value))
            for op, key, value in zip(op_codes, keys, values)
        ]
        results = await asyncio.gather(*futures)
        return np.asarray(results, dtype=np.uint32)

    # ------------------------------------------------------------------ #
    # Drain loop and batch execution
    # ------------------------------------------------------------------ #

    async def _drain(self) -> None:
        while True:
            if len(self._batcher) == 0:
                if self._closing:
                    return
                self._wake.clear()
                if len(self._batcher):  # raced with an enqueue
                    continue
                await self._wake.wait()
                continue
            if self._batcher.full:
                # A size-triggered cut, even while draining: the same batch
                # would have been cut without the deadline, so it is counted
                # as naturally aligned rather than deadline-forced.
                self._execute(self._batcher.take())
                await asyncio.sleep(0)  # let queued submitters run
                continue
            if self._closing:
                self._execute(self._batcher.take(force=True))
                await asyncio.sleep(0)
                continue
            deadline = self._batcher.oldest_enqueued_at() + self.config.max_delay
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                self._execute(self._batcher.take(force=True))
                await asyncio.sleep(0)
                continue
            self._wake.clear()
            try:
                await asyncio.wait_for(self._wake.wait(), timeout=remaining)
            except asyncio.TimeoutError:
                pass

    def _run_batch(
        self, op_codes: np.ndarray, keys: np.ndarray, values: Optional[np.ndarray]
    ) -> np.ndarray:
        seed = self.config.scheduler_seed
        if self._sharded:
            return self.engine.concurrent_batch(
                op_codes,
                keys,
                values,
                scheduler_seed=None if seed is None else seed + self._batch_index,
                wave_size=self.config.wave_size,
            )
        scheduler = None if seed is None else WarpScheduler(seed=seed + self._batch_index)
        return self.engine.concurrent_batch(
            op_codes, keys, values, scheduler=scheduler, wave_size=self.config.wave_size
        )

    def _execute(self, batch: List[PendingOp]) -> None:
        if not batch:
            return
        op_codes = np.fromiter((op.op_code for op in batch), dtype=np.int64, count=len(batch))
        keys = np.fromiter((op.key for op in batch), dtype=np.uint64, count=len(batch))
        values = None
        if self._key_value:
            values = np.fromiter((op.value for op in batch), dtype=np.uint32, count=len(batch))
        if self.wal is not None:
            # Write-ahead: the batch is durable before any of it executes, so
            # a crash mid-execution replays it in full on recovery.
            self.wal.append(
                op_codes, keys.astype(np.uint32), values, batch_index=self._batch_index
            )
        holder = {}

        def run() -> None:
            holder["results"] = self._run_batch(op_codes, keys, values)

        try:
            if self.config.measure_device_time:
                if self._sharded:
                    stats = self.engine.measure(run, label=f"service batch {self._batch_index}")
                    self._modelled_seconds += stats.parallel_seconds
                else:
                    measurement = measure_phase(
                        self.engine.device,
                        run,
                        num_ops=len(batch),
                        label=f"service batch {self._batch_index}",
                    )
                    self._modelled_seconds += measurement.seconds
                results = holder["results"]
            else:
                run()
                results = holder["results"]
        except Exception as exc:  # noqa: BLE001 - a failed batch fails its ops
            self._batch_index += 1
            self._ops_failed += len(batch)
            for op in batch:
                if not op.future.done():
                    op.future.set_exception(exc)
            return
        self._batch_index += 1
        completed_at = time.perf_counter()
        self._last_completion = completed_at
        self._ops_completed += len(batch)
        for op, result in zip(batch, results):
            self._latency.record(completed_at - op.enqueued_at)
            if not op.future.done():
                op.future.set_result(int(result))
        self._resize_between_batches()

    def _resize_between_batches(self) -> None:
        """Apply a deferred load-factor policy now, while no request is in flight.

        No-op without a policy (``maybe_resize`` returns ``[]`` immediately);
        migration device time is accounted separately from the batches'.  A
        failed migration (e.g. allocator exhaustion) leaves the table
        restored — ``resize_table``'s strong guarantee — so it is recorded
        and the service keeps serving rather than killing the drain loop.
        Failures append to an append-only log surfaced via
        :attr:`resize_failures` / :meth:`stats`; a later successful
        migration never overwrites or clears an earlier recorded failure.
        """
        try:
            results = self.engine.maybe_resize()
        except Exception as exc:  # noqa: BLE001 - the table is intact; keep serving
            self._resize_failure_log.append(
                f"after batch {self._batch_index - 1}: {type(exc).__name__}: {exc}"
            )
            return
        if results:
            self._resizes_performed += len(results)
            self._resize_modelled_seconds += sum(r.seconds for r in results)

    # ------------------------------------------------------------------ #
    # Durability: checkpointing and recovery (see repro.persist)
    # ------------------------------------------------------------------ #

    def checkpoint(self, snapshot_path: str) -> str:
        """Snapshot the engine and truncate the WAL; returns the snapshot path.

        The snapshot captures the engine bit-identically, which makes every
        logged batch redundant — truncating the WAL is what bounds recovery
        time.  Call between batches (e.g. from the event-loop thread while no
        ``submit`` is being awaited); with operations still pending in the
        batcher, those operations are simply not yet part of the checkpoint
        and will be logged when their batch executes.

        The snapshot records the next batch index as its WAL floor, so even
        if the process dies *between* the snapshot write and the WAL
        truncation, recovery skips the already-covered records instead of
        double-replaying them — and a service recovered from a
        freshly-truncated WAL keeps its batch numbering contiguous.
        """
        from repro.persist.snapshot import save as _save

        _save(self.engine, snapshot_path, wal_min_batch_index=self._batch_index)
        if self.wal is not None:
            self.wal.truncate()
        return snapshot_path

    @classmethod
    def recovered(
        cls,
        snapshot_path: str,
        wal: Optional[WriteAheadLog] = None,
        *,
        config: Optional[ServiceConfig] = None,
    ) -> "SlabHashService":
        """Rebuild a service from a snapshot plus the WAL it was paired with.

        Restores the snapshot, replays the WAL's complete records (a torn
        final record is discarded — its futures never resolved), and returns
        a *not yet started* service over the recovered engine that continues
        appending to the same log with contiguous batch numbering.  The
        ``config`` must match the crashed service's (the scheduler seed
        participates in replay determinism).
        """
        from repro.persist.recovery import recover as _recover

        config = config or ServiceConfig()
        engine, report = _recover(
            snapshot_path,
            None if wal is None else wal.path,
            scheduler_seed=config.scheduler_seed,
            wave_size=config.wave_size,
        )
        service = cls(engine, config=config, wal=wal)
        service._batch_index = report.next_batch_index
        return service

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def pending(self) -> int:
        """Operations currently waiting in the log."""
        return len(self._batcher)

    @property
    def resizes_performed(self) -> int:
        """Policy-triggered resizes executed between micro-batches."""
        return self._resizes_performed

    @property
    def resize_failures(self) -> Tuple[str, ...]:
        """Append-only descriptions of failed between-batch migrations.

        Each entry records the batch it followed and the error; the table
        was restored (strong guarantee) and the service kept serving.  A
        subsequent successful migration never clears this log.
        """
        return tuple(self._resize_failure_log)

    @property
    def resize_modelled_seconds(self) -> float:
        """Modelled device time spent in between-batch migrations."""
        return self._resize_modelled_seconds

    def stats(self) -> ServiceStats:
        """Snapshot the service's accounting (latency, throughput, batching)."""
        wall = 0.0
        if self._first_enqueue is not None and self._last_completion is not None:
            wall = max(0.0, self._last_completion - self._first_enqueue)
        batches = self._batcher.batches_cut
        return ServiceStats(
            ops_enqueued=self._batcher.ops_enqueued,
            ops_completed=self._ops_completed,
            ops_failed=self._ops_failed,
            batches_executed=batches,
            # Size view (any batch whose op count is a warp multiple) ...
            warp_aligned_batches=(
                self._batcher.aligned_batches + self._batcher.forced_aligned_batches
            ),
            # ... and trigger view (cuts forced by a deadline or drain), so a
            # forced warp-sized tail is distinguishable from a natural cut.
            deadline_forced_batches=self._batcher.forced_batches,
            mean_batch_size=(self._ops_completed + self._ops_failed) / batches if batches else 0.0,
            latency=self._latency.report(),
            wall_seconds=wall,
            ops_per_second=self._ops_completed / wall if wall > 0 else 0.0,
            modelled_seconds=self._modelled_seconds,
            modelled_ops_per_second=(
                self._ops_completed / self._modelled_seconds if self._modelled_seconds > 0 else 0.0
            ),
            resizes_performed=self._resizes_performed,
            resize_failures=tuple(self._resize_failure_log),
            resize_modelled_seconds=self._resize_modelled_seconds,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        target = "sharded" if self._sharded else "single-table"
        return (
            f"SlabHashService({target}, pending={self.pending}, "
            f"completed={self._ops_completed})"
        )
