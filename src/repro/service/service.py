"""An async request-service layer over the (sharded) slab hash.

:class:`SlabHashService` is the front door a traffic-serving deployment
would put in front of the engine: callers ``await`` single operations
(``insert`` / ``search`` / ``delete``) or whole arrays (:meth:`submit_many`),
and the service keeps the engine saturated with warp-aligned mixed batches.

Three mechanisms close the gap between per-operation asyncio overhead and
the engine's bulk throughput (this is the point of the paper's batched
concurrent design):

* **Vectorized admission** — an admission (single op or a ``submit_many``
  array) becomes one :class:`~repro.service.batcher.OpSlice` with *one*
  future, routed to per-shard operation logs as NumPy array chunks.  No
  per-operation Python objects, futures, or clock reads exist anywhere on
  the bulk path.
* **Per-shard drain loops** — operations are routed to their shard at
  admission time (:meth:`~repro.engine.sharded.ShardedSlabHash.admit_partition`),
  and one independent drain task per shard cuts warp-aligned batches from
  its own log and executes them directly on the shard's bulk path.  Hash
  routing sends every occurrence of a key to the same shard and each
  shard's log is FIFO with serial batch execution, so the per-key ordering
  guarantee of the old single global loop is preserved.
* **WAL group-commit** — batches cut concurrently by different shard drains
  in one drain round are framed and appended to the write-ahead log with a
  single ``write`` + flush (:meth:`~repro.persist.wal.WriteAheadLog.append_group`)
  *before* any of them executes, so durability cost amortizes while the
  write-ahead contract and recovery replay semantics stay unchanged.

Batches run on whatever bulk-execution backend the engine was built with;
with the default ``"vectorized"`` backend and no scheduler seed, every
batch takes the concurrent fast path of :mod:`repro.core.bulk_exec`.

Measurement is built in: per-operation wall-clock latency percentiles
(:mod:`repro.perf.latency`, recorded as per-chunk runs, not per-op floats)
and both wall-clock and modelled-device throughput are available from
:meth:`SlabHashService.stats` at any time — including a per-shard breakdown
of the batching counters, so aggregation arithmetic is auditable.  The
numbers ``benchmarks/bench_service_saturation.py`` records.

Online resizing is coordinated *between* micro-batches: after a shard's
batch resolves its futures, the drain calls that shard's ``maybe_resize()``
so a :class:`~repro.core.resize.LoadFactorPolicy` in deferred mode migrates
the shard while none of its requests are in flight.  With
``LoadFactorPolicy.incremental`` the call advances a bounded number of
migration *steps* instead of a full rebuild, so no request ever waits out a
whole-table migration — the incremental rehash interleaves with the cut
batches.  Recovery replay reproduces the same schedule by pumping exactly
the shards each replayed record touched (see
:func:`repro.persist.recovery.replay_record`).

The batch execution itself is synchronous CPU work (the simulator), so the
event loop pauses while a batch runs; coalescing still works because the
logs fill *between* executions, exactly like a GPU serving pipeline that
admits requests while the previous kernel is in flight.

Durability (docs/PERSISTENCE.md): constructed with a
:class:`~repro.persist.wal.WriteAheadLog`, the service group-appends every
drain round's batches to the log *before* executing them,
:meth:`SlabHashService.checkpoint` snapshots the engine and truncates the
log, and :meth:`SlabHashService.recovered` rebuilds a service after a crash
by restoring the snapshot and replaying the log tail deterministically.
WAL batch indices are assigned at group-commit time, so a checkpoint can
never cover a batch that was cut but not yet logged.

Degradation (docs/FAULTS.md): the service fails *fast and typed* instead of
queueing without bound or hanging futures.  Admission is bounded per shard
(``max_pending_per_shard`` → retryable :class:`ServiceOverloaded`),
operations may carry deadlines (expired ops are rejected at cut time with
:class:`OpDeadlineExceeded`, never executed late), each lane has a circuit
breaker (``breaker_threshold`` consecutive batch failures trip it open;
pending slices fail with retryable :class:`ShardQuarantined` while a
background task restores the shard from the last checkpoint + WAL tail and
half-opens the lane), a failed WAL group-append rolls back and fails only
that round (retryable :class:`WalCommitFailed` — not logged means not run),
and :meth:`stop` deterministically fails anything still uncut with
:class:`ServiceStopped`.  A :class:`~repro.faults.FaultPlan` passed as
``faults`` arms deterministic injection sites across the allocator, the
WAL, and the per-shard execute path; injected batch failures get durable
WAL *abort markers* so crash-recovery never resurrects an operation its
client saw fail.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from types import TracebackType
from typing import (
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Type,
    TypedDict,
    Union,
)

import numpy as np

from repro.core import constants as C
from repro.core.hashing import is_user_key
from repro.core.slab_hash import SlabHash
from repro.engine.sharded import ShardedSlabHash
from repro.faults import FaultPlan, InjectedFault, WorkerCrashed
from repro.gpusim.scheduler import WarpScheduler
from repro.perf.latency import LatencyRecorder, LatencyReport
from repro.perf.metrics import measure_phase
from repro.persist.wal import WriteAheadLog
from repro.service.batcher import CutBatch, MicroBatcher, OpChunk, OpSlice
from repro.service.errors import (
    OpDeadlineExceeded,
    ServiceOverloaded,
    ServiceStopped,
    ShardQuarantined,
    WalCommitFailed,
)

__all__ = [
    "LANE_CLOSED",
    "LANE_HALF_OPEN",
    "LANE_OPEN",
    "ServiceConfig",
    "ServiceStats",
    "ShardLaneStats",
    "SlabHashService",
]

#: Circuit-breaker lane states (per shard drain lane).
LANE_CLOSED = "closed"
LANE_OPEN = "open"
LANE_HALF_OPEN = "half_open"

_VALID_OPS = np.array([C.OP_INSERT, C.OP_DELETE, C.OP_SEARCH], dtype=np.int64)


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs of the request-service layer.

    Parameters
    ----------
    max_batch_size:
        Most operations one shard batch may carry (rounded down to a warp
        multiple by the batcher).
    max_delay:
        Longest time (seconds) an operation may wait in its shard's log for
        co-batching before a ragged (non-warp-aligned) flush is forced.
    scheduler_seed:
        When given, every batch runs under a seeded
        :class:`~repro.gpusim.scheduler.WarpScheduler` — seed advanced per
        WAL batch index plus shard, exactly as recovery replay re-derives
        it — true interleaved execution through the reference generators.
        ``None`` (default) uses the deterministic phased schedule, which the
        vectorized backend executes on its fast path.
    wave_size:
        Bound on concurrently live warps under a scheduler (ignored
        without ``scheduler_seed``).
    measure_device_time:
        Also collect the modelled device time of every executed batch
        (adds one counter snapshot per batch).
    max_pending_per_shard:
        Admission budget: most operations one shard's log may hold.  An
        admission that would push a target shard past it fails fast with a
        retryable :class:`~repro.service.errors.ServiceOverloaded` before
        anything is enqueued.  ``None`` (default) admits without bound —
        the pre-hardening behavior.
    breaker_threshold:
        Consecutive batch failures on one lane before its circuit breaker
        trips open (quarantine + background restore).  A dirty *injected*
        failure — mid-execution, state suspect — trips immediately
        regardless.
    executor:
        ``None``/``"serial"`` (default) executes batches inline.
        ``"process"`` requires a sharded engine and dispatches each lane's
        cut batches to that shard's worker process
        (:class:`~repro.engine.parallel.ProcessShardExecutor`) — results,
        counters, and migration behavior are bit-identical to serial; a
        worker death surfaces as :class:`~repro.faults.WorkerCrashed` and
        takes the quarantine/restore path, re-shipping the rebuilt shard to
        a fresh worker.  An engine that already carries a process executor
        is used as-is.
    executor_workers:
        Worker-process count when this config attaches the executor
        (default: one per shard).
    """

    max_batch_size: int = 1024
    max_delay: float = 0.002
    scheduler_seed: Optional[int] = None
    wave_size: Optional[int] = None
    measure_device_time: bool = True
    max_pending_per_shard: Optional[int] = None
    breaker_threshold: int = 3
    executor: Optional[str] = None
    executor_workers: Optional[int] = None


class ShardLaneStatsDict(TypedDict):
    """JSON-ready payload of :meth:`ShardLaneStats.as_dict`."""

    shard: int
    ops_enqueued: int
    batches_cut: int
    aligned_batches: int
    forced_batches: int
    forced_aligned_batches: int
    warp_aligned_batches: int
    deadline_forced_fraction: float
    warp_aligned_fraction: float
    modelled_seconds: float
    rejected_overloaded: int
    rejected_quarantined: int
    ops_expired: int
    trips: int
    restores: int
    state: str


@dataclass(frozen=True)
class ShardLaneStats:
    """One shard lane's batching and device-time accounting.

    The aggregate views in :class:`ServiceStats` are pure sums over these
    lanes (``warp_aligned_batches`` sums ``aligned_batches +
    forced_aligned_batches``), which keeps the per-shard arithmetic pinned
    by regression tests — a forced warp-sized tail on one shard can never
    masquerade as a naturally aligned batch in the totals.
    """

    shard: int
    ops_enqueued: int
    batches_cut: int
    aligned_batches: int
    forced_batches: int
    forced_aligned_batches: int
    modelled_seconds: float
    rejected_overloaded: int = 0
    rejected_quarantined: int = 0
    ops_expired: int = 0
    trips: int = 0
    restores: int = 0
    state: str = LANE_CLOSED

    @property
    def warp_aligned_batches(self) -> int:
        """Batches whose *size* was a warp multiple (size view)."""
        return self.aligned_batches + self.forced_aligned_batches

    @property
    def deadline_forced_fraction(self) -> float:
        """Fraction of this lane's cuts forced by a deadline or drain.

        Clamped to ``0.0`` when the lane cut zero batches — a shard
        quarantined over the whole window must report a finite fraction,
        not ``NaN`` from ``0 / 0``.
        """
        return self.forced_batches / self.batches_cut if self.batches_cut else 0.0

    @property
    def warp_aligned_fraction(self) -> float:
        """Fraction of this lane's cuts that were warp-multiple sized.

        Clamped to ``0.0`` for a zero-batch lane, like
        :attr:`deadline_forced_fraction`.
        """
        return (
            self.warp_aligned_batches / self.batches_cut if self.batches_cut else 0.0
        )

    def as_dict(self) -> ShardLaneStatsDict:
        return {
            "shard": self.shard,
            "ops_enqueued": self.ops_enqueued,
            "batches_cut": self.batches_cut,
            "aligned_batches": self.aligned_batches,
            "forced_batches": self.forced_batches,
            "forced_aligned_batches": self.forced_aligned_batches,
            "warp_aligned_batches": self.warp_aligned_batches,
            "deadline_forced_fraction": self.deadline_forced_fraction,
            "warp_aligned_fraction": self.warp_aligned_fraction,
            "modelled_seconds": self.modelled_seconds,
            "rejected_overloaded": self.rejected_overloaded,
            "rejected_quarantined": self.rejected_quarantined,
            "ops_expired": self.ops_expired,
            "trips": self.trips,
            "restores": self.restores,
            "state": self.state,
        }


class ServiceStatsDict(TypedDict):
    """JSON-ready payload of :meth:`ServiceStats.as_dict` (bench documents)."""

    ops_enqueued: int
    ops_completed: int
    ops_failed: int
    batches_executed: int
    warp_aligned_batches: int
    deadline_forced_batches: int
    deadline_forced_fraction: float
    warp_aligned_fraction: float
    mean_batch_size: float
    latency: Dict[str, float]
    wall_seconds: float
    ops_per_second: float
    modelled_seconds: float
    modelled_ops_per_second: float
    per_shard: List[ShardLaneStatsDict]
    resizes_performed: int
    resize_failures: List[str]
    resize_modelled_seconds: float
    migration_steps: int
    migration_buckets_moved: int
    migration_items_moved: int
    ops_rejected: int
    ops_expired: int
    breaker_trips: int
    shard_restores: int
    wal_rollbacks: int
    batches_aborted: int
    restore_failures: List[str]


@dataclass(frozen=True)
class ServiceStats:
    """A point-in-time snapshot of the service's accounting.

    ``warp_aligned_batches`` counts batches whose *size* was a warp multiple
    (back-compatible with earlier releases); ``deadline_forced_batches``
    counts batches whose *cut* was forced by a deadline or drain, so a forced
    flush of an exactly-warp-sized tail is no longer indistinguishable from
    a naturally aligned cut.  Both are sums of the ``per_shard`` lanes.
    ``modelled_seconds`` is the *parallel* device-time view — the busiest
    shard's total, since shards are independent modelled devices draining
    concurrently.  ``resize_failures`` is the append-only log of failed
    between-batch migrations — later successes never erase it.
    ``migration_steps`` / ``migration_buckets_moved`` /
    ``migration_items_moved`` sum each live shard's incremental-resize
    step accounting (:class:`~repro.core.resize.ResizeStats`), so a churn
    run shows how much rehash work was interleaved between batches.

    The degradation counters follow the same per-lane arithmetic:
    ``ops_rejected`` (admissions refused by backpressure or quarantine) and
    ``ops_expired`` (deadline rejections at cut time) sum the lanes;
    ``breaker_trips`` / ``shard_restores`` count lane quarantine cycles;
    ``wal_rollbacks`` counts failed group commits the log rolled back; and
    ``batches_aborted`` counts logged batches the service rejected with a
    durable abort marker (injected failures recovery must not replay).
    ``restore_failures`` is append-only like ``resize_failures``.
    """

    ops_enqueued: int
    ops_completed: int
    ops_failed: int
    batches_executed: int
    warp_aligned_batches: int
    deadline_forced_batches: int
    mean_batch_size: float
    latency: LatencyReport
    wall_seconds: float
    ops_per_second: float
    modelled_seconds: float
    modelled_ops_per_second: float
    per_shard: Tuple[ShardLaneStats, ...] = field(default_factory=tuple)
    resizes_performed: int = 0
    resize_failures: Tuple[str, ...] = field(default_factory=tuple)
    resize_modelled_seconds: float = 0.0
    migration_steps: int = 0
    migration_buckets_moved: int = 0
    migration_items_moved: int = 0
    ops_rejected: int = 0
    ops_expired: int = 0
    breaker_trips: int = 0
    shard_restores: int = 0
    wal_rollbacks: int = 0
    batches_aborted: int = 0
    restore_failures: Tuple[str, ...] = field(default_factory=tuple)

    @property
    def deadline_forced_fraction(self) -> float:
        """Forced cuts over all cuts, clamped to ``0.0`` at zero batches.

        A window in which every lane was quarantined (or simply idle) cuts
        zero batches; the fraction must come back finite, not ``NaN``, so
        dashboards and the benchmark JSON stay comparable across windows.
        """
        return (
            self.deadline_forced_batches / self.batches_executed
            if self.batches_executed
            else 0.0
        )

    @property
    def warp_aligned_fraction(self) -> float:
        """Warp-multiple-sized cuts over all cuts, clamped like
        :attr:`deadline_forced_fraction`."""
        return (
            self.warp_aligned_batches / self.batches_executed
            if self.batches_executed
            else 0.0
        )

    def as_dict(self) -> ServiceStatsDict:
        """Plain-dict view (used by the service benchmark JSON documents)."""
        return {
            "ops_enqueued": self.ops_enqueued,
            "ops_completed": self.ops_completed,
            "ops_failed": self.ops_failed,
            "batches_executed": self.batches_executed,
            "warp_aligned_batches": self.warp_aligned_batches,
            "deadline_forced_batches": self.deadline_forced_batches,
            "deadline_forced_fraction": self.deadline_forced_fraction,
            "warp_aligned_fraction": self.warp_aligned_fraction,
            "mean_batch_size": self.mean_batch_size,
            "latency": self.latency.as_dict(),
            "wall_seconds": self.wall_seconds,
            "ops_per_second": self.ops_per_second,
            "modelled_seconds": self.modelled_seconds,
            "modelled_ops_per_second": self.modelled_ops_per_second,
            "per_shard": [lane.as_dict() for lane in self.per_shard],
            "resizes_performed": self.resizes_performed,
            "resize_failures": list(self.resize_failures),
            "resize_modelled_seconds": self.resize_modelled_seconds,
            "migration_steps": self.migration_steps,
            "migration_buckets_moved": self.migration_buckets_moved,
            "migration_items_moved": self.migration_items_moved,
            "ops_rejected": self.ops_rejected,
            "ops_expired": self.ops_expired,
            "breaker_trips": self.breaker_trips,
            "shard_restores": self.shard_restores,
            "wal_rollbacks": self.wal_rollbacks,
            "batches_aborted": self.batches_aborted,
            "restore_failures": list(self.restore_failures),
        }


class _StagedBatch:
    """A cut shard batch waiting for the next group commit."""

    __slots__ = ("shard", "batch", "forced", "batch_index")

    def __init__(self, shard: int, batch: CutBatch) -> None:
        self.shard = shard
        self.batch = batch
        self.batch_index = -1  # assigned at group-commit time


class SlabHashService:
    """Async micro-batching front door over a sharded (or single) slab hash.

    Parameters
    ----------
    engine:
        A :class:`~repro.engine.sharded.ShardedSlabHash` (operations are
        routed to per-shard logs at admission through its
        :class:`~repro.engine.router.ShardRouter`) or a single
        :class:`~repro.core.slab_hash.SlabHash` (one lane).
    config:
        Coalescing and execution knobs; defaults favour throughput with a
        2 ms co-batching budget.
    wal:
        Optional :class:`~repro.persist.wal.WriteAheadLog`.  When given,
        every drain round's batches are group-appended to the log *before*
        any of them executes, so a crash can be recovered by replaying the
        tail onto the last snapshot (:meth:`checkpoint` / :meth:`recovered`);
        see docs/PERSISTENCE.md.
    faults:
        Optional :class:`~repro.faults.FaultPlan`.  Arms the deterministic
        injection sites (docs/FAULTS.md): each shard's allocator gets a
        ``shard:<i>.``-scoped view, the WAL gets the plan for its
        ``wal.*`` sites, and the service itself consults
        ``shard:<i>.execute`` before each batch and ``service.restore``
        before a quarantine restore.

    Use as an async context manager, or call :meth:`start` / :meth:`stop`::

        engine = ShardedSlabHash(4, 256)
        async with SlabHashService(engine) as service:
            await service.insert(42, 1000)
            assert await service.search(42) == 1000
    """

    def __init__(
        self,
        engine: Union[ShardedSlabHash, SlabHash],
        *,
        config: Optional[ServiceConfig] = None,
        wal: Optional[WriteAheadLog] = None,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        self.engine = engine
        self.config = config or ServiceConfig()
        self.wal = wal
        self.faults = faults
        self._sharded = isinstance(engine, ShardedSlabHash)
        if self.config.executor not in (None, "serial", "process"):
            raise ValueError(
                f"unknown executor {self.config.executor!r}; "
                "expected None, 'serial', or 'process'"
            )
        if self.config.executor == "process":
            if not self._sharded:
                raise ValueError(
                    "ServiceConfig(executor='process') needs a ShardedSlabHash "
                    "engine; a single table has no shards to parallelize"
                )
            if engine.process_executor is None:
                engine.attach_executor("process", self.config.executor_workers)
        self._process_mode = self._sharded and engine.process_executor is not None
        self._shards: List[SlabHash] = list(engine.shards) if self._sharded else [engine]
        table_config = self._shards[0].config
        self._key_value = table_config.key_value
        self._batchers = [
            MicroBatcher(self.config.max_batch_size) for _ in self._shards
        ]
        self._latency = LatencyRecorder()
        self._wakes: List[asyncio.Event] = []
        self._drain_tasks: List["asyncio.Task[None]"] = []
        self._staged: List[_StagedBatch] = []
        self._closing = False
        self._batch_index = 0  # next WAL batch index (global across shards)
        self._ops_completed = 0
        self._ops_failed = 0
        self._modelled_per_shard = [0.0 for _ in self._shards]
        self._resizes_performed = 0
        self._resize_failure_log: List[str] = []
        self._resize_modelled_seconds = 0.0
        self._first_enqueue: Optional[float] = None
        self._last_completion: Optional[float] = None
        # Degradation state: circuit breaker + quarantine, per drain lane.
        self._lane_state = [LANE_CLOSED for _ in self._shards]
        self._consecutive_failures = [0 for _ in self._shards]
        self._rejected_overloaded = [0 for _ in self._shards]
        self._rejected_quarantined = [0 for _ in self._shards]
        self._lane_trips = [0 for _ in self._shards]
        self._lane_restores = [0 for _ in self._shards]
        self._restore_tasks: Dict[int, "asyncio.Task[None]"] = {}
        self._restore_failure_log: List[str] = []
        self._checkpoint_path: Optional[str] = None
        # Exactly-once across recovery: indices of logged-then-rejected
        # batches (injected failures), and the subset whose durable abort
        # marker has not landed yet (the marker append itself failed).
        self._aborted_indices: Set[int] = set()
        self._unlogged_aborts: Set[int] = set()
        self._aborts_logged = 0
        self._wal_rollbacks = 0
        if faults is not None:
            for index, table in enumerate(self._shards):
                table.alloc.faults = faults.scoped(f"shard:{index}.")
            if wal is not None and wal.faults is None:
                wal.faults = faults
            if self._process_mode:
                # Arm the shard:<i>.worker dispatch sites.  Worker-internal
                # sites (alloc, migration.step) cannot fire in process mode —
                # the resident shards do not carry the plan; see docs/API.md.
                self.engine.process_executor.faults = faults

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    @property
    def _running(self) -> bool:
        return bool(self._drain_tasks) and not all(t.done() for t in self._drain_tasks)

    async def start(self) -> "SlabHashService":
        """Spawn one drain loop per shard; idempotent."""
        if not self._running:
            loop = asyncio.get_running_loop()
            self._closing = False
            self._wakes = [asyncio.Event() for _ in self._shards]
            self._drain_tasks = [
                loop.create_task(self._drain_shard(shard))
                for shard in range(len(self._shards))
            ]
            # A lane left quarantined by a stop() mid-restore re-arms here.
            for shard, state in enumerate(self._lane_state):
                if state == LANE_OPEN and shard not in self._restore_tasks:
                    self._restore_tasks[shard] = loop.create_task(
                        self._restore_lane(shard)
                    )
        return self

    async def stop(self) -> None:
        """Flush every logged operation, then stop the drain loops.

        Deterministic shutdown contract: admissions after stop begins fail
        with :class:`~repro.service.errors.ServiceStopped`; operations the
        drains flush resolve normally; anything left uncut when the drains
        exit — a lane quarantined mid-shutdown, a drain task that died or
        was cancelled — is *failed* with ``ServiceStopped`` rather than
        left as a hanging future.  In-flight quarantine restores are
        cancelled (the lane restores on the next :meth:`start` trip), and
        any abort markers whose append had failed are retried so the
        on-disk log stays authoritative for recovery.
        """
        if not self._drain_tasks:
            return
        self._closing = True
        for wake in self._wakes:
            wake.set()
        outcomes = await asyncio.gather(*self._drain_tasks, return_exceptions=True)
        self._drain_tasks = []
        restores = list(self._restore_tasks.values())
        self._restore_tasks = {}
        for task in restores:
            task.cancel()
        for task in restores:
            try:
                await task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        self._flush_unlogged_aborts()
        stopped = ServiceStopped(
            "service stopped before these operations could be cut"
        )
        for batcher in self._batchers:
            self._ops_failed += batcher.clear(stopped)
        for entry in self._staged:
            self._ops_failed += len(entry.batch)
            entry.batch.fail(stopped)
        self._staged = []
        # Surface an unexpected drain-loop crash only after every future
        # has been resolved — a bug must not translate into a hang.
        for outcome in outcomes:
            if isinstance(outcome, BaseException) and not isinstance(
                outcome, asyncio.CancelledError
            ):
                raise outcome

    async def __aenter__(self) -> "SlabHashService":
        return await self.start()

    async def __aexit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        await self.stop()

    # ------------------------------------------------------------------ #
    # Submission API
    # ------------------------------------------------------------------ #

    def _require_running(self) -> None:
        if not self._running:
            raise RuntimeError("service is not running; use 'async with' or await start()")

    def _stamp_enqueue(self) -> float:
        now = time.perf_counter()
        if self._first_enqueue is None:
            self._first_enqueue = now
        return now

    def _admission_check(self, shard: int, count: int) -> None:
        """Fail fast — typed, retryable, *before* anything is enqueued."""
        if self._closing:
            raise ServiceStopped("service is stopping; operation not admitted")
        if self._lane_state[shard] == LANE_OPEN:
            self._rejected_quarantined[shard] += count
            raise ShardQuarantined(
                f"shard {shard} is quarantined (restore in progress); retry later"
            )
        budget = self.config.max_pending_per_shard
        if budget is not None:
            pending = len(self._batchers[shard])
            if pending + count > budget:
                self._rejected_overloaded[shard] += count
                raise ServiceOverloaded(
                    f"shard {shard} holds {pending} pending op(s); admitting "
                    f"{count} would exceed the budget of {budget} — retry later"
                )

    def _enqueue(
        self,
        op_code: int,
        key: int,
        value: int,
        deadline: Optional[float] = None,
    ) -> "asyncio.Future[np.ndarray]":
        self._require_running()
        if not is_user_key(key):
            raise ValueError(f"key 0x{int(key):08X} is outside the storable key domain")
        shard = self.engine.admit_one(key) if self._sharded else 0
        self._admission_check(shard, 1)
        future: "asyncio.Future[np.ndarray]" = asyncio.get_running_loop().create_future()
        now = self._stamp_enqueue()
        slice_ = OpSlice(future, 1)
        chunk = OpChunk(
            np.array([op_code], dtype=np.int64),
            np.array([key], dtype=np.uint64),
            np.array([value], dtype=np.uint32) if self._key_value else None,
            slice_,
            np.zeros(1, dtype=np.int64),
            now,
            deadline,
        )
        self._batchers[shard].add(chunk)
        self._wakes[shard].set()
        return future

    async def submit(
        self,
        op_code: int,
        key: int,
        value: Optional[int] = None,
        *,
        deadline: Optional[float] = None,
    ) -> int:
        """Log one operation and await its raw result (SlabHash conventions).

        Searches resolve to the found value or ``SEARCH_NOT_FOUND``,
        deletions to 1/0 (removed or not), insertions to 0.  ``deadline``
        is an absolute ``time.perf_counter()`` bound: an operation still
        waiting in its shard's log past it is rejected with
        :class:`~repro.service.errors.OpDeadlineExceeded` at cut time
        instead of executed late.
        """
        if op_code not in (C.OP_INSERT, C.OP_DELETE, C.OP_SEARCH):
            raise ValueError(f"unknown operation code {op_code!r}")
        if op_code == C.OP_INSERT and self._key_value and value is None:
            raise ValueError("key-value mode requires a value for insertions")
        results = await self._enqueue(
            op_code, key, 0 if value is None else value, deadline
        )
        return int(results[0])

    async def insert(self, key: int, value: Optional[int] = None) -> None:
        """Insert one key (and value in key-value mode)."""
        await self.submit(C.OP_INSERT, key, value)

    async def search(self, key: int) -> Optional[int]:
        """Return the stored value (the key itself in key-only mode), or None."""
        result = await self.submit(C.OP_SEARCH, key)
        return None if result == C.SEARCH_NOT_FOUND else result

    async def delete(self, key: int) -> bool:
        """Delete ``key``; True when an element was removed."""
        return bool(await self.submit(C.OP_DELETE, key))

    async def submit_many(
        self,
        op_codes: Sequence[int],
        keys: Sequence[int],
        values: Optional[Sequence[int]] = None,
        *,
        deadline: Optional[float] = None,
    ) -> np.ndarray:
        """Log an array of operations as **one admission** and await all results.

        This is the vectorized admission path: the whole array is validated
        and routed to the per-shard logs with NumPy partitioning, one future
        covers the entire slice, and results come back in submission order.
        Per-operation cost on this path is a few array ops — no per-op
        futures, objects, or clock reads.

        Admission is **all-or-nothing**: every target shard's budget and
        lane state is checked before any chunk is enqueued, so a rejection
        (:class:`~repro.service.errors.ServiceOverloaded` /
        :class:`~repro.service.errors.ShardQuarantined`) means no part of
        the slice was admitted and the whole array is safe to resubmit.
        ``deadline`` (absolute ``perf_counter``) covers every operation of
        the admission.
        """
        self._require_running()
        op_codes = np.asarray(op_codes, dtype=np.int64)
        keys = np.asarray(keys, dtype=np.uint64)
        if values is None:
            values = np.zeros(len(keys), dtype=np.uint32)
        values = np.asarray(values, dtype=np.uint32)
        if not (len(op_codes) == len(keys) == len(values)):
            raise ValueError("op_codes, keys and values must have the same length")
        if len(keys) == 0:
            return np.zeros(0, dtype=np.uint32)
        if not np.isin(op_codes, _VALID_OPS).all():
            bad = op_codes[~np.isin(op_codes, _VALID_OPS)][0]
            raise ValueError(f"unknown operation code {int(bad)!r}")
        if (keys >= np.uint64(C.MAX_USER_KEY)).any():
            bad = keys[keys >= np.uint64(C.MAX_USER_KEY)][0]
            raise ValueError(f"key 0x{int(bad):08X} is outside the storable key domain")

        if self._sharded:
            parts = self.engine.admit_partition(keys)
        else:
            parts = [np.arange(len(keys), dtype=np.int64)]
        # All-or-nothing admission: check every target lane before enqueueing
        # anything, so a rejected slice leaves no partial chunks behind.
        for shard, idx in enumerate(parts):
            if idx.size:
                self._admission_check(shard, int(idx.size))
        future: "asyncio.Future[np.ndarray]" = asyncio.get_running_loop().create_future()
        now = self._stamp_enqueue()
        slice_ = OpSlice(future, len(keys))
        for shard, idx in enumerate(parts):
            if not idx.size:
                continue
            chunk = OpChunk(
                op_codes[idx],
                keys[idx],
                values[idx] if self._key_value else None,
                slice_,
                idx,
                now,
                deadline,
            )
            self._batchers[shard].add(chunk)
            self._wakes[shard].set()
        return await future

    # ------------------------------------------------------------------ #
    # Per-shard drain loops, group commit, and batch execution
    # ------------------------------------------------------------------ #

    async def _drain_shard(self, shard: int) -> None:
        """One shard's drain loop: greedy warp-aligned cuts, deadlined tails.

        Whenever at least a warp's worth of operations is pending, a
        warp-aligned batch is cut and executed immediately — coalescing
        happens *while the previous batch runs* (executions are synchronous,
        so the log fills during them), not by idling on a timer.  Only a
        sub-warp ragged tail waits, up to ``max_delay``, for enough traffic
        to fill a warp before a forced (deadline) cut flushes it.
        """
        batcher = self._batchers[shard]
        wake = self._wakes[shard]
        while True:
            # Deadline rejections happen at cut time: expired operations are
            # failed here, before any batch is cut, never executed late.
            expired = batcher.expire(time.perf_counter())
            if expired:
                self._ops_failed += expired
            if self._lane_state[shard] == LANE_OPEN:
                # Quarantined: admission is refusing traffic and the restore
                # task owns the shard; park until it half-opens the lane.
                if self._closing:
                    return
                wake.clear()
                if self._lane_state[shard] != LANE_OPEN:  # raced with restore
                    continue
                await wake.wait()
                continue
            if len(batcher) == 0:
                if self._closing:
                    return
                wake.clear()
                if len(batcher):  # raced with an enqueue
                    continue
                await wake.wait()
                continue
            batch = batcher.take()
            if batch is not None:
                await self._commit_round(shard, batch)
                continue
            # Fewer than one warp pending: a ragged tail.
            if self._closing:
                await self._commit_round(shard, batcher.take(force=True))
                continue
            deadline = batcher.oldest_enqueued_at() + self.config.max_delay
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                await self._commit_round(shard, batcher.take(force=True))
                continue
            wake.clear()
            try:
                await asyncio.wait_for(wake.wait(), timeout=remaining)
            except asyncio.TimeoutError:
                pass

    async def _commit_round(self, shard: int, batch: Optional[CutBatch]) -> None:
        """Stage a cut batch, give other ready drains one turn, then flush.

        The ``sleep(0)`` lets every other drain task whose batcher is also
        ready cut and stage *its* batch into the same round, so the flush
        group-appends them to the WAL with one write + flush and executes
        them back to back.  Whichever staging drain resumes first flushes the
        whole round; the rest find the staging area empty.  A shard never
        cuts its next batch before its staged batch has executed, so the
        per-shard FIFO (and with it per-key ordering) is preserved.
        """
        if batch is None:
            return
        self._staged.append(_StagedBatch(shard, batch))
        await asyncio.sleep(0)  # let other ready drains join this round
        if not self._staged:
            return  # another drain already flushed the round
        staged, self._staged = self._staged, []
        for entry in staged:
            # Indices are assigned at commit time, not cut time, so a
            # checkpoint taken while a batch sat staged can never record a
            # WAL floor that covers a batch the snapshot does not contain.
            entry.batch_index = self._batch_index
            self._batch_index += 1
        if self.wal is not None:
            # Write-ahead, amortized: the whole round is durable — one framed
            # write, one flush — before any of its batches executes, so a
            # crash mid-round replays every logged batch on recovery.
            try:
                self.wal.append_group(
                    [
                        (
                            entry.batch.op_codes,
                            entry.batch.keys.astype(np.uint32),
                            entry.batch.values,
                            entry.batch_index,
                        )
                        for entry in staged
                    ]
                )
            except Exception as exc:  # noqa: BLE001 - log rolled back; fail the round
                # Not logged means not run: the WAL rolled back to its last
                # committed offset, none of the round's batches executes, and
                # every affected operation fails retryably.  The table itself
                # was never touched, so the service keeps serving.
                self._wal_rollbacks += 1
                failure = WalCommitFailed(
                    f"WAL group commit failed and was rolled back: "
                    f"{type(exc).__name__}: {exc}"
                )
                failure.__cause__ = exc
                for entry in staged:
                    self._ops_failed += len(entry.batch)
                    entry.batch.fail(failure)
                return
        for entry in staged:
            self._execute(entry)

    def _seed_for(self, shard: int, batch_index: int) -> Optional[int]:
        """Scheduler seed for one batch, or ``None`` for the phased schedule.

        Mirrors recovery replay exactly: ShardedSlabHash.concurrent_batch
        seeds shard ``s`` with (seed + batch_index) + s; a single table is
        seeded with seed + batch_index.
        """
        seed = self.config.scheduler_seed
        if seed is None:
            return None
        return seed + batch_index + (shard if self._sharded else 0)

    def _scheduler_for(self, shard: int, batch_index: int) -> Optional[WarpScheduler]:
        seed = self._seed_for(shard, batch_index)
        return None if seed is None else WarpScheduler(seed=seed)

    def _execute(self, entry: _StagedBatch) -> None:
        batch = entry.batch
        table = self._shards[entry.shard]
        holder = {}

        if self.faults is not None:
            # Pre-execution injection site: the batch is logged but has not
            # touched the table yet, so the rejection is *clean* (state
            # intact) — it counts toward the breaker but never dirties state.
            try:
                self.faults.check(f"shard:{entry.shard}.execute")
            except Exception as exc:  # noqa: BLE001
                self._reject_batch(entry, exc, dirty=False)
                return

        def run() -> None:
            if self._process_mode:
                # Dispatch to the shard's worker process.  The reply mirrors
                # the worker's device counters onto ``table.device``, so the
                # surrounding measure_phase sees serial-identical deltas; a
                # dead worker raises WorkerCrashed (injected + dirty below).
                holder["results"] = self.engine.execute_shard_batch(
                    entry.shard,
                    batch.op_codes,
                    batch.keys,
                    batch.values,
                    scheduler_seed=self._seed_for(entry.shard, entry.batch_index),
                    wave_size=self.config.wave_size,
                )
                return
            holder["results"] = table.concurrent_batch(
                batch.op_codes,
                batch.keys,
                batch.values,
                scheduler=self._scheduler_for(entry.shard, entry.batch_index),
                wave_size=self.config.wave_size,
            )

        try:
            if self.config.measure_device_time:
                measurement = measure_phase(
                    table.device,
                    run,
                    num_ops=len(batch),
                    label=f"service batch {entry.batch_index} (shard {entry.shard})",
                )
                self._modelled_per_shard[entry.shard] += measurement.seconds
            else:
                run()
            results = holder["results"]
        except Exception as exc:  # noqa: BLE001 - a failed batch fails its slices
            self._reject_batch(entry, exc, dirty=True)
            return
        completed_at = time.perf_counter()
        self._last_completion = completed_at
        self._ops_completed += len(batch)
        self._lane_ok(entry.shard)
        for chunk, _start, _end in batch.spans():
            self._latency.record_many(completed_at - chunk.enqueued_at, len(chunk))
        batch.complete(results)
        self._resize_between_batches(entry.shard, entry.batch_index)

    # ------------------------------------------------------------------ #
    # Circuit breaker, quarantine, and restore
    # ------------------------------------------------------------------ #

    def _lane_ok(self, shard: int) -> None:
        """A batch executed cleanly: reset the breaker, close a half-open lane."""
        self._consecutive_failures[shard] = 0
        if self._lane_state[shard] == LANE_HALF_OPEN:
            self._lane_state[shard] = LANE_CLOSED

    def _reject_batch(self, entry: _StagedBatch, exc: BaseException, *, dirty: bool) -> None:
        """Fail one committed batch's futures and advance the breaker.

        *Injected* failures (:class:`~repro.faults.InjectedFault`) are
        non-deterministic — a replay would not reproduce them — so the batch
        gets an abort marker, keeping "rejected means absent" true across
        crash-recovery.  Natural failures (e.g. real allocator exhaustion)
        replay identically, so the log needs no marker and the pre-hardening
        fail-futures-and-serve-on behavior is preserved.  A *dirty* injected
        failure (mid-execution, shard state suspect) trips the lane
        immediately; everything else trips only after ``breaker_threshold``
        consecutive failures.
        """
        shard = entry.shard
        injected = isinstance(exc, InjectedFault)
        if injected:
            self._abort_batch_record(entry.batch_index)
        self._ops_failed += len(entry.batch)
        entry.batch.fail(exc)
        self._consecutive_failures[shard] += 1
        if (dirty and injected) or (
            self._consecutive_failures[shard] >= self.config.breaker_threshold
        ):
            self._trip(shard, exc)

    def _abort_batch_record(self, batch_index: int) -> None:
        """Durably mark a logged batch as aborted so recovery skips it."""
        self._aborted_indices.add(batch_index)
        if self.wal is None:
            return
        try:
            self.wal.append_abort(batch_index)
            self._aborts_logged += 1
        except Exception:  # noqa: BLE001 - retried at restore/stop time
            self._unlogged_aborts.add(batch_index)

    def _flush_unlogged_aborts(self) -> None:
        """Retry abort markers whose append failed; best-effort, in order."""
        if self.wal is None or not self._unlogged_aborts:
            return
        for batch_index in sorted(self._unlogged_aborts):
            try:
                self.wal.append_abort(batch_index)
                self._aborts_logged += 1
                self._unlogged_aborts.discard(batch_index)
            except Exception:  # noqa: BLE001 - still unlogged; keep for later
                pass

    def _trip(self, shard: int, cause: BaseException) -> None:
        """Open the lane's breaker: quarantine the shard, start its restore.

        Without a checkpoint on record there is no state to rebuild, so the
        "restore" is soft and happens *synchronously*: pending slices still
        fail retryably and the trip is counted, but the lane lands in
        half-open immediately — no admission window ever rejects, matching
        the pre-hardening serve-on behavior for natural failures.
        """
        if self._lane_state[shard] == LANE_OPEN:
            return
        self._lane_trips[shard] += 1
        error = ShardQuarantined(
            f"shard {shard} quarantined after "
            f"{self._consecutive_failures[shard]} consecutive batch failure(s): "
            f"{type(cause).__name__}: {cause}"
        )
        error.__cause__ = cause
        self._ops_failed += self._batchers[shard].clear(error)
        if self._checkpoint_path is None:
            self._flush_unlogged_aborts()
            self._lane_restores[shard] += 1
            self._consecutive_failures[shard] = 0
            self._lane_state[shard] = LANE_HALF_OPEN
            return
        self._lane_state[shard] = LANE_OPEN
        self._restore_tasks[shard] = asyncio.get_running_loop().create_task(
            self._restore_lane(shard)
        )

    async def _restore_lane(self, shard: int) -> None:
        """Background quarantine restore: rebuild the shard, half-open the lane.

        With a checkpoint on record the shard is rebuilt from snapshot + WAL
        tail (aborted batches skipped), which discards whatever partial state
        the dirty failure left; without one the restore is *soft* — the lane
        merely cools down and half-opens, matching the pre-hardening
        serve-on behavior.  Restore failures are injectable
        (``service.restore``) and retried; after the attempts the lane
        half-opens regardless (degraded but live — admission works and the
        next clean batch closes the breaker, so no manual intervention is
        ever required).
        """
        try:
            await asyncio.sleep(0)  # let the tripping execute() unwind first
            self._flush_unlogged_aborts()
            for attempt in range(3):
                try:
                    if self.faults is not None:
                        self.faults.check("service.restore")
                    self._restore_shard_state(shard)
                    break
                except asyncio.CancelledError:
                    raise
                except Exception as exc:  # noqa: BLE001 - retry, then degrade
                    self._restore_failure_log.append(
                        f"shard {shard} restore attempt {attempt + 1}: "
                        f"{type(exc).__name__}: {exc}"
                    )
                    await asyncio.sleep(self.config.max_delay)
            self._lane_restores[shard] += 1
            self._consecutive_failures[shard] = 0
            self._lane_state[shard] = LANE_HALF_OPEN
            self._restore_tasks.pop(shard, None)
            if shard < len(self._wakes):
                self._wakes[shard].set()
        except asyncio.CancelledError:
            pass

    def _restore_shard_state(self, shard: int) -> None:
        """Rebuild one shard from the last checkpoint plus the WAL tail.

        Hash routing sends every occurrence of a key to the same shard, so
        shard ``i`` of a full :func:`~repro.persist.recovery.recover` equals
        checkpointed shard ``i`` plus exactly the acked shard-``i`` batches —
        swapping it in cannot disturb any other lane.  In-memory aborted
        indices ride along as ``extra_aborted`` in case their durable
        markers have not landed.  Without a checkpoint this is a no-op
        (soft restore: cool down and half-open).
        """
        if self._checkpoint_path is None:
            return
        from repro.persist.recovery import recover as _recover

        engine, _report = _recover(
            self._checkpoint_path,
            None if self.wal is None else self.wal.path,
            scheduler_seed=self.config.scheduler_seed,
            wave_size=self.config.wave_size,
            extra_aborted=self._aborted_indices,
        )
        if self._sharded:
            fresh = engine.shards[shard]
            # install_shard swaps the engine's entry and, in process mode,
            # ships the rebuilt shard to its worker (respawning it if the
            # trip was a WorkerCrashed that killed it).
            self.engine.install_shard(shard, fresh)
        else:
            fresh = engine
            self.engine = engine
        self._shards[shard] = fresh
        if self.faults is not None:
            fresh.alloc.faults = self.faults.scoped(f"shard:{shard}.")

    def _resize_between_batches(self, shard: int, batch_index: int) -> None:
        """Apply this shard's deferred load-factor policy while it is idle.

        No-op without a policy (``maybe_resize`` returns ``[]`` immediately);
        migration device time is accounted separately from the batches'.
        Under an incremental policy the call advances at most a bounded
        number of migration steps, so the pause between batches stays
        bounded by the step size rather than the table size.  Recovery
        replay reproduces the same per-shard schedule by pumping exactly
        the shards each replayed record touched (pumping is not idempotent
        once migrations are incremental, so replay must not pump untouched
        shards).  A failed migration (e.g. allocator exhaustion) leaves the
        table restored — ``resize_table``'s strong guarantee for rebuilds;
        an unchanged watermark with both tables consistent for a failed
        incremental step — so it is recorded and the service keeps serving
        rather than killing the drain loop.
        Failures append to an append-only log surfaced via
        :attr:`resize_failures` / :meth:`stats`; a later successful
        migration never overwrites or clears an earlier recorded failure.
        """
        try:
            if self._sharded:
                # Engine hook so process mode pumps inside the shard's worker;
                # serial mode this is exactly self._shards[shard].maybe_resize().
                results = self.engine.maybe_resize_shard(shard)
            else:
                results = self._shards[shard].maybe_resize()
        except WorkerCrashed as exc:
            # Worker death discovered in the between-batch pump is NOT a
            # benign migration failure: the shard's resident state — with
            # this lane's just-acked batches applied — died with the worker,
            # and serving on would silently respawn from a stale mirror.
            # Trip the lane so the quarantine restore rebuilds the shard
            # from checkpoint + WAL tail and re-ships it to a fresh worker.
            self._consecutive_failures[shard] += 1
            self._trip(shard, exc)
            return
        except Exception as exc:  # noqa: BLE001 - the table is intact; keep serving
            self._resize_failure_log.append(
                f"after batch {batch_index}: {type(exc).__name__}: {exc}"
            )
            return
        if results:
            self._resizes_performed += len(results)
            self._resize_modelled_seconds += sum(r.seconds for r in results)

    # ------------------------------------------------------------------ #
    # Durability: checkpointing and recovery (see repro.persist)
    # ------------------------------------------------------------------ #

    def checkpoint(self, snapshot_path: str) -> str:
        """Snapshot the engine and truncate the WAL; returns the snapshot path.

        The snapshot captures the engine bit-identically, which makes every
        *logged* batch redundant — truncating the WAL is what bounds recovery
        time.  Call from the event-loop thread (e.g. between awaits); with
        operations still pending in the per-shard logs, those operations are
        simply not yet part of the checkpoint and will be logged when their
        round commits.

        The snapshot records the next WAL batch index as its floor, so even
        if the process dies *between* the snapshot write and the WAL
        truncation, recovery skips the already-covered records instead of
        double-replaying them — and a service recovered from a
        freshly-truncated WAL keeps its batch numbering contiguous.  Batch
        indices are assigned at group-commit time, so a batch cut but not
        yet committed is always numbered *above* the floor and replays.

        Checkpointing while a shard is quarantined is refused (retryable
        :class:`~repro.service.errors.ShardQuarantined`): the snapshot would
        capture the quarantined lane's suspect state and the truncation
        would discard the very WAL tail its restore needs.
        """
        from repro.persist.snapshot import save as _save

        for shard, state in enumerate(self._lane_state):
            if state == LANE_OPEN:
                raise ShardQuarantined(
                    f"cannot checkpoint while shard {shard} is quarantined "
                    "(restore in progress); retry after it half-opens"
                )

        _save(self.engine, snapshot_path, wal_min_batch_index=self._batch_index)
        if self.wal is not None:
            self.wal.truncate()
        # The quarantine-restore path rebuilds shards from here; batches the
        # truncation discarded are also no longer abortable-by-marker.
        self._checkpoint_path = snapshot_path
        return snapshot_path

    @classmethod
    def recovered(
        cls,
        snapshot_path: str,
        wal: Optional[WriteAheadLog] = None,
        *,
        config: Optional[ServiceConfig] = None,
        faults: Optional[FaultPlan] = None,
    ) -> "SlabHashService":
        """Rebuild a service from a snapshot plus the WAL it was paired with.

        Restores the snapshot, replays the WAL's complete records (a torn
        final record is discarded — its futures never resolved; aborted
        batches are skipped), and returns a *not yet started* service over
        the recovered engine that continues appending to the same log with
        contiguous batch numbering.  The ``config`` must match the crashed
        service's (the scheduler seed participates in replay determinism).
        The recovered service remembers the snapshot as its checkpoint, so
        quarantine restores work immediately.
        """
        from repro.persist.recovery import recover as _recover

        config = config or ServiceConfig()
        engine, report = _recover(
            snapshot_path,
            None if wal is None else wal.path,
            scheduler_seed=config.scheduler_seed,
            wave_size=config.wave_size,
        )
        service = cls(engine, config=config, wal=wal, faults=faults)
        service._batch_index = report.next_batch_index
        service._checkpoint_path = snapshot_path
        return service

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def pending(self) -> int:
        """Operations waiting in the per-shard logs or staged for commit."""
        return sum(len(batcher) for batcher in self._batchers) + sum(
            len(entry.batch) for entry in self._staged
        )

    @property
    def num_lanes(self) -> int:
        """Drain lanes (shards for a sharded engine, 1 for a single table)."""
        return len(self._shards)

    @property
    def lane_states(self) -> Tuple[str, ...]:
        """Per-lane circuit-breaker states (``closed``/``open``/``half_open``)."""
        return tuple(self._lane_state)

    @property
    def resizes_performed(self) -> int:
        """Policy-triggered resizes executed between micro-batches."""
        return self._resizes_performed

    @property
    def resize_failures(self) -> Tuple[str, ...]:
        """Append-only descriptions of failed between-batch migrations.

        Each entry records the batch it followed and the error; the table
        was restored (strong guarantee) and the service kept serving.  A
        subsequent successful migration never clears this log.
        """
        return tuple(self._resize_failure_log)

    @property
    def resize_modelled_seconds(self) -> float:
        """Modelled device time spent in between-batch migrations."""
        return self._resize_modelled_seconds

    def stats(self) -> ServiceStats:
        """Snapshot the service's accounting (latency, throughput, batching).

        Every aggregate is a sum over the ``per_shard`` lanes except
        ``modelled_seconds``, which is the busiest lane's device time (the
        parallel view — shards are independent modelled devices).
        """
        wall = 0.0
        if self._first_enqueue is not None and self._last_completion is not None:
            wall = max(0.0, self._last_completion - self._first_enqueue)
        if self._process_mode:
            # Barrier: refresh the parent mirror so the migration sums below
            # read worker-side resize_stats, not a stale pre-dispatch copy.
            _ = self.engine.shards
        lanes = tuple(
            ShardLaneStats(
                shard=shard,
                ops_enqueued=batcher.ops_enqueued,
                batches_cut=batcher.batches_cut,
                aligned_batches=batcher.aligned_batches,
                forced_batches=batcher.forced_batches,
                forced_aligned_batches=batcher.forced_aligned_batches,
                modelled_seconds=self._modelled_per_shard[shard],
                rejected_overloaded=self._rejected_overloaded[shard],
                rejected_quarantined=self._rejected_quarantined[shard],
                ops_expired=batcher.ops_expired,
                trips=self._lane_trips[shard],
                restores=self._lane_restores[shard],
                state=self._lane_state[shard],
            )
            for shard, batcher in enumerate(self._batchers)
        )
        batches = sum(lane.batches_cut for lane in lanes)
        modelled = max(self._modelled_per_shard) if self._modelled_per_shard else 0.0
        return ServiceStats(
            ops_enqueued=sum(lane.ops_enqueued for lane in lanes),
            ops_completed=self._ops_completed,
            ops_failed=self._ops_failed,
            batches_executed=batches,
            # Size view (any batch whose op count is a warp multiple) ...
            warp_aligned_batches=sum(lane.warp_aligned_batches for lane in lanes),
            # ... and trigger view (cuts forced by a deadline or drain), so a
            # forced warp-sized tail is distinguishable from a natural cut.
            deadline_forced_batches=sum(lane.forced_batches for lane in lanes),
            mean_batch_size=(self._ops_completed + self._ops_failed) / batches if batches else 0.0,
            latency=self._latency.report(),
            wall_seconds=wall,
            ops_per_second=self._ops_completed / wall if wall > 0 else 0.0,
            modelled_seconds=modelled,
            modelled_ops_per_second=(
                self._ops_completed / modelled if modelled > 0 else 0.0
            ),
            per_shard=lanes,
            resizes_performed=self._resizes_performed,
            resize_failures=tuple(self._resize_failure_log),
            resize_modelled_seconds=self._resize_modelled_seconds,
            migration_steps=sum(t.resize_stats.migration_steps for t in self._shards),
            migration_buckets_moved=sum(
                t.resize_stats.migration_buckets for t in self._shards
            ),
            migration_items_moved=sum(
                t.resize_stats.migration_items for t in self._shards
            ),
            ops_rejected=sum(lane.rejected_overloaded for lane in lanes)
            + sum(lane.rejected_quarantined for lane in lanes),
            ops_expired=sum(lane.ops_expired for lane in lanes),
            breaker_trips=sum(lane.trips for lane in lanes),
            shard_restores=sum(lane.restores for lane in lanes),
            wal_rollbacks=self._wal_rollbacks,
            batches_aborted=len(self._aborted_indices),
            restore_failures=tuple(self._restore_failure_log),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        target = "sharded" if self._sharded else "single-table"
        return (
            f"SlabHashService({target}, lanes={self.num_lanes}, "
            f"pending={self.pending}, completed={self._ops_completed})"
        )
