"""Request-service layer: an async micro-batching front door for the engine.

Where :mod:`repro.core` scales the table *up* and :mod:`repro.engine`
scales it *out*, this package makes it *servable*: callers await single
operations or whole arrays, admissions are routed to per-shard operation
logs as NumPy chunks (one future per admission, not per operation), and one
drain task per shard cuts warp-aligned mixed batches and runs them through
the shard's ``concurrent_batch`` — on the vectorized concurrent fast path
by default, with WAL appends group-committed across a drain round.

* :class:`~repro.service.batcher.MicroBatcher` — the event-loop-agnostic
  coalescing core (array-backed chunk log, warp-aligned cuts, forced ragged
  flushes), with :class:`~repro.service.batcher.OpSlice` /
  :class:`~repro.service.batcher.OpChunk` /
  :class:`~repro.service.batcher.CutBatch` as the admission→batch→results
  data path;
* :class:`~repro.service.service.SlabHashService` — the asyncio front door
  (``insert`` / ``search`` / ``delete`` / ``submit_many``), per-shard drain
  loops, group commit, and per-operation latency/throughput accounting;
* :class:`~repro.service.service.ServiceConfig` /
  :class:`~repro.service.service.ServiceStats` /
  :class:`~repro.service.service.ShardLaneStats` — tuning knobs and the
  measurement snapshot (percentiles via :mod:`repro.perf.latency`), with a
  per-shard lane breakdown.

``benchmarks/bench_service_saturation.py`` sweeps offered concurrency
through this layer to the throughput knee and records the service document
at the repo root (``benchmarks/bench_service_latency.py`` keeps the
Figure-7-style fixed-load latency run); ``docs/TUTORIAL.md`` walks through
using it.
"""

from repro.service.batcher import CutBatch, MicroBatcher, OpChunk, OpSlice
from repro.service.service import (
    ServiceConfig,
    ServiceStats,
    ShardLaneStats,
    SlabHashService,
)

__all__ = [
    "CutBatch",
    "MicroBatcher",
    "OpChunk",
    "OpSlice",
    "ServiceConfig",
    "ServiceStats",
    "ShardLaneStats",
    "SlabHashService",
]
