"""Request-service layer: an async micro-batching front door for the engine.

Where :mod:`repro.core` scales the table *up* and :mod:`repro.engine`
scales it *out*, this package makes it *servable*: callers await single
operations, an operation-log micro-batcher coalesces everything arriving
within a latency budget into warp-aligned mixed batches, and each batch
runs through the sharded engine's ``concurrent_batch`` — on the vectorized
concurrent fast path by default.

* :class:`~repro.service.batcher.MicroBatcher` — the event-loop-agnostic
  coalescing core (warp-aligned cuts, forced ragged flushes);
* :class:`~repro.service.service.SlabHashService` — the asyncio front door
  (``insert`` / ``search`` / ``delete`` / ``submit_many``), drain loop,
  and per-operation latency/throughput accounting;
* :class:`~repro.service.service.ServiceConfig` /
  :class:`~repro.service.service.ServiceStats` — tuning knobs and the
  measurement snapshot (percentiles via :mod:`repro.perf.latency`).

``benchmarks/bench_service_latency.py`` drives a Figure-7-style operation
stream through this layer and records the latency/throughput document at
the repo root; ``docs/TUTORIAL.md`` walks through using it.
"""

from repro.service.batcher import MicroBatcher, PendingOp
from repro.service.service import ServiceConfig, ServiceStats, SlabHashService

__all__ = [
    "MicroBatcher",
    "PendingOp",
    "ServiceConfig",
    "ServiceStats",
    "SlabHashService",
]
