"""Request-service layer: an async micro-batching front door for the engine.

Where :mod:`repro.core` scales the table *up* and :mod:`repro.engine`
scales it *out*, this package makes it *servable*: callers await single
operations or whole arrays, admissions are routed to per-shard operation
logs as NumPy chunks (one future per admission, not per operation), and one
drain task per shard cuts warp-aligned mixed batches and runs them through
the shard's ``concurrent_batch`` — on the vectorized concurrent fast path
by default, with WAL appends group-committed across a drain round.

* :class:`~repro.service.batcher.MicroBatcher` — the event-loop-agnostic
  coalescing core (array-backed chunk log, warp-aligned cuts, forced ragged
  flushes), with :class:`~repro.service.batcher.OpSlice` /
  :class:`~repro.service.batcher.OpChunk` /
  :class:`~repro.service.batcher.CutBatch` as the admission→batch→results
  data path;
* :class:`~repro.service.service.SlabHashService` — the asyncio front door
  (``insert`` / ``search`` / ``delete`` / ``submit_many``), per-shard drain
  loops, group commit, and per-operation latency/throughput accounting;
* :class:`~repro.service.service.ServiceConfig` /
  :class:`~repro.service.service.ServiceStats` /
  :class:`~repro.service.service.ShardLaneStats` — tuning knobs and the
  measurement snapshot (percentiles via :mod:`repro.perf.latency`), with a
  per-shard lane breakdown;
* :mod:`~repro.service.errors` — the typed rejection vocabulary
  (retryable :class:`~repro.service.errors.ServiceOverloaded` /
  :class:`~repro.service.errors.ShardQuarantined` /
  :class:`~repro.service.errors.WalCommitFailed`, non-retryable
  :class:`~repro.service.errors.OpDeadlineExceeded` /
  :class:`~repro.service.errors.ServiceStopped`) plus
  :func:`~repro.service.retry.retry_with_backoff`, the client half of the
  fail-fast contract (docs/FAULTS.md).

Hardening: admission is budget-bounded per shard, operations carry optional
deadlines enforced at cut time, each drain lane has a circuit breaker with
background checkpoint+WAL restore, and a :class:`~repro.faults.FaultPlan`
can be armed across the allocator / WAL / execute sites for deterministic
chaos testing.

``benchmarks/bench_service_saturation.py`` sweeps offered concurrency
through this layer to the throughput knee and records the service document
at the repo root (``benchmarks/bench_service_latency.py`` keeps the
Figure-7-style fixed-load latency run; ``benchmarks/bench_degraded.py``
measures the degraded modes); ``docs/TUTORIAL.md`` walks through using it.
"""

from repro.service.batcher import CutBatch, MicroBatcher, OpChunk, OpSlice
from repro.service.errors import (
    OpDeadlineExceeded,
    RetryableServiceError,
    ServiceError,
    ServiceOverloaded,
    ServiceStopped,
    ShardQuarantined,
    WalCommitFailed,
)
from repro.service.retry import retry_with_backoff
from repro.service.service import (
    LANE_CLOSED,
    LANE_HALF_OPEN,
    LANE_OPEN,
    ServiceConfig,
    ServiceStats,
    ShardLaneStats,
    SlabHashService,
)

__all__ = [
    "CutBatch",
    "LANE_CLOSED",
    "LANE_HALF_OPEN",
    "LANE_OPEN",
    "MicroBatcher",
    "OpChunk",
    "OpDeadlineExceeded",
    "OpSlice",
    "RetryableServiceError",
    "ServiceConfig",
    "ServiceError",
    "ServiceOverloaded",
    "ServiceStats",
    "ServiceStopped",
    "ShardLaneStats",
    "ShardQuarantined",
    "SlabHashService",
    "WalCommitFailed",
    "retry_with_backoff",
]
