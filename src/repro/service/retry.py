"""An asyncio-friendly retry helper for the service's retryable rejections.

The service sheds load by *failing fast* — :class:`ServiceOverloaded`,
:class:`ShardQuarantined` and :class:`WalCommitFailed` all mean "not
applied, resubmit later".  :func:`retry_with_backoff` is the client half of
that contract: jittered exponential backoff between attempts, an optional
deadline, and a deterministic jitter source (seeded ``random.Random``, never
the global RNG) so tests and chaos programs replay identically.

    results = await retry_with_backoff(
        lambda: service.submit_many(op_codes, keys, values),
        rng=random.Random(7),
        deadline=time.perf_counter() + 1.0,
    )
"""

from __future__ import annotations

import asyncio
import random
import time
from typing import Awaitable, Callable, Optional, Tuple, Type, TypeVar

from repro.service.errors import RetryableServiceError

__all__ = ["retry_with_backoff"]

T = TypeVar("T")


async def retry_with_backoff(
    operation: Callable[[], Awaitable[T]],
    *,
    retries: int = 8,
    base_delay: float = 0.001,
    max_delay: float = 0.25,
    jitter: float = 0.5,
    deadline: Optional[float] = None,
    rng: Optional[random.Random] = None,
    retry_on: Tuple[Type[BaseException], ...] = (RetryableServiceError,),
) -> T:
    """Await ``operation()`` — a fresh coroutine per call — retrying
    retryable service rejections with jittered exponential backoff.

    Parameters
    ----------
    operation:
        Zero-argument callable returning a *new* awaitable each attempt
        (e.g. ``lambda: service.submit(op, key, value)``).
    retries:
        Maximum resubmissions after the first attempt.  Exhausting them
        re-raises the last rejection.
    base_delay / max_delay:
        The nth backoff sleeps ``min(max_delay, base_delay * 2**n)``
        seconds before jitter.
    jitter:
        Each sleep is stretched by ``1 + jitter * U[0, 1)`` drawn from
        ``rng`` — desynchronizing retrying clients without global
        randomness.  ``0`` disables jitter.
    deadline:
        Absolute ``time.perf_counter()`` bound; when the next backoff sleep
        would land past it, the last rejection is re-raised instead of
        sleeping (the attempt itself is never cancelled mid-flight).
    rng:
        Seeded jitter source; defaults to ``random.Random(0)`` so two
        helpers built the same way behave the same.
    retry_on:
        Exception types worth retrying; anything else propagates
        immediately.  Defaults to
        :class:`~repro.service.errors.RetryableServiceError`.
    """
    rng = rng if rng is not None else random.Random(0)
    attempt = 0
    while True:
        try:
            return await operation()
        except retry_on as exc:
            if getattr(exc, "retryable", True) is False:
                raise
            attempt += 1
            if attempt > retries:
                raise
            delay = min(max_delay, base_delay * (2 ** (attempt - 1)))
            delay *= 1.0 + jitter * rng.random()
            if deadline is not None and time.perf_counter() + delay >= deadline:
                raise
            await asyncio.sleep(delay)
