"""The service layer's rejection vocabulary.

Every error the hardened :class:`~repro.service.SlabHashService` uses to
*refuse* work derives from :class:`ServiceError` and carries a
``retryable`` flag — the contract :func:`repro.service.retry.retry_with_backoff`
keys on (see docs/FAULTS.md for the full retry contract):

* **retryable** (:class:`ServiceOverloaded`, :class:`ShardQuarantined`,
  :class:`WalCommitFailed`): the operation was *not* applied and not
  logged; the condition is transient (backpressure, a quarantined lane
  mid-restore, a rolled-back WAL append), so resubmitting the same
  operation is safe and expected to eventually succeed.
* **non-retryable** (:class:`OpDeadlineExceeded`, :class:`ServiceStopped`):
  the operation was not applied either, but retrying as-is is pointless —
  its deadline has passed, or the service is shutting down.

Batch-execution failures (e.g. real allocator exhaustion) are *not* wrapped:
they surface as the underlying exception, exactly as before.
"""

from __future__ import annotations

__all__ = [
    "ServiceError",
    "RetryableServiceError",
    "ServiceOverloaded",
    "ShardQuarantined",
    "WalCommitFailed",
    "OpDeadlineExceeded",
    "ServiceStopped",
]


class ServiceError(Exception):
    """Base class for service-level rejections (the op was never applied)."""

    #: Whether resubmitting the same operation unchanged makes sense.
    retryable = False


class RetryableServiceError(ServiceError):
    """A transient rejection; resubmission is safe and should succeed."""

    retryable = True


class ServiceOverloaded(RetryableServiceError):
    """Admission refused: the target shard's pending-op budget is full.

    Fail-fast backpressure — raised at submit time, before anything is
    logged or enqueued, so the caller can shed load or back off
    (:func:`~repro.service.retry.retry_with_backoff`).
    """


class ShardQuarantined(RetryableServiceError):
    """Admission refused: the target shard's lane is circuit-broken open.

    A background task is restoring the shard from the last checkpoint plus
    the WAL tail; the lane half-opens when it finishes, and admissions
    succeed again once a probe batch closes it.
    """


class WalCommitFailed(RetryableServiceError):
    """The round's WAL group-append failed and was rolled back.

    None of the round's batches executed (write-ahead: not logged means not
    run), so every affected operation is unapplied and safe to resubmit;
    the table itself is untouched and stays serviceable.
    """


class OpDeadlineExceeded(ServiceError):
    """The operation's deadline passed while it waited to be cut.

    Rejected at cut time instead of executed late.  Not retryable as-is —
    the deadline is part of the request; resubmit with a new one if the
    result still matters.
    """


class ServiceStopped(ServiceError):
    """The service stopped before this operation could be cut and executed.

    Raised at admission once shutdown begins, and used to deterministically
    fail any operation still in a shard log when the drains have exited —
    futures never hang across :meth:`~repro.service.SlabHashService.stop`.
    """
