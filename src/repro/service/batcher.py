"""The operation-log micro-batcher: an array-backed ring of admitted slices.

The slab hash's throughput comes from warp-cooperative batch execution —
one operation per thread, 32 per warp — but a service front door receives
operations as single calls and as bulk arrays.  :class:`MicroBatcher` is the
(event-loop agnostic) coalescing core the async service builds on: an
append-only log of **chunks** — contiguous array segments of one admission,
already routed to this batcher's shard — from which batches are cut
**warp-aligned** (multiples of the warp size) whenever possible, so the
engine's warps run full, and cut unaligned only when a latency deadline
forces a flush of the ragged tail.

Unlike the original one-``PendingOp``-per-operation design, the log never
touches individual operations in Python: an admission of N operations is one
:class:`OpChunk` holding NumPy arrays, a cut is a few array slices plus one
``np.concatenate``, and completion scatters results back through one
:class:`OpSlice` per admission (one asyncio future per *slice*, not per op).
That is what closes the service/engine throughput gap: per-operation Python
cost is gone from admission, cutting, and completion alike.

The batcher is a pure data structure — no clocks, no tasks — which keeps
the coalescing policy unit-testable; :class:`repro.service.SlabHashService`
owns the timing (max-delay deadlines), the routing, and the execution, with
one batcher (and one drain task) per shard.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Iterator, List, Optional, Tuple

if TYPE_CHECKING:
    import asyncio

import numpy as np

from repro.gpusim.warp import WARP_SIZE

__all__ = ["OpSlice", "OpChunk", "CutBatch", "MicroBatcher"]


class OpSlice:
    """Completion handle for one admission: 1..N operations, one future.

    A bulk admission is split by the router into per-shard chunks; each chunk
    reports back here when its batch executes.  When every chunk has reported
    (``remaining`` hits zero) the future resolves with the full results array
    (admission order), or with the first chunk's exception if any failed.
    """

    __slots__ = ("future", "results", "remaining", "failure")

    def __init__(self, future: "asyncio.Future[np.ndarray]", count: int) -> None:
        self.future = future
        self.results = np.zeros(count, dtype=np.uint32)
        self.remaining = 0  # chunks outstanding; bumped as chunks are created
        self.failure: Optional[BaseException] = None

    def chunk_done(self, positions: np.ndarray, values: np.ndarray) -> None:
        """Scatter one executed chunk's results into the admission's array."""
        self.results[positions] = values
        self._finish_one()

    def chunk_failed(self, error: BaseException) -> None:
        """Record one chunk's batch failure; the slice future will raise it."""
        if self.failure is None:
            self.failure = error
        self._finish_one()

    def _finish_one(self) -> None:
        self.remaining -= 1
        if self.remaining == 0 and not self.future.done():
            if self.failure is not None:
                self.future.set_exception(self.failure)
            else:
                self.future.set_result(self.results)


class OpChunk:
    """A contiguous run of one admission's operations, routed to one shard.

    ``positions`` maps each operation back to its index in the parent
    slice's results array; ``enqueued_at`` is shared by the whole admission
    (one clock read per admission, not per operation).  ``deadline`` is an
    optional absolute ``perf_counter`` bound shared the same way: a chunk
    still waiting in the log past it is rejected at cut time
    (:meth:`MicroBatcher.expire`) instead of executed late.
    """

    __slots__ = (
        "op_codes", "keys", "values", "slice", "positions", "enqueued_at", "deadline",
    )

    def __init__(
        self,
        op_codes: np.ndarray,
        keys: np.ndarray,
        values: Optional[np.ndarray],
        slice_: OpSlice,
        positions: np.ndarray,
        enqueued_at: float,
        deadline: Optional[float] = None,
    ) -> None:
        self.op_codes = op_codes
        self.keys = keys
        self.values = values
        self.slice = slice_
        self.positions = positions
        self.enqueued_at = float(enqueued_at)
        self.deadline = None if deadline is None else float(deadline)
        slice_.remaining += 1

    def __len__(self) -> int:
        return len(self.op_codes)

    def split(self, count: int) -> "OpChunk":
        """Cut the first ``count`` operations off into a new chunk.

        The head keeps the parent slice's accounting (``remaining`` grows by
        one for the new chunk); ``self`` shrinks to the tail.  Pure array
        slicing — no per-operation work.
        """
        head = OpChunk(
            self.op_codes[:count],
            self.keys[:count],
            None if self.values is None else self.values[:count],
            self.slice,
            self.positions[:count],
            self.enqueued_at,
            self.deadline,
        )
        self.op_codes = self.op_codes[count:]
        self.keys = self.keys[count:]
        if self.values is not None:
            self.values = self.values[count:]
        self.positions = self.positions[count:]
        return head


class CutBatch:
    """One cut batch: concatenated arrays plus the chunks to scatter back to."""

    __slots__ = ("chunks", "op_codes", "keys", "values")

    def __init__(self, chunks: List[OpChunk]) -> None:
        self.chunks = chunks
        if len(chunks) == 1:
            only = chunks[0]
            self.op_codes = only.op_codes
            self.keys = only.keys
            self.values = only.values
        else:
            self.op_codes = np.concatenate([chunk.op_codes for chunk in chunks])
            self.keys = np.concatenate([chunk.keys for chunk in chunks])
            values = [chunk.values for chunk in chunks]
            self.values = None if values[0] is None else np.concatenate(values)

    def __len__(self) -> int:
        return len(self.op_codes)

    def spans(self) -> Iterator[Tuple["OpChunk", int, int]]:
        """Yield ``(chunk, start, end)`` positions within the batch arrays."""
        cursor = 0
        for chunk in self.chunks:
            yield chunk, cursor, cursor + len(chunk)
            cursor += len(chunk)

    def complete(self, results: np.ndarray) -> None:
        """Scatter per-operation ``results`` back to every admission slice."""
        for chunk, start, end in self.spans():
            chunk.slice.chunk_done(chunk.positions, results[start:end])

    def fail(self, error: BaseException) -> None:
        """Fail every admission slice with the batch's exception."""
        for chunk in self.chunks:
            chunk.slice.chunk_failed(error)


class MicroBatcher:
    """Append-only chunk log with warp-aligned batch extraction.

    Parameters
    ----------
    max_batch_size:
        Upper bound on the number of operations per extracted batch; rounded
        down to a multiple of the warp size (and at least one warp).
    warp_size:
        Threads per warp of the target engine (32 for the modelled GPU).
    """

    def __init__(self, max_batch_size: int = 1024, *, warp_size: int = WARP_SIZE) -> None:
        if warp_size <= 0:
            raise ValueError(f"warp_size must be positive, got {warp_size}")
        if max_batch_size < warp_size:
            raise ValueError(
                f"max_batch_size ({max_batch_size}) must be at least one warp ({warp_size})"
            )
        self.warp_size = int(warp_size)
        self.max_batch_size = (int(max_batch_size) // self.warp_size) * self.warp_size
        self._log: Deque[OpChunk] = deque()
        self._pending = 0
        #: Totals for :class:`repro.service.ServiceStats`.
        self.ops_enqueued = 0
        self.batches_cut = 0
        #: Batches cut *without* ``force`` — size-triggered cuts, warp-aligned
        #: by construction ("naturally aligned").
        self.aligned_batches = 0
        #: Batches cut *with* ``force`` (a deadline expired or the service is
        #: draining), whatever their size.
        self.forced_batches = 0
        #: The subset of :attr:`forced_batches` whose tail happened to be an
        #: exact warp multiple.  Before this counter existed, such a cut was
        #: indistinguishable from a naturally aligned one, silently inflating
        #: ``aligned_batches`` on deadline-heavy traffic.
        self.forced_aligned_batches = 0
        #: Operations rejected because their per-op deadline expired in the
        #: log (:meth:`expire`) — never executed, failed with
        #: :class:`~repro.service.errors.OpDeadlineExceeded`.
        self.ops_expired = 0

    # ------------------------------------------------------------------ #
    # Logging
    # ------------------------------------------------------------------ #

    def add(self, chunk: OpChunk) -> None:
        """Append one routed chunk (1..N operations) to the log."""
        if len(chunk) == 0:
            chunk.slice.chunk_done(chunk.positions, chunk.op_codes.astype(np.uint32))
            return
        self._log.append(chunk)
        self._pending += len(chunk)
        self.ops_enqueued += len(chunk)

    def __len__(self) -> int:
        return self._pending

    @property
    def full(self) -> bool:
        """True when a maximum-size batch can be cut immediately."""
        return self._pending >= self.max_batch_size

    def oldest_enqueued_at(self) -> Optional[float]:
        """Enqueue time of the head of the log (None when empty)."""
        return self._log[0].enqueued_at if self._log else None

    # ------------------------------------------------------------------ #
    # Rejection paths (deadlines, shutdown, quarantine)
    # ------------------------------------------------------------------ #

    def expire(self, now: float) -> int:
        """Reject every logged chunk whose deadline lies before ``now``.

        Expired chunks are removed whole (a chunk shares one admission's
        deadline) and their slices failed with
        :class:`~repro.service.errors.OpDeadlineExceeded` — rejected at cut
        time, never executed late.  Returns the number of operations
        rejected; 0 on the common all-deadline-free path costs one ``any``
        scan of the log.
        """
        if not any(
            chunk.deadline is not None and chunk.deadline < now for chunk in self._log
        ):
            return 0
        from repro.service.errors import OpDeadlineExceeded

        expired = 0
        kept: Deque[OpChunk] = deque()
        for chunk in self._log:
            if chunk.deadline is not None and chunk.deadline < now:
                expired += len(chunk)
                chunk.slice.chunk_failed(
                    OpDeadlineExceeded(
                        f"deadline passed before the operation was cut "
                        f"({len(chunk)} op(s) waiting)"
                    )
                )
            else:
                kept.append(chunk)
        self._log = kept
        self._pending -= expired
        self.ops_expired += expired
        return expired

    def clear(self, error: BaseException) -> int:
        """Fail every logged chunk with ``error`` and empty the log.

        Used when a lane is quarantined (pending slices fail with a
        retryable :class:`~repro.service.errors.ShardQuarantined`) and on
        shutdown (leftovers fail with
        :class:`~repro.service.errors.ServiceStopped` instead of hanging
        their futures).  Returns the number of operations failed.
        """
        cleared = self._pending
        for chunk in self._log:
            chunk.slice.chunk_failed(error)
        self._log = deque()
        self._pending = 0
        return cleared

    # ------------------------------------------------------------------ #
    # Batch extraction
    # ------------------------------------------------------------------ #

    def take(self, *, force: bool = False) -> Optional[CutBatch]:
        """Cut the next batch from the head of the log.

        Without ``force`` only whole warps are cut (the largest multiple of
        ``warp_size`` available, capped at ``max_batch_size``): fewer than 32
        pending operations yield ``None``, keeping warps full while traffic
        keeps arriving.  With ``force`` (deadline expired, or the service is
        draining) the ragged tail is cut too, up to ``max_batch_size``
        operations.  A chunk straddling the cut is split with array slices —
        the cut never iterates per operation.

        Accounting: an unforced cut counts as *naturally aligned*
        (:attr:`aligned_batches`); a forced cut counts as deadline-forced
        (:attr:`forced_batches`), with :attr:`forced_aligned_batches`
        recording the ones whose tail was coincidentally warp-sized — the
        two triggers are kept distinguishable in the stats.
        """
        count = min(self._pending, self.max_batch_size)
        if not force:
            count = (count // self.warp_size) * self.warp_size
        if count == 0:
            return None
        chunks: List[OpChunk] = []
        needed = count
        while needed > 0:
            head = self._log[0]
            if len(head) <= needed:
                chunks.append(self._log.popleft())
                needed -= len(head)
            else:
                chunks.append(head.split(needed))
                needed = 0
        self._pending -= count
        self.batches_cut += 1
        if force:
            self.forced_batches += 1
            if count % self.warp_size == 0:
                self.forced_aligned_batches += 1
        else:
            self.aligned_batches += 1
        return CutBatch(chunks)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MicroBatcher(pending={self._pending}, max={self.max_batch_size}, "
            f"cut={self.batches_cut})"
        )
