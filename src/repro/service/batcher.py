"""The operation-log micro-batcher: coalesce single operations into batches.

The slab hash's throughput comes from warp-cooperative batch execution —
one operation per thread, 32 per warp — but a service front door receives
operations one at a time.  :class:`MicroBatcher` is the (event-loop
agnostic) coalescing core the async service builds on: an append-only
operation log from which batches are cut **warp-aligned** (multiples of the
warp size) whenever possible, so the engine's warps run full, and cut
unaligned only when a latency deadline forces a flush of the ragged tail.

The batcher is a pure data structure — no clocks, no tasks — which keeps
the coalescing policy unit-testable; :class:`repro.service.SlabHashService`
owns the timing (max-delay deadlines) and the execution.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.gpusim.warp import WARP_SIZE

__all__ = ["PendingOp", "MicroBatcher"]


class PendingOp:
    """One logged operation waiting to be executed as part of a batch."""

    __slots__ = ("op_code", "key", "value", "future", "enqueued_at")

    def __init__(self, op_code: int, key: int, value: int, future, enqueued_at: float) -> None:
        self.op_code = int(op_code)
        self.key = int(key)
        self.value = int(value)
        self.future = future
        self.enqueued_at = float(enqueued_at)


class MicroBatcher:
    """Append-only operation log with warp-aligned batch extraction.

    Parameters
    ----------
    max_batch_size:
        Upper bound on the number of operations per extracted batch; rounded
        down to a multiple of the warp size (and at least one warp).
    warp_size:
        Threads per warp of the target engine (32 for the modelled GPU).
    """

    def __init__(self, max_batch_size: int = 1024, *, warp_size: int = WARP_SIZE) -> None:
        if warp_size <= 0:
            raise ValueError(f"warp_size must be positive, got {warp_size}")
        if max_batch_size < warp_size:
            raise ValueError(
                f"max_batch_size ({max_batch_size}) must be at least one warp ({warp_size})"
            )
        self.warp_size = int(warp_size)
        self.max_batch_size = (int(max_batch_size) // self.warp_size) * self.warp_size
        self._log: Deque[PendingOp] = deque()
        #: Totals for :class:`repro.service.ServiceStats`.
        self.ops_enqueued = 0
        self.batches_cut = 0
        #: Batches cut *without* ``force`` — size-triggered cuts, warp-aligned
        #: by construction ("naturally aligned").
        self.aligned_batches = 0
        #: Batches cut *with* ``force`` (a deadline expired or the service is
        #: draining), whatever their size.
        self.forced_batches = 0
        #: The subset of :attr:`forced_batches` whose tail happened to be an
        #: exact warp multiple.  Before this counter existed, such a cut was
        #: indistinguishable from a naturally aligned one, silently inflating
        #: ``aligned_batches`` on deadline-heavy traffic.
        self.forced_aligned_batches = 0

    # ------------------------------------------------------------------ #
    # Logging
    # ------------------------------------------------------------------ #

    def add(self, op: PendingOp) -> None:
        """Append one operation to the log."""
        self._log.append(op)
        self.ops_enqueued += 1

    def __len__(self) -> int:
        return len(self._log)

    @property
    def full(self) -> bool:
        """True when a maximum-size batch can be cut immediately."""
        return len(self._log) >= self.max_batch_size

    def oldest_enqueued_at(self) -> Optional[float]:
        """Enqueue time of the head of the log (None when empty)."""
        return self._log[0].enqueued_at if self._log else None

    # ------------------------------------------------------------------ #
    # Batch extraction
    # ------------------------------------------------------------------ #

    def take(self, *, force: bool = False) -> List[PendingOp]:
        """Cut the next batch from the head of the log.

        Without ``force`` only whole warps are cut (the largest multiple of
        ``warp_size`` available, capped at ``max_batch_size``): fewer than 32
        pending operations yield an empty batch, keeping warps full while
        traffic keeps arriving.  With ``force`` (deadline expired, or the
        service is draining) the ragged tail is cut too, up to
        ``max_batch_size`` operations.

        Accounting: an unforced cut counts as *naturally aligned*
        (:attr:`aligned_batches`); a forced cut counts as deadline-forced
        (:attr:`forced_batches`), with :attr:`forced_aligned_batches`
        recording the ones whose tail was coincidentally warp-sized — the
        two triggers are kept distinguishable in the stats.
        """
        available = len(self._log)
        count = min(available, self.max_batch_size)
        if not force:
            count = (count // self.warp_size) * self.warp_size
        if count == 0:
            return []
        batch = [self._log.popleft() for _ in range(count)]
        self.batches_cut += 1
        if force:
            self.forced_batches += 1
            if count % self.warp_size == 0:
                self.forced_aligned_batches += 1
        else:
            self.aligned_batches += 1
        return batch

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MicroBatcher(pending={len(self._log)}, max={self.max_batch_size}, "
            f"cut={self.batches_cut})"
        )
