"""Hash-table baselines used by the paper's evaluation (Section VI).

* :class:`repro.baselines.cuckoo.CuckooHashTable` — a from-scratch
  implementation of the static GPU cuckoo hashing scheme of Alcantara et al.
  (the CUDPP hash table), used for the bulk build/search comparisons of
  Figures 4, 5 and 6.
* :class:`repro.baselines.misra.MisraHashTable` — Misra & Chaudhuri's
  lock-free chaining hash table over classic per-thread linked lists with a
  pre-allocated node pool, used for the concurrent comparison of Figure 7b.
* :class:`repro.baselines.gfsl.GFSLModel` — the analytic per-operation cost
  model of Moscovici et al.'s lock-based GPU skip list used by the paper's
  Section VI-C discussion.
"""

from repro.baselines.cuckoo import CuckooHashTable, CuckooBuildStats
from repro.baselines.misra import MisraHashTable
from repro.baselines.gfsl import GFSLModel

__all__ = ["CuckooHashTable", "CuckooBuildStats", "MisraHashTable", "GFSLModel"]
