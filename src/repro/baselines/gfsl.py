"""Analytic model of GFSL, the lock-based GPU-friendly skip list (Section VI-C).

The paper does not benchmark GFSL directly; it argues analytically that a
lock-based design needing at least two atomics (lock/unlock) plus two regular
memory accesses per insertion cannot outperform cuckoo hashing (one atomic per
insertion) or the slab hash (one coalesced read plus one atomic), and quotes
Moscovici et al.'s own peak numbers on a GeForce GTX 970: roughly 100 M
searches/s and 50 M updates/s.

:class:`GFSLModel` reproduces that argument: it charges the per-operation
access pattern of GFSL to the cost model on a GTX 970 device spec and exposes
peak rates for the Section VI-C comparison benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.costmodel import CostModel
from repro.gpusim.counters import Counters
from repro.gpusim.device import DeviceSpec, GTX_970

__all__ = ["GFSLModel", "GFSLOperationProfile"]


@dataclass(frozen=True)
class GFSLOperationProfile:
    """Per-operation access counts for one GFSL operation type."""

    atomics32: int
    coalesced_reads: int
    uncoalesced_reads: int
    warp_instructions: int


#: GFSL search: traverse the chunked skip-list levels (one coalesced 128 B
#: transaction plus scattered reads) plus the per-level search logic, which in
#: a lock-based per-thread skip list is heavily divergent (charged un-amortized).
SEARCH_PROFILE = GFSLOperationProfile(
    atomics32=0, coalesced_reads=1, uncoalesced_reads=2, warp_instructions=440
)

#: GFSL update: lock + unlock (two atomics) plus at least two regular accesses,
#: as stated in Section VI-C, plus the search to locate the position and the
#: divergent critical-section logic.
UPDATE_PROFILE = GFSLOperationProfile(
    atomics32=2, coalesced_reads=1, uncoalesced_reads=4, warp_instructions=840
)


class GFSLModel:
    """Analytic throughput model for GFSL on its published evaluation platform."""

    def __init__(self, spec: DeviceSpec = GTX_970) -> None:
        self.spec = spec
        self.cost_model = CostModel(spec)

    def _rate(self, profile: GFSLOperationProfile, num_ops: int = 1_000_000) -> float:
        counters = Counters(
            atomic32=profile.atomics32 * num_ops,
            coalesced_read_transactions=profile.coalesced_reads * num_ops,
            uncoalesced_read_words=profile.uncoalesced_reads * num_ops,
            warp_instructions=profile.warp_instructions * num_ops,
            kernel_launches=1,
        )
        return self.cost_model.throughput(num_ops, counters)

    def peak_search_rate(self) -> float:
        """Modelled peak search throughput (ops/s); the paper quotes ~100 M/s."""
        return self._rate(SEARCH_PROFILE)

    def peak_update_rate(self) -> float:
        """Modelled peak update throughput (ops/s); the paper quotes ~50 M/s."""
        return self._rate(UPDATE_PROFILE)

    def minimum_insert_atomics(self) -> int:
        """Atomics per insertion (2: lock and unlock), versus 1 for cuckoo/slab hash."""
        return UPDATE_PROFILE.atomics32
