"""CUDPP-style static cuckoo hashing (Alcantara et al.), the paper's main baseline.

The paper compares the slab hash against CUDPP's cuckoo hash table for bulk
building and bulk searching (Figures 4, 5 and 6).  CUDPP's implementation is a
closed benchmark binary, so this module implements the same algorithm from
scratch on the simulated device:

* a single open-addressing table of 64-bit entries (key + value packed side by
  side) sized as ``n / load_factor``;
* four universal hash functions; every key lives in one of its four positions;
* insertion by eviction chains: a thread atomically exchanges its pair into
  the key's current position and, if it evicted a live pair, continues with
  the evicted pair at that pair's *next* hash position, up to
  ``max_eviction_chain`` steps;
* if any chain exceeds the limit the whole build is restarted with fresh hash
  functions (CUDPP additionally keeps a small stash; restarts model the same
  failure behaviour, and the build-failure probability rises with the load
  factor exactly as the paper describes);
* searching probes the (up to four) candidate positions; a missing key always
  costs four probes.

Event accounting matches the "fast path" analysis in Section VI-A of the
paper: one 64-bit atomic per insertion plus one scattered read per probe, so
at low load factors CUDPP is hard to beat, and when the table fits in L2 (the
small-table region of Figure 5a) its atomics get dramatically cheaper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core import constants as C
from repro.core.hashing import PRIME
from repro.gpusim.device import Device
from repro.gpusim.memory import GlobalMemory

__all__ = ["CuckooHashTable", "CuckooBuildStats", "CuckooBuildError"]

#: Warp-instruction charge per probe of one candidate position (per thread,
#: amortized over the warp: probes are mostly convergent).
PROBE_INSTRUCTIONS = 2

#: Warp-instruction charge per eviction-chain step (address recompute + branch).
EVICTION_STEP_INSTRUCTIONS = 3

#: Default bound on eviction chains, following CUDPP's ``7 * lg(n)`` rule.
def default_max_chain(num_elements: int) -> int:
    return max(8, int(7 * np.log2(max(2, num_elements))))


class CuckooBuildError(RuntimeError):
    """Raised when the cuckoo build keeps failing even after restarts."""


@dataclass(frozen=True)
class CuckooBuildStats:
    """Outcome of a bulk build."""

    num_elements: int
    capacity: int
    load_factor: float
    restarts: int
    max_chain_observed: int
    total_evictions: int


class CuckooHashTable:
    """Static GPU cuckoo hash table (bulk build + bulk search only).

    Parameters
    ----------
    capacity:
        Number of table entries.  Use :meth:`for_load_factor` to size the
        table the way the paper does (``n`` elements at a given load factor /
        memory utilization).
    device:
        Simulated device for event accounting.
    num_hash_functions:
        Number of candidate positions per key (CUDPP uses 4).
    seed:
        Seed for the hash-function draws.
    """

    def __init__(
        self,
        capacity: int,
        *,
        device: Optional[Device] = None,
        num_hash_functions: int = 4,
        seed: int = 0,
        max_restarts: int = 25,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if num_hash_functions < 2:
            raise ValueError("cuckoo hashing needs at least 2 hash functions")
        self.device = device or Device()
        self.mem = GlobalMemory(self.device.counters)
        self.capacity = int(capacity)
        self.num_hash_functions = int(num_hash_functions)
        self.max_restarts = int(max_restarts)
        self._rng = np.random.default_rng(seed)
        self._draw_hash_functions()
        # 64-bit entries stored as two adjacent 32-bit words per row.
        self.table = np.full((self.capacity, 2), C.EMPTY_KEY, dtype=np.uint32)
        self.num_elements = 0

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def for_load_factor(
        cls,
        num_elements: int,
        load_factor: float,
        *,
        device: Optional[Device] = None,
        seed: int = 0,
        **kwargs: object,
    ) -> "CuckooHashTable":
        """Size the table for ``num_elements`` at the given load factor (= memory utilization)."""
        if not 0.0 < load_factor <= 1.0:
            raise ValueError(f"load factor must be in (0, 1], got {load_factor}")
        capacity = max(num_elements + 1, int(np.ceil(num_elements / load_factor)))
        return cls(capacity, device=device, seed=seed, **kwargs)

    def _draw_hash_functions(self) -> None:
        self._a = self._rng.integers(1, PRIME, size=self.num_hash_functions, dtype=np.uint64)
        self._b = self._rng.integers(0, PRIME, size=self.num_hash_functions, dtype=np.uint64)

    def _positions(self, key: int) -> np.ndarray:
        """The candidate table positions of ``key`` under the current functions."""
        k = np.uint64(int(key))
        return ((self._a * k + self._b) % np.uint64(PRIME)) % np.uint64(self.capacity)

    # ------------------------------------------------------------------ #
    # Bulk build
    # ------------------------------------------------------------------ #

    @property
    def load_factor(self) -> float:
        """Stored elements over table capacity (the paper's memory utilization)."""
        return self.num_elements / self.capacity

    @property
    def working_set_bytes(self) -> int:
        """Bytes of the open-addressing table (for the L2 residency model)."""
        return self.capacity * 8

    def bulk_build(
        self, keys: Sequence[int], values: Optional[Sequence[int]] = None
    ) -> CuckooBuildStats:
        """Build the table from scratch from an array of key(-value) pairs.

        Restarts with fresh hash functions whenever an eviction chain exceeds
        the CUDPP-style bound; raises :class:`CuckooBuildError` after
        ``max_restarts`` failed attempts (which becomes increasingly likely as
        the load factor approaches 1, as the paper notes).
        """
        keys = np.asarray(keys, dtype=np.uint64)
        if values is None:
            values = keys.astype(np.uint32)
        values = np.asarray(values, dtype=np.uint32)
        if keys.shape != values.shape:
            raise ValueError("keys and values must have the same length")
        if len(keys) >= self.capacity:
            raise ValueError(
                f"cannot store {len(keys)} elements in a table of capacity {self.capacity}"
            )

        max_chain = default_max_chain(len(keys))
        restarts = 0
        while True:
            try:
                stats = self._try_build(keys, values, max_chain, restarts)
                return stats
            except _ChainTooLong:
                restarts += 1
                if restarts > self.max_restarts:
                    raise CuckooBuildError(
                        f"cuckoo build failed after {restarts} restarts at load factor "
                        f"{len(keys) / self.capacity:.2f}"
                    ) from None
                self._draw_hash_functions()
                self.table[:] = C.EMPTY_KEY
                self.num_elements = 0

    def _try_build(
        self, keys: np.ndarray, values: np.ndarray, max_chain: int, restarts: int
    ) -> CuckooBuildStats:
        self.device.launch_kernel()
        max_chain_observed = 0
        total_evictions = 0
        for key, value in zip(keys, values):
            chain = self._insert_one(int(key), int(value), max_chain)
            max_chain_observed = max(max_chain_observed, chain)
            total_evictions += chain
        self.num_elements = len(keys)
        return CuckooBuildStats(
            num_elements=len(keys),
            capacity=self.capacity,
            load_factor=self.load_factor,
            restarts=restarts,
            max_chain_observed=max_chain_observed,
            total_evictions=total_evictions,
        )

    def _insert_one(self, key: int, value: int, max_chain: int) -> int:
        """Insert one pair by eviction chaining; returns the chain length used."""
        current_key, current_value = key, value
        slot_choice = 0
        for step in range(max_chain):
            positions = self._positions(current_key)
            pos = int(positions[slot_choice % self.num_hash_functions])
            self.device.counters.warp_instructions += EVICTION_STEP_INSTRUCTIONS
            old_key, old_value = self.mem.atomic_exch64(
                self.table, pos, 0, (current_key, current_value)
            )
            if old_key == C.EMPTY_KEY or old_key == current_key:
                return step
            # We evicted a live pair: reinsert it at its next candidate position.
            evicted_positions = self._positions(old_key)
            occupied_at = int(np.where(evicted_positions == pos)[0][0]) if pos in evicted_positions else 0
            slot_choice = occupied_at + 1
            current_key, current_value = old_key, old_value
        raise _ChainTooLong()

    # ------------------------------------------------------------------ #
    # Bulk search
    # ------------------------------------------------------------------ #

    def bulk_search(self, queries: Sequence[int]) -> np.ndarray:
        """Search a batch of queries; returns values (or ``SEARCH_NOT_FOUND``)."""
        queries = np.asarray(queries, dtype=np.uint64)
        results = np.full(len(queries), C.SEARCH_NOT_FOUND, dtype=np.uint32)
        self.device.launch_kernel()
        for i, query in enumerate(queries):
            results[i] = self._search_one(int(query))
        return results

    def _search_one(self, key: int) -> int:
        # CUDPP's search kernel reads all candidate positions unconditionally
        # (branch-free, the loads overlap), so found and not-found queries cost
        # the same number of memory accesses.
        positions = self._positions(key)
        result = C.SEARCH_NOT_FOUND
        for pos in positions:
            self.device.counters.warp_instructions += PROBE_INSTRUCTIONS
            stored_key = self.mem.read_word(self.table, (int(pos), 0))
            if stored_key == key:
                result = int(self.table[int(pos), 1])
        return result

    # ------------------------------------------------------------------ #
    # Host-side verification helpers (uncounted)
    # ------------------------------------------------------------------ #

    def contains(self, key: int) -> bool:
        positions = self._positions(int(key))
        return any(int(self.table[int(p), 0]) == int(key) for p in positions)

    def items(self) -> list[Tuple[int, int]]:
        live = self.table[:, 0] != C.EMPTY_KEY
        return [(int(k), int(v)) for k, v in self.table[live]]


class _ChainTooLong(Exception):
    """Internal signal: an eviction chain exceeded the bound; restart the build."""
