"""Misra & Chaudhuri's lock-free chaining hash table (the Figure 7b baseline).

Misra and Chaudhuri implemented classic lock-free linked lists on the GPU and
built a hash table with chaining from them.  The paper highlights the ways in
which that design differs from the slab hash, and this implementation mirrors
them:

* **key-only** (an unordered set): each node is a 32-bit key plus a 32-bit
  next index — so the structure can never exceed 50 % memory utilization;
* **pre-allocated node pool**: all future insertions come from an array sized
  at build time (there is no dynamic allocation); a global atomic counter
  hands out node indices;
* **per-thread processing**: each thread traverses its own chain one node at a
  time, so every hop is an uncoalesced scattered read and divergent threads
  within a warp serialize — exactly the behaviour the paper's WCWS strategy is
  designed to avoid.  The per-operation instruction charges below model that
  serialization (they are deliberately *per-thread*, not amortized across the
  warp like the slab hash's warp-cooperative charges).

Deletion follows the standard logical-deletion approach: the node's key is
atomically replaced by a tombstone; searches skip tombstones; the node is not
recycled (as in the original, which has no deallocation either).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core import constants as C
from repro.core.hashing import UniversalHash
from repro.gpusim.device import Device
from repro.gpusim.errors import AllocationError
from repro.gpusim.memory import GlobalMemory

__all__ = ["MisraHashTable"]

#: Null node index (end of a chain).
NIL = 0xFFFFFFFF

#: Per-thread instructions charged per search operation (hashing, loop setup).
#: Charged un-amortized to model the branch divergence of per-thread processing.
SEARCH_OP_INSTRUCTIONS = 40

#: Per-thread instructions charged per update operation (insert/delete): the
#: lock-free retry loop, node initialization and memory fences on top of the
#: traversal, again un-amortized across the warp.
UPDATE_OP_INSTRUCTIONS = 80

#: Per-thread instructions charged per chain hop (dependent pointer chase).
HOP_INSTRUCTIONS = 12


class MisraHashTable:
    """Lock-free, key-only hash table with per-thread classic linked lists.

    Parameters
    ----------
    num_buckets:
        Number of chains.
    capacity:
        Size of the pre-allocated node pool, i.e. the maximum number of
        insertions over the table's lifetime (the original allocates this at
        compile time).
    device:
        Simulated device for event accounting.
    """

    def __init__(
        self,
        num_buckets: int,
        capacity: int,
        *,
        device: Optional[Device] = None,
        seed: int = 0,
    ) -> None:
        if num_buckets <= 0:
            raise ValueError(f"num_buckets must be positive, got {num_buckets}")
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.device = device or Device()
        self.mem = GlobalMemory(self.device.counters)
        self.num_buckets = int(num_buckets)
        self.capacity = int(capacity)
        self.hash_fn = UniversalHash(num_buckets, seed=seed)
        #: Bucket heads (node indices), NIL when empty.
        self.heads = np.full(self.num_buckets, NIL, dtype=np.uint32)
        #: Pre-allocated node pool: keys and next indices.
        self.node_keys = np.full(self.capacity, C.EMPTY_KEY, dtype=np.uint32)
        self.node_next = np.full(self.capacity, NIL, dtype=np.uint32)
        #: Bump counter handing out node indices (atomicAdd in the real code).
        self._alloc_counter = np.zeros(1, dtype=np.uint32)

    # ------------------------------------------------------------------ #
    # Single operations (per-thread algorithms)
    # ------------------------------------------------------------------ #

    def insert(self, key: int) -> bool:
        """Insert ``key``; returns False if it was already present (set semantics)."""
        self.device.counters.warp_instructions += UPDATE_OP_INSTRUCTIONS
        key = int(key)
        bucket = self.hash_fn(key)
        if self._find(bucket, key) is not None:
            return False
        node = int(self.mem.atomic_add32(self._alloc_counter, 0, 1))
        if node >= self.capacity:
            raise AllocationError(
                "Misra hash table node pool exhausted "
                f"({self.capacity} nodes pre-allocated at build time)"
            )
        self.mem.write_word(self.node_keys, node, key)
        while True:
            head = self.mem.read_word(self.heads, bucket)
            self.mem.write_word(self.node_next, node, head)
            old = self.mem.atomic_cas32(self.heads, bucket, head, node)
            if old == head:
                return True

    def search(self, key: int) -> bool:
        """True if ``key`` is present."""
        self.device.counters.warp_instructions += SEARCH_OP_INSTRUCTIONS
        return self._find(self.hash_fn(int(key)), int(key)) is not None

    def delete(self, key: int) -> bool:
        """Logically delete ``key``; returns True if a node was removed."""
        self.device.counters.warp_instructions += UPDATE_OP_INSTRUCTIONS
        key = int(key)
        bucket = self.hash_fn(key)
        node = self._find(bucket, key)
        if node is None:
            return False
        old = self.mem.atomic_cas32(self.node_keys, node, key, C.DELETED_KEY)
        return old == key

    def _find(self, bucket: int, key: int) -> Optional[int]:
        """Walk the chain; returns the node index holding ``key`` or None."""
        node = self.mem.read_word(self.heads, bucket)
        while node != NIL:
            self.device.counters.warp_instructions += HOP_INSTRUCTIONS
            stored = self.mem.read_word(self.node_keys, node)
            if stored == key:
                return node
            node = self.mem.read_word(self.node_next, node)
        return None

    # ------------------------------------------------------------------ #
    # Bulk / concurrent-batch drivers (mirror the SlabHash API)
    # ------------------------------------------------------------------ #

    def bulk_build(self, keys: Sequence[int]) -> None:
        """Insert a batch of keys (one per simulated thread)."""
        self.device.launch_kernel()
        for key in np.asarray(keys, dtype=np.uint64):
            self.insert(int(key))

    def bulk_search(self, queries: Sequence[int]) -> np.ndarray:
        """Membership query for a batch of keys."""
        self.device.launch_kernel()
        return np.array(
            [self.search(int(q)) for q in np.asarray(queries, dtype=np.uint64)], dtype=bool
        )

    def concurrent_batch(
        self, op_codes: Sequence[int], keys: Sequence[int], values: Sequence[int] | None = None
    ) -> np.ndarray:
        """Process a mixed batch of OP_INSERT / OP_DELETE / OP_SEARCH operations.

        ``values`` is accepted (and ignored) so the concurrent benchmark can
        drive this table and the slab hash with identical workloads; Misra's
        table is key-only.
        """
        op_codes = np.asarray(op_codes, dtype=np.int64)
        keys = np.asarray(keys, dtype=np.uint64)
        if op_codes.shape != keys.shape:
            raise ValueError("op_codes and keys must have the same length")
        self.device.launch_kernel()
        results = np.zeros(len(keys), dtype=np.uint32)
        for i, (op, key) in enumerate(zip(op_codes, keys)):
            if op == C.OP_INSERT:
                results[i] = self.insert(int(key))
            elif op == C.OP_DELETE:
                results[i] = self.delete(int(key))
            elif op == C.OP_SEARCH:
                results[i] = self.search(int(key))
            else:
                raise ValueError(f"unknown operation code {op}")
        return results

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def nodes_used(self) -> int:
        """Node-pool slots consumed so far (never recycled)."""
        return int(self._alloc_counter[0])

    @property
    def max_memory_utilization(self) -> float:
        """Key bytes over node bytes: a 32-bit key plus a 32-bit next index = 50 %."""
        return 0.5

    def __len__(self) -> int:
        used = self.nodes_used
        live = self.node_keys[:used]
        return int(np.sum((live != C.EMPTY_KEY) & (live != C.DELETED_KEY)))

    def __contains__(self, key: int) -> bool:
        bucket = self.hash_fn(int(key))
        node = int(self.heads[bucket])
        while node != NIL:
            if int(self.node_keys[node]) == int(key):
                return True
            node = int(self.node_next[node])
        return False
