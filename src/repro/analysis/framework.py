"""Core of the repo's static-analysis plane: modules, rules, suppressions.

Every subsystem since the vectorized backend stakes its correctness on one
contract — vectorized, sharded, multiprocess, and recovered executions are
*bit-identical* to the reference backend.  The proptest harnesses enforce
that dynamically; this package enforces the properties they depend on
*statically*, at lint time:

* no wall-clock or unseeded randomness where it could reach results,
* no platform-dependent NumPy dtypes in the state-bearing planes,
* no shared-state mutation smuggled across an ``await`` in the service,
* no fault-site or persistence-format drift.

The framework is deliberately small: a :class:`Rule` sees one parsed
:class:`Module` at a time (plus a repo-wide :meth:`Rule.finalize` pass for
cross-file rules), emits :class:`Violation` records, and the runner filters
them through inline suppressions.  See ``docs/ANALYSIS.md`` for the rule
catalog and ``repro lint --list-rules`` for the live registry.

Suppression syntax (the reason clause is required by convention, not by the
parser)::

    x = time.time()  # repro-lint: disable=det-wallclock -- operator display only

    # repro-lint: disable=np-dtype -- dtype inherited from `template` below
    buf = np.zeros(template.shape)

A whole file opts out of a rule with ``# repro-lint: disable-file=<rule>``
on any line (conventionally in the module docstring's wake).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

__all__ = [
    "LintReport",
    "Module",
    "QualifiedNames",
    "Rule",
    "Violation",
    "default_root",
    "iter_python_files",
    "lint_modules",
    "lint_paths",
    "lint_source",
    "parse_module",
]

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>disable|disable-file)=(?P<rules>[A-Za-z0-9_,-]+)"
)


@dataclass(frozen=True)
class Violation:
    """One rule violation at one source location."""

    rule: str  #: rule id, e.g. ``"np-dtype"``
    rel: str  #: path relative to the lint root, posix separators
    line: int  #: 1-indexed source line
    col: int  #: 0-indexed column
    message: str

    def format(self) -> str:
        return f"{self.rel}:{self.line}:{self.col + 1}: {self.rule}: {self.message}"


class QualifiedNames:
    """Best-effort resolution of names to dotted import paths.

    Tracks ``import x``, ``import x.y as z`` and ``from x import y as z``
    bindings (at any nesting level — good enough for lint purposes) so a
    rule can ask what ``np.random.default_rng`` or an aliased
    ``perf_counter`` actually refers to, without type inference.
    """

    def __init__(self, tree: ast.AST) -> None:
        self._bindings: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    target = alias.name if alias.asname else alias.name.split(".", 1)[0]
                    self._bindings[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self._bindings[local] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted path of a Name/Attribute chain, or ``None`` if unrooted.

        ``np.random.default_rng`` (with ``import numpy as np``) resolves to
        ``"numpy.random.default_rng"``; a chain rooted in a local variable
        resolves to ``None``.
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self._bindings.get(node.id)
        if root is None:
            return None
        parts.append(root)
        return ".".join(reversed(parts))


@dataclass
class Module:
    """One parsed source file under lint."""

    path: Path  #: absolute path on disk
    rel: str  #: path relative to the lint root ("repro/core/flush.py")
    source: str
    tree: ast.Module
    names: QualifiedNames
    #: line -> rule ids disabled on that line ("all" disables every rule)
    line_disables: Dict[int, Set[str]]
    file_disables: Set[str]

    def suppressed(self, violation: Violation) -> bool:
        if {violation.rule, "all"} & self.file_disables:
            return True
        disabled = self.line_disables.get(violation.line, set())
        return bool({violation.rule, "all"} & disabled)


class Rule:
    """Base class for lint rules.

    Subclasses set :attr:`id` / :attr:`title` / :attr:`rationale`, restrict
    themselves with :attr:`dirs` (path prefixes under the lint root; empty
    means every file), and implement :meth:`check`.  Rules that need the
    whole tree at once (cross-file registries) override :meth:`finalize`.
    """

    id: str = ""
    title: str = ""
    #: Why the rule exists — shown by ``repro lint --list-rules``.
    rationale: str = ""
    #: Path prefixes (posix, relative to lint root) the rule applies to.
    dirs: Tuple[str, ...] = ()
    #: Path prefixes the rule never applies to (takes precedence).
    exclude_dirs: Tuple[str, ...] = ()

    def applies_to(self, rel: str) -> bool:
        if any(rel.startswith(prefix) for prefix in self.exclude_dirs):
            return False
        if not self.dirs:
            return True
        return any(rel.startswith(prefix) for prefix in self.dirs)

    def check(self, module: Module) -> Iterator[Violation]:
        """Yield violations for one module."""
        return iter(())

    def finalize(self, modules: Sequence[Module], root: Path) -> Iterator[Violation]:
        """Cross-file pass, run once after every module's :meth:`check`."""
        return iter(())

    def violation(self, module: Module, node: ast.AST, message: str) -> Violation:
        return Violation(
            rule=self.id,
            rel=module.rel,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


@dataclass
class LintReport:
    """Outcome of one lint run."""

    violations: List[Violation] = field(default_factory=list)
    files_checked: int = 0
    rules_run: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.violations

    def format(self) -> str:
        if self.ok:
            return (
                f"repro lint: {self.files_checked} file(s) clean "
                f"({len(self.rules_run)} rule(s))"
            )
        lines = [v.format() for v in self.violations]
        lines.append(
            f"repro lint: {len(self.violations)} violation(s) "
            f"in {self.files_checked} file(s)"
        )
        return "\n".join(lines)


def _parse_suppressions(source: str) -> Tuple[Dict[int, Set[str]], Set[str]]:
    line_disables: Dict[int, Set[str]] = {}
    file_disables: Set[str] = set()
    lines = source.splitlines()
    for lineno, text in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        rules = {name.strip() for name in match.group("rules").split(",") if name.strip()}
        if match.group("kind") == "disable-file":
            file_disables |= rules
            continue
        line_disables.setdefault(lineno, set()).update(rules)
        # A standalone comment line suppresses the statement directly below.
        if text.lstrip().startswith("#"):
            line_disables.setdefault(lineno + 1, set()).update(rules)
    return line_disables, file_disables


def parse_module(path: Path, rel: str, source: Optional[str] = None) -> Module:
    text = path.read_text(encoding="utf-8") if source is None else source
    tree = ast.parse(text, filename=str(path))
    line_disables, file_disables = _parse_suppressions(text)
    return Module(
        path=path,
        rel=rel.replace("\\", "/"),
        source=text,
        tree=tree,
        names=QualifiedNames(tree),
        line_disables=line_disables,
        file_disables=file_disables,
    )


def default_root() -> Path:
    """The repo's ``src`` directory, located from this package's own path."""
    here = Path(__file__).resolve()
    for parent in here.parents:
        if parent.name == "src" and (parent / "repro").is_dir():
            return parent
    return Path.cwd() / "src"


def iter_python_files(base: Path) -> Iterator[Path]:
    if base.is_file():
        yield base
        return
    for path in sorted(base.rglob("*.py")):
        yield path


def lint_modules(
    modules: Sequence[Module],
    rules: Sequence[Rule],
    *,
    root: Optional[Path] = None,
) -> LintReport:
    """Run ``rules`` over parsed ``modules`` (the importable entry point)."""
    root = root or default_root()
    violations: List[Violation] = []
    for rule in rules:
        for module in modules:
            if not rule.applies_to(module.rel):
                continue
            for violation in rule.check(module):
                if not module.suppressed(violation):
                    violations.append(violation)
        for violation in rule.finalize(
            [m for m in modules if rule.applies_to(m.rel)], root
        ):
            owner = next((m for m in modules if m.rel == violation.rel), None)
            if owner is None or not owner.suppressed(violation):
                violations.append(violation)
    violations.sort(key=lambda v: (v.rel, v.line, v.col, v.rule))
    return LintReport(
        violations=violations,
        files_checked=len(modules),
        rules_run=tuple(rule.id for rule in rules),
    )


def lint_paths(
    paths: Optional[Sequence[Path]] = None,
    *,
    rules: Optional[Sequence[Rule]] = None,
    root: Optional[Path] = None,
) -> LintReport:
    """Lint files/directories (default: the whole ``repro`` package)."""
    from repro.analysis.rules import default_rules

    root = (root or default_root()).resolve()
    targets = [Path(p).resolve() for p in paths] if paths else [root / "repro"]
    modules: List[Module] = []
    seen: Set[Path] = set()
    for target in targets:
        for path in iter_python_files(target):
            if path in seen:
                continue
            seen.add(path)
            try:
                rel = path.relative_to(root).as_posix()
            except ValueError:
                # Outside the package root (an explicit path to a copy of the
                # tree, a tmp dir in tests): anchor at the first ``repro``
                # component so directory-scoped rules still apply.
                parts = path.parts
                if "repro" in parts:
                    rel = "/".join(parts[parts.index("repro"):])
                else:
                    rel = path.name
            modules.append(parse_module(path, rel))
    return lint_modules(modules, rules if rules is not None else default_rules(), root=root)


def lint_source(
    source: str,
    rel: str,
    *,
    rules: Optional[Sequence[Rule]] = None,
    root: Optional[Path] = None,
) -> LintReport:
    """Lint an in-memory source string as if it lived at ``rel``.

    The fixture-test entry point: ``rel`` controls which directory-scoped
    rules apply, no file needs to exist on disk.
    """
    from repro.analysis.rules import default_rules

    module = parse_module(Path("/" + rel), rel, source=source)
    return lint_modules(
        [module], rules if rules is not None else default_rules(), root=root
    )
