"""Persist-format safety: no pickle, no magic version-number comparisons.

Snapshots and the WAL are the repo's crash-consistency boundary.  Two
classes of change break them silently:

* **pickle** — arbitrary code execution on load, and byte-level output that
  varies across interpreter versions (bit-identity of snapshot bytes is an
  asserted property of the differential harness);
* **version literals** — ``if header["version"] != 2`` keeps working when
  the declared constant moves on, so the loader accepts formats it no
  longer understands.  Versions are compared only against the declared
  constants (``SNAPSHOT_VERSION``, ``WAL_VERSION``) or registries built
  from them.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.framework import Module, Rule, Violation

__all__ = ["PersistPickleRule", "PersistVersionRule"]

_BANNED_MODULES = ("pickle", "cPickle", "dill", "shelve", "marshal")


class PersistPickleRule(Rule):
    id = "persist-pickle"
    title = "no pickle (or pickle-adjacent) serialization anywhere"
    rationale = (
        "pickle executes arbitrary code on load and its bytes vary across "
        "interpreter versions; every persisted format here is an explicit, "
        "versioned layout (JSON headers + raw arrays + CRC-framed records). "
        "np.load in persist/ must pass allow_pickle=False explicitly."
    )

    def check(self, module: Module) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".", 1)[0] in _BANNED_MODULES:
                        yield self.violation(
                            module, node,
                            f"import of `{alias.name}` — pickle-family "
                            f"serialization is banned in this repo "
                            f"(versioned explicit formats only)",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module and node.module.split(".", 1)[0] in _BANNED_MODULES:
                    yield self.violation(
                        module, node,
                        f"import from `{node.module}` — pickle-family "
                        f"serialization is banned in this repo",
                    )
            elif isinstance(node, ast.Call):
                for keyword in node.keywords:
                    if (
                        keyword.arg == "allow_pickle"
                        and isinstance(keyword.value, ast.Constant)
                        and keyword.value.value is True
                    ):
                        yield self.violation(
                            module, keyword.value,
                            "allow_pickle=True — pickled payloads are banned; "
                            "store explicit arrays and JSON headers instead",
                        )
                qualified = module.names.resolve(node.func)
                if (
                    qualified == "numpy.load"
                    and module.rel.startswith("repro/persist/")
                    and not any(k.arg in (None, "allow_pickle") for k in node.keywords)
                ):
                    yield self.violation(
                        module, node,
                        "np.load without an explicit allow_pickle=False — "
                        "the loader's stance on pickled payloads must be "
                        "visible at the call site",
                    )


def _mentions_version(node: ast.AST) -> bool:
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        return False
    return "version" in text.lower()


def _is_numeric_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, (int, float)) and not isinstance(node.value, bool)
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        return bool(node.elts) and all(_is_numeric_literal(e) for e in node.elts)
    return False


class PersistVersionRule(Rule):
    id = "persist-version"
    title = "format versions compared only against declared constants"
    rationale = (
        "A literal in a version comparison detaches the check from the "
        "declared constant: bump SNAPSHOT_VERSION and the literal check "
        "silently keeps accepting the old format.  Compare against the "
        "constant (or a registry tuple built from it)."
    )
    dirs = ("repro/persist/",)

    def check(self, module: Module) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            if not any(_mentions_version(op) for op in operands):
                continue
            for operand in operands:
                if _is_numeric_literal(operand):
                    yield self.violation(
                        module, operand,
                        "format-version comparison against a numeric literal "
                        "— compare against the declared constant "
                        "(SNAPSHOT_VERSION / WAL_VERSION) or a registry "
                        "built from it, so the check moves with the format",
                    )
                    break
