"""NumPy dtype hygiene: explicit dtypes in the state-bearing planes.

`np.zeros(n)` is float64; `np.arange(n)` is platform-dependent (C `long`:
64-bit on Linux, 32-bit on Windows); `np.array([...])` infers from values.
Implicit dtypes are exactly how bit-identity breaks across hosts — a key
array that comes out int32 on one platform and int64 on another hashes,
packs, and serializes differently.  Every array constructor in ``core/``,
``engine/`` and ``persist/`` must therefore pass an explicit ``dtype``
(keyword, or the constructor's documented positional slot).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional

from repro.analysis.framework import Module, Rule, Violation

__all__ = ["NpDtypeRule"]

#: Constructor -> index of its positional dtype slot (None = keyword only,
#: e.g. `np.arange`, whose positional meaning shifts with argument count).
_CONSTRUCTOR_DTYPE_SLOT: Dict[str, Optional[int]] = {
    "numpy.zeros": 1,
    "numpy.ones": 1,
    "numpy.empty": 1,
    "numpy.full": 2,
    "numpy.array": 1,
    "numpy.asarray": 1,
    "numpy.arange": None,
    "numpy.fromiter": 1,
    "numpy.frombuffer": 1,
}


class NpDtypeRule(Rule):
    id = "np-dtype"
    title = "explicit dtype on every array constructor"
    rationale = (
        "Implicit NumPy dtypes are platform- and value-dependent; the "
        "state-bearing planes must produce bit-identical arrays on every "
        "host, so every constructor names its dtype."
    )
    dirs = ("repro/core/", "repro/engine/", "repro/persist/")

    def check(self, module: Module) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = module.names.resolve(node.func)
            if qualified not in _CONSTRUCTOR_DTYPE_SLOT:
                continue
            if any(keyword.arg in (None, "dtype") for keyword in node.keywords):
                continue  # dtype= present (or **kwargs: trust the caller)
            slot = _CONSTRUCTOR_DTYPE_SLOT[qualified]
            if slot is not None and len(node.args) > slot:
                continue  # dtype passed positionally in its documented slot
            short = qualified.replace("numpy.", "np.")
            hint = (
                "pass dtype= explicitly"
                if slot is not None
                else "pass dtype= explicitly (keyword only — the positional "
                "slot is ambiguous for this constructor)"
            )
            yield self.violation(
                module,
                node,
                f"`{short}(...)` without an explicit dtype — implicit dtypes "
                f"are platform/value-dependent and break bit-identity; {hint}",
            )
