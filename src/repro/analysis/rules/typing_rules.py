"""Strict-typing gate: full signatures, no bare generics.

`mypy --strict` runs in CI, but it is not in the dev container's baked
toolchain — these two rules are the locally-runnable core of the same
contract, so a missing signature is caught by ``repro lint`` before CI.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.analysis.framework import Module, Rule, Violation

__all__ = ["StrictAnnotationsRule", "BareGenericRule"]


class StrictAnnotationsRule(Rule):
    id = "ann-strict"
    title = "every def annotates every parameter and its return"
    rationale = (
        "mypy --strict (disallow_untyped_defs / disallow_incomplete_defs) "
        "rejects unannotated signatures; this rule is its in-repo mirror so "
        "the gate runs without mypy installed."
    )

    def check(self, module: Module) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            args = node.args
            params: List[ast.arg] = [
                *args.posonlyargs, *args.args, *args.kwonlyargs,
            ]
            if args.vararg is not None:
                params.append(args.vararg)
            if args.kwarg is not None:
                params.append(args.kwarg)
            missing = [
                p.arg
                for index, p in enumerate(params)
                if p.annotation is None
                and not (index == 0 and p.arg in ("self", "cls"))
            ]
            if missing:
                yield self.violation(
                    module, node,
                    f"def `{node.name}` leaves parameter(s) "
                    f"{', '.join(repr(m) for m in missing)} unannotated "
                    f"(mypy --strict: disallow_incomplete_defs)",
                )
            if node.returns is None:
                yield self.violation(
                    module, node,
                    f"def `{node.name}` has no return annotation "
                    f"(use `-> None` for procedures; mypy --strict: "
                    f"disallow_untyped_defs)",
                )


#: Names that are generic containers when used bare in an annotation.
_BARE_GENERICS = {
    "dict", "list", "set", "frozenset", "tuple", "type",
    "Dict", "List", "Set", "FrozenSet", "Tuple", "Type",
    "Sequence", "Mapping", "MutableMapping", "Iterable", "Iterator",
    "Callable", "Awaitable", "Coroutine", "Generator", "Future", "Task",
}


class BareGenericRule(Rule):
    id = "ann-bare-generic"
    title = "no bare generic containers in annotations"
    rationale = (
        "`x: dict` says nothing about keys or values and defeats the "
        "strict-typing pass (mypy --strict: disallow_any_generics); "
        "parameterize every container annotation."
    )

    def check(self, module: Module) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            annotations: List[ast.AST] = []
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = node.args
                for param in [
                    *args.posonlyargs, *args.args, *args.kwonlyargs,
                    *( [args.vararg] if args.vararg else [] ),
                    *( [args.kwarg] if args.kwarg else [] ),
                ]:
                    if param.annotation is not None:
                        annotations.append(param.annotation)
                if node.returns is not None:
                    annotations.append(node.returns)
            elif isinstance(node, ast.AnnAssign):
                annotations.append(node.annotation)
            for annotation in annotations:
                yield from self._check_annotation(module, annotation)

    def _check_annotation(self, module: Module, annotation: ast.AST) -> Iterator[Violation]:
        # A generic name is "bare" when it is not the value of a Subscript
        # (i.e. not `dict[...]`).  String annotations are parsed and walked.
        if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
            try:
                annotation = ast.parse(annotation.value, mode="eval").body
            except SyntaxError:
                return
        subscripted = {
            id(sub.value) for sub in ast.walk(annotation) if isinstance(sub, ast.Subscript)
        }
        for sub in ast.walk(annotation):
            name = None
            if isinstance(sub, ast.Name):
                name = sub.id
            elif isinstance(sub, ast.Attribute):
                name = sub.attr
            if name in _BARE_GENERICS and id(sub) not in subscripted:
                if isinstance(sub, ast.Attribute) or not _is_attribute_part(annotation, sub):
                    yield self.violation(
                        module, sub,
                        f"bare generic `{name}` in an annotation — "
                        f"parameterize it (e.g. `{name}[...]`); mypy "
                        f"--strict: disallow_any_generics",
                    )


def _is_attribute_part(root: ast.AST, node: ast.AST) -> bool:
    """True when ``node`` is the value side of an Attribute (e.g. the
    ``np`` of ``np.ndarray``) rather than an annotation leaf."""
    for sub in ast.walk(root):
        if isinstance(sub, ast.Attribute) and sub.value is node:
            return True
    return False
