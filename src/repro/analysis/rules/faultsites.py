"""Fault-site registry drift: every fired site must exist in the catalog.

The chaos harness addresses faults by *site name* (``faults/plan.py``).  A
typo'd or undocumented site literal silently never fires — the fault plan
schedules it, the component consults a different name, and the chaos
coverage quietly shrinks.  This rule pins every ``check``/``fire`` string
literal in ``src/`` to :data:`repro.faults.plan.SITE_CATALOG`, checks the
reverse direction (every catalog entry is actually fired somewhere), and
checks that ``docs/FAULTS.md`` documents every catalog site.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator, List, Optional, Sequence, Set

from repro.analysis.framework import Module, Rule, Violation
from repro.faults.plan import SITE_CATALOG

__all__ = ["FaultSiteRule", "site_literal"]

_HOOK_METHODS = ("check", "fire")


def site_literal(node: ast.AST) -> Optional[str]:
    """Normalize a site argument to catalog form, or None if dynamic.

    Plain strings pass through; f-strings have each interpolation replaced
    by ``<i>`` (``f"shard:{shard}.execute"`` -> ``"shard:<i>.execute"``).
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr):
        parts: List[str] = []
        for value in node.values:
            if isinstance(value, ast.Constant) and isinstance(value.value, str):
                parts.append(value.value)
            elif isinstance(value, ast.FormattedValue):
                parts.append("<i>")
            else:
                return None
        return "".join(parts)
    return None


class FaultSiteRule(Rule):
    id = "fault-site"
    title = "fault-site literals match the plan.py catalog (and vice versa)"
    rationale = (
        "A site literal missing from SITE_CATALOG never fires under any "
        "documented fault plan, and a catalog entry no component consults "
        "is dead chaos coverage.  Both directions are drift; both are "
        "caught here (docs/FAULTS.md is checked by the catalog test)."
    )

    def __init__(self) -> None:
        self._fired: Set[str] = set()

    def check(self, module: Module) -> Iterator[Violation]:
        known = {site.name for site in SITE_CATALOG} | {
            site.call_site for site in SITE_CATALOG
        }
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr in _HOOK_METHODS):
                continue
            if not node.args:
                continue
            literal = site_literal(node.args[0])
            if literal is None:
                continue  # dynamic site expressions are out of lint reach
            self._fired.add(literal)
            if literal not in known:
                yield self.violation(
                    module,
                    node.args[0],
                    f"fault site {literal!r} is not in "
                    f"repro.faults.plan.SITE_CATALOG — a plan addressing it "
                    f"by its documented name would never fire; add it to the "
                    f"catalog (and docs/FAULTS.md) or fix the literal",
                )

    def finalize(self, modules: Sequence[Module], root: Path) -> Iterator[Violation]:
        plan_module = next(
            (m for m in modules if m.rel.endswith("faults/plan.py")), None
        )
        if plan_module is None:
            return  # partial lint run (single file / fixture): skip reverse pass
        for site in SITE_CATALOG:
            if site.call_site not in self._fired and site.name not in self._fired:
                yield Violation(
                    rule=self.id,
                    rel=plan_module.rel,
                    line=1,
                    col=0,
                    message=(
                        f"catalog site {site.name!r} is never fired by any "
                        f"check()/fire() literal in the linted tree — dead "
                        f"chaos coverage; remove the entry or wire the hook"
                    ),
                )
