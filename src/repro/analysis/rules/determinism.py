"""Determinism rules: no ambient time, no ambient randomness, no set order.

The bit-identity contract (results, device counters, snapshot bytes equal
across backends, shard layouts, process executors, and recovery) only holds
if nothing in the state-bearing planes reads an ambient source of
nondeterminism.  These rules ban the three ways that happens in practice:
wall-clock reads, unseeded RNGs, and iteration order of unordered sets.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set, Tuple

from repro.analysis.framework import Module, Rule, Violation

__all__ = [
    "DetWallclockRule",
    "DetClockRule",
    "DetRandomRule",
    "DetSetOrderRule",
]

#: Calls that read the wall clock (or a civil date/time derived from it).
_WALLCLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.localtime",
    "time.gmtime",
    "time.ctime",
    "time.asctime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: Monotonic process clocks: fine for latency accounting, banned where a
#: read could reach deterministic state.
_MONOTONIC_CALLS = {
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "time.process_time_ns",
    "time.thread_time",
    "time.thread_time_ns",
}

#: Module-level RNG entry points that draw from hidden global state.
_GLOBAL_RNG_CALLS = {
    f"random.{name}"
    for name in (
        "random", "randint", "randrange", "uniform", "choice", "choices",
        "shuffle", "sample", "betavariate", "expovariate", "gauss",
        "getrandbits", "normalvariate", "paretovariate", "triangular",
        "vonmisesvariate", "weibullvariate", "seed",
    )
} | {
    f"numpy.random.{name}"
    for name in (
        "rand", "randn", "randint", "random", "random_sample", "choice",
        "shuffle", "permutation", "uniform", "normal", "poisson", "seed",
    )
}

#: Constructors that are deterministic *only* when given an explicit seed.
_SEEDED_CONSTRUCTORS = {"random.Random", "numpy.random.default_rng", "random.SystemRandom"}


class DetWallclockRule(Rule):
    id = "det-wallclock"
    title = "no wall-clock reads outside perf/"
    rationale = (
        "A wall-clock read anywhere results, counters, or persisted bytes "
        "are produced breaks replay: the same program would not reproduce "
        "the same state.  Wall-clock time belongs to the measurement plane "
        "(repro/perf, benchmarks/) only."
    )
    exclude_dirs = ("repro/perf/",)

    def check(self, module: Module) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = module.names.resolve(node.func)
            if qualified in _WALLCLOCK_CALLS:
                yield self.violation(
                    module,
                    node,
                    f"wall-clock read `{qualified}()` — deterministic code "
                    f"must not observe the wall clock (move it to repro/perf "
                    f"or benchmarks/, or derive the value from the program)",
                )


class DetClockRule(Rule):
    id = "det-clock"
    title = "no monotonic-clock reads in the deterministic planes"
    rationale = (
        "perf_counter/monotonic/process_time are fine for deadlines and "
        "latency accounting in the service, but core/, persist/, gpusim/, "
        "workloads/ and baselines/ produce state that must be bit-identical "
        "across hosts and replays — no clock of any kind may be read there."
    )
    dirs = (
        "repro/core/",
        "repro/persist/",
        "repro/gpusim/",
        "repro/workloads/",
        "repro/baselines/",
    )

    def check(self, module: Module) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = module.names.resolve(node.func)
            if qualified in _MONOTONIC_CALLS:
                yield self.violation(
                    module,
                    node,
                    f"monotonic-clock read `{qualified}()` in a deterministic "
                    f"plane — state produced here must replay bit-identically; "
                    f"clocks live in repro/service (deadlines) and repro/perf "
                    f"(measurement) only",
                )


class DetRandomRule(Rule):
    id = "det-random"
    title = "no unseeded randomness"
    rationale = (
        "Every RNG in the repo is constructed from an explicit seed "
        "(workload generators, schedulers, fault plans, retry jitter) so any "
        "run replays from its seed.  Global-state RNG calls and unseeded "
        "constructors reintroduce ambient nondeterminism."
    )
    exclude_dirs = ("repro/perf/",)

    def check(self, module: Module) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = module.names.resolve(node.func)
            if qualified in _GLOBAL_RNG_CALLS:
                yield self.violation(
                    module,
                    node,
                    f"global-state RNG call `{qualified}()` — construct a "
                    f"seeded generator (`random.Random(seed)` / "
                    f"`np.random.default_rng(seed)`) and thread it through",
                )
            elif qualified in _SEEDED_CONSTRUCTORS and not _has_seed(node):
                yield self.violation(
                    module,
                    node,
                    f"`{qualified}()` constructed without a seed draws from "
                    f"OS entropy — pass an explicit seed so the run replays",
                )


def _has_seed(call: ast.Call) -> bool:
    """True when a constructor call passes a non-None first arg or seed=."""
    for arg in call.args:
        if not (isinstance(arg, ast.Constant) and arg.value is None):
            return True
    for keyword in call.keywords:
        if keyword.arg in (None, "seed", "x"):  # None = **kwargs: trust it
            if not (
                isinstance(keyword.value, ast.Constant) and keyword.value.value is None
            ):
                return True
    return False


#: Consumers whose argument order is observable.
_ORDER_SENSITIVE_CALLS = {
    "list", "tuple", "enumerate", "iter", "next",
    "numpy.array", "numpy.asarray", "numpy.fromiter", "numpy.concatenate",
}

class DetSetOrderRule(Rule):
    id = "det-set-order"
    title = "no iteration over unordered sets where order can escape"
    rationale = (
        "`set` iteration order depends on insertion history and hash "
        "randomization of the running process.  Where the order can reach "
        "results, counters, or the WAL, iterate `sorted(...)` instead; "
        "membership tests and aggregations stay free."
    )
    dirs = (
        "repro/core/",
        "repro/engine/",
        "repro/persist/",
        "repro/service/",
        "repro/gpusim/",
        "repro/faults/",
    )

    def check(self, module: Module) -> Iterator[Violation]:
        set_names = _setlike_bindings(module.tree)

        def is_setlike(node: ast.AST) -> bool:
            if isinstance(node, (ast.Set, ast.SetComp)):
                return True
            if isinstance(node, ast.Call):
                qualified = module.names.resolve(node.func)
                name = qualified or (
                    node.func.id if isinstance(node.func, ast.Name) else None
                )
                return name in ("set", "frozenset")
            key = _binding_key(node)
            return key is not None and key in set_names

        for node in ast.walk(module.tree):
            iter_expr: Optional[ast.AST] = None
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iter_expr = node.iter
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                iter_expr = node.generators[0].iter
            elif isinstance(node, ast.Call):
                name = module.names.resolve(node.func) or (
                    node.func.id if isinstance(node.func, ast.Name) else None
                )
                if name in _ORDER_SENSITIVE_CALLS and node.args:
                    iter_expr = node.args[0]
            elif isinstance(node, ast.Starred):
                iter_expr = node.value
            if iter_expr is not None and is_setlike(iter_expr):
                yield self.violation(
                    module,
                    node,
                    "iteration over an unordered set where the order can "
                    "escape — wrap it in `sorted(...)` (or restructure so "
                    "order never reaches results, counters, or the WAL)",
                )


def _binding_key(node: ast.AST) -> Optional[str]:
    """Key for a plain name or a self-attribute chain, else None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        parts = []
        cursor: ast.AST = node
        while isinstance(cursor, ast.Attribute):
            parts.append(cursor.attr)
            cursor = cursor.value
        if isinstance(cursor, ast.Name) and cursor.id == "self":
            parts.append("self")
            return ".".join(reversed(parts))
    return None


def _setlike_bindings(tree: ast.AST) -> Set[str]:
    """Names / self-attributes assigned a set literal, set() or set-typed
    annotation anywhere in the module (single-assignment heuristic: a name
    later rebound to a non-set is still reported — rebinding a collection's
    kind mid-flight is its own smell)."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            value_is_set = _value_is_setlike(node.value)
            for target in node.targets:
                key = _binding_key(target)
                if key and value_is_set:
                    names.add(key)
        elif isinstance(node, ast.AnnAssign):
            key = _binding_key(node.target)
            if key and (_annotation_is_set(node.annotation) or _value_is_setlike(node.value)):
                names.add(key)
    return names


def _value_is_setlike(node: Optional[ast.AST]) -> bool:
    if node is None:
        return False
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def _annotation_is_set(node: Optional[ast.AST]) -> bool:
    if node is None:
        return False
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id in ("set", "frozenset", "Set", "FrozenSet", "MutableSet")
    if isinstance(node, ast.Attribute):
        return node.attr in ("Set", "FrozenSet", "MutableSet")
    return False
