"""Rule registry for ``repro lint``.

Adding a rule: subclass :class:`repro.analysis.framework.Rule` in a module
here (or a new one), give it an ``id``/``title``/``rationale``, implement
``check`` (and ``finalize`` for cross-file passes), and list its class in
:data:`RULE_CLASSES`.  Every rule needs a fixture-backed positive *and*
negative test in ``tests/analysis/`` and a row in ``docs/ANALYSIS.md``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Type

from repro.analysis.framework import Rule
from repro.analysis.rules.arrays import NpDtypeRule
from repro.analysis.rules.asyncsafety import AsyncSharedStateRule
from repro.analysis.rules.determinism import (
    DetClockRule,
    DetRandomRule,
    DetSetOrderRule,
    DetWallclockRule,
)
from repro.analysis.rules.faultsites import FaultSiteRule
from repro.analysis.rules.persistence import PersistPickleRule, PersistVersionRule
from repro.analysis.rules.typing_rules import BareGenericRule, StrictAnnotationsRule

__all__ = ["RULE_CLASSES", "default_rules", "rules_by_id"]

#: Every registered rule class, in report order.
RULE_CLASSES: Tuple[Type[Rule], ...] = (
    DetWallclockRule,
    DetClockRule,
    DetRandomRule,
    DetSetOrderRule,
    NpDtypeRule,
    AsyncSharedStateRule,
    FaultSiteRule,
    PersistPickleRule,
    PersistVersionRule,
    StrictAnnotationsRule,
    BareGenericRule,
)


def default_rules(select: Optional[Sequence[str]] = None) -> List[Rule]:
    """Fresh rule instances (rules may carry per-run state), optionally
    restricted to the given ids."""
    if select is not None:
        by_id = {cls.id: cls for cls in RULE_CLASSES}
        unknown = sorted(set(select) - set(by_id))
        if unknown:
            raise ValueError(f"unknown rule id(s): {', '.join(unknown)}")
        return [by_id[rule_id]() for rule_id in select]
    return [cls() for cls in RULE_CLASSES]


def rules_by_id() -> Dict[str, Type[Rule]]:
    return {cls.id: cls for cls in RULE_CLASSES}
