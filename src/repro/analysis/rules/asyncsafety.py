"""Await-safety: no stale shared-state write-back across an ``await``.

asyncio interleaves tasks at every ``await``.  The classic lost-update race
in the service's drain/restore loops is::

    staged = self._staged          # read shared state into a local
    await self._flush(staged)      # another drain task mutates self._staged
    self._staged = trim(staged)    # write-back clobbers the concurrent update

The fix is always the same: re-read (or atomically swap) *after* the await,
as ``_commit_round`` does with ``staged, self._staged = self._staged, []``.
This rule is the static detector for the broken shape: inside one async
function, a local bound from a ``self`` attribute chain *before* an await
that is written back to the same chain *after* the await.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Tuple

from repro.analysis.framework import Module, Rule, Violation

__all__ = ["AsyncSharedStateRule"]


def _chain_key(node: ast.AST) -> str:
    """Canonical text of a self-rooted attribute/subscript chain, or ''."""
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        return ""
    return text if text.startswith("self.") else ""


def _local_names(node: ast.AST) -> List[str]:
    return [n.id for n in ast.walk(node) if isinstance(n, ast.Name)]


class AsyncSharedStateRule(Rule):
    id = "async-shared-state"
    title = "no stale read/write-back of shared state across an await"
    rationale = (
        "Every await is a potential interleaving point; a local snapshot of "
        "service state taken before an await and written back after it "
        "silently drops concurrent updates.  Swap atomically or re-read "
        "after the await."
    )
    dirs = ("repro/service/",)

    def check(self, module: Module) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                yield from self._check_function(module, node)

    def _check_function(
        self, module: Module, func: ast.AsyncFunctionDef
    ) -> Iterator[Violation]:
        # Linear (source-order) approximation of execution order: good
        # enough to catch the read -> await -> write-back shape without a
        # CFG, and it cannot fire on the safe atomic-swap idiom because a
        # swap reads and writes in a single statement with no await between.
        reads: List[Tuple[int, str, str]] = []  # (line, local, chain)
        awaits: List[int] = []
        writes: List[Tuple[int, ast.AST, str, List[str]]] = []

        for sub in ast.walk(func):
            if isinstance(sub, (ast.AsyncFunctionDef, ast.FunctionDef)) and sub is not func:
                continue  # nested defs get their own pass
            if isinstance(sub, ast.Await):
                awaits.append(sub.lineno)
            elif isinstance(sub, ast.Assign):
                chain = _chain_key(sub.value)
                if chain:
                    for target in sub.targets:
                        if isinstance(target, ast.Name):
                            reads.append((sub.lineno, target.id, chain))
                for target in sub.targets:
                    tchain = _chain_key(target)
                    if tchain and not _chain_key(sub.value) == tchain:
                        writes.append((sub.lineno, sub, tchain, _local_names(sub.value)))
            elif isinstance(sub, ast.AugAssign):
                tchain = _chain_key(sub.target)
                if tchain:
                    writes.append((sub.lineno, sub, tchain, _local_names(sub.value)))

        for read_line, local, chain in reads:
            for write_line, write_node, wchain, used in writes:
                if wchain != chain or local not in used:
                    continue
                if any(read_line < a <= write_line for a in awaits):
                    yield self.violation(
                        module,
                        write_node,
                        f"`{chain}` was read into `{local}` before an await "
                        f"and written back after it — concurrent updates made "
                        f"during the await are lost; re-read after the await "
                        f"or swap atomically in one statement",
                    )
