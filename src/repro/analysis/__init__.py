"""Static-analysis plane: repo-specific determinism/concurrency lints.

``repro lint`` (CLI) and :func:`lint_paths` (API) run an AST-based rule set
that makes the repo's bit-identity contract a statically checked property:
wall-clock and RNG hygiene, NumPy dtype explicitness, await-safety in the
service, fault-site registry drift, persistence-format safety, and the
strict-typing gate.  See ``docs/ANALYSIS.md``.

>>> from repro.analysis import lint_source
>>> report = lint_source("import numpy as np\\nx = np.zeros(4)\\n",
...                      rel="repro/core/example.py")
>>> [v.rule for v in report.violations]
['np-dtype']
"""

from repro.analysis.framework import (
    LintReport,
    Module,
    Rule,
    Violation,
    lint_paths,
    lint_source,
)
from repro.analysis.rules import RULE_CLASSES, default_rules, rules_by_id

__all__ = [
    "LintReport",
    "Module",
    "Rule",
    "RULE_CLASSES",
    "Violation",
    "default_rules",
    "lint_paths",
    "lint_source",
    "rules_by_id",
]
