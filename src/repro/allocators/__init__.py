"""Dynamic-memory-allocator baselines for the Section V comparison.

The paper measures the WCWS allocation pattern (many independent, sequentially
issued fixed-size slab allocations per warp) against CUDA's built-in device
``malloc`` and against Halloc, and reports 0.8 M, 16.1 M and 600 M slab
allocations per second for malloc, Halloc and SlabAlloc respectively.  Neither
CUDA ``malloc`` nor Halloc can run in this environment, so this package
provides functional stand-ins whose event counts and serialization penalties
are calibrated to the published measurements (see the module docstring of
:mod:`repro.allocators.baselines` and DESIGN.md's substitution table).
"""

from repro.allocators.baselines import CudaMallocAllocator, HallocLikeAllocator

__all__ = ["CudaMallocAllocator", "HallocLikeAllocator"]
