"""Allocator baselines: a CUDA-``malloc``-like device heap and a Halloc-like pool allocator.

Both baselines are *functional* (they hand out and reclaim unique 128-byte
units from a fixed pool, and double frees are detected) and *instrumented*
(every allocation charges atomics, scattered reads and instructions to the
device counters).  On top of the counted events, each charges an explicit
per-allocation serialization latency — the part of their cost that comes from
global locking (malloc) or from running a per-thread allocator with a single
active lane under the WCWS pattern (Halloc) — because the cost model's
throughput-oriented roofline cannot express those serial critical sections.

The serialization constants are calibrated to the measurements quoted in
Section V of the paper (1 M slab allocations of 128 bytes, one allocation per
thread, Tesla K40c): CUDA ``malloc`` 1.2 s (~0.8 M slabs/s) and Halloc 66 ms
(~16.1 M slabs/s).  SlabAlloc itself needs no such constant: its ~600 M
slabs/s emerges from its counted events (one 32-bit atomic plus a few warp
instructions per allocation).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.gpusim.device import Device
from repro.gpusim.errors import AllocationError
from repro.gpusim.memory import GlobalMemory

__all__ = ["CudaMallocAllocator", "HallocLikeAllocator"]


class _PoolAllocatorBase:
    """Shared machinery: a fixed pool of units with an allocation bitmap."""

    #: Event charges per allocation (overridden by subclasses).
    ATOMICS_PER_ALLOC = 1
    SCATTERED_READS_PER_ALLOC = 1
    INSTRUCTIONS_PER_ALLOC = 50
    #: Serialization latency per allocation, in seconds (see module docstring).
    SERIAL_LATENCY = 0.0

    def __init__(self, device: Optional[Device], capacity_units: int, name: str) -> None:
        if capacity_units <= 0:
            raise ValueError(f"capacity_units must be positive, got {capacity_units}")
        self.device = device or Device()
        self.mem = GlobalMemory(self.device.counters)
        self.capacity_units = int(capacity_units)
        self.name = name
        self._allocated = np.zeros(self.capacity_units, dtype=bool)
        self._next_hint = 0
        self._allocated_count = 0
        self._total_allocations = 0

    # ------------------------------------------------------------------ #

    def allocate(self) -> int:
        """Allocate one 128-byte unit; returns its index within the pool."""
        if self._allocated_count >= self.capacity_units:
            raise AllocationError(f"{self.name}: pool of {self.capacity_units} units exhausted")
        self._charge_allocation()
        index = self._find_free()
        self._allocated[index] = True
        self._allocated_count += 1
        self._total_allocations += 1
        self.device.counters.allocations += 1
        return index

    def free(self, index: int) -> None:
        """Return a unit to the pool."""
        if not 0 <= index < self.capacity_units:
            raise AllocationError(f"{self.name}: index {index} out of range")
        if not self._allocated[index]:
            raise AllocationError(f"{self.name}: double free of unit {index}")
        self.device.counters.atomic32 += 1
        self.device.counters.deallocations += 1
        self._allocated[index] = False
        self._allocated_count -= 1

    # ------------------------------------------------------------------ #

    def _find_free(self) -> int:
        start = self._next_hint
        for offset in range(self.capacity_units):
            index = (start + offset) % self.capacity_units
            if not self._allocated[index]:
                self._next_hint = (index + 1) % self.capacity_units
                return index
        raise AllocationError(f"{self.name}: pool exhausted")  # pragma: no cover

    def _charge_allocation(self) -> None:
        counters = self.device.counters
        counters.atomic32 += self.ATOMICS_PER_ALLOC
        counters.uncoalesced_read_words += self.SCATTERED_READS_PER_ALLOC
        counters.warp_instructions += self.INSTRUCTIONS_PER_ALLOC

    # ------------------------------------------------------------------ #

    @property
    def allocated_units(self) -> int:
        return self._allocated_count

    @property
    def total_allocations(self) -> int:
        return self._total_allocations

    def serial_time(self) -> float:
        """Accumulated serialization time not visible to the roofline model."""
        return self._total_allocations * self.SERIAL_LATENCY

    def occupancy(self) -> float:
        return self._allocated_count / self.capacity_units


class CudaMallocAllocator(_PoolAllocatorBase):
    """Model of CUDA's built-in device-side ``malloc`` for small allocations.

    The device heap is protected by global locking and traversed per request;
    small (sub-kilobyte) allocations are notoriously slow.  Per allocation we
    charge a handful of atomics and heap-walk reads plus a ~1.1 microsecond
    serialized critical section, which matches the paper's measurement of
    1.2 s for one million 128-byte allocations (~0.8 M slabs/s).
    """

    ATOMICS_PER_ALLOC = 6
    SCATTERED_READS_PER_ALLOC = 24
    INSTRUCTIONS_PER_ALLOC = 420
    SERIAL_LATENCY = 1.1e-6

    def __init__(self, capacity_units: int, *, device: Optional[Device] = None) -> None:
        super().__init__(device, capacity_units, name="cuda-malloc")


class HallocLikeAllocator(_PoolAllocatorBase):
    """Model of Halloc under the WCWS allocation pattern.

    Halloc hashes requests into per-size memory pools ("chunks") with bitmap
    occupancy and performs best when a warp's requests coalesce into one large
    allocation.  Under the slab hash's WCWS pattern the warp issues one
    independent allocation at a time, so only a single lane is active per
    request: the per-thread bitmap probing and hashing serializes, modelled by
    the un-amortized instruction charge and a ~55 ns serialization term.  The
    calibration target is the paper's 66 ms for one million allocations
    (~16.1 M slabs/s).
    """

    ATOMICS_PER_ALLOC = 2
    SCATTERED_READS_PER_ALLOC = 4
    INSTRUCTIONS_PER_ALLOC = 240
    SERIAL_LATENCY = 5.5e-8

    def __init__(self, capacity_units: int, *, device: Optional[Device] = None) -> None:
        super().__init__(device, capacity_units, name="halloc")
