"""The write-ahead operation log behind the service layer's durability.

A WAL file is a fixed 12-byte header (magic + format version) followed by a
sequence of framed records, one per executed micro-batch::

    header:  b"SLABWAL\\0" | u32 version
    record:  b"WREC" | u32 payload_len | u32 crc32(payload) | payload
    payload: u32 batch_index | u32 count | u8 flags |
             u8 op_codes[count] | u32 keys[count] | (u32 values[count])

All integers are little-endian.  ``flags`` is 0 (key-only batch), 1
(key-value batch), or 2 (an **abort marker**: ``count == 0`` and
``batch_index`` names a previously logged batch whose execution the service
rejected non-deterministically — recovery must skip that batch; see
:meth:`WriteAheadLog.append_abort`).  The framing makes torn writes — a
crash mid-append — detectable: :func:`read_records` stops at the first
record whose frame is incomplete or whose CRC fails, reports it as a *torn
tail*, and never surfaces partial operations.  This is exactly the property
the crash-point harness exploits: a WAL chopped at an arbitrary byte offset
always recovers to a prefix of whole batches.

:class:`WriteAheadLog` is the append side: the service calls
:meth:`WriteAheadLog.append` *before* executing each batch (write-ahead),
and :meth:`WriteAheadLog.truncate` when a snapshot checkpoint makes the
logged history redundant.  :meth:`WriteAheadLog.append_group` is the
group-commit path — several concurrently cut per-shard batches framed and
written with one ``write`` + flush, byte-identical on disk to sequential
appends — so durability cost amortizes across a drain round.  Appends are
flushed to the OS on every call; pass ``sync=True`` to also ``fsync`` (real
crash durability, slower — simulated-crash tests don't need it; the
durability matrix in docs/PERSISTENCE.md spells out what each survives).

**Write-failure atomicity**: the log tracks its last *committed* offset
explicitly, never trusting the file position after an error.  If a write,
flush, or fsync raises mid-append — a real ``OSError`` or an injected one
from a :class:`~repro.faults.FaultPlan` at the ``wal.append`` /
``wal.write`` / ``wal.fsync`` sites — the file is rolled back (truncate +
seek) to the committed offset and the error propagates; the *next* append
starts from a clean boundary, and any garbage a failed rollback leaves
behind is CRC-guarded as a torn tail.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass
from types import TracebackType
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple, Type, Union

if TYPE_CHECKING:
    from repro.faults import FaultPlan, ScopedFaults

import numpy as np

__all__ = ["WAL_VERSION", "WalRecord", "WriteAheadLog", "read_records"]

#: Format version written into the WAL header.
WAL_VERSION = 1

_HEADER_MAGIC = b"SLABWAL\0"
_HEADER = struct.Struct("<8sI")
_FRAME_MAGIC = b"WREC"
_FRAME = struct.Struct("<4sII")
_PAYLOAD_HEAD = struct.Struct("<IIB")

#: Size in bytes of the file header (everything before the first record).
HEADER_SIZE = _HEADER.size


#: ``flags`` value marking an abort record (batch_index names the aborted batch).
_FLAG_ABORT = 2


@dataclass(frozen=True)
class WalRecord:
    """One logged micro-batch, exactly as the service executed it.

    ``aborted`` records are zero-op markers: ``batch_index`` names an
    earlier logged batch the service *rejected* after logging (an injected,
    non-deterministic failure); recovery must not replay that batch.
    """

    batch_index: int
    op_codes: np.ndarray  #: int64, one op code per operation
    keys: np.ndarray  #: uint32
    values: Optional[np.ndarray]  #: uint32, or None for key-only tables
    aborted: bool = False

    def __len__(self) -> int:
        return len(self.op_codes)


def _encode(batch_index: int, op_codes: np.ndarray, keys: np.ndarray,
            values: Optional[np.ndarray]) -> bytes:
    count = len(op_codes)
    payload = _PAYLOAD_HEAD.pack(batch_index, count, 0 if values is None else 1)
    payload += np.asarray(op_codes, dtype=np.uint8).tobytes()
    payload += np.asarray(keys, dtype="<u4").tobytes()
    if values is not None:
        payload += np.asarray(values, dtype="<u4").tobytes()
    return _FRAME.pack(_FRAME_MAGIC, len(payload), zlib.crc32(payload)) + payload


def _encode_abort(batch_index: int) -> bytes:
    payload = _PAYLOAD_HEAD.pack(batch_index, 0, _FLAG_ABORT)
    return _FRAME.pack(_FRAME_MAGIC, len(payload), zlib.crc32(payload)) + payload


def _decode(payload: bytes) -> WalRecord:
    batch_index, count, has_values = _PAYLOAD_HEAD.unpack_from(payload)
    offset = _PAYLOAD_HEAD.size
    if has_values == _FLAG_ABORT:
        if count != 0 or len(payload) != offset:
            raise ValueError("abort marker with a non-empty payload")
        return WalRecord(
            batch_index=batch_index,
            op_codes=np.zeros(0, dtype=np.int64),
            keys=np.zeros(0, dtype=np.uint32),
            values=None,
            aborted=True,
        )
    expected = offset + count + 4 * count * (1 + has_values)
    if len(payload) != expected:
        raise ValueError(f"payload is {len(payload)} bytes, expected {expected}")
    op_codes = np.frombuffer(payload, dtype=np.uint8, count=count, offset=offset)
    offset += count
    keys = np.frombuffer(payload, dtype="<u4", count=count, offset=offset)
    values = None
    if has_values:
        offset += 4 * count
        values = np.frombuffer(payload, dtype="<u4", count=count, offset=offset)
    return WalRecord(
        batch_index=batch_index,
        op_codes=op_codes.astype(np.int64),
        keys=keys.astype(np.uint32),
        values=None if values is None else values.astype(np.uint32),
    )


#: The exact 12 bytes a well-formed WAL starts with.
_HEADER_BYTES = _HEADER.pack(_HEADER_MAGIC, WAL_VERSION)


def _scan(data: bytes, where: str) -> Tuple[List[WalRecord], bool, Optional[int]]:
    """Parse WAL bytes into ``(records, torn_tail, clean_end)``.

    ``clean_end`` is the byte offset just past the last complete record —
    where an append-side reopen should truncate to — or ``None`` when even
    the file header is torn (a crash during the very first write), in which
    case there are no records and the header itself must be rewritten.
    A file that is not a *prefix* of a well-formed WAL raises instead: torn
    writes shorten files, they do not produce wrong bytes.
    """
    if len(data) < HEADER_SIZE:
        if _HEADER_BYTES.startswith(data):
            return [], True, None
        raise ValueError(f"{where}: not a WAL file (bad magic)")
    magic, version = _HEADER.unpack_from(data)
    if magic != _HEADER_MAGIC:
        raise ValueError(f"{where}: not a WAL file (bad magic)")
    if version != WAL_VERSION:
        raise ValueError(f"{where}: WAL version {version}, this build reads {WAL_VERSION}")

    records: List[WalRecord] = []
    offset = HEADER_SIZE
    while offset < len(data):
        if offset + _FRAME.size > len(data):
            return records, True, offset
        frame_magic, length, crc = _FRAME.unpack_from(data, offset)
        payload = data[offset + _FRAME.size : offset + _FRAME.size + length]
        if frame_magic != _FRAME_MAGIC or len(payload) < length:
            return records, True, offset
        if zlib.crc32(payload) != crc:
            return records, True, offset
        try:
            records.append(_decode(payload))
        except ValueError:
            return records, True, offset
        offset += _FRAME.size + length
    return records, False, offset


def read_records(path: str) -> Tuple[List[WalRecord], bool]:
    """Parse a WAL file into ``(records, torn_tail)``.

    ``records`` are the whole, CRC-valid batches in append order; ``torn_tail``
    is True when trailing bytes after them do not form a complete valid record
    (a crash interrupted an append) — those bytes are ignored.  A file cut
    short even inside the 12-byte header (a crash during WAL creation) reads
    as ``([], True)``: every crash point yields a clean — possibly empty —
    prefix of whole batches.
    """
    with open(path, "rb") as handle:
        data = handle.read()
    records, torn, _clean_end = _scan(data, path)
    return records, torn


class WriteAheadLog:
    """Append-side handle on a WAL file (creates or re-opens ``path``).

    Re-opening an existing file validates the header and appends after the
    last complete record, discarding any torn tail left by a crash.

    The handle tracks its **committed offset** explicitly — the byte just
    past the last record whose append fully succeeded.  All appends write at
    that offset (never at a ``tell()`` an earlier failed write may have
    left dangling), and a failed append rolls the file back to it before
    re-raising, so one I/O error can never tear the *next* append.

    ``faults`` is an optional :class:`~repro.faults.FaultPlan` (or scoped
    view) consulted at the ``wal.append`` (before any byte), ``wal.write``
    (the write itself; supports ``torn_write``) and ``wal.fsync`` (after
    write+flush) sites.
    """

    def __init__(
        self,
        path: str,
        *,
        sync: bool = False,
        faults: Optional[Union["FaultPlan", "ScopedFaults"]] = None,
    ) -> None:
        self.path = path
        self.sync = bool(sync)
        self.faults = faults
        #: Rollbacks performed after failed appends (observability hook).
        self.rollbacks = 0
        clean_end: Optional[int] = None
        if os.path.exists(path) and os.path.getsize(path) > 0:
            with open(path, "rb") as handle:
                data = handle.read()
            _records, _torn, clean_end = _scan(data, path)  # validates the header too
        if clean_end is None:
            # New file — or one whose 12-byte header itself was torn by a
            # crash during creation: rewrite the header from scratch.
            self._file = open(path, "w+b")
            self._file.write(_HEADER_BYTES)
            self._committed = HEADER_SIZE
            self._flush()
        else:
            self._file = open(path, "r+b")
            self._file.truncate(clean_end)
            self._file.seek(clean_end)
            self._committed = clean_end

    def _flush(self) -> None:
        self._file.flush()
        if self.sync:
            os.fsync(self._file.fileno())

    def _rollback(self) -> None:
        """Best-effort return to the last committed offset after a failure.

        Even if the truncate itself fails (the disk is *gone*), the next
        append still seeks to ``_committed`` first, and whatever partial
        garbage remains past it is CRC-guarded as a torn tail on read.
        """
        self.rollbacks += 1
        try:
            self._file.seek(self._committed)
            self._file.truncate(self._committed)
            self._file.flush()
        except OSError:  # pragma: no cover - depends on a second, real I/O error
            pass

    def _write_frames(self, blob: bytes) -> None:
        """Write ``blob`` at the committed offset, or roll back and re-raise."""
        try:
            if self.faults is not None:
                self.faults.check("wal.append")  # pre-write failure
            self._file.seek(self._committed)
            if self.faults is not None:
                action = self.faults.fire("wal.write")
                if action is not None:
                    if action.kind == "torn_write":
                        # n bytes land before the error — the torn-tail case.
                        self._file.write(blob[: max(0, int(action.bytes_written))])
                        self._file.flush()
                    raise self.faults.exception(action)
            self._file.write(blob)
            self._file.flush()
            if self.faults is not None:
                self.faults.check("wal.fsync")  # post-write, pre-fsync failure
            if self.sync:
                os.fsync(self._file.fileno())
        except Exception:
            self._rollback()
            raise
        self._committed += len(blob)

    def append(
        self,
        op_codes: Sequence[int],
        keys: Sequence[int],
        values: Optional[Sequence[int]] = None,
        *,
        batch_index: int = 0,
    ) -> int:
        """Frame one batch and append it; returns the record's byte offset."""
        return self.append_group([(op_codes, keys, values, batch_index)])[0]

    def append_group(
        self,
        batches: Sequence[
            Tuple[Sequence[int], Sequence[int], Optional[Sequence[int]], int]
        ],
    ) -> List[int]:
        """Group-commit: frame several batches, write and flush them **once**.

        ``batches`` is a sequence of ``(op_codes, keys, values, batch_index)``
        tuples — typically the concurrently cut per-shard micro-batches of one
        drain round.  All frames are encoded first, then written with a single
        ``write`` + flush, so the durability cost of an append amortizes
        across the group while the on-disk format stays byte-identical to
        sequential :meth:`append` calls (recovery and the crash-point
        harness's whole-record-prefix guarantee are unchanged; a torn group
        still recovers to a prefix of whole batches, possibly mid-group).

        Returns each record's byte offset, in ``batches`` order.  An empty
        group writes nothing.
        """
        frames: List[bytes] = []
        offsets: List[int] = []
        cursor = self._committed
        for op_codes, keys, values, batch_index in batches:
            op_codes = np.asarray(op_codes, dtype=np.int64)
            keys = np.asarray(keys, dtype=np.int64)
            if op_codes.shape != keys.shape:
                raise ValueError("op_codes and keys must have the same length")
            if values is not None and np.asarray(values, dtype=np.int64).shape != keys.shape:
                raise ValueError("keys and values must have the same length")
            frame = _encode(int(batch_index), op_codes, keys, values)
            offsets.append(cursor)
            cursor += len(frame)
            frames.append(frame)
        if not frames:
            return offsets
        self._write_frames(b"".join(frames))
        return offsets

    def append_abort(self, batch_index: int) -> int:
        """Append an abort marker: "do not replay batch ``batch_index``".

        Written (and flushed) by the service *before* it fails the futures
        of a batch whose execution was rejected non-deterministically — an
        injected fault that deterministic WAL replay would not reproduce —
        so any operation a client observed as rejected has a durable marker
        and recovery skips the batch.  Returns the marker's byte offset.
        """
        offset = self._committed
        self._write_frames(_encode_abort(int(batch_index)))
        return offset

    def truncate(self) -> None:
        """Drop every logged record (a snapshot checkpoint supersedes them)."""
        self._file.truncate(HEADER_SIZE)
        self._file.seek(HEADER_SIZE)
        self._committed = HEADER_SIZE
        self._flush()

    def size(self) -> int:
        """Bytes committed to the log (header included)."""
        return self._committed

    def records(self) -> List[WalRecord]:
        """The complete records currently in the file (reads from disk)."""
        self._file.flush()
        return read_records(self.path)[0]

    def close(self) -> None:
        if not self._file.closed:
            self._flush()
            self._file.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"WriteAheadLog({self.path!r}, bytes={self.size()})"
