"""Durability layer: versioned snapshots, a write-ahead log, and crash recovery.

The paper's table is an in-memory GPU structure; this package gives the
reproduction a restart story:

* :mod:`repro.persist.snapshot` — :func:`save` / :func:`load` serialize a
  live :class:`~repro.core.slab_hash.SlabHash` (one ``.npz`` file) or
  :class:`~repro.engine.sharded.ShardedSlabHash` (a manifest directory of
  per-shard files) and restore it *bit-identically*: items, chain structure,
  allocator occupancy and device counters all match the original, on either
  execution backend.
* :mod:`repro.persist.wal` — :class:`WriteAheadLog`, the CRC-framed
  operation log :class:`~repro.service.service.SlabHashService` appends each
  micro-batch to before executing it; ``snapshot() + truncate()`` is the
  checkpoint primitive.
* :mod:`repro.persist.recovery` — :func:`recover` restores a snapshot and
  deterministically replays the WAL tail (discarding a torn final record),
  reproducing the exact pre-crash state; the crash-point property harness in
  ``tests/proptest/test_crash_recovery.py`` checks this differentially
  against both a live oracle run and the dict model.

See ``docs/PERSISTENCE.md`` for the file formats and recovery semantics.
"""

from repro.persist.recovery import RecoveryReport, WalFloorRegressionError, recover
from repro.persist.snapshot import (
    SNAPSHOT_VERSION,
    adopt_table_state,
    load,
    save,
    table_from_bytes,
    table_to_bytes,
    wal_floor,
)
from repro.persist.wal import WAL_VERSION, WalRecord, WriteAheadLog, read_records

__all__ = [
    "SNAPSHOT_VERSION",
    "WAL_VERSION",
    "RecoveryReport",
    "WalFloorRegressionError",
    "WalRecord",
    "WriteAheadLog",
    "adopt_table_state",
    "load",
    "read_records",
    "recover",
    "save",
    "table_from_bytes",
    "table_to_bytes",
    "wal_floor",
]
