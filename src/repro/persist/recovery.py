"""Crash recovery: restore a snapshot and deterministically replay the WAL tail.

The service's durability contract is *checkpoint + log*: a snapshot captures
the engine bit-identically at some batch boundary, the WAL holds every batch
executed since, and :func:`recover` reproduces the pre-crash state by
restoring the snapshot and re-executing the logged batches exactly as the
drain loop did — same batch boundaries, same (recorded) batch indices for
scheduler seeding, same between-batch ``maybe_resize()`` call.  Because
every execution path in the simulator is deterministic given state and
inputs, the recovered table matches a never-crashed run to the last device
counter; the crash-point harness in ``tests/proptest`` asserts exactly that.

A torn final record (crash mid-append) is discarded by the WAL reader; its
batch never resolved any futures, so dropping it is the correct
at-most-once outcome for operations whose completion was never observed.

**Aborted batches** are the other exactly-once hole the WAL plugs: the
service logs batches *before* executing them, so a batch whose execution it
rejected *non-deterministically* — an injected fault from the fault plane,
which a deterministic replay would not reproduce — would otherwise replay
cleanly and resurrect operations the client saw fail.  The service writes an
abort marker (``WalRecord.aborted``) before failing such a batch's futures;
:func:`recover` collects the marked indices (plus any passed via
``extra_aborted``) and skips those batches, keeping "every rejected
operation is absent" true across crash-recovery.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple, TypedDict, Union

import numpy as np

from repro.core.slab_hash import SlabHash
from repro.engine.sharded import ShardedSlabHash
from repro.gpusim.scheduler import WarpScheduler
from repro.persist.snapshot import load, wal_floor
from repro.persist.wal import WalRecord, read_records

__all__ = ["RecoveryReport", "WalFloorRegressionError", "recover", "replay_record"]


class WalFloorRegressionError(ValueError):
    """The WAL's batch_index sequence regressed below the snapshot's floor.

    A checkpoint-window crash legitimately leaves already-covered records
    *as a prefix* of the log: snapshot written (floor recorded), WAL not yet
    truncated.  Those are skipped.  But once a record at or above the floor
    has been seen, a later record numbered *below* it cannot come from this
    snapshot's service — the log was mixed, reused, or corrupted — and
    silently skipping (or replaying) it would hide the mismatch and recover
    a state no live run ever held.  :func:`recover` refuses instead.
    """


class RecoveryReportDict(TypedDict):
    """JSON-ready payload of :meth:`RecoveryReport.as_dict`."""

    snapshot_path: str
    wal_path: Optional[str]
    records_replayed: int
    ops_replayed: int
    records_failed: int
    records_skipped: int
    records_aborted: int
    torn_tail: bool
    next_batch_index: int


@dataclass(frozen=True)
class RecoveryReport:
    """What :func:`recover` found and did."""

    snapshot_path: str
    wal_path: Optional[str]
    records_replayed: int
    ops_replayed: int
    records_failed: int  #: replayed batches that raised (mirroring the live run)
    records_skipped: int  #: records already covered by the snapshot (checkpoint race)
    torn_tail: bool  #: the WAL ended in a partial record (discarded)
    next_batch_index: int  #: where a resuming service should continue numbering
    records_aborted: int = 0  #: logged batches skipped because they were aborted

    def as_dict(self) -> RecoveryReportDict:
        return {
            "snapshot_path": self.snapshot_path,
            "wal_path": self.wal_path,
            "records_replayed": self.records_replayed,
            "ops_replayed": self.ops_replayed,
            "records_failed": self.records_failed,
            "records_skipped": self.records_skipped,
            "records_aborted": self.records_aborted,
            "torn_tail": self.torn_tail,
            "next_batch_index": self.next_batch_index,
        }


def replay_record(
    engine: Union[SlabHash, ShardedSlabHash],
    record: WalRecord,
    *,
    scheduler_seed: Optional[int] = None,
    wave_size: Optional[int] = None,
) -> bool:
    """Re-execute one logged batch exactly as the service drain loop did.

    Mirrors ``SlabHashService._execute`` *including its failure tolerance*:
    the batch runs through ``concurrent_batch`` (seeded per recorded batch
    index when the service was configured with a scheduler seed); a batch
    that raises — e.g. deterministic allocator exhaustion that failed the
    same batch's futures in the live run, leaving its partial state — is
    tolerated and, like the live loop, skips the between-batch resize.
    Successful batches are followed by the same between-batch pump the live
    drain performed: ``maybe_resize()`` on exactly the shard(s) the record's
    keys route to (a logged batch is one shard's lane, and pumping is *not*
    idempotent once resizes are incremental — pumping an untouched shard
    would advance its migration further than the live run did).  Pump
    failures are swallowed like the live loop's
    (``_resize_between_batches``).

    Returns ``True`` when the batch executed cleanly, ``False`` when it
    raised (matching the live run's ``ops_failed`` outcome).
    """
    key_value = (
        engine.shards[0].config.key_value
        if isinstance(engine, ShardedSlabHash)
        else engine.config.key_value
    )
    values = record.values if key_value else None
    try:
        if isinstance(engine, ShardedSlabHash):
            engine.concurrent_batch(
                record.op_codes,
                record.keys,
                values,
                scheduler_seed=(
                    None if scheduler_seed is None else scheduler_seed + record.batch_index
                ),
                wave_size=wave_size,
            )
        else:
            scheduler = (
                None
                if scheduler_seed is None
                else WarpScheduler(seed=scheduler_seed + record.batch_index)
            )
            engine.concurrent_batch(
                record.op_codes, record.keys, values,
                scheduler=scheduler, wave_size=wave_size,
            )
    except Exception:  # noqa: BLE001 - the live loop failed this batch and served on
        return False
    try:
        if isinstance(engine, ShardedSlabHash):
            # The live drain pumped only the shard whose batch just ran;
            # router.partition is the accounting-free routing view.
            keys = np.asarray(record.keys, dtype=np.uint64)
            for shard, idx in zip(engine.shards, engine.router.partition(keys)):
                if idx.size:
                    shard.maybe_resize()
        else:
            engine.maybe_resize()
    except Exception:  # noqa: BLE001 - the live loop swallowed this too
        pass
    return True


def recover(
    snapshot_path: str,
    wal_path: Optional[str] = None,
    *,
    scheduler_seed: Optional[int] = None,
    wave_size: Optional[int] = None,
    extra_aborted: Optional[Iterable[int]] = None,
) -> Tuple[Union[SlabHash, ShardedSlabHash], RecoveryReport]:
    """Restore ``snapshot_path`` and replay the complete records of ``wal_path``.

    ``scheduler_seed`` / ``wave_size`` must match the crashed service's
    :class:`~repro.service.service.ServiceConfig` (both default to ``None``,
    the deterministic phased schedule).  Returns the recovered table/engine
    and a :class:`RecoveryReport`; a missing or empty WAL means the snapshot
    alone is the recovered state.

    Records whose ``batch_index`` lies below the snapshot's WAL floor
    (:func:`~repro.persist.snapshot.wal_floor`) are skipped: a crash in the
    checkpoint window — snapshot written, WAL not yet truncated — leaves
    such already-covered records behind, and replaying them would apply
    their batches twice.  The boundary is exact: the floor is the *next*
    batch index at checkpoint time, so a record numbered exactly at the
    floor is **not** covered by the snapshot and replays (strictly-below
    skips — no off-by-one; pinned by ``tests/persist/test_recovery.py``).
    Skipping is only legal as a prefix, though — a ``batch_index`` that
    regresses below the floor *after* an at-or-above-floor record has been
    seen means the log cannot belong to this snapshot, and :func:`recover`
    refuses with :class:`WalFloorRegressionError` rather than silently
    replaying from a mismatched log.

    Batches named by an **abort marker** in the log are skipped too: the
    service rejected their execution non-deterministically (injected fault),
    so replaying them would apply operations their clients saw fail.
    ``extra_aborted`` adds in-memory aborted indices a live service knows
    about but whose markers did not reach the log (its marker append itself
    failed) — the quarantine-restore path passes its own set here.
    """
    engine = load(snapshot_path)
    floor = wal_floor(snapshot_path)
    records: List[WalRecord] = []
    torn = False
    if wal_path is not None and os.path.exists(wal_path):
        records, torn = read_records(wal_path)
    aborted_indices = {record.batch_index for record in records if record.aborted}
    if extra_aborted is not None:
        aborted_indices.update(int(index) for index in extra_aborted)
    replayed = failed = skipped = aborted = ops = 0
    next_batch_index = floor
    seen_at_or_above_floor = False
    for record in records:
        # Abort markers carry no operations; they only consume numbering.
        next_batch_index = max(next_batch_index, record.batch_index + 1)
        if record.aborted:
            continue
        if record.batch_index < floor:
            if seen_at_or_above_floor:
                raise WalFloorRegressionError(
                    f"WAL {wal_path!r} record batch_index {record.batch_index} "
                    f"regresses below the snapshot's WAL floor {floor} after a "
                    "record at or above it; the log does not belong to this "
                    "snapshot (mixed, reused, or corrupted WAL) — refusing to "
                    "replay"
                )
            skipped += 1
            continue
        seen_at_or_above_floor = True
        if record.batch_index in aborted_indices:
            aborted += 1
            continue
        clean = replay_record(
            engine, record, scheduler_seed=scheduler_seed, wave_size=wave_size
        )
        replayed += 1
        ops += len(record)
        if not clean:
            failed += 1
    report = RecoveryReport(
        snapshot_path=snapshot_path,
        wal_path=wal_path,
        records_replayed=replayed,
        ops_replayed=ops,
        records_failed=failed,
        records_skipped=skipped,
        torn_tail=torn,
        next_batch_index=next_batch_index,
        records_aborted=aborted,
    )
    return engine, report
