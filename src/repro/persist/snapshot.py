"""Versioned snapshots of a live slab hash (single table or sharded engine).

A table snapshot is one compressed ``.npz`` file holding a JSON header (the
scalar state: layout config, hash-function draw, allocator sizing, device
spec, counters, policy, warp counter, in-flight migration) plus three
arrays — the bucket heads (``base_slabs``), the addresses of every
allocated slab, and those slabs' words — and, for a table snapshotted
mid-migration, a fourth array with the new table's bucket heads
(``migration_base_slabs``; the shared allocator dump already covers both
tables' chained slabs).  Together these determine the table *exactly*:
restoring yields the
same items in the same scan order, the same chain structure, the same
allocator bitmap occupancy, and the same device counters, so every future
operation behaves (and is counted) identically to the original table.  The
interesting consequence is what can be *left out*: per-warp resident-block
caches never outlive a batch (warp ids are never reused), so allocator
behavior is fully determined by the warp counter and the bitmaps.

An engine snapshot is a directory: ``manifest.json`` (router draw, routing
policy, per-shard ops accounting, shard file names) plus one table snapshot
per shard.

:func:`save` / :func:`load` dispatch on the object/path kind; the format is
versioned (:data:`SNAPSHOT_VERSION`) and loaders reject unknown versions
rather than guessing.  See ``docs/PERSISTENCE.md`` for the layout.
"""

from __future__ import annotations

import dataclasses
import io
import json
import os
from typing import IO, Dict, Union

import numpy as np

from repro.core.config import SlabAllocConfig
from repro.core.resize import LoadFactorPolicy, MigrationState
from repro.core.slab_alloc import SlabAlloc
from repro.core.slab_alloc_light import SlabAllocLight
from repro.core.slab_hash import SlabHash
from repro.core.slab_list import SlabListCollection
from repro.engine.router import ShardRouter
from repro.engine.sharded import ShardedSlabHash
from repro.gpusim.costmodel import CostModel
from repro.gpusim.counters import Counters
from repro.gpusim.device import Device, DeviceSpec

__all__ = [
    "SNAPSHOT_VERSION",
    "adopt_table_state",
    "load",
    "save",
    "table_from_bytes",
    "table_to_bytes",
    "wal_floor",
]

#: Format version written into every snapshot header/manifest.
#: Version 2 added the ``migration`` header field and the
#: ``migration_base_slabs`` array so a table can be snapshotted (and
#: restored bit-identically) while an incremental resize is in flight.
SNAPSHOT_VERSION = 2

_FORMAT = "slabhash-snapshot"
_MANIFEST = "manifest.json"

_ALLOC_CONFIG_FIELDS = (
    "num_super_blocks",
    "num_memory_blocks",
    "units_per_block",
    "growth_threshold",
    "max_super_blocks",
)


def _table_header(table: SlabHash, wal_min_batch_index: int) -> Dict[str, object]:
    alloc = table.alloc
    stats = table.resize_stats
    return {
        "format": _FORMAT,
        "version": SNAPSHOT_VERSION,
        "kind": "slab_hash",
        "wal_min_batch_index": int(wal_min_batch_index),
        "key_value": table.config.key_value,
        "unique_keys": table.config.unique_keys,
        "backend": table.backend,
        "warp_counter": table._warp_counter,
        "hash": {"a": table.hash_fn.a, "b": table.hash_fn.b,
                 "num_buckets": table.hash_fn.num_buckets},
        "alloc": {
            "light": isinstance(alloc, SlabAllocLight),
            "seed": alloc.seed,
            "slab_words": alloc.slab_words,
            "num_super_blocks": alloc.num_super_blocks,
            "config": {name: getattr(alloc.config, name) for name in _ALLOC_CONFIG_FIELDS},
        },
        "device": {
            "spec": dataclasses.asdict(table.device.spec),
            "counters": table.device.counters.as_dict(),
        },
        "policy": None if table.policy is None else dataclasses.asdict(table.policy),
        "resize_stats": stats.as_dict(),
        "migration": None if table.migration is None else {
            "target_buckets": table.migration.target_buckets,
            "watermark": table.migration.watermark,
            "step_buckets": table.migration.step_buckets,
            "trigger": table.migration.trigger,
            "beta_before": table.migration.beta_before,
            "steps": table.migration.steps,
            "items_moved": table.migration.items_moved,
            "released_slabs": table.migration.released_slabs,
            "seconds": table.migration.seconds,
            "counters": table.migration.counters.as_dict(),
        },
    }


def _table_arrays(table: SlabHash, wal_min_batch_index: int) -> Dict[str, np.ndarray]:
    addresses, words = table.alloc.export_units()
    arrays = {
        "header": np.array(json.dumps(_table_header(table, wal_min_batch_index)), dtype=np.str_),
        "base_slabs": table.lists.base_slabs,
        "alloc_addresses": addresses,
        "alloc_words": words,
    }
    if table.migration is not None:
        # Both tables are live mid-migration; the shared allocator already
        # covers the new array's chained slabs, so only its bucket heads
        # need their own array.
        arrays["migration_base_slabs"] = table.migration.new_lists.base_slabs
    return arrays


def _save_table(table: SlabHash, path: str, wal_min_batch_index: int = 0) -> None:
    with open(path, "wb") as handle:
        np.savez_compressed(handle, **_table_arrays(table, wal_min_batch_index))


def table_to_bytes(table: SlabHash, *, wal_min_batch_index: int = 0) -> bytes:
    """Serialize one table to snapshot bytes (the on-disk ``.npz`` format).

    The in-memory counterpart of :func:`save` for a single
    :class:`SlabHash`: the bytes are exactly what :func:`_save_table` would
    write to disk, so :func:`table_from_bytes` restores a bit-identical
    table.  This is the shard-handoff primitive of
    :class:`repro.engine.parallel.ProcessShardExecutor` — shard state is
    shipped to (and collected from) worker processes in this format.
    """
    buffer = io.BytesIO()
    np.savez_compressed(buffer, **_table_arrays(table, wal_min_batch_index))
    return buffer.getvalue()


def table_from_bytes(data: bytes) -> SlabHash:
    """Restore a table from :func:`table_to_bytes` output (bit-identical)."""
    return _load_table(io.BytesIO(data), where="<snapshot bytes>")


def _check_header(header: Dict[str, object], kind: str, where: str) -> None:
    if header.get("format") != _FORMAT:
        raise ValueError(f"{where} is not a {_FORMAT} file")
    if header.get("version") != SNAPSHOT_VERSION:
        raise ValueError(
            f"{where} has snapshot version {header.get('version')!r}; "
            f"this build reads version {SNAPSHOT_VERSION}"
        )
    if header.get("kind") != kind:
        raise ValueError(f"{where} holds a {header.get('kind')!r}, expected {kind!r}")


def _load_table(path: Union[str, IO[bytes]], where: str = "") -> SlabHash:
    with np.load(path, allow_pickle=False) as archive:
        header = json.loads(str(archive["header"][()]))
        _check_header(header, "slab_hash", where or path)
        base_slabs = archive["base_slabs"].astype(np.uint32)
        addresses = archive["alloc_addresses"]
        words = archive["alloc_words"]
        migration_base_slabs = (
            archive["migration_base_slabs"].astype(np.uint32)
            if header.get("migration") is not None
            else None
        )

    spec = DeviceSpec(**header["device"]["spec"])
    device = Device(spec)
    alloc_info = header["alloc"]
    alloc_config = SlabAllocConfig(**alloc_info["config"])
    alloc_cls = SlabAllocLight if alloc_info["light"] else SlabAlloc
    alloc = alloc_cls(
        device, alloc_config, slab_words=alloc_info["slab_words"], seed=alloc_info["seed"]
    )
    alloc.restore_units(addresses, words, num_super_blocks=alloc_info["num_super_blocks"])

    policy = None if header["policy"] is None else LoadFactorPolicy(**header["policy"])
    table = SlabHash(
        header["hash"]["num_buckets"],
        device=device,
        key_value=header["key_value"],
        unique_keys=header["unique_keys"],
        alloc=alloc,
        backend=header["backend"],
        policy=policy,
    )
    table.lists.base_slabs[:] = base_slabs
    table.hash_fn.a = header["hash"]["a"]
    table.hash_fn.b = header["hash"]["b"]
    table._warp_counter = header["warp_counter"]
    stats = header["resize_stats"]
    for name, value in stats.items():
        setattr(table.resize_stats, name, value)
    if header["migration"] is not None:
        mig = header["migration"]
        new_lists = SlabListCollection(
            device, alloc, mig["target_buckets"], table.config
        )
        new_lists.base_slabs[:] = migration_base_slabs
        mig_counters = Counters()
        for name, value in mig["counters"].items():
            setattr(mig_counters, name, value)
        table.migration = MigrationState(
            new_lists=new_lists,
            # rebucket() preserves the restored (a, b) draw, so routing by
            # the new table's hash is bit-identical to the original's.
            new_hash=table.hash_fn.rebucket(mig["target_buckets"]),
            old_buckets=table.hash_fn.num_buckets,
            target_buckets=mig["target_buckets"],
            trigger=mig["trigger"],
            step_buckets=mig["step_buckets"],
            beta_before=mig["beta_before"],
            watermark=mig["watermark"],
            steps=mig["steps"],
            items_moved=mig["items_moved"],
            released_slabs=mig["released_slabs"],
            counters=mig_counters,
            seconds=mig["seconds"],
        )
    # Restore the counters last: nothing above charges device events, but a
    # direct overwrite keeps that true by construction.
    for name, value in header["device"]["counters"].items():
        setattr(device.counters, name, value)
    return table


#: Everything that determines a table's behavior, moved whole by
#: :func:`adopt_table_state`.  ``config`` rides along for completeness
#: (key_value/unique_keys never change after construction), ``_bulk_exec``
#: does not — it holds only a back-reference to the owning table.
_ADOPTABLE_ATTRS = (
    "device",
    "config",
    "alloc",
    "lists",
    "hash_fn",
    "_warp_counter",
    "backend",
    "policy",
    "resize_stats",
    "migration",
)


def adopt_table_state(dst: SlabHash, src: SlabHash) -> SlabHash:
    """Move ``src``'s entire state into ``dst`` **in place** and return ``dst``.

    After adoption ``dst`` behaves bit-identically to ``src`` (same items,
    chains, allocator occupancy, device counters, in-flight migration) while
    keeping its object identity — so long-lived references to the table
    (a service's per-shard list, an engine's ``shards`` entry) stay valid.
    Used by the process executor to refresh the parent's shard mirror from
    worker-collected snapshot bytes without invalidating those references.
    ``src`` must not be used afterwards: the two tables would share live
    stores.
    """
    for name in _ADOPTABLE_ATTRS:
        setattr(dst, name, getattr(src, name))
    return dst


def _save_engine(engine: ShardedSlabHash, path: str, wal_min_batch_index: int = 0) -> None:
    os.makedirs(path, exist_ok=True)
    shard_files = [f"shard-{index:03d}.npz" for index in range(engine.num_shards)]
    for shard, name in zip(engine.shards, shard_files):
        _save_table(shard, os.path.join(path, name))
    router = engine.router
    manifest = {
        "format": _FORMAT,
        "version": SNAPSHOT_VERSION,
        "kind": "sharded_slab_hash",
        "wal_min_batch_index": int(wal_min_batch_index),
        "num_shards": engine.num_shards,
        "router": {
            "policy": router.policy,
            "hash": None if router._hash is None else
                    {"a": router._hash.a, "b": router._hash.b},
            "rr_cursor": router._rr_cursor,
        },
        "ops_routed": [int(count) for count in engine._ops_routed],
        "shards": shard_files,
    }
    with open(os.path.join(path, _MANIFEST), "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2)
        handle.write("\n")


def _load_engine(path: str) -> ShardedSlabHash:
    manifest_path = os.path.join(path, _MANIFEST)
    with open(manifest_path, encoding="utf-8") as handle:
        manifest = json.load(handle)
    _check_header(manifest, "sharded_slab_hash", manifest_path)
    shards = [_load_table(os.path.join(path, name)) for name in manifest["shards"]]

    engine = ShardedSlabHash.__new__(ShardedSlabHash)
    router = ShardRouter(manifest["num_shards"], policy=manifest["router"]["policy"])
    if router._hash is not None:
        router._hash.a = manifest["router"]["hash"]["a"]
        router._hash.b = manifest["router"]["hash"]["b"]
    router._rr_cursor = manifest["router"]["rr_cursor"]
    engine.router = router
    # Restored engines come back serial; ShardedSlabHash.attach_executor
    # re-enables process execution.  Set the executor slots before the
    # ``shards`` property setter reads them.
    engine._executor = None
    engine._stale = False
    engine.shards = shards
    engine.cost_model = CostModel(shards[0].device.spec)
    engine._ops_routed = np.array(manifest["ops_routed"], dtype=np.int64)
    return engine


def save(
    obj: Union[SlabHash, ShardedSlabHash], path: str, *, wal_min_batch_index: int = 0
) -> str:
    """Write a snapshot of ``obj`` to ``path`` and return the path.

    A :class:`SlabHash` becomes a single compressed file; a
    :class:`ShardedSlabHash` becomes a directory with a ``manifest.json``
    and one file per shard.  The snapshot is host-side work: taking it
    charges no device events and leaves ``obj`` untouched.

    ``wal_min_batch_index`` records the first WAL batch index *not* covered
    by this snapshot (the service's checkpoint passes its next batch
    number).  Recovery skips logged records below it, so a crash between
    "snapshot written" and "WAL truncated" cannot double-replay batches the
    snapshot already contains, and a resumed service continues numbering
    from it even when the WAL is empty.
    """
    if isinstance(obj, ShardedSlabHash):
        _save_engine(obj, path, wal_min_batch_index)
    elif isinstance(obj, SlabHash):
        _save_table(obj, path, wal_min_batch_index)
    else:
        raise TypeError(f"cannot snapshot {type(obj).__name__}; "
                        "expected SlabHash or ShardedSlabHash")
    return path


def wal_floor(path: str) -> int:
    """The snapshot's ``wal_min_batch_index`` (0 for snapshots saved without one).

    Reads only the header/manifest, not the arrays.
    """
    if os.path.isdir(path):
        with open(os.path.join(path, _MANIFEST), encoding="utf-8") as handle:
            return int(json.load(handle).get("wal_min_batch_index", 0))
    with np.load(path, allow_pickle=False) as archive:
        header = json.loads(str(archive["header"][()]))
    return int(header.get("wal_min_batch_index", 0))


def load(path: str) -> Union[SlabHash, ShardedSlabHash]:
    """Restore the table or engine stored at ``path`` (see :func:`save`).

    The restored object is bit-identical to the one that was saved: same
    items in the same bucket scan order, same slab chains, same allocator
    occupancy, same device counters — so subsequent operations produce the
    same results *and* the same counter deltas as they would have on the
    original.
    """
    if os.path.isdir(path):
        return _load_engine(path)
    return _load_table(path)
