"""The slab list: a warp-cooperative, lock-free linked list of 128-byte slabs.

This module implements Section III (design) and Section IV-C (operation
details) of the paper.  A :class:`SlabListCollection` owns ``num_lists``
independent slab lists — the slab hash uses one per bucket, and a single-list
collection is a standalone slab list.

Every operation follows the warp-cooperative work sharing (WCWS) strategy of
Fig. 2: lanes with work set ``is_active``; the warp builds a work queue with a
ballot and processes one source lane's operation at a time, the whole warp
cooperating (coalesced slab read, ballot to locate the key / an empty spot,
shuffle to broadcast results), until the queue drains.

The operations are Python *generators* that yield after every global-memory
access.  Draining a generator executes the operation; interleaving several
generators (see :mod:`repro.gpusim.scheduler`) executes them concurrently, and
because all mutation goes through atomic CAS on the shared simulated memory,
the lock-free retry paths (failed insertion CAS, losing the race to append a
new slab and having to deallocate it) genuinely occur under contention.

Deviation from the paper's simplified pseudocode: when REPLACE finds the key
already present, the pseudocode CASes against ``EMPTY_PAIR``, which cannot
succeed for an occupied slot; we CAS against the currently read pair so the
value is actually replaced.  (See DESIGN.md, "Key design decisions".)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core import constants as C
from repro.core.config import SlabConfig
from repro.core.slab_alloc import SlabAlloc
from repro.gpusim.device import Device
from repro.gpusim.memory import GlobalMemory
from repro.gpusim.warp import Warp

__all__ = ["ChainTable", "SlabListCollection"]

WarpProgram = Generator[None, None, None]


@dataclass
class ChainTable:
    """A flattened, host-side snapshot of every slab chain in a collection.

    Slabs appear grouped by bucket and ordered by chain depth within each
    bucket, so flattened slot index ``offsets[b] * M + p`` is exactly the
    traversal (scan) order of the warp-cooperative procedures.  Used by the
    vectorized bulk backend and the vectorized introspection helpers; building
    it is uncounted (no device events), like the other host-side scans.
    """

    #: Distinct backing stores; index 0 is always the base-slab store.
    stores: List[np.ndarray]
    #: Per-slab store index into :attr:`stores`.
    store_idx: np.ndarray
    #: Per-slab row within its store.
    rows: np.ndarray
    #: Per-slab owning bucket.
    bucket_of: np.ndarray
    #: Per-slab 32-bit address (``BASE_SLAB`` for base slabs).
    addresses: np.ndarray
    #: Bucket b's slabs occupy flattened indices ``offsets[b]:offsets[b+1]``.
    offsets: np.ndarray

    @property
    def num_slabs(self) -> int:
        return len(self.rows)

    def chain_lengths(self) -> np.ndarray:
        """Number of slabs per bucket (including the base slab)."""
        return np.diff(self.offsets)

    def words(self) -> np.ndarray:
        """Gather every slab's 32 words into one ``(num_slabs, 32)`` matrix."""
        out = np.empty((self.num_slabs, C.SLAB_WORDS), dtype=np.uint32)
        for index, store in enumerate(self.stores):
            mask = self.store_idx == index
            out[mask] = store[self.rows[mask]]
        return out


class SlabListCollection:
    """A set of independent slab lists sharing one device and one allocator.

    Parameters
    ----------
    device:
        Simulated device (event counters).
    alloc:
        The SlabAlloc (or SlabAlloc-light) instance that provides slabs.
    num_lists:
        Number of independent lists (buckets when used by the slab hash).
    config:
        Layout/semantics configuration (key-value vs key-only, uniqueness).
    """

    def __init__(
        self,
        device: Device,
        alloc: SlabAlloc,
        num_lists: int,
        config: SlabConfig | None = None,
    ) -> None:
        if num_lists <= 0:
            raise ValueError(f"num_lists must be positive, got {num_lists}")
        self.device = device
        self.mem = GlobalMemory(device.counters)
        self.alloc = alloc
        self.num_lists = int(num_lists)
        self.config = config or SlabConfig()
        #: Base slabs: one fixed 128-byte slab per list, the head of its chain.
        self.base_slabs = np.full((self.num_lists, C.SLAB_WORDS), C.EMPTY_KEY, dtype=np.uint32)

    # ------------------------------------------------------------------ #
    # Slab addressing helpers
    # ------------------------------------------------------------------ #

    def _slab_location(self, bucket: int, slab_ptr: int) -> Tuple[np.ndarray, int]:
        """Resolve the (store, row) of either the base slab or an allocated slab."""
        if slab_ptr == C.BASE_SLAB:
            return self.base_slabs, bucket
        self.alloc.charge_address_decode()
        return self.alloc.slab_view(slab_ptr)

    # ------------------------------------------------------------------ #
    # SEARCH / SEARCHALL (Section III-B.1, Fig. 2 warp_search_macro)
    # ------------------------------------------------------------------ #

    def warp_search(
        self,
        warp: Warp,
        is_active: np.ndarray,
        buckets: np.ndarray,
        keys: np.ndarray,
        out_values: np.ndarray,
    ) -> WarpProgram:
        """SEARCH: find the least-recent value stored under each active lane's key.

        ``out_values[lane]`` receives the found value (key-value mode), the key
        itself (key-only mode), or ``SEARCH_NOT_FOUND``.
        """
        cfg = self.config
        active = np.array(is_active, dtype=bool)
        next_ptr = C.BASE_SLAB
        work_queue = warp.ballot(active)

        while work_queue != 0:
            warp.charge(C.SEARCH_ITER_INSTRUCTIONS)
            src_lane = warp.first_set_lane(work_queue)
            src_key = int(warp.shfl(keys, src_lane))
            src_bucket = int(warp.shfl(buckets, src_lane))

            store, row = self._slab_location(src_bucket, next_ptr)
            read_data = self.mem.read_slab(store, row)
            yield

            found_mask = warp.ballot(read_data == src_key) & cfg.valid_key_mask
            found_lane = warp.first_set_lane(found_mask)
            if found_lane >= 0:
                if cfg.key_value:
                    out_values[src_lane] = warp.shfl(read_data, found_lane + 1)
                else:
                    out_values[src_lane] = src_key
                active[src_lane] = False
            else:
                next_slab = int(warp.shfl(read_data, C.ADDRESS_LANE))
                if next_slab == C.EMPTY_POINTER:
                    out_values[src_lane] = C.SEARCH_NOT_FOUND
                    active[src_lane] = False
                else:
                    next_ptr = next_slab

            new_queue = warp.ballot(active)
            if new_queue != work_queue:
                next_ptr = C.BASE_SLAB
            work_queue = new_queue

    def warp_search_all(
        self,
        warp: Warp,
        is_active: np.ndarray,
        buckets: np.ndarray,
        keys: np.ndarray,
        out_matches: List[List[int]],
    ) -> WarpProgram:
        """SEARCHALL: collect *every* value stored under each active lane's key.

        ``out_matches[lane]`` is extended with all found values (key-value
        mode) or with one entry per stored copy of the key (key-only mode).
        """
        cfg = self.config
        active = np.array(is_active, dtype=bool)
        next_ptr = C.BASE_SLAB
        work_queue = warp.ballot(active)

        while work_queue != 0:
            warp.charge(C.SEARCH_ITER_INSTRUCTIONS)
            src_lane = warp.first_set_lane(work_queue)
            src_key = int(warp.shfl(keys, src_lane))
            src_bucket = int(warp.shfl(buckets, src_lane))

            store, row = self._slab_location(src_bucket, next_ptr)
            read_data = self.mem.read_slab(store, row)
            yield

            found_mask = warp.ballot(read_data == src_key) & cfg.valid_key_mask
            lane = warp.first_set_lane(found_mask)
            while lane >= 0:
                if cfg.key_value:
                    out_matches[src_lane].append(int(warp.shfl(read_data, lane + 1)))
                else:
                    out_matches[src_lane].append(src_key)
                found_mask &= ~(1 << lane)
                lane = warp.first_set_lane(found_mask)

            next_slab = int(warp.shfl(read_data, C.ADDRESS_LANE))
            if next_slab == C.EMPTY_POINTER:
                active[src_lane] = False
                next_ptr = C.BASE_SLAB
            else:
                next_ptr = next_slab

            new_queue = warp.ballot(active)
            if new_queue != work_queue:
                next_ptr = C.BASE_SLAB
            work_queue = new_queue

    # ------------------------------------------------------------------ #
    # INSERT / REPLACE (Section III-B.2, Fig. 2 warp_replace_macro)
    # ------------------------------------------------------------------ #

    def warp_insert(
        self,
        warp: Warp,
        is_active: np.ndarray,
        buckets: np.ndarray,
        keys: np.ndarray,
        values: Optional[np.ndarray] = None,
    ) -> WarpProgram:
        """INSERT: add each active lane's key(-value) allowing duplicate keys."""
        return self._warp_upsert(warp, is_active, buckets, keys, values, replace=False)

    def warp_replace(
        self,
        warp: Warp,
        is_active: np.ndarray,
        buckets: np.ndarray,
        keys: np.ndarray,
        values: Optional[np.ndarray] = None,
    ) -> WarpProgram:
        """REPLACE: insert maintaining key uniqueness (replace an existing key)."""
        return self._warp_upsert(warp, is_active, buckets, keys, values, replace=True)

    def _warp_upsert(
        self,
        warp: Warp,
        is_active: np.ndarray,
        buckets: np.ndarray,
        keys: np.ndarray,
        values: Optional[np.ndarray],
        *,
        replace: bool,
    ) -> WarpProgram:
        cfg = self.config
        if cfg.key_value and values is None:
            raise ValueError("key-value mode requires a values array")
        active = np.array(is_active, dtype=bool)
        next_ptr = C.BASE_SLAB
        work_queue = warp.ballot(active)

        while work_queue != 0:
            warp.charge(C.REPLACE_ITER_INSTRUCTIONS)
            src_lane = warp.first_set_lane(work_queue)
            src_key = int(warp.shfl(keys, src_lane))
            src_value = int(warp.shfl(values, src_lane)) if cfg.key_value else 0
            src_bucket = int(warp.shfl(buckets, src_lane))

            store, row = self._slab_location(src_bucket, next_ptr)
            read_data = self.mem.read_slab(store, row)
            yield

            if replace:
                candidate = (read_data == src_key) | (read_data == C.EMPTY_KEY)
            else:
                candidate = read_data == C.EMPTY_KEY
            dest_mask = warp.ballot(candidate) & cfg.valid_key_mask
            dest_lane = warp.first_set_lane(dest_mask)

            if dest_lane >= 0:
                existing = int(read_data[dest_lane])
                if cfg.key_value:
                    if existing == src_key:
                        expected = (existing, int(read_data[dest_lane + 1]))
                    else:
                        expected = C.EMPTY_PAIR
                    old = self.mem.atomic_cas64(
                        store, row, dest_lane, expected, (src_key, src_value)
                    )
                    success = old == expected
                else:
                    if existing == src_key and replace:
                        # Key-only REPLACE of an existing key is a no-op.
                        success = True
                    else:
                        old = self.mem.atomic_cas32(
                            store, (row, dest_lane), C.EMPTY_KEY, src_key
                        )
                        success = old == C.EMPTY_KEY
                yield
                if success:
                    active[src_lane] = False
                # On failure another warp won the slot; re-read and retry.
            else:
                next_slab = int(warp.shfl(read_data, C.ADDRESS_LANE))
                if next_slab == C.EMPTY_POINTER:
                    new_slab_ptr = self.alloc.warp_allocate(warp)
                    yield
                    old = self.mem.atomic_cas32(
                        store, (row, C.ADDRESS_LANE), C.EMPTY_POINTER, new_slab_ptr
                    )
                    yield
                    if old != C.EMPTY_POINTER:
                        # Another warp appended a slab first: release ours and
                        # continue through the winner's slab on the next pass.
                        self.alloc.deallocate(warp, new_slab_ptr)
                    # next_ptr unchanged: the next iteration re-reads this slab,
                    # sees the (now non-empty) address lane and follows it.
                else:
                    next_ptr = next_slab

            new_queue = warp.ballot(active)
            if new_queue != work_queue:
                next_ptr = C.BASE_SLAB
            work_queue = new_queue

    # ------------------------------------------------------------------ #
    # DELETE / DELETEALL (Section III-B.3, Fig. 2 warp_delete_macro)
    # ------------------------------------------------------------------ #

    def warp_delete(
        self,
        warp: Warp,
        is_active: np.ndarray,
        buckets: np.ndarray,
        keys: np.ndarray,
        out_deleted: Optional[np.ndarray] = None,
    ) -> WarpProgram:
        """DELETE: remove the least-recent occurrence of each active lane's key.

        ``out_deleted[lane]`` (if given) is set to 1 when a matching element
        was found and marked, 0 when the key was not present.
        """
        return self._warp_delete_impl(warp, is_active, buckets, keys, out_deleted, delete_all=False)

    def warp_delete_all(
        self,
        warp: Warp,
        is_active: np.ndarray,
        buckets: np.ndarray,
        keys: np.ndarray,
        out_deleted: Optional[np.ndarray] = None,
    ) -> WarpProgram:
        """DELETEALL: remove every occurrence of each active lane's key.

        ``out_deleted[lane]`` (if given) receives the number of removed copies.
        """
        return self._warp_delete_impl(warp, is_active, buckets, keys, out_deleted, delete_all=True)

    def _warp_delete_impl(
        self,
        warp: Warp,
        is_active: np.ndarray,
        buckets: np.ndarray,
        keys: np.ndarray,
        out_deleted: Optional[np.ndarray],
        *,
        delete_all: bool,
    ) -> WarpProgram:
        cfg = self.config
        # With unique keys, deleted slots must stay distinguishable from empty
        # ones (so REPLACE never re-inserts a key that still exists further
        # down the list); with duplicates allowed, slots are recycled as empty.
        tombstone = C.DELETED_KEY if cfg.unique_keys else C.EMPTY_KEY
        active = np.array(is_active, dtype=bool)
        deleted_count = np.zeros(len(active), dtype=np.int64)
        next_ptr = C.BASE_SLAB
        work_queue = warp.ballot(active)

        while work_queue != 0:
            warp.charge(C.DELETE_ITER_INSTRUCTIONS)
            src_lane = warp.first_set_lane(work_queue)
            src_key = int(warp.shfl(keys, src_lane))
            src_bucket = int(warp.shfl(buckets, src_lane))

            store, row = self._slab_location(src_bucket, next_ptr)
            read_data = self.mem.read_slab(store, row)
            yield

            dest_mask = warp.ballot(read_data == src_key) & cfg.valid_key_mask
            dest_lane = warp.first_set_lane(dest_mask)

            if dest_lane >= 0 and not delete_all:
                self._mark_deleted(store, row, dest_lane, tombstone)
                yield
                deleted_count[src_lane] += 1
                active[src_lane] = False
            elif delete_all:
                lane = dest_lane
                while lane >= 0:
                    self._mark_deleted(store, row, lane, tombstone)
                    deleted_count[src_lane] += 1
                    dest_mask &= ~(1 << lane)
                    lane = warp.first_set_lane(dest_mask)
                if dest_lane >= 0:
                    yield
                next_slab = int(warp.shfl(read_data, C.ADDRESS_LANE))
                if next_slab == C.EMPTY_POINTER:
                    active[src_lane] = False
                    next_ptr = C.BASE_SLAB
                else:
                    next_ptr = next_slab
            else:
                next_slab = int(warp.shfl(read_data, C.ADDRESS_LANE))
                if next_slab == C.EMPTY_POINTER:
                    # Reached the tail: the key is not present; done.
                    active[src_lane] = False
                else:
                    next_ptr = next_slab

            new_queue = warp.ballot(active)
            if new_queue != work_queue:
                next_ptr = C.BASE_SLAB
            work_queue = new_queue

        if out_deleted is not None:
            out_deleted[:] = deleted_count

    def _mark_deleted(self, store: np.ndarray, row: int, lane: int, tombstone: int) -> None:
        """Overwrite a matched element with the tombstone marker."""
        self.mem.write_word(store, (row, lane), tombstone)
        if self.config.key_value and tombstone == C.EMPTY_KEY:
            # Recycled-as-empty slots must read as a full EMPTY_PAIR, otherwise a
            # later insertion CAS (which expects EMPTY_PAIR) could never succeed.
            self.mem.write_word(store, (row, lane + 1), C.EMPTY_VALUE)

    # ------------------------------------------------------------------ #
    # Host-side (uncounted) introspection used by tests, FLUSH and reports
    # ------------------------------------------------------------------ #

    def chain_addresses(self, bucket: int) -> List[int]:
        """Addresses of the allocated slabs chained after ``bucket``'s base slab."""
        addresses: List[int] = []
        ptr = int(self.base_slabs[bucket, C.ADDRESS_LANE])
        while ptr != C.EMPTY_POINTER:
            addresses.append(ptr)
            store, row = self.alloc.slab_view(ptr)
            ptr = int(store[row, C.ADDRESS_LANE])
        return addresses

    def slab_count(self, bucket: int) -> int:
        """Number of slabs in ``bucket``'s chain, including the base slab."""
        return 1 + len(self.chain_addresses(bucket))

    def chain_table(self) -> ChainTable:
        """Build a :class:`ChainTable` snapshot of every chain, vectorized.

        Walks all chains level by level: one vectorized address decode and one
        grouped gather per chain depth, rather than one Python loop iteration
        per slab.  The result is grouped by bucket in traversal order.
        """
        num = self.num_lists
        level_buckets = [np.arange(num, dtype=np.int64)]
        level_store_idx = [np.zeros(num, dtype=np.int64)]
        level_rows = [np.arange(num, dtype=np.int64)]
        level_addresses = [np.full(num, C.BASE_SLAB, dtype=np.int64)]
        level_depths = [np.zeros(num, dtype=np.int64)]
        stores: List[np.ndarray] = [self.base_slabs]
        store_ids = {id(self.base_slabs): 0}

        buckets = level_buckets[0]
        pointers = self.base_slabs[:, C.ADDRESS_LANE].astype(np.int64)
        depth = 1
        while True:
            live = pointers != C.EMPTY_POINTER
            if not live.any():
                break
            buckets = buckets[live]
            pointers = pointers[live]
            gathered_stores, gathered_idx, gathered_rows = self.alloc.gather_views(pointers)
            remap = np.empty(len(gathered_stores), dtype=np.int64)
            for index, store in enumerate(gathered_stores):
                key = id(store)
                if key not in store_ids:
                    store_ids[key] = len(stores)
                    stores.append(store)
                remap[index] = store_ids[key]
            level_buckets.append(buckets.copy())
            level_store_idx.append(remap[gathered_idx])
            level_rows.append(gathered_rows)
            level_addresses.append(pointers.copy())
            level_depths.append(np.full(len(buckets), depth, dtype=np.int64))
            next_pointers = np.empty(len(pointers), dtype=np.int64)
            for index, store in enumerate(gathered_stores):
                mask = gathered_idx == index
                next_pointers[mask] = store[gathered_rows[mask], C.ADDRESS_LANE].astype(np.int64)
            pointers = next_pointers
            depth += 1

        bucket_of = np.concatenate(level_buckets)
        depths = np.concatenate(level_depths)
        order = np.lexsort((depths, bucket_of))
        counts = np.bincount(bucket_of, minlength=num)
        offsets = np.zeros(num + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        return ChainTable(
            stores=stores,
            store_idx=np.concatenate(level_store_idx)[order],
            rows=np.concatenate(level_rows)[order],
            bucket_of=bucket_of[order],
            addresses=np.concatenate(level_addresses)[order],
            offsets=offsets,
        )

    def slab_counts(self) -> np.ndarray:
        """Per-bucket slab counts for all buckets at once (vectorized)."""
        return self.chain_table().chain_lengths()

    def total_slabs(self) -> int:
        """Total slabs across all lists (base slabs plus allocated slabs)."""
        return int(self.chain_table().num_slabs)

    def iter_slab_words(
        self, bucket: int
    ) -> Generator[Tuple[np.ndarray, int, np.ndarray], None, None]:
        """Yield ``(store, row, words)`` for every slab in ``bucket``'s chain (uncounted)."""
        yield self.base_slabs, bucket, self.base_slabs[bucket]
        for address in self.chain_addresses(bucket):
            store, row = self.alloc.slab_view(address)
            yield store, row, store[row]

    def live_items(self, bucket: int) -> List[Tuple[int, Optional[int]]]:
        """All stored (key, value) pairs in ``bucket`` (value is None in key-only mode)."""
        cfg = self.config
        items: List[Tuple[int, Optional[int]]] = []
        for _store, _row, words in self.iter_slab_words(bucket):
            for lane in cfg.key_lanes:
                key = int(words[lane])
                if key in (C.EMPTY_KEY, C.DELETED_KEY):
                    continue
                value = int(words[lane + 1]) if cfg.key_value else None
                items.append((key, value))
        return items

    def live_item_count(self) -> int:
        """Total stored elements across all lists (vectorized host-side scan)."""
        keys = self.chain_table().words()[:, list(self.config.key_lanes)]
        return int(np.count_nonzero((keys != C.EMPTY_KEY) & (keys != C.DELETED_KEY)))

    def all_live_items(self) -> List[Tuple[int, Optional[int]]]:
        """All stored (key, value) pairs across all lists, in bucket scan order.

        Vectorized equivalent of chaining :meth:`live_items` over every bucket
        (the ChainTable rows are grouped by bucket in traversal order, so
        row-major iteration reproduces the per-bucket scan order exactly).
        """
        cfg = self.config
        words = self.chain_table().words()
        keys = words[:, list(cfg.key_lanes)]
        mask = (keys != C.EMPTY_KEY) & (keys != C.DELETED_KEY)
        rows, cols = np.nonzero(mask)
        found_keys = keys[rows, cols].tolist()
        if cfg.key_value:
            value_lanes = np.asarray([lane + 1 for lane in cfg.key_lanes], dtype=np.int64)
            found_values = words[rows, value_lanes[cols]].tolist()
            return list(zip(found_keys, found_values))
        return [(key, None) for key in found_keys]

    def used_bytes(self) -> int:
        """Memory occupied by the collection: base slabs plus allocated slabs."""
        return self.total_slabs() * C.SLAB_BYTES
