"""Core contribution of the paper: slab list, slab hash and SlabAlloc.

Public entry points:

* :class:`repro.core.slab_hash.SlabHash` — the dynamic hash table.
* :class:`repro.core.slab_list.SlabListCollection` — the underlying
  warp-cooperative slab lists (one per bucket).
* :class:`repro.core.slab_alloc.SlabAlloc` /
  :class:`repro.core.slab_alloc_light.SlabAllocLight` — the warp-synchronous
  slab allocators.
* :class:`repro.core.config.SlabConfig` / :class:`repro.core.config.SlabAllocConfig`
  — layout and sizing configuration.
* :class:`repro.core.resize.LoadFactorPolicy` / :func:`repro.core.resize.resize_table`
  — online resizing and adaptive load-factor management.
"""

from repro.core import constants
from repro.core.address import decode_address, is_valid_address, make_address
from repro.core.bulk_exec import BACKENDS, BulkExecutor, get_default_backend, set_default_backend
from repro.core.config import SlabAllocConfig, SlabConfig
from repro.core.flush import FlushResult, flush_all, flush_bucket
from repro.core.hashing import PRIME, UniversalHash, hash_pair, is_user_key
from repro.core.resize import LoadFactorPolicy, ResizeResult, ResizeStats, resize_table
from repro.core.slab_alloc import SlabAlloc
from repro.core.slab_alloc_light import SlabAllocLight
from repro.core.slab_hash import SlabHash
from repro.core.slab_list import SlabListCollection
from repro.core.slab_list_single import SlabList
from repro.core.slab_set import SlabSet

__all__ = [
    "SlabList",
    "SlabSet",
    "constants",
    "BACKENDS",
    "BulkExecutor",
    "get_default_backend",
    "set_default_backend",
    "make_address",
    "decode_address",
    "is_valid_address",
    "SlabConfig",
    "SlabAllocConfig",
    "FlushResult",
    "flush_bucket",
    "flush_all",
    "PRIME",
    "UniversalHash",
    "hash_pair",
    "is_user_key",
    "LoadFactorPolicy",
    "ResizeResult",
    "ResizeStats",
    "resize_table",
    "SlabAlloc",
    "SlabAllocLight",
    "SlabHash",
    "SlabListCollection",
]
