"""Configuration objects for the slab list / slab hash and SlabAlloc."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import constants as C


@dataclass(frozen=True)
class SlabConfig:
    """Layout/semantics configuration shared by slab lists and the slab hash.

    Parameters
    ----------
    key_value:
        ``True`` for 64-bit entries (key-value pairs, 15 per slab), ``False``
        for 32-bit entries (key-only, 30 per slab).  These are the two item
        types the paper supports (Section IV-B).
    unique_keys:
        ``True`` means insertions use REPLACE semantics (a previously inserted
        key is replaced) and deletions mark slots ``DELETED_KEY`` so they are
        never reused by REPLACE.  ``False`` means duplicates are allowed
        (INSERT semantics) and deleted slots are marked ``EMPTY_KEY`` so later
        insertions can reuse them (Section III-B.3).
    """

    key_value: bool = True
    unique_keys: bool = True

    @property
    def elements_per_slab(self) -> int:
        """M: number of data elements per slab (15 for key-value, 30 for key-only)."""
        return C.PAIRS_PER_SLAB if self.key_value else C.KEYS_PER_SLAB

    @property
    def valid_key_mask(self) -> int:
        """Ballot mask of lanes that may contain a key."""
        return C.VALID_KEY_MASK_KEY_VALUE if self.key_value else C.VALID_KEY_MASK_KEY_ONLY

    @property
    def key_lanes(self) -> range:
        """Lane indices that hold keys."""
        return range(0, C.DATA_LANES, 2) if self.key_value else range(C.DATA_LANES)

    @property
    def lane_stride(self) -> int:
        """Distance between consecutive key lanes (2 in key-value mode, 1 otherwise)."""
        return 2 if self.key_value else 1

    @property
    def element_bytes(self) -> int:
        """Bytes of user data per element (x in the utilization formula)."""
        return 8 if self.key_value else 4

    @property
    def max_memory_utilization(self) -> float:
        """Mx / (Mx + y): the best achievable memory utilization (~94 %)."""
        m, x = self.elements_per_slab, self.element_bytes
        pointer_and_slack = C.SLAB_BYTES - m * x
        return (m * x) / (m * x + pointer_and_slack)


@dataclass(frozen=True)
class SlabAllocConfig:
    """Sizing of the SlabAlloc hierarchy (Section V).

    The defaults match the configuration used in the paper's evaluation:
    32 super blocks, 256 memory blocks per super block and 1024 memory units
    (slabs) of 128 bytes per memory block.
    """

    num_super_blocks: int = 32
    num_memory_blocks: int = 256
    units_per_block: int = 1024
    #: Number of resident-block changes after which the allocator grows by
    #: adding super blocks (the paper: "after a threshold number of resident
    #: changes, we add new super blocks").
    growth_threshold: int = 8
    #: Hard cap on super blocks (8 address bits).
    max_super_blocks: int = 256

    def __post_init__(self) -> None:
        if not 1 <= self.num_super_blocks <= self.max_super_blocks:
            raise ValueError(
                f"num_super_blocks must be in [1, {self.max_super_blocks}], "
                f"got {self.num_super_blocks}"
            )
        if not 1 <= self.num_memory_blocks <= 2**14:
            raise ValueError(
                f"num_memory_blocks must be in [1, {2**14}], got {self.num_memory_blocks}"
            )
        if not 1 <= self.units_per_block <= 1024:
            raise ValueError(
                f"units_per_block must be in [1, 1024], got {self.units_per_block}"
            )
        if self.units_per_block % 32 != 0:
            raise ValueError(
                f"units_per_block must be a multiple of 32 (one bitmap word per lane), "
                f"got {self.units_per_block}"
            )

    @property
    def units_per_super_block(self) -> int:
        return self.num_memory_blocks * self.units_per_block

    @property
    def capacity_units(self) -> int:
        """Total number of 128-byte memory units addressable with this config."""
        return self.num_super_blocks * self.units_per_super_block

    @property
    def capacity_bytes(self) -> int:
        return self.capacity_units * C.SLAB_BYTES
