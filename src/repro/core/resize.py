"""Online table resizing and adaptive load-factor management (beyond the paper).

The paper's table is constructed with a fixed number of buckets ``B``; its
performance is governed by the average slab count ``beta = n / (M * B)``
(Fig. 4c trades memory utilization against throughput through exactly this
quantity).  Under churny workloads — sustained insert phases followed by
sustained delete phases — a fixed-``B`` table drifts away from any target
beta: chains lengthen as elements pile up, and (in unique-keys mode)
tombstones accumulate, so every later traversal pays for history.

This module adds the missing recourse:

* :func:`resize_table` rebuilds a live :class:`~repro.core.slab_hash.SlabHash`
  into a new bucket array of any size.  Live elements are migrated through
  the table's regular bulk-insertion path — on either execution backend —
  so the migration's device events (slab reads, CAS traffic, allocations,
  resident-block churn) are charged to the device counters and priced by the
  cost model exactly like any other kernel, and the old chained slabs are
  returned to SlabAlloc afterwards.  Multi-value (duplicate-key) contents
  are migrated in bucket scan order, which preserves the relative order that
  ``search_all`` / ``delete`` / ``delete_all`` observe.
* :class:`LoadFactorPolicy` is the adaptive controller: a target beta band
  with geometric growth/shrink factors and a hysteresis dead-zone.  Tables
  constructed with a policy consult it after every mutating batch
  (``bulk_insert`` / ``bulk_delete`` / ``concurrent_batch`` / ``delete_all``)
  and resize themselves back into the band; a *deferred* policy
  (``auto=False``) leaves the trigger to a coordinator such as
  :class:`~repro.service.service.SlabHashService`, which resizes between
  micro-batches so no individual request's latency absorbs a migration.
* :class:`ResizeStats` accumulates per-table resize accounting (grow/shrink
  counts, migrated items, released slabs, modelled seconds) — the coverage
  hooks the property-based differential harness asserts against.

Exception safety: if SlabAlloc is exhausted mid-migration, the partially
filled new bucket array is torn down (its slabs deallocated), the old bucket
array and hash function are restored unchanged, and the allocation error
propagates — a failed resize never corrupts the table.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, List, Optional, Tuple, TypedDict

if TYPE_CHECKING:
    from repro.core.slab_hash import SlabHash

import numpy as np

from repro.core import constants as C
from repro.core.slab_list import SlabListCollection
from repro.gpusim.costmodel import CostModel
from repro.gpusim.counters import Counters

__all__ = [
    "LoadFactorPolicy",
    "MigrationState",
    "MigrationStepResult",
    "ResizeResult",
    "ResizeStats",
    "begin_migration",
    "migrate_step",
    "resize_table",
]


@dataclass(frozen=True)
class LoadFactorPolicy:
    """An adaptive target band for the average slab count ``beta = n / (M * B)``.

    Parameters
    ----------
    beta_low / beta_high:
        The acceptable band.  A mutating batch that leaves beta above
        ``beta_high`` triggers a grow; below ``beta_low``, a shrink.
    target_beta:
        Where a triggered resize aims: the new bucket count is (at least)
        ``ceil(n / (M * target_beta))``.  Must lie inside the band.
    grow_factor:
        Minimum multiplicative bucket-count step when growing.  Geometric
        growth keeps the amortized migration cost per inserted element
        constant under a sustained insert stream.  The constraint
        ``beta_high / grow_factor >= beta_low`` guarantees a grow step never
        overshoots straight through the band into a shrink trigger.
    shrink_factor:
        Maximum multiplicative step when shrinking (``0.5`` halves the
        buckets per step).  ``beta_low / shrink_factor <= beta_high``
        guarantees the symmetric no-thrash property.
    hysteresis:
        Relative dead-zone: a decision whose bucket count differs from the
        current one by at most ``hysteresis * B`` is suppressed (resize
        no-op), so borderline batches do not cause rebuild storms.
    min_buckets:
        Hard floor on the bucket count (shrinks never go below it).
    auto:
        ``True`` (default): tables holding this policy resize themselves
        immediately after each mutating batch.  ``False``: the policy is
        *deferred* — nothing happens until someone calls
        :meth:`~repro.core.slab_hash.SlabHash.maybe_resize`, which is how
        the service layer schedules migrations between micro-batches.
    incremental:
        ``False`` (default): a triggered resize is a stop-the-world rebuild
        (:func:`resize_table`).  ``True``: a triggered resize only *begins*
        an incremental migration (:func:`begin_migration`) in which the old
        and new bucket arrays are both live; subsequent pump calls
        (:meth:`~repro.core.slab_hash.SlabHash.maybe_resize` /
        :meth:`~repro.core.slab_hash.SlabHash.migrate_step`) move a bounded
        band of buckets each, so no single batch's latency absorbs a full
        rebuild.
    migration_step_buckets:
        How many buckets one incremental migration step moves (the bounded
        unit of work interleaved between batches).
    """

    beta_low: float = 0.25
    beta_high: float = 1.0
    target_beta: float = 0.6
    grow_factor: float = 2.0
    shrink_factor: float = 0.5
    hysteresis: float = 0.1
    min_buckets: int = 1
    auto: bool = True
    incremental: bool = False
    migration_step_buckets: int = 8

    def __post_init__(self) -> None:
        if self.migration_step_buckets < 1:
            raise ValueError(
                f"migration_step_buckets must be at least 1, got {self.migration_step_buckets}"
            )
        if not 0.0 < self.beta_low < self.target_beta < self.beta_high:
            raise ValueError(
                "policy needs 0 < beta_low < target_beta < beta_high, got "
                f"low={self.beta_low}, target={self.target_beta}, high={self.beta_high}"
            )
        if self.grow_factor <= 1.0:
            raise ValueError(f"grow_factor must exceed 1, got {self.grow_factor}")
        if not 0.0 < self.shrink_factor < 1.0:
            raise ValueError(f"shrink_factor must be in (0, 1), got {self.shrink_factor}")
        if self.hysteresis < 0.0:
            raise ValueError(f"hysteresis must be non-negative, got {self.hysteresis}")
        if self.min_buckets < 1:
            raise ValueError(f"min_buckets must be at least 1, got {self.min_buckets}")
        if self.beta_high / self.grow_factor < self.beta_low:
            raise ValueError(
                "beta_high / grow_factor must stay >= beta_low, or a grow step "
                "could overshoot the band and trigger an immediate shrink"
            )
        if self.beta_low / self.shrink_factor > self.beta_high:
            raise ValueError(
                "beta_low / shrink_factor must stay <= beta_high, or a shrink step "
                "could overshoot the band and trigger an immediate grow"
            )

    def beta(self, num_elements: int, num_buckets: int, elements_per_slab: int) -> float:
        """The average slab count of a table with the given occupancy."""
        return num_elements / (elements_per_slab * num_buckets)

    def target_buckets(self, num_elements: int, elements_per_slab: int) -> int:
        """Bucket count that puts ``num_elements`` at the target beta."""
        return max(self.min_buckets, math.ceil(num_elements / (elements_per_slab * self.target_beta)))

    def decide(
        self, num_elements: int, num_buckets: int, elements_per_slab: int
    ) -> Optional[int]:
        """The bucket count a table in this state should resize to, or ``None``.

        ``None`` means the table is quiescent under this policy: beta is in
        the band, the bucket floor was reached, or the indicated change falls
        inside the hysteresis dead-zone.
        """
        if num_buckets <= 0:
            raise ValueError(f"num_buckets must be positive, got {num_buckets}")
        beta = self.beta(num_elements, num_buckets, elements_per_slab)
        target = self.target_buckets(num_elements, elements_per_slab)
        if beta > self.beta_high:
            candidate = max(target, math.ceil(num_buckets * self.grow_factor))
        elif beta < self.beta_low and num_buckets > self.min_buckets:
            candidate = max(target, int(num_buckets * self.shrink_factor), self.min_buckets)
            candidate = min(candidate, num_buckets)  # a shrink trigger never grows
        else:
            return None
        if candidate == num_buckets:
            return None
        if abs(candidate - num_buckets) <= self.hysteresis * num_buckets:
            return None
        return candidate

    def deferred(self) -> "LoadFactorPolicy":
        """A copy of this policy with automatic (post-batch) triggering off."""
        return replace(self, auto=False)


@dataclass(frozen=True)
class ResizeResult:
    """Outcome and accounting of one (possibly no-op) resize."""

    old_buckets: int
    new_buckets: int
    direction: str  #: ``"grow"``, ``"shrink"`` or ``"noop"``
    trigger: str  #: ``"manual"``, ``"policy"`` or ``"rebalance"``
    migrated: int  #: live elements moved into the new bucket array
    released_slabs: int  #: old chained slabs returned to SlabAlloc
    beta_before: float
    beta_after: float
    counters: Counters  #: device events charged by the migration
    seconds: float  #: modelled device time of the migration

    @property
    def changed(self) -> bool:
        return self.direction != "noop"


class ResizeStatsDict(TypedDict):
    """JSON-ready accounting payload of :meth:`ResizeStats.as_dict`."""

    resizes: int
    grows: int
    shrinks: int
    noops: int
    migrated_items: int
    released_slabs: int
    modelled_seconds: float
    migration_steps: int
    migration_buckets: int
    migration_items: int


@dataclass
class ResizeStats:
    """Accumulated resize accounting of one table (coverage hooks for tests)."""

    resizes: int = 0
    grows: int = 0
    shrinks: int = 0
    noops: int = 0
    migrated_items: int = 0
    released_slabs: int = 0
    modelled_seconds: float = 0.0
    migration_steps: int = 0
    migration_buckets: int = 0
    migration_items: int = 0
    history: List[ResizeResult] = field(default_factory=list)

    def note_step(self, *, buckets: int, items: int) -> None:
        """Record one incremental migration step (a band of buckets moved)."""
        self.migration_steps += 1
        self.migration_buckets += buckets
        self.migration_items += items

    def note(self, result: ResizeResult) -> None:
        """Record one resize outcome."""
        self.history.append(result)
        if result.direction == "noop":
            self.noops += 1
            return
        self.resizes += 1
        if result.direction == "grow":
            self.grows += 1
        else:
            self.shrinks += 1
        self.migrated_items += result.migrated
        self.released_slabs += result.released_slabs
        self.modelled_seconds += result.seconds

    def as_dict(self) -> "ResizeStatsDict":
        return {
            "resizes": self.resizes,
            "grows": self.grows,
            "shrinks": self.shrinks,
            "noops": self.noops,
            "migrated_items": self.migrated_items,
            "released_slabs": self.released_slabs,
            "modelled_seconds": self.modelled_seconds,
            "migration_steps": self.migration_steps,
            "migration_buckets": self.migration_buckets,
            "migration_items": self.migration_items,
        }


def _chained_addresses(lists: SlabListCollection) -> np.ndarray:
    """Addresses of every allocated (non-base) slab currently in ``lists``."""
    addresses = lists.chain_table().addresses
    return addresses[addresses != C.BASE_SLAB]


def resize_table(table: SlabHash, num_buckets: int, *, trigger: str = "manual") -> ResizeResult:
    """Rebuild ``table`` into a bucket array of ``num_buckets`` base slabs.

    The migration runs through the table's own bulk-insertion path (so it
    executes — and is counted — on whichever backend the table uses), the old
    chained slabs are returned to the allocator, and the hash function keeps
    its universal-family draw ``(a, b)`` re-ranged to the new bucket count,
    exactly what a fresh table built with the same seed would use.

    Returns a :class:`ResizeResult`; requesting the current bucket count is a
    counted no-op (``direction="noop"``) with no device work.
    """
    if num_buckets <= 0:
        raise ValueError(f"num_buckets must be positive, got {num_buckets}")
    old_buckets = table.num_buckets
    beta_before = table.beta()
    if num_buckets == old_buckets:
        result = ResizeResult(
            old_buckets=old_buckets,
            new_buckets=old_buckets,
            direction="noop",
            trigger=trigger,
            migrated=0,
            released_slabs=0,
            beta_before=beta_before,
            beta_after=beta_before,
            counters=Counters(),
            seconds=0.0,
        )
        table.resize_stats.note(result)
        return result

    device = table.device
    before = device.snapshot()

    # Host-side snapshot of the live contents, in bucket scan order (the
    # order delete/search_all traverse, so duplicate-key semantics survive).
    items = table.lists.all_live_items()
    old_lists = table.lists
    old_hash = table.hash_fn
    old_chained = _chained_addresses(old_lists)

    table.lists = SlabListCollection(device, table.alloc, num_buckets, table.config)
    table.hash_fn = old_hash.rebucket(num_buckets)

    was_in_resize = table._in_resize
    table._in_resize = True
    try:
        if items:
            keys = np.fromiter((key for key, _ in items), dtype=np.uint32, count=len(items))
            values = None
            if table.config.key_value:
                values = np.fromiter(
                    (value for _, value in items), dtype=np.uint32, count=len(items)
                )
            table.bulk_insert(keys, values)
    except Exception:
        # Strong guarantee: tear the partial new array down, restore the old.
        warp = table._next_warp()
        for address in _chained_addresses(table.lists):
            table.alloc.deallocate(warp, int(address))
        table.lists = old_lists
        table.hash_fn = old_hash
        raise
    finally:
        table._in_resize = was_in_resize

    if old_chained.size:
        warp = table._next_warp()
        for address in old_chained:
            table.alloc.deallocate(warp, int(address))

    counters = device.counters.diff(before)
    result = ResizeResult(
        old_buckets=old_buckets,
        new_buckets=num_buckets,
        direction="grow" if num_buckets > old_buckets else "shrink",
        trigger=trigger,
        migrated=len(items),
        released_slabs=int(old_chained.size),
        beta_before=beta_before,
        beta_after=table.beta(),
        counters=counters,
        seconds=CostModel(device.spec).elapsed(counters).total_time,
    )
    table.resize_stats.note(result)
    return result


@dataclass
class MigrationState:
    """An in-flight incremental resize: old and new bucket arrays both live.

    Buckets of the old array are migrated whole, in scan order, a bounded
    band per :func:`migrate_step`.  :attr:`watermark` is the routing rule:
    a key whose *old* bucket is below the watermark lives (and is operated
    on) entirely in the new array; at or above it, entirely in the old one.
    Because every occurrence of a key shares one old bucket, each key lives
    in exactly one array at any instant — duplicate-key scan order and
    REPLACE/DELETE semantics are preserved mid-migration.

    The table's ``lists`` / ``hash_fn`` keep pointing at the *old* array
    until the final step completes, at which point they are swapped to
    :attr:`new_lists` / :attr:`new_hash` and the state is retired into a
    :class:`ResizeResult`.
    """

    new_lists: SlabListCollection
    new_hash: object  #: :class:`~repro.core.hashing.UniversalHash` re-ranged to the target
    old_buckets: int
    target_buckets: int
    trigger: str
    step_buckets: int
    beta_before: float
    watermark: int = 0
    steps: int = 0
    items_moved: int = 0
    released_slabs: int = 0
    counters: Counters = field(default_factory=Counters)
    seconds: float = 0.0

    @property
    def direction(self) -> str:
        return "grow" if self.target_buckets > self.old_buckets else "shrink"

    @property
    def remaining_buckets(self) -> int:
        return self.old_buckets - self.watermark

    @property
    def done(self) -> bool:
        return self.watermark >= self.old_buckets


@dataclass(frozen=True)
class MigrationStepResult:
    """Outcome and accounting of one bounded incremental migration step."""

    buckets_moved: int  #: old buckets whose contents moved this step
    items_moved: int  #: live elements moved this step
    watermark: int  #: routing watermark after the step
    done: bool  #: ``True`` when this step completed the migration
    released_slabs: int  #: old chained slabs returned to SlabAlloc this step
    counters: Counters  #: device events charged by this step
    seconds: float  #: modelled device time of this step
    result: Optional[ResizeResult] = None  #: the whole migration, when ``done``


def _gather_band_reference(
    lists: SlabListCollection, lo: int, hi: int
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Live (keys, values) of buckets ``[lo, hi)`` in scan order (generator schedule)."""
    keys: List[int] = []
    values: List[int] = []
    for bucket in range(lo, hi):
        for key, value in lists.live_items(bucket):
            keys.append(key)
            if value is not None:
                values.append(value)
    out_keys = np.asarray(keys, dtype=np.uint32)
    if not lists.config.key_value:
        return out_keys, None
    return out_keys, np.asarray(values, dtype=np.uint32)


def begin_migration(
    table: SlabHash, num_buckets: int, *, trigger: str = "manual", step_buckets: Optional[int] = None
) -> Optional[ResizeResult]:
    """Begin an incremental resize of ``table`` to ``num_buckets`` buckets.

    Allocates the new (empty) bucket array and re-ranges the hash function's
    ``(a, b)`` draw — both host-side, no device events — and installs a
    :class:`MigrationState` at watermark 0.  No items move until
    :func:`migrate_step` is called; requesting the current bucket count is a
    counted no-op that starts nothing (the returned :class:`ResizeResult`
    says so); otherwise returns ``None``.
    """
    if table.migration is not None:
        raise RuntimeError("a migration is already in flight; drain it first")
    if num_buckets <= 0:
        raise ValueError(f"num_buckets must be positive, got {num_buckets}")
    old_buckets = table.num_buckets
    beta_before = table.beta()
    if num_buckets == old_buckets:
        result = ResizeResult(
            old_buckets=old_buckets,
            new_buckets=old_buckets,
            direction="noop",
            trigger=trigger,
            migrated=0,
            released_slabs=0,
            beta_before=beta_before,
            beta_after=beta_before,
            counters=Counters(),
            seconds=0.0,
        )
        table.resize_stats.note(result)
        return result
    if step_buckets is None:
        policy = table.policy
        step_buckets = policy.migration_step_buckets if policy is not None else 8
    if step_buckets < 1:
        raise ValueError(f"step_buckets must be at least 1, got {step_buckets}")
    table.migration = MigrationState(
        new_lists=SlabListCollection(table.device, table.alloc, num_buckets, table.config),
        new_hash=table.hash_fn.rebucket(num_buckets),
        old_buckets=old_buckets,
        target_buckets=num_buckets,
        trigger=trigger,
        step_buckets=int(step_buckets),
        beta_before=beta_before,
    )
    return None


def migrate_step(table: SlabHash, max_buckets: Optional[int] = None) -> MigrationStepResult:
    """Move the next band of old buckets into the new array, whole and atomically.

    The band's live contents are gathered host-side in scan order (the
    vectorized backend uses the band-gather kernel in
    :mod:`repro.core.bulk_exec`; the reference backend walks the chains —
    identical output) and re-inserted through the table's own bulk path
    against the *new* array, so the step's device events are charged and
    priced like any other kernel.  On success the band's old chained slabs
    go back to SlabAlloc, the old base slabs are cleared, and the watermark
    advances — the step is the atomic unit of migration progress.

    Exception safety mirrors :func:`resize_table`: if the bulk insert fails
    mid-band (e.g. allocator exhaustion, injected fault), every band key
    that reached the new array is deleted again — band keys cannot
    pre-exist there, since their writes routed to the old array — the
    watermark stays put, and the error propagates.  Both arrays stay
    consistent and the migration remains resumable.
    """
    state = table.migration
    if state is None:
        raise RuntimeError("no migration in flight; call begin_migration first")
    faults = getattr(table.alloc, "faults", None)
    if faults is not None:
        faults.check("migration.step")
    step = int(state.step_buckets if max_buckets is None else max_buckets)
    if step < 1:
        raise ValueError(f"max_buckets must be at least 1, got {step}")
    lo = state.watermark
    hi = min(lo + step, state.old_buckets)

    device = table.device
    before = device.snapshot()
    old_lists = table.lists
    old_hash = table.hash_fn
    if table.backend == "vectorized":
        from repro.core.bulk_exec import gather_band

        keys, values = gather_band(old_lists, lo, hi)
    else:
        keys, values = _gather_band_reference(old_lists, lo, hi)

    was_in_resize = table._in_resize
    table._in_resize = True
    table.lists = state.new_lists
    table.hash_fn = state.new_hash
    try:
        if len(keys):
            table.bulk_insert(keys, values)
    except Exception:
        # Roll the partial band back: delete every occurrence that made it
        # into the new array (extra deletes of never-inserted occurrences
        # traverse and miss, which is charged but harmless and deterministic).
        if len(keys):
            table.bulk_delete(keys)
        raise
    finally:
        table.lists = old_lists
        table.hash_fn = old_hash
        table._in_resize = was_in_resize

    band_chained: List[int] = []
    for bucket in range(lo, hi):
        band_chained.extend(old_lists.chain_addresses(bucket))
    if band_chained:
        warp = table._next_warp()
        for address in band_chained:
            table.alloc.deallocate(warp, int(address))
    old_lists.base_slabs[lo:hi] = C.EMPTY_KEY

    state.watermark = hi
    state.steps += 1
    state.items_moved += len(keys)
    state.released_slabs += len(band_chained)
    delta = device.counters.diff(before)
    seconds = CostModel(device.spec).elapsed(delta).total_time
    state.counters += delta
    state.seconds += seconds
    table.resize_stats.note_step(buckets=hi - lo, items=len(keys))

    result: Optional[ResizeResult] = None
    done = state.done
    if done:
        table.lists = state.new_lists
        table.hash_fn = state.new_hash
        table.migration = None
        result = ResizeResult(
            old_buckets=state.old_buckets,
            new_buckets=state.target_buckets,
            direction=state.direction,
            trigger=state.trigger,
            migrated=state.items_moved,
            released_slabs=state.released_slabs,
            beta_before=state.beta_before,
            beta_after=table.beta(),
            counters=state.counters,
            seconds=state.seconds,
        )
        table.resize_stats.note(result)
    return MigrationStepResult(
        buckets_moved=hi - lo,
        items_moved=len(keys),
        watermark=hi,
        done=done,
        released_slabs=len(band_chained),
        counters=delta,
        seconds=seconds,
        result=result,
    )
