"""SlabAlloc-light: the single-contiguous-pool variant of SlabAlloc (Section V).

The regular SlabAlloc stores each super block's 64-bit base pointer in shared
memory; translating a 32-bit slab address into an actual memory location
therefore costs one shared-memory read per lookup, which is noticeable in
search-heavy workloads.  SlabAlloc-light allocates *all* super blocks in one
contiguous array so a single global base pointer suffices: address decoding
becomes pure arithmetic, at the price of scalability (at most ~4 GB of slabs,
versus ~1 TB for the regular layout).

The paper reports up to a 25 % search-rate improvement from the light variant
in lookup-heavy scenarios; the ablation benchmark
``benchmarks/bench_ablations.py::test_slaballoc_light_search_gain`` reproduces
that comparison.
"""

from __future__ import annotations

from repro.core import constants as C
from repro.core.config import SlabAllocConfig
from repro.core.slab_alloc import SlabAlloc
from repro.gpusim.device import Device

__all__ = ["SlabAllocLight"]

#: Capacity limit of the light variant: a single contiguous array under 4 GB.
LIGHT_CAPACITY_BYTES = 4 * 1024**3


class SlabAllocLight(SlabAlloc):
    """SlabAlloc with contiguous super blocks and free address decoding."""

    def __init__(
        self,
        device: Device,
        config: SlabAllocConfig | None = None,
        *,
        slab_words: int = C.SLAB_WORDS,
        seed: int = 0,
    ) -> None:
        cfg = config or SlabAllocConfig()
        capacity_bytes = cfg.capacity_units * 4 * slab_words
        if capacity_bytes > LIGHT_CAPACITY_BYTES:
            raise ValueError(
                "SlabAlloc-light requires all super blocks to fit in one contiguous "
                f"allocation of at most 4 GB; requested {capacity_bytes / 2**30:.1f} GB. "
                "Use the regular SlabAlloc for larger capacities."
            )
        super().__init__(device, cfg, slab_words=slab_words, seed=seed, light=True)
