"""SlabSet: an unordered set of 32-bit keys backed by a key-only slab hash.

The paper's key-only item type (30 keys per 128-byte slab) is exactly a
concurrent unordered set — the same abstraction Misra & Chaudhuri's baseline
provides.  :class:`SlabSet` exposes it with Python-set ergonomics while
keeping the bulk and concurrent entry points of the underlying
:class:`~repro.core.slab_hash.SlabHash`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator, List, Optional, Sequence

import numpy as np

if TYPE_CHECKING:
    from repro.core.flush import FlushResult
    from repro.gpusim.scheduler import WarpScheduler

from repro.core import constants as C
from repro.core.config import SlabAllocConfig
from repro.core.slab_hash import SlabHash
from repro.gpusim.device import Device

__all__ = ["SlabSet"]


class SlabSet:
    """A dynamic set of user keys (32-bit integers below ``MAX_USER_KEY``).

    Parameters mirror :class:`~repro.core.slab_hash.SlabHash`; the table is
    always key-only with unique keys.
    """

    def __init__(
        self,
        num_buckets: int,
        *,
        device: Optional[Device] = None,
        alloc_config: Optional[SlabAllocConfig] = None,
        light_alloc: bool = False,
        seed: int = 0,
    ) -> None:
        self._table = SlabHash(
            num_buckets,
            device=device,
            key_value=False,
            unique_keys=True,
            alloc_config=alloc_config,
            light_alloc=light_alloc,
            seed=seed,
        )

    # ------------------------------------------------------------------ #
    # Python-set style API
    # ------------------------------------------------------------------ #

    def add(self, key: int) -> None:
        """Add ``key`` to the set (no-op if already present)."""
        self._table.insert(int(key))

    def discard(self, key: int) -> bool:
        """Remove ``key`` if present; returns True when something was removed."""
        return self._table.delete(int(key))

    def remove(self, key: int) -> None:
        """Remove ``key``; raises ``KeyError`` when absent (like ``set.remove``)."""
        if not self.discard(key):
            raise KeyError(key)

    def __contains__(self, key: int) -> bool:
        return key in self._table

    def __len__(self) -> int:
        return len(self._table)

    def __iter__(self) -> Iterator[int]:
        return iter(sorted(key for key, _ in self._table.items()))

    def __bool__(self) -> bool:
        return len(self) > 0

    # ------------------------------------------------------------------ #
    # Bulk API
    # ------------------------------------------------------------------ #

    def update(self, keys: Iterable[int]) -> None:
        """Add a batch of keys (one per simulated thread)."""
        keys = np.fromiter((int(k) for k in keys), dtype=np.uint32)
        if keys.size:
            self._table.bulk_insert(keys)

    def contains_many(self, keys: Sequence[int]) -> np.ndarray:
        """Vectorized membership query; returns a boolean array."""
        keys = np.asarray(keys, dtype=np.uint32)
        if keys.size == 0:
            return np.zeros(0, dtype=bool)
        return self._table.bulk_search(keys) != C.SEARCH_NOT_FOUND

    def discard_many(self, keys: Sequence[int]) -> int:
        """Remove a batch of keys; returns how many were actually present."""
        keys = np.asarray(keys, dtype=np.uint32)
        if keys.size == 0:
            return 0
        return int(self._table.bulk_delete(keys).sum())

    def concurrent_batch(
        self,
        op_codes: Sequence[int],
        keys: Sequence[int],
        *,
        scheduler: Optional["WarpScheduler"] = None,
        wave_size: Optional[int] = None,
    ) -> np.ndarray:
        """Mixed concurrent adds/discards/membership queries (see SlabHash)."""
        return self._table.concurrent_batch(
            op_codes, keys, scheduler=scheduler, wave_size=wave_size
        )

    # ------------------------------------------------------------------ #
    # Maintenance / introspection
    # ------------------------------------------------------------------ #

    def flush(self) -> List["FlushResult"]:
        """Compact the underlying slab lists."""
        return self._table.flush()

    def memory_utilization(self) -> float:
        return self._table.memory_utilization()

    @property
    def table(self) -> SlabHash:
        """The underlying slab hash (for cost/accounting introspection)."""
        return self._table

    @property
    def device(self) -> Device:
        return self._table.device

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SlabSet(elements={len(self)}, buckets={self._table.num_buckets})"
