"""Universal hashing used by the slab hash and by SlabAlloc's resident-block probing.

The paper uses the simple universal family ``h(k; a, b) = ((a*k + b) mod p) mod B``
with ``a, b`` random integers and ``p`` a prime larger than the key universe
(Section III-C).  The same family (with different draws) is used to pick
SlabAlloc resident blocks from ``(global warp id, attempt count)``.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.core import constants as C

__all__ = ["PRIME", "UniversalHash", "hash_pair"]

#: The largest prime below 2^32 (2^32 - 5); effectively spans the 32-bit key universe.
PRIME = 4_294_967_291


class UniversalHash:
    """A member of the universal family ``((a*k + b) mod p) mod num_buckets``.

    Parameters
    ----------
    num_buckets:
        The range B of the hash function.
    seed:
        Seed used to draw ``a`` (non-zero) and ``b``.
    """

    __slots__ = ("num_buckets", "a", "b")

    def __init__(self, num_buckets: int, seed: int | None = None) -> None:
        if num_buckets <= 0:
            raise ValueError(f"num_buckets must be positive, got {num_buckets}")
        rng = np.random.default_rng(seed)
        self.num_buckets = int(num_buckets)
        self.a = int(rng.integers(1, PRIME))
        self.b = int(rng.integers(0, PRIME))

    def __call__(self, key: int) -> int:
        """Hash a single key to a bucket index in ``[0, num_buckets)``."""
        return ((self.a * int(key) + self.b) % PRIME) % self.num_buckets

    def hash_array(self, keys: Iterable[int] | np.ndarray) -> np.ndarray:
        """Vectorized hashing of an array of keys (used by the bulk drivers)."""
        keys64 = np.asarray(keys, dtype=np.uint64)
        hashed = (np.uint64(self.a) * keys64 + np.uint64(self.b)) % np.uint64(PRIME)
        return (hashed % np.uint64(self.num_buckets)).astype(np.int64)

    def rebucket(self, num_buckets: int) -> "UniversalHash":
        """Return a hash function with the same (a, b) but a different range."""
        clone = UniversalHash.__new__(UniversalHash)
        clone.num_buckets = int(num_buckets)
        clone.a = self.a
        clone.b = self.b
        return clone

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"UniversalHash(B={self.num_buckets}, a={self.a}, b={self.b})"


def hash_pair(x: int, y: int, modulus: int, seed: int = 0) -> int:
    """Hash a pair of integers into ``[0, modulus)``.

    Used by SlabAlloc to pick a (super block, memory block) resident block from
    ``(global warp id, resident-change attempt)``; the constants are odd
    multipliers so consecutive attempts of the same warp probe different blocks.
    """
    if modulus <= 0:
        raise ValueError(f"modulus must be positive, got {modulus}")
    mixed = (x * 0x9E3779B1 + y * 0x85EBCA77 + seed * 0xC2B2AE3D) & 0xFFFFFFFF
    mixed ^= mixed >> 16
    mixed = (mixed * 0x7FEB352D) & 0xFFFFFFFF
    mixed ^= mixed >> 15
    return mixed % modulus


def is_user_key(key: int) -> bool:
    """True if ``key`` lies in the storable key domain (reserved values excluded)."""
    return 0 <= int(key) < C.MAX_USER_KEY
